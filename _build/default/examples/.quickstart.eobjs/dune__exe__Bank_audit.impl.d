examples/bank_audit.ml: Array Du_opacity Event Fmt Hashtbl History List Semantics Serialization Sim Stm Tm_safety Txn Verdict
