examples/monitor_live.ml: Fmt History List Monitor Pretty Sim Stm Tm_safety
