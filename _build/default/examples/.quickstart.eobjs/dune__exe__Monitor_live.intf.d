examples/monitor_live.mli:
