examples/paper_figures.ml: Du_opacity Figures Final_state Fmt List Opacity Pretty Rco Search Serialization Tm_safety Tms2 Verdict
