examples/quickstart.ml: Dsl Du_opacity Final_state Fmt Opacity Parse Pretty Serializable Serialization Sim Stm Tm_safety Verdict
