examples/quickstart.mli:
