examples/zombie.ml: Du_opacity Event Fmt History List Sim Stm Tm_safety Verdict
