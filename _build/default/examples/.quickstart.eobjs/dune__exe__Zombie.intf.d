examples/zombie.mli:
