(* End-to-end bank audit, two ways.

   1. Under the deterministic simulator (genuine fine-grained interleaving,
      fully reproducible): record each STM's history, check du-opacity, and
      replay the certificate to the final committed state.
   2. On real OCaml 5 domains over Atomic memory: throughput statistics.
      (On a single-core machine domains interleave only at OS preemption
      granularity, so the safety-relevant overlap lives in part 1.)

     dune exec examples/bank_audit.exe *)

open Tm_safety

let n_accounts = 8

let params =
  {
    Stm.Workload.default with
    n_threads = 4;
    txns_per_thread = 30;
    ops_per_txn = 4;
    n_vars = n_accounts;
    read_ratio = 0.5;
    zipf_theta = 0.6;
  }

(* Maximum number of simultaneously live transactions in the history. *)
let max_overlap h =
  let live = Hashtbl.create 16 in
  let best = ref 0 in
  List.iteri
    (fun i ev ->
      let k = Event.tx_of ev in
      let txn = History.info h k in
      if i = txn.Txn.first_index then Hashtbl.replace live k ();
      best := max !best (Hashtbl.length live);
      if i = txn.Txn.last_index then Hashtbl.remove live k)
    (History.to_list h);
  !best

let audit_sim stm =
  let r = Sim.Runner.run ~stm ~params ~seed:99 () in
  let s = r.Sim.Runner.stats in
  let h = r.Sim.Runner.history in
  let du = Du_opacity.check_fast ~max_nodes:5_000_000 h in
  Fmt.pr
    "%-12s commits %4d  aborts %3d (+%d at tryC)  events %5d  overlap %2d  \
     du-opaque: %s@."
    stm s.Stm.Harness.commits s.Stm.Harness.op_aborts
    s.Stm.Harness.commit_aborts (History.length h) (max_overlap h)
    (match du with
    | Verdict.Sat _ -> "yes"
    | Verdict.Unsat why -> "NO — " ^ why
    | Verdict.Unknown why -> "? — " ^ why);
  match du with
  | Verdict.Sat cert ->
      let serial = Serialization.to_history h cert in
      let state = Array.make n_accounts 0 in
      Semantics.final_state serial state;
      Fmt.pr "             final committed state %a (replayed from the \
              certificate)@."
        Fmt.(brackets (array ~sep:semi int))
        state
  | Verdict.Unsat _ | Verdict.Unknown _ -> ()

let throughput stm =
  let params = { params with Stm.Workload.txns_per_thread = 2000 } in
  let r =
    Stm.Parallel.run ~algorithm:(Stm.Registry.find_exn stm) ~params ~seed:1 ()
  in
  Fmt.pr "%-12s %8.0f commits/s  (%d commits, %d aborts, %.3fs)@." stm
    (Stm.Parallel.throughput r)
    r.Stm.Parallel.stats.Stm.Harness.commits
    (r.Stm.Parallel.stats.Stm.Harness.op_aborts
    + r.Stm.Parallel.stats.Stm.Harness.commit_aborts)
    r.Stm.Parallel.elapsed_s

let () =
  Fmt.pr "== Safety audit under the simulator (%a) ==@.@." Stm.Workload.pp_params
    params;
  List.iter audit_sim [ "tl2"; "norec"; "tml"; "2pl"; "global-lock" ];
  Fmt.pr "@.(controls, for contrast)@.";
  List.iter audit_sim [ "pessimistic"; "dirty-read"; "eager" ];
  Fmt.pr "@.== Throughput on %d domains (Atomic memory, unrecorded) ==@.@."
    params.Stm.Workload.n_threads;
  List.iter throughput
    [ "tl2"; "norec"; "tml"; "2pl"; "global-lock"; "pessimistic" ]
