(* Online verification: stream STM executions through the du-opacity
   monitor, event by event, as a runtime watchdog (Corollary 9: checking
   every finite prefix is checking the implementation).

     dune exec examples/monitor_live.exe *)

open Tm_safety

let params =
  {
    Stm.Workload.default with
    n_threads = 3;
    txns_per_thread = 6;
    ops_per_txn = 3;
    n_vars = 3;
    read_ratio = 0.6;
  }

let watch stm seed =
  let r = Sim.Runner.run ~stm ~params ~seed () in
  let events = History.to_list r.Sim.Runner.history in
  let m = Monitor.create ~max_nodes:500_000 () in
  let outcome = Monitor.push_all m events in
  Fmt.pr "%-12s seed %d: %4d events, %3d searches, %5d nodes — " stm seed
    (Monitor.events_seen m) (Monitor.searches_run m) (Monitor.nodes_total m);
  (match outcome with
  | `Ok -> Fmt.pr "all prefixes du-opaque@."
  | `Violation why ->
      Fmt.pr "VIOLATION@.    %s@." why;
      (match Monitor.violation_index m with
      | Some i ->
          let bad = History.prefix (r.Sim.Runner.history) i in
          Fmt.pr "    first violating prefix (%d events):@.%s" i
            (Pretty.timeline bad)
      | None -> ())
  | `Budget why -> Fmt.pr "search budget exhausted: %s@." why);
  outcome

let () =
  Fmt.pr "== Watching well-behaved STMs ==@.";
  List.iter
    (fun stm -> ignore (watch stm 7))
    [ "tl2"; "norec"; "tml"; "2pl" ];
  Fmt.pr "@.== Watching the broken controls ==@.";
  let caught =
    List.filter
      (fun stm ->
        List.exists
          (fun seed ->
            match watch stm seed with `Violation _ -> true | _ -> false)
          [ 1; 2; 3; 4; 5 ])
      [ "pessimistic"; "dirty-read"; "eager" ]
  in
  Fmt.pr "@.controls caught online: %a@." Fmt.(list ~sep:comma string) caught
