(* Reproduce the paper's Figures 1-6: print each history as a timeline,
   the paper's claim, and the machine verdicts.

     dune exec examples/paper_figures.exe *)

open Tm_safety

let verdict v = if Verdict.is_sat v then "yes" else "no"

let () =
  List.iter
    (fun (e : Figures.expectation) ->
      Fmt.pr "@.=== %s — %s ===@.%s" e.name e.claim (Pretty.timeline e.history);
      Fmt.pr "  du-opaque: %s (expected %b)   opaque: %s (expected %b)@."
        (verdict (Du_opacity.check e.history))
        e.du_opaque
        (verdict (Opacity.check e.history))
        e.opaque;
      Fmt.pr "  final-state opaque: %s (expected %b)@."
        (verdict (Final_state.check e.history))
        e.final_state;
      (match e.tms2 with
      | Some expected ->
          Fmt.pr "  TMS2: %s (expected %b)@."
            (verdict (Tms2.check e.history))
            expected
      | None -> ());
      (match e.rco with
      | Some expected ->
          Fmt.pr "  GHS'08 read-commit-order: %s (expected %b)@."
            (verdict (Rco.check e.history))
            expected
      | None -> ());
      match Du_opacity.check e.history with
      | Verdict.Sat s -> Fmt.pr "  witness: %a@." Serialization.pp s
      | Verdict.Unsat why -> Fmt.pr "  reason: %s@." why
      | Verdict.Unknown why -> Fmt.pr "  ?: %s@." why)
    Figures.catalog;

  (* Proposition 1, experimentally: in fig2's prefix family every
     serialization puts all zero-readers before T1, so T1's position
     diverges — the ω-limit can have no serialization. *)
  Fmt.pr "@.=== Proposition 1: the limit of fig2 has no serialization ===@.";
  Fmt.pr "readers  position of T1 in the found serialization  forced?@.";
  List.iter
    (fun readers ->
      let h = Figures.fig2 ~readers in
      let pos =
        match Du_opacity.check h with
        | Verdict.Sat s ->
            let rec index i = function
              | [] -> -1
              | k :: _ when k = 1 -> i
              | _ :: rest -> index (i + 1) rest
            in
            index 0 s.Serialization.order
        | Verdict.Unsat _ | Verdict.Unknown _ -> -1
      in
      (* "forced": T1 before any zero-reader is unsatisfiable. *)
      let forced =
        List.for_all
          (fun reader ->
            Verdict.is_unsat
              (Search.serialize
                 { Search.du with extra_edges = [ (1, reader) ] }
                 h))
          (List.init (readers - 2) (fun i -> i + 3))
      in
      Fmt.pr "%7d  %3d                                        %b@." readers pos
        forced)
    [ 3; 5; 8; 12; 16; 24 ];
  Fmt.pr
    "T1's position grows linearly with the number of readers: in the \
     infinite limit T1 would need an infinite position, so no \
     serialization exists — du-opacity is not limit-closed without the \
     completeness restriction (Theorem 5 adds it back).@."
