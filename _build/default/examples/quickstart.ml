(* Quickstart: build histories three ways, check them against every
   criterion, and read the verdicts.

     dune exec examples/quickstart.exe *)

open Tm_safety

let check_all name h =
  Fmt.pr "@.== %s ==@.%s" name (Pretty.timeline h);
  let report crit verdict =
    match verdict with
    | Verdict.Sat s -> Fmt.pr "  %-22s yes   (serialization: %a)@." crit Serialization.pp s
    | Verdict.Unsat why -> Fmt.pr "  %-22s no    (%s)@." crit why
    | Verdict.Unknown why -> Fmt.pr "  %-22s ?     (%s)@." crit why
  in
  report "du-opaque" (Du_opacity.check h);
  report "opaque" (Opacity.check h);
  report "final-state opaque" (Final_state.check h);
  report "strictly serializable" (Serializable.check_strict h);
  report "serializable" (Serializable.check h)

let () =
  (* 1. The textual format (also accepted by bin/tmcheck). *)
  let from_text =
    Parse.of_string_exn "W1(X,1)->ok C1 R2(X)->1 C2->C ret1:C"
  in
  check_all "from text: read from a committing transaction" from_text;

  (* 2. The combinator DSL, splitting operations for fine interleavings:
     here T2 returns T1's value before T1 invokes tryC — the deferred-update
     violation the paper's Definition 3 outlaws. *)
  let dirty =
    Dsl.(history [ w_inv 1 x 1; w_ok 1; r 2 x 1; c 2; c 1 ])
  in
  check_all "from DSL: dirty read (du violation)" dirty;

  (* 3. Recorded from a real STM implementation running under the
     deterministic simulator. *)
  let recorded =
    (Sim.Runner.run ~stm:"tl2"
       ~params:
         {
           Stm.Workload.default with
           n_threads = 2;
           txns_per_thread = 2;
           ops_per_txn = 2;
           n_vars = 2;
         }
       ~seed:42 ())
      .Sim.Runner.history
  in
  check_all "recorded from TL2 under the simulator" recorded;

  Fmt.pr
    "@.Note how the dirty read is serializable yet not du-opaque: the gap \
     is exactly what the paper's deferred-update condition captures.@."
