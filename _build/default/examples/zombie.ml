(* The paper's Section 1 motivation, live: a "zombie" transaction observes
   an inconsistent intermediate state and the application logic blows up —
   unless the TM is (du-)opaque.

   Two accounts hold 100 in total; transfer transactions preserve the
   invariant.  An auditor transaction reads both accounts and computes
   1000 / (total - 99): under an opaque TM total is always 100 and the
   division is safe; under the simplified pessimistic STM (writers update
   in place, readers unvalidated — the paper's Section 5 example) the
   auditor can read total = 99 mid-transfer and divide by zero.

     dune exec examples/zombie.exe *)

open Tm_safety

let n_vars = 2
let acc_a = 0
let acc_b = 1

let run_with stm_name =
  let (module A : Stm.Intf.ALGORITHM) = Stm.Registry.find_exn stm_name in
  let module T = A (Sim.Mem) in
  let instance = Stm.Intf.instantiate (module T) ~n_vars in
  let (module I : Stm.Intf.INSTANCE) = instance in
  let log = ref [] in
  let emit ev = log := ev :: !log in
  let ids = ref 1 in
  let next_id () =
    let id = !ids in
    incr ids;
    id
  in
  let crashes = ref 0 in
  let audits = ref 0 in
  (* Run [body] as one transaction, with recording; retries on abort. *)
  let rec transaction body =
    let id = next_id () in
    let txn = I.begin_txn () in
    let read x =
      emit (Event.Inv (id, Event.Read x));
      match I.read txn x with
      | v ->
          emit (Event.Res (id, Event.Read_ok v));
          v
      | exception Stm.Intf.Abort ->
          emit (Event.Res (id, Event.Aborted));
          raise Stm.Intf.Abort
    in
    let write x v =
      emit (Event.Inv (id, Event.Write (x, v)));
      match I.write txn x v with
      | () -> emit (Event.Res (id, Event.Write_ok))
      | exception Stm.Intf.Abort ->
          emit (Event.Res (id, Event.Aborted));
          raise Stm.Intf.Abort
    in
    match body ~read ~write with
    | result ->
        emit (Event.Inv (id, Event.Try_commit));
        if I.commit txn then begin
          emit (Event.Res (id, Event.Committed));
          result
        end
        else begin
          emit (Event.Res (id, Event.Aborted));
          transaction body
        end
    | exception Stm.Intf.Abort -> transaction body
  in
  (* Initialise: 100 = 60 + 40. *)
  let init () =
    transaction (fun ~read:_ ~write ->
        write acc_a 60;
        write acc_b 40)
  in
  let transfer amount () =
    transaction (fun ~read ~write ->
        let a = read acc_a in
        let b = read acc_b in
        write acc_a (a - amount);
        write acc_b (b + amount))
  in
  let audit () =
    transaction (fun ~read ~write:_ ->
        incr audits;
        let total = read acc_a + read acc_b in
        (* The fatal application step: safe iff the snapshot is consistent
           (total = 100 after init).  1000 / (total - 99) divides by zero
           exactly on the torn snapshot total = 99. *)
        match 1000 / (total - 99) with
        | _ -> ()
        | exception Division_by_zero -> incr crashes)
  in
  let fibers =
    [
      (fun () ->
        init ();
        for _ = 1 to 30 do
          transfer 1 ()
        done);
      (fun () ->
        for _ = 1 to 30 do
          audit ()
        done);
    ]
  in
  Sim.Sched.run_seeded ~seed:2024 fibers;
  let history = History.of_events_exn (List.rev !log) in
  (stm_name, !audits, !crashes, history)

let report (name, audits, crashes, history) =
  let du = Du_opacity.check_fast ~max_nodes:2_000_000 history in
  Fmt.pr "%-12s audits: %3d   zombie crashes: %2d   du-opaque: %s@." name
    audits crashes
    (match du with
    | Verdict.Sat _ -> "yes"
    | Verdict.Unsat why -> "NO — " ^ why
    | Verdict.Unknown why -> "? " ^ why)

let () =
  Fmt.pr
    "Auditor computes 1000/(A+B-99); transfers keep A+B = 100 invariant.@.@.";
  report (run_with "tl2");
  report (run_with "norec");
  report (run_with "2pl");
  report (run_with "pessimistic");
  Fmt.pr
    "@.The pessimistic STM (writers in place, readers unvalidated) lets \
     the auditor observe A already debited but B not yet credited: the \
     division faults, and the recorded history fails du-opacity — the \
     checker and the crash point at the same anomaly.@."
