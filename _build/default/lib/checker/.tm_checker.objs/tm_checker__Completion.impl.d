lib/checker/completion.ml: Event History Int List Txn
