lib/checker/completion.mli: Event History
