lib/checker/conflict_opacity.ml: Event Hashtbl History Int List Option Serialization Txn
