lib/checker/conflict_opacity.mli: Event History Serialization
