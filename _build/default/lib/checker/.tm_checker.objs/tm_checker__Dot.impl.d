lib/checker/dot.ml: Buffer Conflict_opacity Fmt History List Serialization Txn
