lib/checker/dot.mli: History Serialization
