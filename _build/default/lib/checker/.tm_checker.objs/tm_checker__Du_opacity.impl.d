lib/checker/du_opacity.ml: Conflict_opacity Search Verdict
