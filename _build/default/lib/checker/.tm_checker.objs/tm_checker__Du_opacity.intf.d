lib/checker/du_opacity.mli: Event History Search Verdict
