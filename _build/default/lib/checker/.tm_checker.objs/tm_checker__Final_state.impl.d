lib/checker/final_state.ml: Search
