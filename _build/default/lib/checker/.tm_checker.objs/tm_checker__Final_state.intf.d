lib/checker/final_state.mli: History Search Verdict
