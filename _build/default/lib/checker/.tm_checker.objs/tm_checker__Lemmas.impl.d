lib/checker/lemmas.ml: Hashtbl History List Serialization Txn
