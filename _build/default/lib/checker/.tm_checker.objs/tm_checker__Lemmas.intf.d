lib/checker/lemmas.mli: History Serialization
