lib/checker/limit.ml: Du_opacity Event Fmt History Int List Serialization Txn Verdict
