lib/checker/limit.mli: Event History
