lib/checker/monitor.ml: Du_opacity Event Fmt History List Search Serialization Verdict
