lib/checker/monitor.mli: Event History Serialization
