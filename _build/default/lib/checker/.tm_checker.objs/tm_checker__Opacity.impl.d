lib/checker/opacity.ml: Final_state Fmt History List Serialization Verdict
