lib/checker/opacity.mli: History Verdict
