lib/checker/polygraph.ml: Array Du_opacity Event Fmt Hashtbl History List Option Serialization Txn Verdict
