lib/checker/polygraph.mli: History Serialization Verdict
