lib/checker/rco.ml: History List Search Txn
