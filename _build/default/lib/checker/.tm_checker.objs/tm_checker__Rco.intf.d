lib/checker/rco.mli: Event History Verdict
