lib/checker/search.ml: Array Buffer Event Fmt Hashtbl History Int List Serialization Txn Verdict
