lib/checker/search.mli: Event History Verdict
