lib/checker/semantics.ml: Array Event Fmt Hashtbl History List Op Txn
