lib/checker/semantics.mli: Event History
