lib/checker/serializable.ml: History List Search
