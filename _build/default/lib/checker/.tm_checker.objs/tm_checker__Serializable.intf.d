lib/checker/serializable.mli: History Verdict
