lib/checker/serialization.ml: Array Event Fmt Hashtbl History Int List Op Option Semantics Set Txn
