lib/checker/serialization.mli: Event Format History Set
