lib/checker/shrink.ml: Array Du_opacity History Int List Op Txn Verdict
