lib/checker/shrink.mli: History Verdict
