lib/checker/snapshot_isolation.ml: Array Event Fmt Fun History Int List Map Option Serialization Txn Verdict
