lib/checker/snapshot_isolation.mli: History Verdict
