lib/checker/tms2.ml: Array Event History List Op Search Txn
