lib/checker/tms2.mli: Event History Verdict
