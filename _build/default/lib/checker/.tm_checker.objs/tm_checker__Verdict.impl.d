lib/checker/verdict.ml: Fmt Serialization
