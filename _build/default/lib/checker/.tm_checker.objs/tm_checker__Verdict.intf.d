lib/checker/verdict.mli: Format Serialization
