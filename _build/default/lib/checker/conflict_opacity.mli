(** Polynomial fast path: serialization by conflict order.

    Orders transactions by the conflict relation of the history (writes
    take effect at the [tryC] invocation of a committed writer, reads at
    their response), with the canonical completion that aborts every
    transaction not committed in [H].  If the conflict graph is acyclic and
    the resulting order passes the definitional validator
    ({!Serialization.validate} with claim [Du_opaque]), the history is
    du-opaque and the certificate is returned.

    This is a {e sufficient} condition only — think conflict
    serializability vs view serializability.  It is exact enough in
    practice to dispatch nearly all histories recorded from well-behaved
    STM runs, where every read is from a committed-before-the-read writer
    and the conflict order is the serialization order; {!Du_opacity.check_fast}
    falls back to the exponential search when this returns [None]. *)

val attempt : History.t -> Serialization.t option

val conflict_graph : History.t -> (Event.tx * Event.tx) list
(** The conflict edges used by {!attempt} (exposed for tests and for the
    ablation benchmark). *)
