let status_colour = function
  | Txn.Committed -> "palegreen"
  | Txn.Aborted -> "lightcoral"
  | Txn.Commit_pending -> "khaki"
  | Txn.Abort_pending -> "lightsalmon"
  | Txn.Live -> "lightgrey"

let rt_edges h =
  let txns = History.txns h in
  let direct a b =
    History.rt_precedes h a b
    && not
         (List.exists
            (fun c ->
              c <> a && c <> b
              && History.rt_precedes h a c
              && History.rt_precedes h c b)
            txns)
  in
  List.concat_map
    (fun a -> List.filter_map (fun b -> if direct a b then Some (a, b) else None) txns)
    txns

let of_history ?serialization h =
  let buf = Buffer.create 1024 in
  let pr fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  pr "digraph history {\n  rankdir=LR;\n  node [style=filled, shape=box];\n";
  let position k =
    match serialization with
    | None -> None
    | Some s ->
        let rec go i = function
          | [] -> None
          | k' :: _ when k' = k -> Some i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 s.Serialization.order
  in
  List.iter
    (fun (txn : Txn.t) ->
      let label =
        match position txn.Txn.id with
        | Some p -> Fmt.str "T%d\\n%a\\nS[%d]" txn.Txn.id Txn.pp_status txn.Txn.status p
        | None -> Fmt.str "T%d\\n%a" txn.Txn.id Txn.pp_status txn.Txn.status
      in
      pr "  t%d [label=\"%s\", fillcolor=%s];\n" txn.Txn.id label
        (status_colour txn.Txn.status))
    (History.infos h);
  List.iter (fun (a, b) -> pr "  t%d -> t%d;\n" a b) (rt_edges h);
  List.iter
    (fun (a, b) -> pr "  t%d -> t%d [style=dashed, color=grey40];\n" a b)
    (Conflict_opacity.conflict_graph h
    |> List.filter (fun (a, b) -> not (History.rt_precedes h a b)));
  pr "}\n";
  Buffer.contents buf
