(** Graphviz export of a history's precedence structure, for debugging
    violations visually: one node per transaction (coloured by status),
    solid edges for real-time order (transitively reduced), dashed edges
    for conflict order, and — when a serialization is supplied — node
    labels carrying its positions. *)

val of_history : ?serialization:Serialization.t -> History.t -> string
(** DOT source ([digraph]). *)
