let check_stats ?max_nodes h =
  Search.search { Search.default with max_nodes } h

let check ?max_nodes h = fst (check_stats ?max_nodes h)
