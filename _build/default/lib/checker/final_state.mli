(** Final-state opacity (Definition 4, Guerraoui & Kapalka).

    A history is final-state opaque if some legal t-complete t-sequential
    history is equivalent to one of its completions and respects its
    real-time order.  Final-state opacity is {e not} prefix-closed (the
    paper's Figure 3) — {!Opacity} quantifies over prefixes to repair
    that. *)

val check : ?max_nodes:int -> History.t -> Verdict.t

val check_stats : ?max_nodes:int -> History.t -> Verdict.t * Search.stats
