type report = {
  depths : int list;
  never_complete : Event.tx list;
  chain : (int * Event.tx list) list;
  stabilised : bool;
  all_du_opaque : bool;
}

let is_prefix_of shorter longer =
  let a = History.to_list shorter and b = History.to_list longer in
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> Event.equal x y && go (xs, ys)
  in
  go (a, b)

let rec list_is_prefix eq a b =
  match a, b with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys -> eq x y && list_is_prefix eq xs ys

let analyze ?max_nodes ~family ~depths () =
  let depths = List.sort_uniq Int.compare depths in
  let members = List.map (fun d -> (d, family d)) depths in
  (* Monotonicity: each member a prefix of the next. *)
  let rec check_monotone = function
    | (d1, h1) :: ((d2, h2) :: _ as rest) ->
        if not (is_prefix_of h1 h2) then
          Fmt.invalid_arg
            "Limit.analyze: member at depth %d is not a prefix of depth %d" d1
            d2;
        check_monotone rest
    | [ _ ] | [] -> ()
  in
  check_monotone members;
  let deepest = match List.rev members with (_, h) :: _ -> h | [] -> History.empty in
  (* Transactions that are complete in some member. *)
  let completes_somewhere k =
    List.exists
      (fun (_, h) ->
        List.mem k (History.txns h) && Txn.is_complete (History.info h k))
      members
  in
  let never_complete =
    List.filter (fun k -> not (completes_somewhere k)) (History.txns deepest)
  in
  (* Serialization chain, each search hinted by the previous certificate. *)
  let all_du = ref true in
  let chain =
    let hint = ref None in
    List.map
      (fun (d, h) ->
        match Du_opacity.check ?max_nodes ?hint:!hint h with
        | Verdict.Sat s ->
            hint := Some s.Serialization.order;
            let cseq =
              List.filter
                (fun k -> Txn.is_complete (History.info h k))
                s.Serialization.order
            in
            (d, cseq)
        | Verdict.Unsat _ | Verdict.Unknown _ ->
            all_du := false;
            (d, []))
      members
  in
  let rec stable = function
    | (_, a) :: ((_, b) :: _ as rest) ->
        list_is_prefix Int.equal a b && stable rest
    | [ _ ] | [] -> true
  in
  {
    depths;
    never_complete;
    chain;
    stabilised = !all_du && stable chain;
    all_du_opaque = !all_du;
  }
