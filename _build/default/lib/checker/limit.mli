(** Executable Theorem 5 / Proposition 1 machinery: limit behaviour of
    ever-extending prefix families.

    An ω-history is determined by its finite prefixes, so this module
    analyses a {e family} [family d] (monotone: each history must be a
    prefix of the next) the way the paper's limit-closure proof does:

    - it checks the {e completeness restriction} of Theorem 5 — every
      transaction appearing in the family must eventually be complete
      (all invoked operations answered) in some member;
    - it builds a chain of du-opaque serializations along the family,
      seeding each search with the previous member's certificate (the
      König-path construction made greedy), and extracts each member's
      [cseq] — its serialization order restricted to transactions already
      complete at that depth;
    - it reports whether the chain {e stabilised}: every [cseq] a prefix of
      the next, which is exactly the property the paper's Claim 6
      establishes along the König path.

    On the paper's Figure 2 family the restriction fails ([T1], [T2] never
    complete) and the certificates drift forever — Proposition 1; complete
    the family and the chain freezes — Theorem 5. *)

type report = {
  depths : int list;  (** the prefix lengths analysed, ascending *)
  never_complete : Event.tx list;
      (** transactions of the deepest member that are complete in no
          analysed member — non-empty means Theorem 5's restriction fails *)
  chain : (int * Event.tx list) list;
      (** per depth, the [cseq]: serialization order restricted to
          transactions complete at that depth (empty when some member is
          not du-opaque) *)
  stabilised : bool;
      (** every [cseq] in the chain is a prefix of the next *)
  all_du_opaque : bool;
}

val analyze :
  ?max_nodes:int ->
  family:(int -> History.t) ->
  depths:int list ->
  unit ->
  report
(** @raise Invalid_argument if the family is not monotone (some member is
    not a prefix of the next). *)
