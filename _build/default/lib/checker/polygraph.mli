(** Exact du-opacity decision under the paper's unique-writes assumption
    (Theorem 11: with unique writes, du-opacity and opacity coincide, so
    this also decides opacity there).

    When no two transactions write the same value to the same variable, the
    reads-from relation is {e determined}: a read of value [v ≠ 0] on [X]
    names its writer uniquely, and a read of the initial value forbids any
    committed writer of [X] before the reader.  Serialization existence then
    reduces to satisfying, over the fixed real-time and reads-from edges,
    one disjunctive constraint per (read, other committed writer) pair — a
    polygraph in the sense of Papadimitriou.  This module solves the
    polygraph by transitive-closure propagation (forcing the second disjunct
    whenever the first closes a cycle), branching only on constraints that
    propagation leaves undecided — which on unique-writes workloads
    essentially never happens, making the checker effectively polynomial
    where the general search is exponential.

    Commit decisions are forced: committed transactions commit, transactions
    read from must commit, and aborting every other pending transaction is
    sound (removing an unread committed writer from a serialization never
    invalidates it). *)

type result =
  | Sat of Serialization.t
  | Unsat of string
  | Not_unique of string
      (** the history violates the unique-writes premise; the general
          checker must be used *)

val check : History.t -> result

val unique_writes : History.t -> bool
(** Does the history satisfy the premise? (No two transactions perform
    successful writes of the same value to the same variable.) *)

val check_or_fallback : History.t -> Verdict.t
(** [check], falling back to the general {!Du_opacity.check} when the
    premise fails. *)
