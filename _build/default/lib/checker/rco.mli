(** The read-commit-order opacity variant of Guerraoui, Henzinger & Singh
    (DISC 2008), discussed in the paper's Section 4.2.

    This definition asks for a final-state serialization that respects the
    read-commit order: if a t-read of [X] by [T_k] returns before
    transaction [T_m] — which commits and writes [X] — invokes [tryC] in
    [H], then [T_k] must precede [T_m] in the serialization.

    The paper shows this is {e strictly stronger} than du-opacity even on
    sequential histories: its Figure 5 is du-opaque but violates this
    condition because the order constraint is syntactic (by position of the
    read) where du-opacity's local-serialization legality is value-based. *)

val edges : History.t -> (Event.tx * Event.tx) list

val check : ?max_nodes:int -> History.t -> Verdict.t
