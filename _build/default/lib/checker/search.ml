type mode = Plain | Du

type options = {
  mode : mode;
  extra_edges : (Event.tx * Event.tx) list;
  commit_edges : (Event.tx * Event.tx) list;
  respect_rt : bool;
  max_nodes : int option;
  hint : Event.tx list option;
}

let default =
  { mode = Plain; extra_edges = []; commit_edges = []; respect_rt = true;
    max_nodes = None; hint = None }

let du = { default with mode = Du }

type stats = { nodes : int; memo_hits : int; prefiltered : bool }

exception Exhausted

(* Precomputed per-transaction data, indexed densely by 0..n-1. *)
type ctx = {
  ids : Event.tx array;  (* dense index -> transaction id *)
  reads : Txn.read list array;  (* external reads only *)
  final_writes : (int * Event.value) list array;  (* dense var ids *)
  choices : bool list array;
  tryc_inv : int option array;
  preds : int list array;  (* must-precede, dense *)
  commit_preds : int list array;  (* must-precede when the target commits *)
  n_vars : int;
}

let build_ctx opts h =
  let infos = Array.of_list (History.infos h) in
  let n = Array.length infos in
  let ids = Array.map (fun t -> t.Txn.id) infos in
  let index = Hashtbl.create (2 * n + 1) in
  Array.iteri (fun i k -> Hashtbl.replace index k i) ids;
  let var_index = Hashtbl.create 16 in
  let n_vars = ref 0 in
  let dense_var x =
    match Hashtbl.find_opt var_index x with
    | Some d -> d
    | None ->
        let d = !n_vars in
        incr n_vars;
        Hashtbl.replace var_index x d;
        d
  in
  let reads =
    Array.map
      (fun t ->
        Txn.reads t
        |> List.filter_map (fun (r : Txn.read) ->
               match r.Txn.kind with
               | `Internal _ -> None (* checked by the prefilter *)
               | `External -> Some { r with Txn.var = dense_var r.Txn.var }))
      infos
  in
  let final_writes =
    Array.map
      (fun t ->
        List.map (fun (x, v) -> (dense_var x, v)) (Txn.final_writes t))
      infos
  in
  let choices = Array.map Txn.commit_choices infos in
  let tryc_inv = Array.map Txn.tryc_inv_index infos in
  let preds = Array.make n [] in
  let add_edge a b = if a <> b then preds.(b) <- a :: preds.(b) in
  if opts.respect_rt then
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if
          a <> b
          && Txn.is_t_complete infos.(a)
          && infos.(a).Txn.last_index < infos.(b).Txn.first_index
        then add_edge a b
      done
    done;
  List.iter
    (fun (ka, kb) ->
      match Hashtbl.find_opt index ka, Hashtbl.find_opt index kb with
      | Some a, Some b -> add_edge a b
      | _, _ -> invalid_arg "Search: extra edge names unknown transaction")
    opts.extra_edges;
  let commit_preds = Array.make n [] in
  List.iter
    (fun (ka, kb) ->
      match Hashtbl.find_opt index ka, Hashtbl.find_opt index kb with
      | Some a, Some b ->
          if a <> b then commit_preds.(b) <- a :: commit_preds.(b)
      | _, _ -> invalid_arg "Search: commit edge names unknown transaction")
    opts.commit_edges;
  (* Writer-availability bookkeeping for the look-ahead prune: number the
     distinct (variable, value) pairs that some external read needs, and
     list per transaction which of those keys it can still supply (final
     write, commit-capable) and which it demands.  Keys for the initial
     value additionally have a pseudo-supply — the initial state — that
     dies while a committed non-initial write to the variable is visible. *)
  let keys = Hashtbl.create 32 in
  let n_keys = ref 0 in
  let key_of (x, v) =
    match Hashtbl.find_opt keys (x, v) with
    | Some k -> k
    | None ->
        let k = !n_keys in
        incr n_keys;
        Hashtbl.replace keys (x, v) k;
        k
  in
  let demands =
    Array.map
      (fun rs ->
        List.map (fun (r : Txn.read) -> key_of (r.Txn.var, r.Txn.value)) rs)
      reads
  in
  let supplies =
    Array.mapi
      (fun i writes ->
        if List.mem true choices.(i) then
          List.filter_map (fun (x, v) -> Hashtbl.find_opt keys (x, v)) writes
        else [])
      final_writes
  in
  let zero_key =
    Array.init !n_vars (fun x -> Hashtbl.find_opt keys (x, Event.init_value))
  in
  ( { ids; reads; final_writes; choices; tryc_inv; preds; commit_preds;
      n_vars = !n_vars },
    demands, supplies, zero_key, !n_keys )

(* Necessary conditions, checked in linear time.  A violation here refutes
   every serialization, so most negative instances never reach the search. *)
let prefilter opts h ctx =
  let n = Array.length ctx.ids in
  let internal_ok =
    let rec check_infos = function
      | [] -> Ok ()
      | (t : Txn.t) :: rest ->
          let bad =
            List.find_opt
              (fun (r : Txn.read) ->
                match r.Txn.kind with
                | `Internal own -> r.Txn.value <> own
                | `External -> false)
              (Txn.reads t)
          in
          (match bad with
          | Some r ->
              Error
                (Fmt.str
                   "T%d: internal read of %a returned %d instead of its own \
                    latest write"
                   t.Txn.id Event.pp_tvar r.Txn.var r.Txn.value)
          | None -> check_infos rest)
    in
    check_infos (History.infos h)
  in
  match internal_ok with
  | Error _ as e -> e
  | Ok () ->
      (* Every external read of a non-initial value needs a possible writer:
         some other transaction whose final write to the variable has that
         value and that is allowed to commit — in Du mode, one that moreover
         invoked tryC before the read's response. *)
      let writer_possible i (r : Txn.read) =
        let ok w =
          w <> i
          && List.mem true ctx.choices.(w)
          && List.exists
               (fun (x, v) -> x = r.Txn.var && v = r.Txn.value)
               ctx.final_writes.(w)
          &&
          match opts.mode with
          | Plain -> true
          | Du -> (
              match ctx.tryc_inv.(w) with
              | Some j -> j < r.Txn.res_index
              | None -> false)
        in
        let rec exists w = w < n && (ok w || exists (w + 1)) in
        exists 0
      in
      let rec check i =
        if i >= Array.length ctx.ids then Ok ()
        else
          match
            List.find_opt
              (fun (r : Txn.read) ->
                r.Txn.value <> Event.init_value && not (writer_possible i r))
              ctx.reads.(i)
          with
          | Some r ->
              Error
                (Fmt.str
                   "T%d reads value %d but no transaction can commit that \
                    value%s"
                   ctx.ids.(i) r.Txn.value
                   (match opts.mode with
                   | Du -> " having begun committing before the read returned"
                   | Plain -> ""))
          | None -> check (i + 1)
      in
      check 0

(* The key must determine everything the remaining subtree's feasibility
   depends on: which transactions are placed AND with which decision (the
   availability prune reads decisions), plus the visible write state. *)
let memo_key mode placed decision stacks =
  let buf = Buffer.create 64 in
  Array.iteri
    (fun i p ->
      Buffer.add_char buf
        (if not p then '0' else if decision.(i) then 'c' else 'a'))
    placed;
  Array.iter
    (fun stack ->
      Buffer.add_char buf '|';
      match mode with
      | Plain -> (
          match stack with
          | [] -> ()
          | (_, v) :: _ -> Buffer.add_string buf (string_of_int v))
      | Du ->
          List.iter
            (fun (w, _) ->
              Buffer.add_string buf (string_of_int w);
              Buffer.add_char buf ',')
            stack)
    stacks;
  Buffer.contents buf

(* Symmetry reduction.  Transactions [i] and [j] are interchangeable when
   transposing them is an automorphism of the whole constraint system:
   same commit choices and final writes, same precedence environment, the
   same sidedness w.r.t. every read's deferred-update filter, and pairwise
   matching reads.  At any search node where both are unplaced, expanding
   only the smaller index is then complete — any serialization starting
   with the other maps to one starting with it by the transposition.
   This collapses e.g. the paper's Figure 2 family, whose zero-readers are
   all interchangeable, from exponential to linear. *)
let equivalence_matrix ctx preds succs =
  let n = Array.length ctx.ids in
  let all_reads =
    List.concat (Array.to_list (Array.map (fun rs -> rs) ctx.reads))
  in
  let sided tc (r : Txn.read) =
    match tc with Some t -> t < r.Txn.res_index | None -> false
  in
  let equivalent i j =
    ctx.choices.(i) = ctx.choices.(j)
    && ctx.final_writes.(i) = ctx.final_writes.(j)
    && List.length ctx.reads.(i) = List.length ctx.reads.(j)
    && (let swap x = if x = i then j else if x = j then i else x in
        let set_eq a b =
          List.sort_uniq Int.compare (List.map swap a)
          = List.sort_uniq Int.compare b
        in
        set_eq preds.(i) preds.(j)
        && set_eq succs.(i) succs.(j)
        && set_eq ctx.commit_preds.(i) ctx.commit_preds.(j)
        (* identical sidedness as writers, for every read in the history *)
        && List.for_all
             (fun r ->
               sided ctx.tryc_inv.(i) r = sided ctx.tryc_inv.(j) r)
             all_reads
        (* pairwise matching reads, modulo the transposition *)
        && List.for_all2
             (fun (ri : Txn.read) (rj : Txn.read) ->
               ri.Txn.var = rj.Txn.var
               && ri.Txn.value = rj.Txn.value
               && (let rec upto k =
                     k >= n
                     || (sided ctx.tryc_inv.(k) ri
                         = sided ctx.tryc_inv.(swap k) rj
                        && upto (k + 1))
                   in
                   upto 0))
             ctx.reads.(i) ctx.reads.(j))
  in
  let matrix = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if equivalent i j then begin
        matrix.(i).(j) <- true;
        matrix.(j).(i) <- true
      end
    done
  done;
  matrix

let search opts h =
  let ctx, demands, supplies, zero_key, n_keys = build_ctx opts h in
  let n = Array.length ctx.ids in
  if n = 0 then
    ( Verdict.Sat (Serialization.make ~order:[] ~committed:[]),
      { nodes = 0; memo_hits = 0; prefiltered = true } )
  else
    match prefilter opts h ctx with
    | Error why ->
        (Verdict.Unsat why, { nodes = 0; memo_hits = 0; prefiltered = true })
    | Ok () ->
        let placed = Array.make n false in
        let pending = Array.make n 0 in
        Array.iteri
          (fun b preds ->
            pending.(b) <- List.length (List.sort_uniq Int.compare preds))
          ctx.preds;
        let preds_uniq = Array.map (List.sort_uniq Int.compare) ctx.preds in
        let succs = Array.make n [] in
        Array.iteri
          (fun b preds ->
            List.iter (fun a -> succs.(a) <- b :: succs.(a)) preds)
          preds_uniq;
        let stacks : (int * Event.value) list array =
          Array.make ctx.n_vars []
        in
        (* Look-ahead prune bookkeeping: [avail.(k)] counts transactions
           that could still commit the (var, value) behind key [k];
           [waiting.(k)] counts unplaced transactions demanding it.
           Aborting the last potential supplier of a still-demanded value
           dooms the whole subtree. *)
        let avail = Array.make (max 1 n_keys) 0 in
        let waiting = Array.make (max 1 n_keys) 0 in
        Array.iter (List.iter (fun k -> avail.(k) <- avail.(k) + 1)) supplies;
        Array.iter (List.iter (fun k -> waiting.(k) <- waiting.(k) + 1)) demands;
        (* The initial state supplies every initial-value key until a
           committed non-initial write to the variable is visible. *)
        Array.iter
          (function Some k -> avail.(k) <- avail.(k) + 1 | None -> ())
          zero_key;
        let nonzero_commits = Array.make (max 1 ctx.n_vars) 0 in
        (* Placement priority: hint order first, then order of first event
           in the history (dense indices already follow first appearance). *)
        let priority =
          match opts.hint with
          | None -> Array.init n (fun i -> i)
          | Some hint ->
              let pos = Hashtbl.create 16 in
              List.iteri (fun p k -> Hashtbl.replace pos k p) hint;
              let rank i =
                match Hashtbl.find_opt pos ctx.ids.(i) with
                | Some p -> p
                | None -> max_int
              in
              let arr = Array.init n (fun i -> i) in
              Array.sort
                (fun a b ->
                  match Int.compare (rank a) (rank b) with
                  | 0 -> Int.compare a b
                  | c -> c)
                arr;
              arr
        in
        let order = Array.make n (-1) in
        let decision = Array.make n false in
        let nodes = ref 0 in
        let memo_hits = ref 0 in
        let memo : (string, unit) Hashtbl.t = Hashtbl.create 256 in
        let budget =
          match opts.max_nodes with Some b -> b | None -> max_int
        in
        let equiv = equivalence_matrix ctx preds_uniq succs in
        (* Candidate [i] is redundant while an unplaced interchangeable
           transaction with a smaller index exists. *)
        let canonical i =
          let rec go j =
            j >= i || ((placed.(j) || not equiv.(j).(i)) && go (j + 1))
          in
          go 0
        in
        let retained w res_index =
          match ctx.tryc_inv.(w) with
          | Some j -> j < res_index
          | None -> false
        in
        let reads_ok i =
          List.for_all
            (fun (r : Txn.read) ->
              let stack = stacks.(r.Txn.var) in
              let global_ok =
                match stack with
                | [] -> r.Txn.value = Event.init_value
                | (_, v) :: _ -> r.Txn.value = v
              in
              global_ok
              &&
              match opts.mode with
              | Plain -> true
              | Du -> (
                  (* Legality in the local serialization: the first retained
                     committed writer (scanning from the latest) must have
                     written the value; none retained means initial value. *)
                  let rec scan = function
                    | [] -> r.Txn.value = Event.init_value
                    | (w, v) :: rest ->
                        if retained w r.Txn.res_index then r.Txn.value = v
                        else scan rest
                  in
                  scan stack))
            ctx.reads.(i)
        in
        let exception Found in
        let rec dfs depth =
          incr nodes;
          if !nodes > budget then raise Exhausted;
          if depth = n then raise Found;
          let key = memo_key opts.mode placed decision stacks in
          if Hashtbl.mem memo key then incr memo_hits
          else begin
            let commit_allowed i =
              List.for_all (fun a -> placed.(a)) ctx.commit_preds.(i)
            in
            Array.iter
              (fun i ->
                if
                  (not placed.(i))
                  && pending.(i) = 0
                  && canonical i
                  && reads_ok i
                then
                  List.iter
                    (fun commit ->
                      if (not commit) || commit_allowed i then begin
                        placed.(i) <- true;
                        order.(depth) <- i;
                        decision.(i) <- commit;
                        List.iter (fun b -> pending.(b) <- pending.(b) - 1)
                          succs.(i);
                        List.iter
                          (fun k -> waiting.(k) <- waiting.(k) - 1)
                          demands.(i);
                        if not commit then
                          List.iter
                            (fun k -> avail.(k) <- avail.(k) - 1)
                            supplies.(i);
                        let pushed =
                          if commit then begin
                            List.iter
                              (fun (x, v) ->
                                stacks.(x) <- (i, v) :: stacks.(x);
                                if v <> Event.init_value then begin
                                  nonzero_commits.(x) <- nonzero_commits.(x) + 1;
                                  if nonzero_commits.(x) = 1 then
                                    match zero_key.(x) with
                                    | Some k -> avail.(k) <- avail.(k) - 1
                                    | None -> ()
                                end)
                              ctx.final_writes.(i);
                            ctx.final_writes.(i)
                          end
                          else []
                        in
                        (* Look-ahead prune: did this placement exhaust the
                           last supply of a value some unplaced transaction
                           still needs to read? *)
                        let key_ok k = avail.(k) > 0 || waiting.(k) = 0 in
                        let feasible =
                          if commit then
                            List.for_all
                              (fun (x, v) ->
                                v = Event.init_value
                                ||
                                match zero_key.(x) with
                                | Some k -> key_ok k
                                | None -> true)
                              pushed
                          else List.for_all key_ok supplies.(i)
                        in
                        if feasible then dfs (depth + 1);
                        List.iter
                          (fun (x, v) ->
                            (match stacks.(x) with
                            | _ :: rest -> stacks.(x) <- rest
                            | [] -> assert false);
                            if v <> Event.init_value then begin
                              nonzero_commits.(x) <- nonzero_commits.(x) - 1;
                              if nonzero_commits.(x) = 0 then
                                match zero_key.(x) with
                                | Some k -> avail.(k) <- avail.(k) + 1
                                | None -> ()
                            end)
                          pushed;
                        if not commit then
                          List.iter
                            (fun k -> avail.(k) <- avail.(k) + 1)
                            supplies.(i);
                        List.iter
                          (fun k -> waiting.(k) <- waiting.(k) + 1)
                          demands.(i);
                        List.iter (fun b -> pending.(b) <- pending.(b) + 1)
                          succs.(i);
                        placed.(i) <- false
                      end)
                    ctx.choices.(i))
              priority;
            Hashtbl.replace memo key ()
          end
        in
        let outcome =
          match dfs 0 with
          | () ->
              Verdict.Unsat
                (Fmt.str "no serialization exists (%d nodes explored)" !nodes)
          | exception Found ->
              let order_ids =
                Array.to_list (Array.map (fun i -> ctx.ids.(i)) order)
              in
              let committed =
                Array.to_list order
                |> List.filter (fun i -> decision.(i))
                |> List.map (fun i -> ctx.ids.(i))
              in
              Verdict.Sat
                (Serialization.make ~order:order_ids ~committed)
          | exception Exhausted ->
              Verdict.Unknown
                (Fmt.str "node budget exhausted after %d nodes" !nodes)
        in
        (outcome, { nodes = !nodes; memo_hits = !memo_hits; prefiltered = false })

let serialize opts h = fst (search opts h)
