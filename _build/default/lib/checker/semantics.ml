let value_of state var =
  match Hashtbl.find_opt state var with
  | Some v -> v
  | None -> Event.init_value

(* [History.infos] orders by first event, which for a t-sequential history
   is the serialization order. *)
let infos_in_order h = History.infos h

let legal h =
  if not (History.is_t_sequential h) then
    Error "history is not t-sequential"
  else
    let state : (Event.tvar, Event.value) Hashtbl.t = Hashtbl.create 16 in
    let check_txn (txn : Txn.t) =
      let buffer : (Event.tvar, Event.value) Hashtbl.t = Hashtbl.create 4 in
      let check_op (op : Op.t) =
        match Op.read_value op, Op.write op with
        | Some (var, got), _ ->
            let expected =
              match Hashtbl.find_opt buffer var with
              | Some v -> v
              | None -> value_of state var
            in
            if got = expected then Ok ()
            else
              Error
                (Fmt.str "T%d reads %d from %a but the latest written value is %d"
                   txn.Txn.id got Event.pp_tvar var expected)
        | None, Some (var, v) ->
            Hashtbl.replace buffer var v;
            Ok ()
        | None, None -> Ok ()
      in
      let result =
        Array.fold_left
          (fun acc op -> match acc with Error _ -> acc | Ok () -> check_op op)
          (Ok ()) txn.Txn.ops
      in
      (match result, txn.Txn.status with
      | Ok (), Txn.Committed ->
          Hashtbl.iter (Hashtbl.replace state) buffer
      | _, _ -> ());
      result
    in
    List.fold_left
      (fun acc txn -> match acc with Error _ -> acc | Ok () -> check_txn txn)
      (Ok ()) (infos_in_order h)

let final_state h state =
  List.iter
    (fun (txn : Txn.t) ->
      if txn.Txn.status = Txn.Committed then
        List.iter
          (fun (var, v) -> if var < Array.length state then state.(var) <- v)
          (Txn.final_writes txn))
    (History.infos h)
