(** Sequential semantics of t-complete t-sequential histories.

    Implements the paper's notion of {e latest written value} and legality:
    a [read_k(X)] returning a value must return the latest preceding write of
    [X] by [T_k] itself if there is one, and otherwise the latest write of
    [X] by a committed transaction that precedes [T_k]; with no such write,
    the initial value (written by the imaginary [T0]). *)

val legal : History.t -> (unit, string) result
(** Direct interpreter for t-sequential histories.  Every transaction's
    events must be contiguous ([History.is_t_sequential]); reads returning
    [A_k] are unconstrained.  On failure, the error names the offending
    read. *)

val final_state : History.t -> Event.value array -> unit
(** [final_state h state] folds the committed writes of a legal t-sequential
    history into [state] (indexed by variable), in history order. *)
