let committed_projection h =
  let committed = History.committed h in
  History.project h ~keep:(fun k -> List.mem k committed)

let check ?max_nodes h =
  Search.serialize
    { Search.default with respect_rt = false; max_nodes }
    (committed_projection h)

let check_strict ?max_nodes h =
  Search.serialize
    { Search.default with max_nodes }
    (committed_projection h)
