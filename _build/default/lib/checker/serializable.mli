(** Database-style baselines: (strict) serializability of the committed
    transactions.

    These are the guarantees the paper contrasts opacity with (Section 1):
    they constrain only committed transactions, so a live ("zombie")
    transaction may observe an inconsistent state even when the committed
    ones form a perfectly serial execution.  The gap between
    [Serializable.check] and {!Du_opacity.check} on the negative-control STM
    histories is exactly the paper's motivation for opacity-like criteria. *)

val check : ?max_nodes:int -> History.t -> Verdict.t
(** The history restricted to its committed transactions has a legal
    t-sequential equivalent (real-time order {e not} required).

    Note the committed {e projection} is what the database literature uses,
    and it makes this criterion incomparable with final-state opacity on
    histories with pending commits: a committed read served by a
    commit-{e pending} writer is final-state opaque (some completion commits
    the writer) yet not serializable here (the projection drops the writer).
    On t-complete histories the expected inclusions hold:
    du-opaque ⟹ opaque ⟹ final-state opaque ⟹ strictly serializable ⟹
    serializable (property-tested). *)

val check_strict : ?max_nodes:int -> History.t -> Verdict.t
(** Strict serializability: as {!check}, but the serialization must respect
    the real-time order of the committed transactions. *)
