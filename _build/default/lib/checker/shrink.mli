(** Minimisation of violating histories.

    When a recorded history fails du-opacity, the offending core is usually
    a handful of events buried in thousands.  [minimal_violation] shrinks
    while preserving the violation, by (in order):

    + truncating to the shortest violating prefix (sound by
      prefix-closure: the first bad prefix stays bad in every extension);
    + greedily dropping whole transactions (a projection of a well-formed
      history is well-formed, and dropping transactions can only remove
      constraints — kept only when the violation persists);
    + greedily dropping individual completed operations.

    Every candidate is re-checked, so the result provably violates the
    property; it is locally minimal (no single transaction or operation can
    be removed), not globally minimal.  Violations found by the negative
    controls typically shrink to 2-3 transactions and under a dozen
    events — small enough to read as a paper-style figure. *)

val minimal_violation :
  ?max_nodes:int ->
  ?check:(History.t -> Verdict.t) ->
  History.t ->
  History.t option
(** [None] when the history satisfies the property.  [check] defaults to
    {!Du_opacity.check_fast}; any checker returning {!Verdict.t} works
    ([Unknown] is treated as "do not keep this shrink step", so budgets
    never produce a non-violating result). *)
