module Int_map = Map.Make (Int)

exception Exhausted

let check ?max_nodes h =
  let committed = History.committed h in
  let infos =
    List.filter
      (fun (t : Txn.t) -> List.mem t.Txn.id committed)
      (History.infos h)
    |> Array.of_list
  in
  let n = Array.length infos in
  (* Internal reads are snapshot-independent: own latest write. *)
  let internal_bad =
    Array.exists
      (fun t ->
        List.exists
          (fun (r : Txn.read) ->
            match r.Txn.kind with
            | `Internal own -> r.Txn.value <> own
            | `External -> false)
          (Txn.reads t))
      infos
  in
  if internal_bad then
    Verdict.Unsat "a committed transaction misreads its own write"
  else begin
    let external_reads =
      Array.map
        (fun t ->
          List.filter (fun (r : Txn.read) -> r.Txn.kind = `External) (Txn.reads t))
        infos
    in
    let final_writes = Array.map Txn.final_writes infos in
    let write_sets = Array.map Txn.write_set infos in
    let budget = Option.value max_nodes ~default:max_int in
    let nodes = ref 0 in
    (* snapshots.(s) = database state after the first [s] placed commits *)
    let snapshots = Array.make (n + 1) Int_map.empty in
    let placed = Array.make n false in
    let position = Array.make n (-1) in
    let order = Array.make n (-1) in
    let exception Found in
    let lookup state x = Option.value (Int_map.find_opt x state) ~default:Event.init_value in
    let reads_match i s =
      List.for_all
        (fun (r : Txn.read) -> lookup snapshots.(s) r.Txn.var = r.Txn.value)
        external_reads.(i)
    in
    let rec dfs depth =
      incr nodes;
      if !nodes > budget then raise Exhausted;
      if depth = n then raise Found;
      for i = 0 to n - 1 do
        if not placed.(i) then begin
          (* Write-write rule: the snapshot must start after the commit of
             every earlier transaction sharing a written variable. *)
          let lower =
            Array.to_list (Array.init n Fun.id)
            |> List.fold_left
                 (fun acc j ->
                   if
                     placed.(j)
                     && List.exists
                          (fun x -> List.mem x write_sets.(i))
                          write_sets.(j)
                   then max acc (position.(j) + 1)
                   else acc)
                 0
          in
          let feasible =
            let rec exists s = s <= depth && (reads_match i s || exists (s + 1)) in
            exists lower
          in
          if feasible then begin
            placed.(i) <- true;
            position.(i) <- depth;
            order.(depth) <- i;
            snapshots.(depth + 1) <-
              List.fold_left
                (fun state (x, v) -> Int_map.add x v state)
                snapshots.(depth) final_writes.(i);
            dfs (depth + 1);
            placed.(i) <- false;
            position.(i) <- -1
          end
        end
      done
    in
    match dfs 0 with
    | () -> Verdict.Unsat (Fmt.str "no SI execution exists (%d nodes)" !nodes)
    | exception Found ->
        let ids = Array.to_list (Array.map (fun i -> infos.(i).Txn.id) order) in
        Verdict.Sat (Serialization.make ~order:ids ~committed:ids)
    | exception Exhausted ->
        Verdict.Unknown (Fmt.str "node budget exhausted after %d nodes" !nodes)
  end
