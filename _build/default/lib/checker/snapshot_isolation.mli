(** Snapshot isolation (SI) over the committed transactions — the classic
    MVCC guarantee, as a baseline to contrast with (du-)opacity.

    A history satisfies SI here if the committed transactions can be given
    begin and commit points on one timeline such that every transaction
    reads from the database snapshot at its begin point (own writes
    shadowing it), and no two transactions whose intervals overlap both
    write the same variable (first-committer-wins).  Real-time order is
    not enforced, and — like {!Serializable} — aborted and pending
    transactions are ignored, so SI is {e incomparable} with the opacity
    family: write skew is SI but not serializable, while any serializable
    committed projection is SI (pick point-like intervals).  Both facts are
    property-tested.

    Decided by backtracking over commit orders; at each placement the
    transaction needs {e some} snapshot index that explains all its
    external reads and lies after the commit of every earlier writer it
    conflicts with on writes.  A positive verdict's certificate is the
    {e commit order} (all committed) — note it is a witness for SI, not a
    legal serialization, so do not feed it to {!Serialization.validate}. *)

val check : ?max_nodes:int -> History.t -> Verdict.t
