(** The paper's rendering of the TMS2 condition (Section 4.2, Doherty et
    al. / Lesani et al.).

    TMS2 asks for a final-state serialization that additionally respects the
    commit order of conflicting transactions: if [X ∈ Wset(T_a) ∩ Rset(T_b)],
    [T_a] commits, and the [tryC] operation of [T_a] precedes (completes
    before the invocation of) the [tryC] operation of [T_b] in [H], then
    [T_a] must precede [T_b] in the serialization.

    The paper conjectures TMS2 ⊆ du-opacity and separates them with its
    Figure 6 (du-opaque but not TMS2) — both reproduced in the test suite.
    Note this is the paper's informal rendering of TMS2, not the original
    I/O-automaton definition (see DESIGN.md, substitutions). *)

val edges : History.t -> (Event.tx * Event.tx) list
(** The must-precede constraints described above. *)

val check : ?max_nodes:int -> History.t -> Verdict.t
