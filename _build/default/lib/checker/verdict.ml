type t =
  | Sat of Serialization.t
  | Unsat of string
  | Unknown of string

let is_sat = function Sat _ -> true | Unsat _ | Unknown _ -> false
let is_unsat = function Unsat _ -> true | Sat _ | Unknown _ -> false

let certificate = function
  | Sat s -> Some s
  | Unsat _ | Unknown _ -> None

let to_bool = function
  | Sat _ -> true
  | Unsat _ -> false
  | Unknown why -> failwith ("Verdict.to_bool: search budget exhausted: " ^ why)

let pp ppf = function
  | Sat s -> Fmt.pf ppf "sat: %a" Serialization.pp s
  | Unsat why -> Fmt.pf ppf "unsat: %s" why
  | Unknown why -> Fmt.pf ppf "unknown: %s" why
