(** Checker outcomes.

    A positive verdict carries the serialization certificate found; a
    negative one carries a human-readable explanation.  [Unknown] only arises
    when an explicit search budget was exhausted — checkers are exact by
    default. *)

type t =
  | Sat of Serialization.t
  | Unsat of string
  | Unknown of string

val is_sat : t -> bool
val is_unsat : t -> bool

val certificate : t -> Serialization.t option

val to_bool : t -> bool
(** [true] iff [Sat].
    @raise Failure on [Unknown] — an exhausted budget must not be silently
    read as a negative verdict. *)

val pp : Format.formatter -> t -> unit
