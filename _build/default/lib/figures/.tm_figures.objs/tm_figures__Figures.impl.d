lib/figures/figures.ml: Dsl History List
