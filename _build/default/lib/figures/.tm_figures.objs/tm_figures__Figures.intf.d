lib/figures/figures.mli: History
