lib/figures/findings.ml: Dsl Event History
