open Dsl

(* Figure 1, with v = 1 and v' = 2.

   T1: R(X)->1 ............ W(X,2) tryC ........... >C
   T2:   W(X,1) tryC->C
   T3:                              W(X,1) tryC->C
   T4:                                               R(X)->2 tryC->C

   T2 finishes committing before R1(X) responds (so T2 justifies the read in
   the local serialization); T3 writes the same value 1 but only starts
   committing later (so in the global serialization T2,T3,T1,T4 the read's
   S-latest writer is T3 — legality is value-based, both wrote 1). *)
let fig1 =
  history
    [
      r_inv 1 x;
      w 2 x 1;
      c 2;
      ret 1 1;
      w 1 x 2;
      c_inv 1;
      w 3 x 1;
      c 3;
      committed 1;
      r 4 x 2;
      c 4;
    ]

(* Figure 2 prefix: T1's tryC pends forever; T2 reads 1 from it; readers
   T3..T_readers read 0, all overlapping T1 and T2. *)
let fig2 ~readers =
  if readers < 3 then invalid_arg "Figures.fig2: needs at least 3 transactions";
  let zero_readers =
    List.init (readers - 2) (fun i ->
        let k = i + 3 in
        r k x 0)
  in
  history
    ([ w 1 x 1; c_inv 1; r_inv 2 x; ret 2 1 ] @ zero_readers)

(* Figure 3: H is final-state opaque (serialize T1 then T2, committing the
   pending tryC1), but its 4-event prefix H' is not: there T1 has not
   invoked tryC, every completion aborts it, and read_2(X) -> 1 has no
   possible writer. *)
let fig3 =
  history [ w 1 x 1; r 2 x 1; c 2; c 1 ]

let fig3_prefix = History.prefix fig3 4

(* Figure 4: opaque but not du-opaque.  The aborting T1's tryC covers
   read_2(X) -> 1 (so each prefix completes T1 with C1 and is final-state
   opaque), T3 rewrites 1 and commits before A1 arrives (so later prefixes
   are final-state opaque through T3) — but at the moment read_2(X)
   returned, no writer of 1 had begun committing. *)
let fig4 =
  history
    [
      w 1 x 1;
      c_inv 1;
      r 2 x 1;
      w 3 x 1;
      c 3;
      aborted 1;
    ]

(* Figure 5: sequential; du-opaque via T1,T3,T2 but the read-commit-order
   definition forces T2 < T3 (read_2(X) returns before tryC_3), making
   read_2(Y) -> 1 illegal. *)
let fig5 =
  history [ w 1 x 1; c 1; r 2 x 1; w 3 x 1; w 3 y 1; c 3; r 2 y 1 ]

(* Figure 6: du-opaque (serialize T2,T1) but not TMS2: X ∈ Wset(T1) ∩
   Rset(T2) and T1's tryC completes before T2's begins, so TMS2 forces
   T1 < T2 — making read_2(X) -> 0 illegal. *)
let fig6 =
  history [ r 1 x 0; r 2 x 0; w 1 x 1; c 1; w 2 y 1; c 2 ]

type expectation = {
  name : string;
  claim : string;
  history : History.t;
  du_opaque : bool;
  opaque : bool;
  final_state : bool;
  tms2 : bool option;
  rco : bool option;
}

let catalog =
  [
    {
      name = "fig1";
      claim = "du-opaque via T2,T3,T1,T4 with legal local serializations";
      history = fig1;
      du_opaque = true;
      opaque = true;
      final_state = true;
      tms2 = None;
      rco = None;
    };
    {
      name = "fig2(5)";
      claim = "every finite prefix of the limit history is du-opaque";
      history = fig2 ~readers:5;
      du_opaque = true;
      opaque = true;
      final_state = true;
      tms2 = None;
      rco = None;
    };
    {
      name = "fig3";
      claim = "final-state opaque, but its prefix is not (so not opaque)";
      history = fig3;
      du_opaque = false;
      opaque = false;
      final_state = true;
      tms2 = None;
      rco = None;
    };
    {
      name = "fig3'";
      claim = "the prefix H' of fig3 is not final-state opaque";
      history = fig3_prefix;
      du_opaque = false;
      opaque = false;
      final_state = false;
      tms2 = None;
      rco = None;
    };
    {
      name = "fig4";
      claim = "opaque but not du-opaque (Theorem 10 strictness witness)";
      history = fig4;
      du_opaque = false;
      opaque = true;
      final_state = true;
      tms2 = None;
      rco = None;
    };
    {
      name = "fig5";
      claim = "sequential, du-opaque, but not opaque per GHS'08 (read-commit order)";
      history = fig5;
      du_opaque = true;
      opaque = true;
      final_state = true;
      tms2 = None;
      rco = Some false;
    };
    {
      name = "fig6";
      claim = "du-opaque but not TMS2";
      history = fig6;
      du_opaque = true;
      opaque = true;
      final_state = true;
      tms2 = Some false;
      rco = None;
    };
  ]
