(** The paper's example histories (Figures 1-6), encoded exactly, with the
    verdicts the paper claims for them.

    These are the reproduction's primary test vectors: every claim in the
    catalog is machine-checked by the test suite and re-printed by the
    benchmark harness ([figures] table). *)

val fig1 : History.t
(** Figure 1: a du-opaque history whose serialization [T2,T3,T1,T4] needs
    the {e value-based} local-serialization legality — [read_1(X)] returns
    [v] written by both [T2] (already committing) and [T3] (not yet);
    the duplicate write is essential (cf. Theorem 11). *)

val fig2 : readers:int -> History.t
(** Figure 2, finite prefix with [readers - 2] zero-readers: [T1]'s [tryC]
    pends forever, [T2] reads 1 from it, and transactions [T3..T_readers]
    each read the initial 0 while overlapping both.  Every such prefix is
    du-opaque, but every serialization must place all zero-readers before
    [T1] — so the ω-limit has no serialization (Proposition 1: du-opacity
    is not limit-closed without the completeness restriction). *)

val fig3 : History.t
(** Figure 3: final-state opaque but with a prefix ({!fig3_prefix}) that is
    not — final-state opacity is not prefix-closed; hence [fig3] is not
    opaque and not du-opaque. *)

val fig3_prefix : History.t
(** [H' = write_1(X,1) · read_2(X) -> 1]: no completion commits [T1], so the
    read can never be legal. *)

val fig4 : History.t
(** Figure 4: opaque but {e not} du-opaque — [read_2(X)] returns 1, which
    only the {e future} committer [T3] can justify.  The witness for
    Theorem 10's strictness (DU-Opacity ⊊ Opacity). *)

val fig5 : History.t
(** Figure 5: a {e sequential} du-opaque history that violates the
    read-commit-order definition of Guerraoui-Henzinger-Singh: the order
    constraint forces [T2 < T3], but then [read_2(Y)] is illegal. *)

val fig6 : History.t
(** Figure 6: du-opaque but not TMS2 — [T1] and [T2] conflict on [X] and
    [T1] finishes committing first, yet every valid serialization puts [T2]
    first. *)

(** {1 Catalog} *)

type expectation = {
  name : string;
  claim : string;  (** the paper's claim, verbatim-ish *)
  history : History.t;
  du_opaque : bool;
  opaque : bool;
  final_state : bool;
  tms2 : bool option;  (** [None]: the paper makes no claim *)
  rco : bool option;
}

val catalog : expectation list
(** All figures ([fig2] instantiated with 5 readers), with the paper's
    verdicts. *)
