(** Reproduction findings: artefacts this implementation surfaced that the
    paper's text does not anticipate.  Each is machine-checked by the test
    suite; EXPERIMENTS.md discusses them.

    {2 Finding 1: Lemma 1's construction fails under duplicate writes}

    Lemma 1 claims: for {e any} du-opaque serialization [S] of [H] and any
    prefix [H^i], some serialization [S^i] of [H^i] has [seq(S^i)] a
    subsequence of [seq(S)].  The proof argues that the transaction [T_m]
    serving a read in [S] must have invoked [tryC] before the read's
    response ("since read_k(X) is legal in the local serialization ... the
    prefix of H up to the response of read_k(X) must contain an invocation
    of tryC_m").  That inference is {e value-based-legality blind}: with
    duplicate writes, the read can be justified in the local serialization
    by an older retained writer of the same value while the S-latest writer
    has not started committing — the very flexibility the paper's own
    Figure 1 exercises.

    {!lemma1_gap} below is a concrete counterexample to the lemma's
    {e statement} (not merely its proof):

    {v
    T1: W(Z,1) C          (commits early)
    T3:        W(Z,3)   C (commits at event 10)
    T5:          R(Z)->1      tryC        ... C (commits last)
    T6:                        W(Z,1) C   (starts after the prefix)
    v}

    [S = T1,T3,T6,T5] is a valid du-opaque serialization of the full
    history: globally [T5] reads 1 from [T6]; in the local serialization
    (at the read's response only [T1] had invoked [tryC]) the value 1 is
    justified by [T1].  But in the prefix [H^10] (up to [C3]), [T6] has not
    appeared and [T3] is already {e committed} — so in the inherited order
    [T1,T3,T5] the read of 1 sits above [T3]'s committed 3 and no choice of
    decisions can fix it.  The prefix {e is} du-opaque ([T1,T5,T3] works) —
    only the subsequence claim fails.

    Consequences: the paper's proofs of Corollary 2 (prefix closure) and
    Theorem 5 (limit closure), which invoke Lemma 1, are incomplete as
    written for histories with duplicate writes; under the unique-writes
    assumption (the setting of Theorem 11) the proof step is valid and our
    property tests confirm the construction never fails there.
    Prefix-closure itself appears to {e survive} — the checker-level
    property campaign (thousands of random duplicate-write histories) found
    no violation of Corollary 2's statement, it is only the particular
    projection construction that breaks. *)

(** {2 Finding 2: the §4.2 rendering of TMS2 does not imply du-opacity}

    The paper conjectures TMS2 ⊆ du-opacity (for the I/O-automaton
    definition).  The informal rendering its §4.2 works with — "if
    [X ∈ Wset(T1) ∩ Rset(T2)] and [T1]'s [tryC] precedes [T2]'s, then
    [T1 <S T2] for some final-state serialization [S]" — is strictly
    weaker: the paper's own Figure 4 satisfies it vacuously ([T2] never
    invokes [tryC], so no constraint fires) while famously not being
    du-opaque.  The test suite pins both facts.  This does not bear on the
    original TMS2, only on the paraphrase. *)

open Dsl

(** The counterexample history, the du-opaque serialization whose
    projection fails, and the prefix length at which it fails. *)
let lemma1_gap : History.t * (Event.tx list * Event.tx list) * int =
  let h =
    history
      [
        w 1 z 1;
        c 1;
        w 3 z 3;
        r 5 z 1;
        c 3;
        (* --- prefix boundary: length 10 --- *)
        c_inv 5;
        w 6 z 1;
        c 6;
        committed 5;
      ]
  in
  (h, ([ 1; 3; 6; 5 ], [ 1; 3; 6; 5 ]), 10)

(** The serialization order Lemma 1's construction inherits for the prefix,
    with the (forced) decisions: [T1, T3] committed, [T5] aborted.  The
    test suite verifies this is NOT a serialization of the prefix, while
    [T1, T5, T3] is. *)
let lemma1_gap_projected_order = [ 1; 3; 5 ]

let lemma1_gap_working_order = [ 1; 5; 3 ]
