lib/history/dsl.ml: Event History List
