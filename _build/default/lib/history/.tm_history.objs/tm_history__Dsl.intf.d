lib/history/dsl.mli: Event History
