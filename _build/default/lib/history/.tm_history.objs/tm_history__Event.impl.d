lib/history/event.ml: Array Fmt Stdlib
