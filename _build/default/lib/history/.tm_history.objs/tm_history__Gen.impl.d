lib/history/gen.ml: Array Event Hashtbl History List Random
