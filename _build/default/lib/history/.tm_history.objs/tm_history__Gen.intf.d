lib/history/gen.mli: History Random
