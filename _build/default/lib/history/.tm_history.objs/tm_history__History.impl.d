lib/history/history.ml: Array Event Fmt Int List Map Op Txn
