lib/history/op.ml: Event Fmt Option
