lib/history/op.mli: Event Format
