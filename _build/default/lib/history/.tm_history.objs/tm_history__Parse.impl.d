lib/history/parse.ml: Buffer Event Fmt History List String
