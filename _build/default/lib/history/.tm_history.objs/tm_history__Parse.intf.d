lib/history/parse.mli: History
