lib/history/pretty.ml: Array Buffer Event Fmt History List Op String Txn
