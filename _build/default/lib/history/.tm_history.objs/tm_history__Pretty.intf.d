lib/history/pretty.mli: Format History
