lib/history/stats.ml: Event Fmt Hashtbl History Int List Txn
