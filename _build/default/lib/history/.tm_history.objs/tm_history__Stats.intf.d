lib/history/stats.mli: Format History
