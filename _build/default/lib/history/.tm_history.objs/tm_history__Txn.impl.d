lib/history/txn.ml: Array Event Fmt Hashtbl Int List Op
