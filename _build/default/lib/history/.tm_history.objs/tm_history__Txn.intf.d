lib/history/txn.mli: Event Format Op
