open Event

let x : tvar = 0
let y : tvar = 1
let z : tvar = 2
let v : tvar = 4

let r k var value = [ Inv (k, Read var); Res (k, Read_ok value) ]
let r_abort k var = [ Inv (k, Read var); Res (k, Aborted) ]
let w k var value = [ Inv (k, Write (var, value)); Res (k, Write_ok) ]
let w_abort k var value = [ Inv (k, Write (var, value)); Res (k, Aborted) ]
let c k = [ Inv (k, Try_commit); Res (k, Committed) ]
let c_abort k = [ Inv (k, Try_commit); Res (k, Aborted) ]
let a k = [ Inv (k, Try_abort); Res (k, Aborted) ]
let r_inv k var = [ Inv (k, Read var) ]
let w_inv k var value = [ Inv (k, Write (var, value)) ]
let c_inv k = [ Inv (k, Try_commit) ]
let a_inv k = [ Inv (k, Try_abort) ]
let ret k value = [ Res (k, Read_ok value) ]
let w_ok k = [ Res (k, Write_ok) ]
let committed k = [ Res (k, Committed) ]
let aborted k = [ Res (k, Aborted) ]
let history fragments = History.of_events_exn (List.concat fragments)

let seq programs =
  let fragments =
    List.concat (List.mapi (fun i program -> program (i + 1)) programs)
  in
  history fragments
