(** Combinators for writing histories in tests and examples.

    Events compose as lists, so fine-grained interleavings (pending
    operations, delayed responses) are expressed by splitting an operation
    into its {e invocation} and {e response} parts:

    {[
      (* Figure 3 of the paper: W1(X,1) · R2(X)->1 · tryC2->C2 · tryC1->C1 *)
      let h =
        Dsl.(
          history
            [ w_inv 1 x 1; w_ok 1;
              r 2 x 1;
              c 2;
              c 1 ])
    ]} *)

open Event

(** {1 Variables} *)

val x : tvar
val y : tvar
val z : tvar
val v : tvar  (** variable id 4 — prints as [V] *)

(** {1 Complete operations (invocation immediately followed by response)} *)

val r : tx -> tvar -> value -> t list
(** [r k x v] — [read_k(x)] returning [v]. *)

val r_abort : tx -> tvar -> t list
(** [read_k(x)] returning [A_k]. *)

val w : tx -> tvar -> value -> t list
(** [w k x v] — [write_k(x, v)] returning [ok_k]. *)

val w_abort : tx -> tvar -> value -> t list

val c : tx -> t list
(** [tryC_k() -> C_k] *)

val c_abort : tx -> t list
(** [tryC_k() -> A_k] *)

val a : tx -> t list
(** [tryA_k() -> A_k] *)

(** {1 Split operations} *)

val r_inv : tx -> tvar -> t list
val w_inv : tx -> tvar -> value -> t list
val c_inv : tx -> t list
val a_inv : tx -> t list

val ret : tx -> value -> t list
(** Response event: the pending read of [T_k] returns a value. *)

val w_ok : tx -> t list
(** the pending write returns [ok_k] *)

val committed : tx -> t list
(** the pending [tryC_k] returns [C_k] *)

val aborted : tx -> t list
(** the pending operation returns [A_k] *)

(** {1 Assembly} *)

val history : t list list -> History.t
(** Concatenate the fragments and validate.
    @raise Invalid_argument when the result is ill-formed. *)

val seq : (tx -> t list list) list -> History.t
(** [seq [p1; p2; ...]] builds a t-sequential history running program [p_i]
    as transaction [T_i] ([i] starting at 1), in order. *)
