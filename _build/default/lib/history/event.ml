type tx = int
type tvar = int
type value = int

let t0 : tx = 0
let init_value : value = 0

type invocation =
  | Read of tvar
  | Write of tvar * value
  | Try_commit
  | Try_abort

type response =
  | Read_ok of value
  | Write_ok
  | Committed
  | Aborted

type t =
  | Inv of tx * invocation
  | Res of tx * response

let tx_of = function Inv (k, _) | Res (k, _) -> k
let is_inv = function Inv _ -> true | Res _ -> false
let is_res = function Res _ -> true | Inv _ -> false

let matches inv res =
  match inv, res with
  | _, Aborted -> true
  | Read _, Read_ok _ -> true
  | Write _, Write_ok -> true
  | Try_commit, Committed -> true
  | (Read _ | Write _ | Try_commit | Try_abort),
    (Read_ok _ | Write_ok | Committed) -> false

let equal_invocation (a : invocation) (b : invocation) = a = b
let equal_response (a : response) (b : response) = a = b
let equal (a : t) (b : t) = a = b
let compare : t -> t -> int = Stdlib.compare

let pp_tvar ppf x =
  let names = [| "X"; "Y"; "Z"; "W"; "V"; "U" |] in
  if x >= 0 && x < Array.length names then Fmt.string ppf names.(x)
  else Fmt.pf ppf "X%d" x

let pp_invocation ppf = function
  | Read x -> Fmt.pf ppf "R(%a)" pp_tvar x
  | Write (x, v) -> Fmt.pf ppf "W(%a,%d)" pp_tvar x v
  | Try_commit -> Fmt.string ppf "tryC"
  | Try_abort -> Fmt.string ppf "tryA"

let pp_response ppf = function
  | Read_ok v -> Fmt.pf ppf "ret(%d)" v
  | Write_ok -> Fmt.string ppf "ok"
  | Committed -> Fmt.string ppf "C"
  | Aborted -> Fmt.string ppf "A"

let pp ppf = function
  | Inv (k, i) -> Fmt.pf ppf "inv%d:%a" k pp_invocation i
  | Res (k, r) -> Fmt.pf ppf "res%d:%a" k pp_response r

let to_string e = Fmt.str "%a" pp e
