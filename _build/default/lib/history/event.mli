(** Events of transactional-memory histories.

    This module defines the vocabulary of the paper's Section 2: transactions
    issue {e t-operations} — [read], [write], [tryCommit], [tryAbort] — each a
    matching pair of an {e invocation} event and a {e response} event.  A
    history is a sequence of such events (see {!History}).

    Values are integers; every t-object (t-variable) implicitly holds the
    initial value {!init_value}, written by the imaginary initial transaction
    [T0] that the paper assumes commits before any other transaction. *)

(** {1 Identifiers} *)

type tx = int
(** Transaction identifier.  Identifiers must be positive: [0] is reserved
    for the imaginary initial transaction [T0], which never appears in
    histories but is implicitly the first transaction of every
    serialization. *)

type tvar = int
(** Transactional object (t-object / t-variable) identifier, [>= 0]. *)

type value = int
(** Values written to and read from t-variables. *)

val t0 : tx
(** The reserved identifier of the imaginary initial transaction. *)

val init_value : value
(** The value every t-variable holds initially (written by [T0]). *)

(** {1 Events} *)

type invocation =
  | Read of tvar            (** [read_k(X)] *)
  | Write of tvar * value   (** [write_k(X, v)] *)
  | Try_commit              (** [tryC_k()] *)
  | Try_abort               (** [tryA_k()] *)

type response =
  | Read_ok of value  (** a read returning a value in the domain [V] *)
  | Write_ok          (** [ok_k], successful write *)
  | Committed         (** [C_k] *)
  | Aborted           (** [A_k] — a response every t-operation may return *)

type t =
  | Inv of tx * invocation
  | Res of tx * response

val tx_of : t -> tx
(** Transaction the event belongs to. *)

val is_inv : t -> bool
val is_res : t -> bool

val matches : invocation -> response -> bool
(** [matches inv res] holds when [res] is a legal response to [inv]:
    any invocation may respond [Aborted]; otherwise [Read _] pairs with
    [Read_ok _], [Write _] with [Write_ok], [Try_commit] with [Committed],
    and [Try_abort] with nothing but [Aborted]. *)

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
val equal_invocation : invocation -> invocation -> bool
val equal_response : response -> response -> bool
val compare : t -> t -> int

val pp_tvar : Format.formatter -> tvar -> unit
(** Variables print as [X], [Y], [Z], [W], [V], [U] for ids 0-5 and [X6],
    [X7], ... beyond, mirroring the paper's figures. *)

val pp_invocation : Format.formatter -> invocation -> unit
val pp_response : Format.formatter -> response -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
