(** Seeded random generation of well-formed histories.

    The generator interleaves [n_threads] sequential streams of transactions
    at event granularity under a uniformly random schedule, so generated
    histories exhibit realistic overlap structure (pending operations,
    concurrent commits, live transactions).

    Read results are produced in one of two modes:

    - [`Snapshot_values]: a global committed state is maintained as the
      schedule unfolds; an external read returns the committed value of the
      variable at the moment of its response, and a committing transaction
      installs its writes atomically at its commit response.  This is
      "read-committed with deferred update": many such histories are
      du-opaque, but unrepeatable reads and write skew still arise under
      interleaving, so both verdicts occur — ideal for differential testing
      of checkers.
    - [`Random_values]: reads return uniform values from
      [0 .. value_range - 1]; most such histories violate every criterion.

    With [unique_writes = true], written values are drawn from a global
    counter so no two writes (of any transaction) carry the same value —
    histories then satisfy the premise of the paper's Theorem 11. *)

type params = {
  n_txns : int;  (** number of transactions to generate *)
  n_vars : int;
  n_threads : int;  (** concurrency degree of the interleaving *)
  max_ops : int;  (** operations per transaction, drawn from [1 .. max_ops] *)
  read_ratio : float;  (** probability an operation is a read *)
  mode : [ `Snapshot_values | `Random_values ];
  value_range : int;  (** domain of written (and random-read) values *)
  unique_writes : bool;
  commit_ratio : float;
      (** probability a transaction attempts [tryC] (vs [tryA]) *)
  abort_ratio : float;
      (** probability a [tryC] responds [A_k]; also the per-operation
          probability of a spurious operation-level abort *)
  pending_ratio : float;
      (** probability a transaction's last invoked operation is left without
          a response (and the transaction without further events) *)
}

val default : params
(** 8 transactions, 3 variables, 3 threads, snapshot values, moderate
    aborts. *)

val run : params -> Random.State.t -> History.t

val run_seed : params -> int -> History.t
(** [run] with a fresh PRNG seeded by the integer. *)
