type t = {
  tx : Event.tx;
  inv : Event.invocation;
  inv_index : int;
  res : Event.response option;
  res_index : int option;
}

let is_complete op = Option.is_some op.res
let aborted op = op.res = Some Event.Aborted

let read_value op =
  match op.inv, op.res with
  | Event.Read x, Some (Event.Read_ok v) -> Some (x, v)
  | _, _ -> None

let write op =
  match op.inv, op.res with
  | Event.Write (x, v), Some Event.Write_ok -> Some (x, v)
  | _, _ -> None

let pp ppf op =
  match op.res with
  | None -> Fmt.pf ppf "%a?" Event.pp_invocation op.inv
  | Some r -> Fmt.pf ppf "%a->%a" Event.pp_invocation op.inv Event.pp_response r
