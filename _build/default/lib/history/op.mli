(** Matched t-operations.

    A t-operation is a matching pair of an invocation event and (when the
    operation is complete) its response event.  {!History} extracts, for each
    transaction, the sequence of its t-operations in program order, recording
    the positions of both events in the history so that real-time relations
    between operations (used pervasively by the checkers) can be decided by
    integer comparison. *)

type t = {
  tx : Event.tx;              (** owning transaction *)
  inv : Event.invocation;
  inv_index : int;            (** position of the invocation in the history *)
  res : Event.response option;  (** [None] when the operation is incomplete *)
  res_index : int option;     (** position of the response, when complete *)
}

val is_complete : t -> bool

val aborted : t -> bool
(** The operation responded [Aborted]. *)

val read_value : t -> (Event.tvar * Event.value) option
(** [Some (x, v)] when the operation is a read of [x] that returned the
    value [v] (not [Aborted]). *)

val write : t -> (Event.tvar * Event.value) option
(** [Some (x, v)] when the operation is a {e successful} write of [v] to [x]
    (responded [Write_ok]). Incomplete or aborted writes yield [None]: by
    Definition 2 they are completed with [A_k] and never take effect. *)

val pp : Format.formatter -> t -> unit
