open Event

let inv_cell = function
  | Read var -> Fmt.str "R(%a)" pp_tvar var
  | Write (var, value) -> Fmt.str "W(%a,%d)" pp_tvar var value
  | Try_commit -> "tryC"
  | Try_abort -> "tryA"

let res_cell = function
  | Read_ok v -> Fmt.str ">%d" v
  | Write_ok -> ">ok"
  | Committed -> ">C"
  | Aborted -> ">A"

let timeline h =
  let n = History.length h in
  let infos = History.infos h in
  let rows = List.length infos in
  let cells = Array.make_matrix rows n "" in
  let label = Array.make rows "" in
  List.iteri
    (fun row (txn : Txn.t) ->
      label.(row) <- Fmt.str "T%d:" txn.Txn.id;
      for i = txn.Txn.first_index to txn.Txn.last_index do
        cells.(row).(i) <- "-"
      done;
      Array.iter
        (fun (op : Op.t) ->
          cells.(row).(op.Op.inv_index) <- inv_cell op.Op.inv;
          match op.Op.res, op.Op.res_index with
          | Some res, Some i -> cells.(row).(i) <- res_cell res
          | _, _ -> ())
        txn.Txn.ops)
    infos;
  let width = Array.make n 1 in
  for i = 0 to n - 1 do
    for row = 0 to rows - 1 do
      width.(i) <- max width.(i) (String.length cells.(row).(i))
    done
  done;
  let label_width =
    Array.fold_left (fun acc s -> max acc (String.length s)) 0 label
  in
  let pad fill s w =
    s ^ String.make (max 0 (w - String.length s)) fill
  in
  let buf = Buffer.create 256 in
  for row = 0 to rows - 1 do
    Buffer.add_string buf (pad ' ' label.(row) label_width);
    for i = 0 to n - 1 do
      Buffer.add_char buf ' ';
      let cell = cells.(row).(i) in
      let fill = if cell = "-" || cell = "" then ' ' else ' ' in
      let cell = if cell = "-" then String.make width.(i) '-' else cell in
      Buffer.add_string buf (pad fill cell width.(i))
    done;
    (* Trim trailing blanks for tidy output. *)
    let line = Buffer.contents buf in
    Buffer.clear buf;
    let len = ref (String.length line) in
    while !len > 0 && line.[!len - 1] = ' ' do
      decr len
    done;
    Buffer.add_string buf (String.sub line 0 !len);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let pp_timeline ppf h = Fmt.string ppf (timeline h)
