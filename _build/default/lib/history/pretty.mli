(** ASCII timeline rendering of histories, one row per transaction — the
    textual analogue of the paper's figures:

    {v
    T1: W(X,1) >ok tryC ---------------- >A
    T2: ------------- R(X) >1
    T3: ------------------------ W(X,1) >ok tryC >C
    v}

    Each column is one event of the history; an operation occupies the
    columns of its invocation and response, and dashes fill a transaction's
    span between its events. *)

val timeline : History.t -> string
val pp_timeline : Format.formatter -> History.t -> unit
