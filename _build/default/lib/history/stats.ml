type t = {
  events : int;
  txns : int;
  committed : int;
  aborted : int;
  commit_pending : int;
  live : int;
  reads : int;
  writes : int;
  vars : int;
  max_overlap : int;
  overlapping_pairs : int;
}

let of_history h =
  let infos = History.infos h in
  let count pred = List.length (List.filter pred infos) in
  let reads =
    List.fold_left (fun acc t -> acc + List.length (Txn.reads t)) 0 infos
  in
  let writes =
    List.fold_left (fun acc t -> acc + List.length (Txn.writes t)) 0 infos
  in
  let vars =
    List.concat_map (fun t -> Txn.read_set t @ Txn.write_set t) infos
    |> List.sort_uniq Int.compare
    |> List.length
  in
  let max_overlap =
    let live = Hashtbl.create 16 in
    let best = ref 0 in
    List.iteri
      (fun i ev ->
        let k = Event.tx_of ev in
        let txn = History.info h k in
        if i = txn.Txn.first_index then Hashtbl.replace live k ();
        best := max !best (Hashtbl.length live);
        if i = txn.Txn.last_index then Hashtbl.remove live k)
      (History.to_list h);
    !best
  in
  let overlapping_pairs =
    let ts = History.txns h in
    let rec pairs acc = function
      | [] -> acc
      | k :: rest ->
          pairs
            (acc + List.length (List.filter (fun m -> History.overlap h k m) rest))
            rest
    in
    pairs 0 ts
  in
  {
    events = History.length h;
    txns = List.length infos;
    committed = count (fun t -> t.Txn.status = Txn.Committed);
    aborted = count (fun t -> t.Txn.status = Txn.Aborted);
    commit_pending = count (fun t -> t.Txn.status = Txn.Commit_pending);
    live =
      count (fun t ->
          match t.Txn.status with
          | Txn.Live | Txn.Abort_pending -> true
          | Txn.Committed | Txn.Aborted | Txn.Commit_pending -> false);
    reads;
    writes;
    vars;
    max_overlap;
    overlapping_pairs;
  }

let pp ppf s =
  Fmt.pf ppf
    "%d events, %d txns (%dC/%dA/%dP/%dL), %d reads, %d writes, %d vars, \
     overlap max %d, %d overlapping pairs"
    s.events s.txns s.committed s.aborted s.commit_pending s.live s.reads
    s.writes s.vars s.max_overlap s.overlapping_pairs
