(** Descriptive statistics of a history, for experiment reporting and for
    eyeballing whether a workload actually produced the concurrency it was
    meant to. *)

type t = {
  events : int;
  txns : int;
  committed : int;
  aborted : int;
  commit_pending : int;
  live : int;  (** neither t-complete nor commit/abort-pending *)
  reads : int;  (** value-returning reads *)
  writes : int;  (** successful writes *)
  vars : int;  (** distinct variables touched *)
  max_overlap : int;
      (** maximum number of simultaneously live transactions *)
  overlapping_pairs : int;  (** pairs not ordered by real time *)
}

val of_history : History.t -> t
val pp : Format.formatter -> t -> unit
