lib/sim/explore.ml: Array List Runner Sched
