lib/sim/explore.mli: History Tm_stm
