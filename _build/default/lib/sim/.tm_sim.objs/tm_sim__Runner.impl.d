lib/sim/runner.ml: History List Random Sched Sim_mem Tm_stm
