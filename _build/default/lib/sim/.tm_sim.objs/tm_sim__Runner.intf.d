lib/sim/runner.mli: History Tm_stm
