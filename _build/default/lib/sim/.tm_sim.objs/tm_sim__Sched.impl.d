lib/sim/sched.ml: Effect List Random
