lib/sim/sched.mli: Random
