lib/sim/sim_mem.ml: Sched
