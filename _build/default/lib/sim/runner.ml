type result = { history : History.t; stats : Tm_stm.Harness.stats }

let setup ?(max_retries = 50) ~stm ~params ~seed () =
  let (module A : Tm_stm.Tm_intf.ALGORITHM) = Tm_stm.Registry.find_exn stm in
  let module T = A (Sim_mem) in
  let instance =
    Tm_stm.Tm_intf.instantiate
      (module T)
      ~n_vars:params.Tm_stm.Workload.n_vars
  in
  let programs =
    Tm_stm.Workload.generate params (Random.State.make [| seed |])
  in
  let log = ref [] in
  let emit ev = log := ev :: !log in
  let ids = ref 1 in
  let next_id () =
    let id = !ids in
    incr ids;
    id
  in
  let stats = Tm_stm.Harness.empty_stats () in
  let fibers =
    List.map
      (fun thread_prog () ->
        Tm_stm.Harness.run_thread instance ~emit ~next_id ~stats ~max_retries
          thread_prog)
      programs
  in
  let extract () =
    { history = History.of_events_exn (List.rev !log); stats }
  in
  (fibers, extract)

let run ?max_retries ~stm ~params ~seed () =
  let fibers, extract = setup ?max_retries ~stm ~params ~seed () in
  Sched.run_seeded ~seed:(seed + 0x5eed) fibers;
  extract ()
