type _ Effect.t += Yield : unit Effect.t

let yield () =
  try Effect.perform Yield
  with Effect.Unhandled _ ->
    failwith "Sched.yield: no scheduler is running"

let run ~choose fibers =
  (* Runnable fibers, each a thunk that advances one slice when called. *)
  let runnable : (unit -> unit) list ref = ref [] in
  let enqueue t = runnable := !runnable @ [ t ] in
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  enqueue (fun () -> Effect.Deep.continue k ()))
          | _ -> None);
    }
  in
  List.iter
    (fun fiber -> enqueue (fun () -> Effect.Deep.match_with fiber () handler))
    fibers;
  let rec loop () =
    match !runnable with
    | [] -> ()
    | fibers ->
        let n = List.length fibers in
        let i = choose n in
        if i < 0 || i >= n then invalid_arg "Sched.run: chooser out of range";
        let fiber = List.nth fibers i in
        runnable := List.filteri (fun j _ -> j <> i) fibers;
        fiber ();
        loop ()
  in
  loop ()

let run_random rng fibers =
  run ~choose:(fun n -> Random.State.int rng n) fibers

let run_seeded ~seed fibers = run_random (Random.State.make [| seed |]) fibers
