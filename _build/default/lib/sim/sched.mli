(** Deterministic cooperative scheduler over OCaml 5 effects.

    Fibers yield at every simulated memory access ({!Sim_mem}), so the
    scheduler's choice sequence fully determines the interleaving: a seeded
    random chooser gives reproducible stress runs, an explicit chooser
    supports systematic schedule enumeration ({!Explore}).  Everything runs
    on one domain — data races in simulated code are impossible by
    construction, which is what makes recorded histories exact. *)

val yield : unit -> unit
(** Cooperative scheduling point.  Must be called from inside {!run}.
    @raise Failure when no scheduler is running. *)

val run : choose:(int -> int) -> (unit -> unit) list -> unit
(** [run ~choose fibers] runs the fibers to completion.  At every scheduling
    point, [choose n] must return an index in [0 .. n-1] selecting which of
    the [n] currently runnable fibers advances.  Runs until every fiber has
    returned. *)

val run_seeded : seed:int -> (unit -> unit) list -> unit
(** [run] with a uniformly random chooser. *)

val run_random : Random.State.t -> (unit -> unit) list -> unit
