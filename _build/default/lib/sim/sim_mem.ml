(** {!Tm_stm.Mem_intf.MEM} for the simulator: plain references behind a
    scheduling point.  Yielding {e before} each access makes every memory
    operation a potential context switch, so the scheduler can produce any
    interleaving a sequentially-consistent machine could — at exactly the
    granularity the STM algorithms synchronise at.  Single-domain, hence
    race-free and deterministic. *)

type 'a cell = 'a ref

let make v = ref v

let get c =
  Sched.yield ();
  !c

let set c v =
  Sched.yield ();
  c := v

let cas c expected desired =
  Sched.yield ();
  if !c = expected then begin
    c := desired;
    true
  end
  else false

let fetch_add c n =
  Sched.yield ();
  let v = !c in
  c := v + n;
  v

let pause = Sched.yield
