lib/stm/atomic_mem.ml: Atomic Domain
