lib/stm/dirty.ml: Array Hashtbl Mem_intf Tl2 Tm_intf
