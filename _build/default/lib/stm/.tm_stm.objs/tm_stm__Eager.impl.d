lib/stm/eager.ml: Array Event List Mem_intf Tm_intf
