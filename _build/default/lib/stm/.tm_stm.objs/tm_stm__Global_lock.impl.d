lib/stm/global_lock.ml: Array Event List Mem_intf Tm_intf
