lib/stm/harness.ml: Event List Tm_intf Workload
