lib/stm/mem_intf.ml:
