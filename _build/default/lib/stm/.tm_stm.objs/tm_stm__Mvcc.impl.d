lib/stm/mvcc.ml: Array Event Hashtbl Int List Mem_intf Tm_intf
