lib/stm/norec.ml: Array Event Hashtbl List Mem_intf Tm_intf
