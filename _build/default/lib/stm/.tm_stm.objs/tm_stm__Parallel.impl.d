lib/stm/parallel.ml: Atomic Atomic_mem Domain Harness History List Mutex Random Tm_intf Unix Workload
