lib/stm/pessimistic.ml: Array Event List Mem_intf Tm_intf
