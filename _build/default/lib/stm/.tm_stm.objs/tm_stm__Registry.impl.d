lib/stm/registry.ml: Atomic_mem Dirty Eager Fmt Global_lock List Mvcc Norec Pessimistic String Tl2 Tm_intf Tml Twopl
