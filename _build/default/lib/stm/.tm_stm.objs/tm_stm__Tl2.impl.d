lib/stm/tl2.ml: Array Event Hashtbl Int List Mem_intf Tm_intf
