lib/stm/tm_intf.ml: Mem_intf
