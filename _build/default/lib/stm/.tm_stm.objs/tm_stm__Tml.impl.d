lib/stm/tml.ml: Array Event List Mem_intf Tm_intf
