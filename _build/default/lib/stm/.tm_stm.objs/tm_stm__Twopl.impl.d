lib/stm/twopl.ml: Array Event List Mem_intf Tm_intf
