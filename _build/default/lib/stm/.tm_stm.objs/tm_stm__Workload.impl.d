lib/stm/workload.ml: Array Fmt List Random
