(** {!Mem_intf.MEM} over OCaml 5 [Atomic] cells — the real-memory world used
    when running STMs on domains. *)

type 'a cell = 'a Atomic.t

let make = Atomic.make
let get = Atomic.get
let set = Atomic.set
let cas = Atomic.compare_and_set
let fetch_add = Atomic.fetch_and_add
let pause = Domain.cpu_relax
