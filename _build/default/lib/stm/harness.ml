(** Drives workloads through an STM instance, recording the history.

    Each transaction attempt gets a fresh transaction identifier (the TM
    model treats a retry as a new transaction), and each t-operation is
    bracketed by its invocation and response events sent to the [sink] —
    so the recorded sequence is by construction a well-formed history of
    the run.  Shared by the deterministic simulator ([Tm_sim.Runner]) and
    the domain-parallel runner ({!Parallel}). *)

type stats = {
  mutable commits : int;
  mutable commit_aborts : int;  (** [tryC] returned [A_k] *)
  mutable op_aborts : int;  (** a read or write raised [Abort] *)
  mutable gave_up : int;  (** retry budget exhausted; program skipped *)
}

let empty_stats () =
  { commits = 0; commit_aborts = 0; op_aborts = 0; gave_up = 0 }

let add_stats a b =
  {
    commits = a.commits + b.commits;
    commit_aborts = a.commit_aborts + b.commit_aborts;
    op_aborts = a.op_aborts + b.op_aborts;
    gave_up = a.gave_up + b.gave_up;
  }

let attempts s = s.commits + s.commit_aborts + s.op_aborts

(* One attempt; true = committed. *)
let run_attempt (module I : Tm_intf.INSTANCE) ~emit ~stats ~id prog =
  let txn = I.begin_txn () in
  match
    List.iter
      (fun op ->
        match op with
        | Workload.Read x -> (
            emit (Event.Inv (id, Event.Read x));
            match I.read txn x with
            | v -> emit (Event.Res (id, Event.Read_ok v))
            | exception Tm_intf.Abort ->
                emit (Event.Res (id, Event.Aborted));
                raise Tm_intf.Abort)
        | Workload.Write (x, v) -> (
            emit (Event.Inv (id, Event.Write (x, v)));
            match I.write txn x v with
            | () -> emit (Event.Res (id, Event.Write_ok))
            | exception Tm_intf.Abort ->
                emit (Event.Res (id, Event.Aborted));
                raise Tm_intf.Abort))
      prog
  with
  | exception Tm_intf.Abort ->
      stats.op_aborts <- stats.op_aborts + 1;
      false
  | () ->
      emit (Event.Inv (id, Event.Try_commit));
      if I.commit txn then begin
        emit (Event.Res (id, Event.Committed));
        stats.commits <- stats.commits + 1;
        true
      end
      else begin
        emit (Event.Res (id, Event.Aborted));
        stats.commit_aborts <- stats.commit_aborts + 1;
        false
      end

let run_thread instance ~emit ~next_id ~stats ~max_retries
    (programs : Workload.thread_prog) =
  List.iter
    (fun prog ->
      let rec retry budget =
        if budget = 0 then stats.gave_up <- stats.gave_up + 1
        else if not (run_attempt instance ~emit ~stats ~id:(next_id ()) prog)
        then retry (budget - 1)
      in
      retry max_retries)
    programs
