(** The shared-memory interface STM algorithms are written against.

    Every algorithm in this library is a functor over [MEM], so the same
    code runs in two worlds:

    - {!Atomic_mem}: OCaml 5 [Atomic] cells on real domains, used by the
      throughput benchmarks;
    - [Tm_sim.Sim_mem]: cells that yield to a deterministic cooperative
      scheduler before every access, used to enumerate and replay
      interleavings reproducibly (every [get]/[set]/[cas] is a potential
      context-switch point, which is exactly the granularity at which the
      paper's histories interleave).

    Only the operations the algorithms actually need are included. *)

module type MEM = sig
  type 'a cell

  val make : 'a -> 'a cell
  val get : 'a cell -> 'a
  val set : 'a cell -> 'a -> unit

  val cas : 'a cell -> 'a -> 'a -> bool
  (** Compare-and-set, by structural equality on immediate values (the
      algorithms only CAS integers). *)

  val fetch_add : int cell -> int -> int
  (** Atomic fetch-and-add; returns the previous value. *)

  val pause : unit -> unit
  (** Busy-wait hint: [Domain.cpu_relax] on real memory, a scheduler yield
      in simulation.  Every spin loop must call it. *)
end
