(** Name-indexed catalogue of the STM algorithms.

    [safe] algorithms are expected to produce only du-opaque histories;
    [controls] are deliberately broken and expected to be caught by the
    checkers — the split drives the [stm-safety] experiment. *)

let algorithms : (string * (module Tm_intf.ALGORITHM)) list =
  [
    ("tl2", (module Tl2.Make));
    ("norec", (module Norec.Make));
    ("mvcc", (module Mvcc.Make));
    ("tml", (module Tml.Make));
    ("2pl", (module Twopl.Make));
    ("global-lock", (module Global_lock.Make));
    ("pessimistic", (module Pessimistic.Make));
    ("dirty-read", (module Dirty.Make));
    ("eager", (module Eager.Make));
  ]

let safe = [ "tl2"; "norec"; "mvcc"; "tml"; "2pl"; "global-lock" ]
let controls = [ "pessimistic"; "dirty-read"; "eager" ]

let find name = List.assoc_opt name algorithms

let find_exn name =
  match find name with
  | Some a -> a
  | None ->
      Fmt.invalid_arg "unknown STM %S (available: %s)" name
        (String.concat ", " (List.map fst algorithms))

let atomic_instance name ~n_vars : (module Tm_intf.INSTANCE) =
  let (module A : Tm_intf.ALGORITHM) = find_exn name in
  let module T = A (Atomic_mem) in
  Tm_intf.instantiate (module T) ~n_vars
