(** Workload generation for the STM experiments.

    A workload is, per thread, a list of transaction programs; a program is
    a straight-line list of reads and writes (the runner appends the
    [tryC]).  Key skew follows a Zipf distribution with parameter
    [zipf_theta] ([0.0] = uniform), the standard way to dial contention:
    high theta concentrates accesses on few hot variables.  [`Unique]
    values draw every written value from a global counter, producing
    histories that satisfy Theorem 11's unique-writes premise. *)

type op = Read of int | Write of int * int

type txn_prog = op list
type thread_prog = txn_prog list

type params = {
  n_threads : int;
  txns_per_thread : int;
  ops_per_txn : int;
  n_vars : int;
  read_ratio : float;
  zipf_theta : float;
  values : [ `Unique | `Range of int ];
}

let default =
  {
    n_threads = 4;
    txns_per_thread = 50;
    ops_per_txn = 4;
    n_vars = 16;
    read_ratio = 0.7;
    zipf_theta = 0.0;
    values = `Range 100;
  }

let pp_params ppf p =
  Fmt.pf ppf "%d thr × %d txn × %d ops, %d vars, %.0f%% reads, θ=%.1f"
    p.n_threads p.txns_per_thread p.ops_per_txn p.n_vars
    (100. *. p.read_ratio) p.zipf_theta

(* Cumulative Zipf distribution over [0 .. n-1]; binary search to sample. *)
let zipf_cdf n theta =
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf

let sample_cdf cdf u =
  let n = Array.length cdf in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then go (mid + 1) hi else go lo mid
  in
  go 0 (n - 1)

let generate params rng =
  let cdf = zipf_cdf (max 1 params.n_vars) params.zipf_theta in
  let next_value = ref 0 in
  let pick_var () = sample_cdf cdf (Random.State.float rng 1.0) in
  let pick_value () =
    match params.values with
    | `Unique ->
        incr next_value;
        !next_value
    | `Range r -> 1 + Random.State.int rng (max 1 r)
  in
  let op () =
    if Random.State.float rng 1.0 < params.read_ratio then Read (pick_var ())
    else Write (pick_var (), pick_value ())
  in
  let txn () = List.init (max 1 params.ops_per_txn) (fun _ -> op ()) in
  let thread () = List.init params.txns_per_thread (fun _ -> txn ()) in
  List.init params.n_threads (fun _ -> thread ())
