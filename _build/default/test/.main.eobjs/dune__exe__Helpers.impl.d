test/helpers.ml: Alcotest Event Gen History QCheck2 QCheck_alcotest Serialization Tm_safety Verdict
