test/main.mli:
