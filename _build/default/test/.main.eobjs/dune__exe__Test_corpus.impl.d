test/test_corpus.ml: Du_opacity Final_state Helpers List Opacity Parse Serializable Serialization Tm_safety
