test/test_dsl_parse.ml: Alcotest Dsl Figures Fmt Helpers History List Parse Pretty String Tm_safety
