test/test_event.ml: Alcotest Event Fmt Helpers Tm_safety
