test/test_figures.ml: Alcotest Du_opacity Figures Final_state Fmt Helpers History List Opacity Rco Search Serialization String Tm_safety Tms2
