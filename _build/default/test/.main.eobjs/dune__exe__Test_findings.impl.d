test/test_findings.ml: Alcotest Du_opacity Dump Figures Fmt Gen Helpers History Lemmas List Polygraph Serialization Tm_figures Tm_safety Tms2 Verdict
