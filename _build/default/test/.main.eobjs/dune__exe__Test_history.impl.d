test/test_history.ml: Alcotest Dsl Event Figures Helpers History List Tm_safety Txn
