test/test_limit.ml: Alcotest Dsl Event Figures Helpers History Limit List Sim Stm Tm_safety
