test/test_monitor.ml: Alcotest Du_opacity Event Figures Fmt Helpers History List Monitor Tm_safety Verdict
