test/test_polygraph.ml: Alcotest Dsl Figures Helpers List Opacity Polygraph Serialization String Tm_safety
