test/test_search.ml: Alcotest Dsl Du_opacity Figures Fmt Helpers History List Parse Search Serialization Tm_safety Verdict
