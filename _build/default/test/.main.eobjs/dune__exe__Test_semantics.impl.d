test/test_semantics.ml: Alcotest Array Completion Dsl Figures Helpers History Int List Semantics Serialization String Tm_safety
