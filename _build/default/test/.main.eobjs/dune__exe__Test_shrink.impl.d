test/test_shrink.ml: Alcotest Du_opacity Figures Fmt Helpers History List Opacity Shrink Sim Stm Tm_safety Verdict
