test/test_si.ml: Du_opacity Gen Helpers Parse QCheck2 Serializable Snapshot_isolation Tm_safety Verdict
