test/test_stm.ml: Alcotest Du_opacity Fmt Helpers History List Opacity Polygraph Pretty Sim Stm Tm_safety Verdict
