test/test_tools.ml: Alcotest Dot Dsl Du_opacity Figures Fmt Helpers History List Stats String Tm_safety Verdict
