(* Shared assertions and Alcotest testables. *)

open Tm_safety

let history = Alcotest.testable History.pp_inline History.equivalent

let event = Alcotest.testable Event.pp Event.equal

let check_sat name verdict =
  match verdict with
  | Verdict.Sat _ -> ()
  | Verdict.Unsat why -> Alcotest.failf "%s: expected Sat, got Unsat (%s)" name why
  | Verdict.Unknown why ->
      Alcotest.failf "%s: expected Sat, got Unknown (%s)" name why

let check_unsat name verdict =
  match verdict with
  | Verdict.Unsat _ -> ()
  | Verdict.Sat s ->
      Alcotest.failf "%s: expected Unsat, got Sat (%a)" name Serialization.pp s
  | Verdict.Unknown why ->
      Alcotest.failf "%s: expected Unsat, got Unknown (%s)" name why

let check_verdict name expected verdict =
  if expected then check_sat name verdict else check_unsat name verdict

(* Every Sat must carry a certificate the independent validator accepts. *)
let check_certified ~claim name h verdict =
  match verdict with
  | Verdict.Sat s -> (
      match Serialization.validate ~claim h s with
      | Ok () -> ()
      | Error why ->
          Alcotest.failf "%s: certificate rejected by validator: %s" name why)
  | Verdict.Unsat _ | Verdict.Unknown _ -> ()

let test name f = Alcotest.test_case name `Quick f

let slow name f = Alcotest.test_case name `Slow f

(* QCheck bridge: a history generator driven by Gen.params. *)
let arb_history ?(params = Gen.default) () =
  QCheck2.Gen.map (fun seed -> Gen.run_seed params seed) QCheck2.Gen.int

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)
