open Tm_safety
open Helpers

(* A corpus of classic (and paper-specific) anomalies, each with its verdict
   under every criterion.  Histories are given in the textual format — which
   also keeps the parser itself under test. *)

type entry = {
  name : string;
  text : string;
  du : bool;
  opaque : bool;
  fs : bool;
  ser : bool;  (** serializability of committed transactions *)
  strict : bool;  (** strict serializability of committed transactions *)
}

let corpus =
  [
    {
      name = "empty";
      text = "";
      du = true;
      opaque = true;
      fs = true;
      ser = true;
      strict = true;
    };
    {
      name = "serial-read-through";
      text = "W1(X,1)->ok C1->C R2(X)->1 C2->C";
      du = true;
      opaque = true;
      fs = true;
      ser = true;
      strict = true;
    };
    {
      name = "dirty-read-from-live";
      (* T2 returns T1's value before T1 even invokes tryC; T1 never
         commits in any completion that matters — illegal everywhere the
         aborted reads count, but the committed projection is just T2's
         write-free read... T2 commits having read a value nobody wrote:
         even plain serializability fails. *)
      text = "W1(X,1)->ok R2(X)->1 C2->C";
      du = false;
      opaque = false;
      fs = false;
      ser = false;
      strict = false;
    };
    {
      name = "read-from-commit-pending";
      (* The fig2 core: reading from a transaction whose tryC is pending is
         fine for (du-)opacity — some completion commits it.  Database-style
         serializability, which only looks at the *committed* projection,
         rejects: T2 committed a read nobody committed a write for. *)
      text = "W1(X,1)->ok C1 R2(X)->1 C2->C";
      du = true;
      opaque = true;
      fs = true;
      ser = false;
      strict = false;
    };
    {
      name = "read-from-aborted";
      text = "W1(X,1)->ok C1->A R2(X)->1 C2->C";
      du = false;
      opaque = false;
      fs = false;
      ser = false;
      strict = false;
    };
    {
      name = "lost-update";
      (* Both increments read 0 and write 1; no serial order explains both
         reads. *)
      text = "R1(X)->0 R2(X)->0 W1(X,1)->ok W2(X,2)->ok C1->C C2->C";
      du = false;
      opaque = false;
      fs = false;
      ser = false;
      strict = false;
    };
    {
      name = "write-skew";
      text = "R1(X)->0 R2(Y)->0 W1(Y,1)->ok W2(X,1)->ok C1->C C2->C";
      du = false;
      opaque = false;
      fs = false;
      ser = false;
      strict = false;
    };
    {
      name = "snapshot-read-besides-writer";
      (* Reader sees the old value while a writer is commit-pending: order
         the reader first (or abort the writer). *)
      text = "W1(X,1)->ok C1 R2(X)->0 C2->C";
      du = true;
      opaque = true;
      fs = true;
      ser = true;
      strict = true;
    };
    {
      name = "zombie-consistent";
      (* An aborted transaction whose reads are consistent: fine. *)
      text = "W1(X,1)->ok W1(Y,1)->ok C1->C R2(X)->1 R2(Y)->1 A2->A";
      du = true;
      opaque = true;
      fs = true;
      ser = true;
      strict = true;
    };
    {
      name = "zombie-torn-snapshot";
      (* The aborted T2 saw X new but Y old: committed transactions are
         perfectly serializable, but opacity (and du-opacity) reject —
         the paper's Section 1 motivation. *)
      text = "W1(X,1)->ok W1(Y,1)->ok C1->C R2(X)->1 R2(Y)->0 A2->A";
      du = false;
      opaque = false;
      fs = false;
      ser = true;
      strict = true;
    };
    {
      name = "zombie-live-torn";
      (* Same, but T2 never finishes: still rejected (completions abort
         it, its reads still count). *)
      text = "W1(X,1)->ok W1(Y,1)->ok C1->C R2(X)->1 R2(Y)->0";
      du = false;
      opaque = false;
      fs = false;
      ser = true;
      strict = true;
    };
    {
      name = "unrepeatable-read";
      text = "R1(X)->0 W2(X,1)->ok C2->C R1(X)->1 C1->C";
      du = false;
      opaque = false;
      fs = false;
      ser = false;
      strict = false;
    };
    {
      name = "repeatable-read";
      text = "R1(X)->0 W2(X,1)->ok C2 R1(X)->0 C1->C ret2:C";
      du = true;
      opaque = true;
      fs = true;
      ser = true;
      strict = true;
    };
    {
      name = "real-time-inversion";
      (* Committed T3 reads T1's value although T2 overwrote it strictly
         between them: serializable (T1,T3,T2 ... wait, T2 before T3 in
         real time).  Order T2,T1,T3 explains all reads but inverts the
         real-time order of T1 and T2. *)
      text = "W1(X,1)->ok C1->C W2(X,2)->ok C2->C R3(X)->1 C3->C";
      du = false;
      opaque = false;
      fs = false;
      ser = true;
      strict = false;
    };
    {
      name = "internal-read";
      text = "W1(X,5)->ok R1(X)->5 C1->C";
      du = true;
      opaque = true;
      fs = true;
      ser = true;
      strict = true;
    };
    {
      name = "internal-read-mismatch";
      text = "W1(X,5)->ok R1(X)->4 C1->C";
      du = false;
      opaque = false;
      fs = false;
      ser = false;
      strict = false;
    };
    {
      name = "internal-read-shadows-global";
      (* T2's own write shadows T1's committed value. *)
      text = "W1(X,1)->ok C1->C W2(X,9)->ok R2(X)->9 C2->C";
      du = true;
      opaque = true;
      fs = true;
      ser = true;
      strict = true;
    };
    {
      name = "aborted-op-read-unconstrained";
      (* A read answered A_k constrains nothing. *)
      text = "W1(X,1)->ok C1->C R2(X)->A";
      du = true;
      opaque = true;
      fs = true;
      ser = true;
      strict = true;
    };
    {
      name = "overwrite-then-read-old";
      (* T3 reads 1 after T2 committed 2 — but T2 overlaps T3, so the order
         T3 before T2 is available. *)
      text = "W1(X,1)->ok C1->C W2(X,2)->ok C2 R3(X)->1 C3->C ret2:C";
      du = true;
      opaque = true;
      fs = true;
      ser = true;
      strict = true;
    };
    {
      name = "write-visible-only-after-commit";
      (* du accepts reads from tryC-invoked transactions only: T1 invoked
         tryC before T2's read returned, so this is du-opaque even though
         C1 arrives last. *)
      text = "W1(X,1)->ok C1 R2(X)->1 C2->C ret1:C";
      du = true;
      opaque = true;
      fs = true;
      ser = true;
      strict = true;
    };
    {
      name = "future-read";
      (* T2 reads a value whose only writer starts after T2 finished:
         real-time-respecting criteria all reject; plain serializability,
         free to reorder, accepts T3,T2. *)
      text = "R2(X)->1 C2->C W3(X,1)->ok C3->C";
      du = false;
      opaque = false;
      fs = false;
      ser = true;
      strict = false;
    };
    {
      name = "concurrent-commit-pending-pair";
      (* Two pending tryCs on the same variable: the completion commits T2
         (T1 either way).  Committed-projection serializability again
         rejects the read from the pending T2. *)
      text = "W1(X,1)->ok W2(X,2)->ok C1 C2 R3(X)->2 C3->C";
      du = true;
      opaque = true;
      fs = true;
      ser = false;
      strict = false;
    };
    {
      name = "three-way-cycle";
      (* R1 sees T3's write, R2 sees T1's, R3 sees T2's — a cycle no order
         satisfies; everything overlaps so real time does not even help. *)
      text =
        "W1(X,1)->ok W2(Y,1)->ok W3(Z,1)->ok R1(Z)->1 R2(X)->1 R3(Y)->1 C1 C2 \
         C3 ret1:C ret2:C ret3:C";
      du = false;
      opaque = false;
      fs = false;
      ser = false;
      strict = false;
    };
  ]

let check_entry e () =
  let h = Parse.of_string_exn e.text in
  let du = Du_opacity.check h in
  check_verdict "du" e.du du;
  check_certified ~claim:Serialization.Du_opaque "du cert" h du;
  check_verdict "opacity" e.opaque (Opacity.check h);
  let fs = Final_state.check h in
  check_verdict "final-state" e.fs fs;
  check_certified ~claim:Serialization.Final_state "fs cert" h fs;
  check_verdict "serializable" e.ser (Serializable.check h);
  check_verdict "strict serializable" e.strict (Serializable.check_strict h)

let suite =
  [
    ( "corpus",
      List.map (fun e -> test e.name (check_entry e)) corpus );
  ]
