open Tm_safety
open Helpers

let test_matches () =
  let open Event in
  Alcotest.(check bool) "read/value" true (matches (Read 0) (Read_ok 3));
  Alcotest.(check bool) "read/abort" true (matches (Read 0) Aborted);
  Alcotest.(check bool) "read/ok" false (matches (Read 0) Write_ok);
  Alcotest.(check bool) "read/commit" false (matches (Read 0) Committed);
  Alcotest.(check bool) "write/ok" true (matches (Write (0, 1)) Write_ok);
  Alcotest.(check bool) "write/value" false (matches (Write (0, 1)) (Read_ok 1));
  Alcotest.(check bool) "write/abort" true (matches (Write (0, 1)) Aborted);
  Alcotest.(check bool) "tryC/commit" true (matches Try_commit Committed);
  Alcotest.(check bool) "tryC/abort" true (matches Try_commit Aborted);
  Alcotest.(check bool) "tryC/ok" false (matches Try_commit Write_ok);
  Alcotest.(check bool) "tryA/abort" true (matches Try_abort Aborted);
  Alcotest.(check bool) "tryA/commit" false (matches Try_abort Committed)

let test_tx_of () =
  Alcotest.(check int) "inv" 3 (Event.tx_of (Event.Inv (3, Event.Try_commit)));
  Alcotest.(check int) "res" 7 (Event.tx_of (Event.Res (7, Event.Aborted)))

let test_tvar_names () =
  let name x = Fmt.str "%a" Event.pp_tvar x in
  Alcotest.(check string) "X" "X" (name 0);
  Alcotest.(check string) "Y" "Y" (name 1);
  Alcotest.(check string) "Z" "Z" (name 2);
  Alcotest.(check string) "W" "W" (name 3);
  Alcotest.(check string) "V" "V" (name 4);
  Alcotest.(check string) "U" "U" (name 5);
  Alcotest.(check string) "X6" "X6" (name 6);
  Alcotest.(check string) "X42" "X42" (name 42)

let test_pp () =
  let s e = Event.to_string e in
  Alcotest.(check string) "inv read" "inv1:R(X)" (s (Event.Inv (1, Event.Read 0)));
  Alcotest.(check string) "inv write" "inv2:W(Y,5)"
    (s (Event.Inv (2, Event.Write (1, 5))));
  Alcotest.(check string) "res value" "res1:ret(5)"
    (s (Event.Res (1, Event.Read_ok 5)));
  Alcotest.(check string) "res commit" "res3:C" (s (Event.Res (3, Event.Committed)))

let test_constants () =
  Alcotest.(check int) "t0" 0 Event.t0;
  Alcotest.(check int) "init" 0 Event.init_value

let suite =
  [
    ( "event",
      [
        test "matches" test_matches;
        test "tx_of" test_tx_of;
        test "tvar names" test_tvar_names;
        test "pretty-printing" test_pp;
        test "constants" test_constants;
      ] );
  ]
