open Tm_safety
open Helpers

(* Machine-check every claim the paper makes about its example histories —
   and certify every positive verdict with the independent validator. *)

let check_expectation (e : Figures.expectation) () =
  let du = Du_opacity.check e.history in
  check_verdict (e.name ^ " du-opacity") e.du_opaque du;
  check_certified ~claim:Serialization.Du_opaque (e.name ^ " du cert") e.history du;
  let opq = Opacity.check e.history in
  check_verdict (e.name ^ " opacity") e.opaque opq;
  let fs = Final_state.check e.history in
  check_verdict (e.name ^ " final-state") e.final_state fs;
  check_certified ~claim:Serialization.Final_state (e.name ^ " fs cert")
    e.history fs;
  (match e.tms2 with
  | Some expected -> check_verdict (e.name ^ " tms2") expected (Tms2.check e.history)
  | None -> ());
  match e.rco with
  | Some expected -> check_verdict (e.name ^ " rco") expected (Rco.check e.history)
  | None -> ()

let catalog_tests =
  List.map
    (fun (e : Figures.expectation) -> test e.Figures.name (check_expectation e))
    Figures.catalog

(* Figure 1: the paper exhibits the serialization T2,T3,T1,T4; check that
   this exact certificate validates, including its local serializations. *)
let test_fig1_certificate () =
  let s = Serialization.make ~order:[ 2; 3; 1; 4 ] ~committed:[ 1; 2; 3; 4 ] in
  match Serialization.validate ~claim:Serialization.Du_opaque Figures.fig1 s with
  | Ok () -> ()
  | Error why -> Alcotest.failf "paper's fig1 serialization rejected: %s" why

(* The order is tight: T3,T2,T1,T4 breaks real time (T2 ≺RT T3), and
   T2,T1,T3,T4 breaks legality (T4 would read T3's 1 instead of T1's 2). *)
let test_fig1_order_is_tight () =
  let reject order why_fragment =
    let s = Serialization.make ~order ~committed:[ 1; 2; 3; 4 ] in
    match Serialization.validate ~claim:Serialization.Du_opaque Figures.fig1 s with
    | Ok () -> Alcotest.failf "expected rejection of %a" Fmt.(list ~sep:comma int) order
    | Error why ->
        let contains =
          let n = String.length why_fragment and m = String.length why in
          let rec go i =
            i + n <= m && (String.sub why i n = why_fragment || go (i + 1))
          in
          go 0
        in
        if not contains then
          Alcotest.failf "rejection %S does not mention %S" why why_fragment
  in
  reject [ 3; 2; 1; 4 ] "real-time";
  reject [ 2; 1; 3; 4 ] "latest written value"

(* Figure 2: every finite instance is du-opaque, and in *every* serialization
   all zero-readers precede T1 — forcing T1's position to grow without
   bound, the paper's Proposition 1 divergence argument. *)
let test_fig2_prefix_family () =
  List.iter
    (fun readers ->
      let h = Figures.fig2 ~readers in
      let v = Du_opacity.check h in
      check_sat (Fmt.str "fig2(%d)" readers) v;
      check_certified ~claim:Serialization.Du_opaque "fig2 cert" h v;
      (* Forcing T1 before any zero-reader is unsatisfiable. *)
      for reader = 3 to readers do
        let forced =
          Search.serialize
            { Search.du with extra_edges = [ (1, reader) ] }
            h
        in
        check_unsat (Fmt.str "fig2(%d) with T1<T%d" readers reader) forced
      done)
    [ 3; 4; 5; 6; 8 ]

let test_fig2_all_prefixes () =
  let h = Figures.fig2 ~readers:6 in
  for i = 0 to History.length h do
    check_sat (Fmt.str "fig2 prefix %d" i) (Du_opacity.check (History.prefix h i))
  done

(* Figure 3: locate the exact prefix where final-state opacity is lost. *)
let test_fig3_bad_prefix () =
  match Opacity.first_bad_prefix Figures.fig3 with
  | Some 4 -> ()
  | Some i -> Alcotest.failf "expected first bad prefix 4, got %d" i
  | None -> Alcotest.fail "expected a bad prefix"

(* Figure 4, following the paper's proof of Proposition 2: every prefix is
   final-state opaque (so H is opaque), yet H is not du-opaque. *)
let test_fig4_prefixwise () =
  let h = Figures.fig4 in
  for i = 0 to History.length h do
    check_sat (Fmt.str "fig4 prefix %d final-state" i)
      (Final_state.check (History.prefix h i))
  done;
  check_unsat "fig4 du" (Du_opacity.check h);
  (* The paper: the only final-state serialization order is T1,T3,T2. *)
  let s = Serialization.make ~order:[ 1; 3; 2 ] ~committed:[ 3 ] in
  (match Serialization.validate ~claim:Serialization.Final_state h s with
  | Ok () -> ()
  | Error why -> Alcotest.failf "T1,T3,T2 rejected: %s" why);
  match Serialization.validate ~claim:Serialization.Du_opaque h s with
  | Ok () -> Alcotest.fail "fig4 should fail the du clause"
  | Error _ -> ()

(* Figure 5 is sequential: the GHS'08 restriction bites even without
   concurrency. *)
let test_fig5_sequential () =
  Alcotest.(check bool) "sequential" true (History.is_sequential Figures.fig5);
  (* The paper: T1,T3,T2 is the (du-)serialization. *)
  let s = Serialization.make ~order:[ 1; 3; 2 ] ~committed:[ 1; 3 ] in
  match Serialization.validate ~claim:Serialization.Du_opaque Figures.fig5 s with
  | Ok () -> ()
  | Error why -> Alcotest.failf "T1,T3,T2 rejected: %s" why

(* Figure 6: the du-serialization is T2,T1; TMS2's conflict-commit edge
   (T1 before T2) is exactly what kills it. *)
let test_fig6_edges () =
  let edges = Tms2.edges Figures.fig6 in
  Alcotest.(check bool) "edge (1,2) present" true (List.mem (1, 2) edges);
  let s = Serialization.make ~order:[ 2; 1 ] ~committed:[ 1; 2 ] in
  (match Serialization.validate ~claim:Serialization.Du_opaque Figures.fig6 s with
  | Ok () -> ()
  | Error why -> Alcotest.failf "T2,T1 rejected: %s" why);
  (* And T1,T2 is NOT a legal serialization. *)
  let s' = Serialization.make ~order:[ 1; 2 ] ~committed:[ 1; 2 ] in
  match Serialization.validate ~claim:Serialization.Final_state Figures.fig6 s' with
  | Ok () -> Alcotest.fail "T1,T2 should be illegal"
  | Error _ -> ()

(* The checkers agree with the subset relations on the figures themselves:
   du ⊆ opacity ⊆ final-state (Theorem 10 / Definition 5). *)
let test_figure_inclusions () =
  List.iter
    (fun (e : Figures.expectation) ->
      if e.du_opaque then
        Alcotest.(check bool) (e.name ^ ": du => opaque") true e.opaque;
      if e.opaque then
        Alcotest.(check bool) (e.name ^ ": opaque => fs") true e.final_state)
    Figures.catalog

let suite =
  [
    ("figures: catalog", catalog_tests);
    ( "figures: fine structure",
      [
        test "fig1 paper certificate" test_fig1_certificate;
        test "fig1 order is tight" test_fig1_order_is_tight;
        test "fig2 prefix family + forced order" test_fig2_prefix_family;
        test "fig2 all prefixes du-opaque" test_fig2_all_prefixes;
        test "fig3 first bad prefix" test_fig3_bad_prefix;
        test "fig4 prefixwise final-state" test_fig4_prefixwise;
        test "fig5 sequential + certificate" test_fig5_sequential;
        test "fig6 TMS2 edge" test_fig6_edges;
        test "catalog inclusions" test_figure_inclusions;
      ] );
  ]
