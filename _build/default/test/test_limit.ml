open Tm_safety
open Helpers

(* Figure 2's family: Proposition 1 seen through the Limit analyser. *)
let fig2_family d = Figures.fig2 ~readers:d

let test_fig2_family () =
  let r = Limit.analyze ~family:fig2_family ~depths:[ 3; 4; 5; 6; 8 ] () in
  Alcotest.(check bool) "all prefixes du-opaque" true r.Limit.all_du_opaque;
  (* T1's tryC and hence T1 never completes: Theorem 5's restriction is
     violated... *)
  Alcotest.(check bool) "T1 never complete" true
    (List.mem 1 r.Limit.never_complete);
  (* ...and indeed the serialization chain never stabilises (every new
     zero-reader squeezes in before T1 and T2). *)
  Alcotest.(check bool) "chain drifts" false r.Limit.stabilised

(* The same family, completed per Theorem 5's restriction: T1 commits, T2
   t-completes, later readers read 1. *)
let completed_family d =
  let base = History.to_list (Figures.fig2 ~readers:6) in
  let completion =
    Event.
      [
        Res (1, Committed);
        Inv (2, Try_commit);
        Res (2, Committed);
      ]
  in
  let late = List.concat (List.init d (fun i -> Dsl.r (7 + i) Dsl.x 1)) in
  History.of_events_exn (base @ completion @ late)

let test_completed_family () =
  let r = Limit.analyze ~family:completed_family ~depths:[ 0; 2; 4; 8; 16 ] () in
  Alcotest.(check bool) "all du-opaque" true r.Limit.all_du_opaque;
  Alcotest.(check (list int)) "everything completes" [] r.Limit.never_complete;
  Alcotest.(check bool) "chain stabilises (Theorem 5)" true r.Limit.stabilised

(* A violating family member surfaces as not-du-opaque. *)
let test_broken_member () =
  let family d =
    (* depth 0: fine; deeper: append a dirty read *)
    let base = Dsl.(history [ w 1 x 1 ]) in
    if d = 0 then base
    else
      History.of_events_exn
        (History.to_list base @ List.concat Dsl.[ r 2 x 1; c 2 ])
  in
  let r = Limit.analyze ~family ~depths:[ 0; 1 ] () in
  Alcotest.(check bool) "not all du-opaque" false r.Limit.all_du_opaque;
  Alcotest.(check bool) "hence not stabilised" false r.Limit.stabilised

let test_rejects_non_monotone () =
  let family d = if d = 0 then Dsl.(history [ w 1 x 1 ]) else Dsl.(history [ r 1 x 0 ]) in
  match Limit.analyze ~family ~depths:[ 0; 1 ] () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* An STM's own prefix family stabilises: recorded histories are complete
   up to the final in-flight operations, and the chain of hinted
   serializations extends monotonically. *)
let test_stm_prefix_family () =
  let h =
    (Sim.Runner.run ~stm:"mvcc"
       ~params:
         {
           Stm.Workload.default with
           n_threads = 3;
           txns_per_thread = 3;
           ops_per_txn = 3;
           n_vars = 3;
         }
       ~seed:5 ())
      .Sim.Runner.history
  in
  let family d = History.prefix h d in
  let n = History.length h in
  let depths = [ n / 4; n / 2; 3 * n / 4; n ] in
  let r = Limit.analyze ~family ~depths () in
  Alcotest.(check bool) "all du-opaque" true r.Limit.all_du_opaque;
  Alcotest.(check (list int)) "all complete at the end" [] r.Limit.never_complete

let suite =
  [
    ( "limit analysis (Theorem 5 / Proposition 1)",
      [
        test "fig2 family drifts" test_fig2_family;
        test "completed family stabilises" test_completed_family;
        test "broken member detected" test_broken_member;
        test "monotonicity enforced" test_rejects_non_monotone;
        test "stm prefix family" test_stm_prefix_family;
      ] );
  ]
