open Tm_safety
open Helpers
open Dsl

let uw_history =
  (* Unique writes: T1 and T3 write distinct values. *)
  history [ w 1 x 1; c 1; r 2 x 1; w 3 x 2; c 3; r 2 y 0 ]

let test_unique_writes_predicate () =
  Alcotest.(check bool) "uw" true (Polygraph.unique_writes uw_history);
  Alcotest.(check bool) "fig1 duplicates" false (Polygraph.unique_writes Figures.fig1);
  Alcotest.(check bool) "fig4 duplicates" false (Polygraph.unique_writes Figures.fig4)

let test_sat () =
  match Polygraph.check uw_history with
  | Polygraph.Sat s -> (
      match Serialization.validate ~claim:Serialization.Du_opaque uw_history s with
      | Ok () -> ()
      | Error why -> Alcotest.failf "certificate rejected: %s" why)
  | Polygraph.Unsat why -> Alcotest.failf "expected Sat, got Unsat: %s" why
  | Polygraph.Not_unique why -> Alcotest.failf "unexpected Not_unique: %s" why

let test_unsat_dirty () =
  (* Read from a live transaction. *)
  let h = history [ w_inv 1 x 1; w_ok 1; r 2 x 1; c 2 ] in
  match Polygraph.check h with
  | Polygraph.Unsat _ -> ()
  | Polygraph.Sat _ -> Alcotest.fail "dirty read accepted"
  | Polygraph.Not_unique why -> Alcotest.failf "unexpected Not_unique: %s" why

let test_unsat_cycle () =
  (* Unique-writes write-skew. *)
  let h =
    history
      [ r_inv 1 x; ret 1 0; r_inv 2 y; ret 2 0; w 1 y 1; w 2 x 2; c_inv 1;
        c_inv 2; committed 1; committed 2 ]
  in
  Alcotest.(check bool) "uw" true (Polygraph.unique_writes h);
  match Polygraph.check h with
  | Polygraph.Unsat _ -> ()
  | Polygraph.Sat s -> Alcotest.failf "write skew accepted: %a" Serialization.pp s
  | Polygraph.Not_unique why -> Alcotest.failf "unexpected Not_unique: %s" why

let test_not_unique_reported () =
  match Polygraph.check Figures.fig1 with
  | Polygraph.Not_unique _ -> ()
  | Polygraph.Sat _ | Polygraph.Unsat _ ->
      Alcotest.fail "fig1 has duplicate writes; polygraph must decline"

let test_fallback () =
  (* check_or_fallback must agree with the general checker everywhere. *)
  List.iter
    (fun (e : Figures.expectation) ->
      let v = Polygraph.check_or_fallback e.history in
      check_verdict (e.name ^ " fallback") e.du_opaque v)
    Figures.catalog

let test_initial_value_writer_ambiguity () =
  (* Someone writes the initial value 0: the fixed-reads-from trick is off. *)
  let h = history [ w 1 x 0; c 1; r 2 x 0; c 2 ] in
  match Polygraph.check h with
  | Polygraph.Not_unique _ -> ()
  | Polygraph.Sat _ | Polygraph.Unsat _ ->
      Alcotest.fail "ambiguous initial-value read must fall back"

let test_forced_commit_of_pending () =
  (* T1's tryC is pending; T2 reads its value: the polygraph must commit
     T1 in the certificate. *)
  let h = history [ w 1 x 1; c_inv 1; r 2 x 1; c 2 ] in
  match Polygraph.check h with
  | Polygraph.Sat s ->
      Alcotest.(check bool) "T1 committed" true (Serialization.commits s 1)
  | Polygraph.Unsat why -> Alcotest.failf "Unsat: %s" why
  | Polygraph.Not_unique why -> Alcotest.failf "Not_unique: %s" why

let test_du_precondition () =
  (* Unique-writes version of fig4: reading from a future committer. *)
  let h = history [ w 1 x 1; c_inv 1; r 2 x 2; w 3 x 2; c 3; aborted 1 ] in
  Alcotest.(check bool) "uw" true (Polygraph.unique_writes h);
  (match Polygraph.check h with
  | Polygraph.Unsat why ->
      let contains =
        let needle = "tryC" in
        let n = String.length needle and m = String.length why in
        let rec go i = i + n <= m && (String.sub why i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions tryC" true contains
  | Polygraph.Sat _ -> Alcotest.fail "du precondition missed"
  | Polygraph.Not_unique why -> Alcotest.failf "Not_unique: %s" why);
  (* And by Theorem 11, under unique writes the general opacity checker
     agrees (the history is not opaque either). *)
  check_unsat "opacity agrees" (Opacity.check h)

let suite =
  [
    ( "polygraph (unique writes)",
      [
        test "unique_writes predicate" test_unique_writes_predicate;
        test "sat + certificate" test_sat;
        test "unsat: read from live" test_unsat_dirty;
        test "unsat: write skew" test_unsat_cycle;
        test "declines duplicates" test_not_unique_reported;
        test "fallback agrees on figures" test_fallback;
        test "initial-value writer ambiguity" test_initial_value_writer_ambiguity;
        test "forces commit of pending writer" test_forced_commit_of_pending;
        test "du precondition (Thm 11 shape)" test_du_precondition;
      ] );
  ]
