open Tm_safety
open Helpers

let test_empty () =
  check_sat "empty history" (Search.serialize Search.default History.empty)

let test_budget_unknown () =
  (* A hard instance with a 1-node budget must answer Unknown, never a
     false negative. *)
  let h = Figures.fig1 in
  match Search.serialize { Search.du with max_nodes = Some 1 } h with
  | Verdict.Unknown _ -> ()
  | Verdict.Sat _ -> Alcotest.fail "cannot finish in one node"
  | Verdict.Unsat _ -> Alcotest.fail "budget must not fabricate Unsat"

let test_budget_generous () =
  match Search.serialize { Search.du with max_nodes = Some 1_000_000 } Figures.fig1 with
  | Verdict.Sat _ -> ()
  | v -> Alcotest.failf "expected Sat, got %a" Verdict.pp v

let test_hint_used () =
  (* With a correct hint the search should take the minimum number of nodes:
     one per placement plus the root. *)
  let h = Figures.fig5 in
  let _, no_hint = Search.search Search.du h in
  let v, hinted =
    Search.search { Search.du with hint = Some [ 1; 3; 2 ] } h
  in
  check_sat "hinted still sat" v;
  Alcotest.(check bool)
    (Fmt.str "hint helps or equal (%d <= %d)" hinted.Search.nodes
       no_hint.Search.nodes)
    true
    (hinted.Search.nodes <= no_hint.Search.nodes);
  Alcotest.(check int) "minimal descent" 4 hinted.Search.nodes

let test_bad_hint_harmless () =
  let v =
    Search.serialize { Search.du with hint = Some [ 2; 1; 99 ] } Figures.fig5
  in
  check_sat "bad hint still finds" v

let test_extra_edges_force_order () =
  (* fig6: forcing T1 before T2 makes it unsatisfiable (that is the TMS2
     argument). *)
  check_unsat "forced edge"
    (Search.serialize { Search.default with extra_edges = [ (1, 2) ] } Figures.fig6);
  check_sat "other direction fine"
    (Search.serialize { Search.default with extra_edges = [ (2, 1) ] } Figures.fig6)

let test_extra_edges_unknown_tx () =
  match
    Search.serialize { Search.default with extra_edges = [ (1, 99) ] } Figures.fig6
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_respect_rt_off () =
  (* future-read from the corpus: Unsat with real time, Sat without. *)
  let h = Parse.of_string_exn "R2(X)->1 C2->C W3(X,1)->ok C3->C" in
  check_unsat "with rt" (Search.serialize Search.default h);
  check_sat "without rt"
    (Search.serialize { Search.default with respect_rt = false } h)

let test_prefilter_stats () =
  (* fig3' dies in the prefilter: no search nodes. *)
  let v, stats = Search.search Search.du Figures.fig3_prefix in
  check_unsat "fig3'" v;
  Alcotest.(check bool) "prefiltered" true stats.Search.prefiltered;
  Alcotest.(check int) "no nodes" 0 stats.Search.nodes

let test_du_stricter_than_plain () =
  (* Plain mode accepts fig4; Du rejects. Same engine, same input. *)
  check_sat "plain" (Search.serialize Search.default Figures.fig4);
  check_unsat "du" (Search.serialize Search.du Figures.fig4)

(* The engine must explore commit AND abort decisions for pending tryC:
   here serialization requires aborting T1 (its write would break T2's
   read) even though committing is the first choice tried. *)
let test_decision_backtracking () =
  let h =
    Dsl.(
      history
        [ w 1 x 1; c_inv 1; r 2 x 0; w 2 x 2; c 2 ])
  in
  match Du_opacity.check h with
  | Verdict.Sat s ->
      Alcotest.(check bool) "T1 aborted in certificate" false
        (Serialization.commits s 1)
  | v -> Alcotest.failf "expected Sat, got %a" Verdict.pp v

(* Memoisation must not change verdicts: compare exhaustive small searches
   with an engine run that cannot benefit from memo (hint irrelevant).
   We use the corpus: every verdict equals a fresh run. *)
let test_determinism () =
  List.iter
    (fun (e : Figures.expectation) ->
      let v1 = Search.serialize Search.du e.history in
      let v2 = Search.serialize Search.du e.history in
      Alcotest.(check bool) (e.name ^ " deterministic") true
        (Verdict.is_sat v1 = Verdict.is_sat v2))
    Figures.catalog

let suite =
  [
    ( "search engine",
      [
        test "empty history" test_empty;
        test "budget yields Unknown" test_budget_unknown;
        test "budget large enough" test_budget_generous;
        test "hint shortens the search" test_hint_used;
        test "bad hint harmless" test_bad_hint_harmless;
        test "extra edges force order" test_extra_edges_force_order;
        test "extra edges validate tx ids" test_extra_edges_unknown_tx;
        test "respect_rt:false" test_respect_rt_off;
        test "prefilter short-circuits" test_prefilter_stats;
        test "du stricter than plain" test_du_stricter_than_plain;
        test "decision backtracking" test_decision_backtracking;
        test "determinism" test_determinism;
      ] );
  ]
