open Tm_safety
open Helpers

let test_satisfying_returns_none () =
  Alcotest.(check bool) "fig1" true (Shrink.minimal_violation Figures.fig1 = None)

let test_shrinks_fig4_to_itself_or_smaller () =
  match Shrink.minimal_violation Figures.fig4 with
  | None -> Alcotest.fail "fig4 violates du-opacity"
  | Some core ->
      Alcotest.(check bool) "still violating" true
        (Verdict.is_unsat (Du_opacity.check core));
      Alcotest.(check bool) "no bigger" true
        (History.length core <= History.length Figures.fig4)

let test_shrinks_control_runs () =
  (* Violations from the broken STMs shrink to small readable cores. *)
  List.iter
    (fun stm ->
      let params =
        {
          Stm.Workload.default with
          n_threads = 3;
          txns_per_thread = 5;
          ops_per_txn = 3;
          n_vars = 3;
        }
      in
      let rec hunt seed =
        if seed > 20 then None
        else
          let h = (Sim.Runner.run ~stm ~params ~seed ()).Sim.Runner.history in
          if Verdict.is_unsat (Du_opacity.check_fast ~max_nodes:1_000_000 h)
          then Some h
          else hunt (seed + 1)
      in
      match hunt 1 with
      | None -> Alcotest.failf "%s: no violation to shrink" stm
      | Some h -> (
          match Shrink.minimal_violation ~max_nodes:1_000_000 h with
          | None -> Alcotest.failf "%s: shrink lost the violation" stm
          | Some core ->
              Alcotest.(check bool)
                (Fmt.str "%s core is small (%d events from %d)" stm
                   (History.length core) (History.length h))
                true
                (History.length core < History.length h
                && History.length core <= 24);
              Alcotest.(check bool) "core still violating" true
                (Verdict.is_unsat
                   (Du_opacity.check_fast ~max_nodes:1_000_000 core));
              (* Local minimality: no single transaction is removable. *)
              List.iter
                (fun k ->
                  let without =
                    History.project core ~keep:(fun k' -> k' <> k)
                  in
                  Alcotest.(check bool)
                    (Fmt.str "%s: dropping T%d loses the violation" stm k)
                    true
                    (Verdict.is_sat
                       (Du_opacity.check_fast ~max_nodes:1_000_000 without)))
                (History.txns core)))
    [ "pessimistic"; "dirty-read"; "eager" ]

let test_custom_property () =
  (* Shrinking against opacity instead of du-opacity. *)
  match
    Shrink.minimal_violation
      ~check:(fun h -> Opacity.check ~max_nodes:500_000 h)
      Figures.fig3
  with
  | None -> Alcotest.fail "fig3 is not opaque"
  | Some core ->
      Alcotest.(check bool) "still not opaque" true
        (Verdict.is_unsat (Opacity.check core));
      (* Dropping T1 entirely leaves R2(X)->1 — a read of a value nobody
         wrote, still a violation and the true minimal core: 2 events. *)
      Alcotest.(check int) "2-event core" 2 (History.length core)

let suite =
  [
    ( "shrink",
      [
        test "satisfying history" test_satisfying_returns_none;
        test "fig4" test_shrinks_fig4_to_itself_or_smaller;
        slow "control-run violations shrink small" test_shrinks_control_runs;
        test "custom property (opacity, fig3)" test_custom_property;
      ] );
  ]
