open Tm_safety
open Helpers

let si h = Snapshot_isolation.check h

let of_text = Parse.of_string_exn

let test_classics () =
  (* Write skew: the SI anomaly par excellence — SI yes, serializable no. *)
  let write_skew =
    of_text "R1(X)->0 R2(Y)->0 W1(Y,1)->ok W2(X,1)->ok C1->C C2->C"
  in
  check_sat "write skew is SI" (si write_skew);
  check_unsat "write skew not serializable" (Serializable.check write_skew);
  (* Lost update: both read 0 and write the same variable — the
     first-committer-wins rule rejects. *)
  let lost_update =
    of_text "R1(X)->0 R2(X)->0 W1(X,1)->ok W2(X,2)->ok C1->C C2->C"
  in
  check_unsat "lost update not SI" (si lost_update);
  (* Unrepeatable read: two reads of one variable cannot come from one
     snapshot. *)
  let unrepeatable = of_text "R1(X)->0 W2(X,1)->ok C2->C R1(X)->1 C1->C" in
  check_unsat "unrepeatable read not SI" (si unrepeatable);
  (* Serial execution: SI trivially. *)
  check_sat "serial read-through"
    (si (of_text "W1(X,1)->ok C1->C R2(X)->1 C2->C"));
  (* Torn snapshot in an ABORTED transaction: invisible to SI (committed
     projection), caught by du-opacity — the §1 gap again. *)
  let torn =
    of_text "W1(X,1)->ok W1(Y,1)->ok C1->C R2(X)->1 R2(Y)->0 A2->A"
  in
  check_sat "aborted torn snapshot invisible to SI" (si torn);
  check_unsat "but not du-opaque" (Du_opacity.check torn)

let test_read_old_snapshot () =
  (* A transaction may read an arbitrarily old snapshot: T3 reads X=0
     although T1 committed X=1 before T3 even began. Plain SI has no
     real-time clause, so this passes. *)
  let h = of_text "W1(X,1)->ok C1->C R3(X)->0 C3->C" in
  check_sat "old snapshot ok under SI" (si h);
  check_unsat "strict serializability refuses" (Serializable.check_strict h)

let test_ww_disjointness_via_snapshot () =
  (* Two writers of X where the second READ X from the first: intervals
     are disjoint, fine. *)
  let h = of_text "R1(X)->0 W1(X,1)->ok C1->C R2(X)->1 W2(X,2)->ok C2->C" in
  check_sat "chained updates" (si h)

let prop_ser_implies_si =
  qtest ~count:200 "serializable => SI"
    (QCheck2.Gen.bind QCheck2.Gen.bool (fun snapshot ->
         arb_history
           ~params:
             (if snapshot then
                { Gen.default with n_txns = 6; n_threads = 3; max_ops = 3 }
              else
                {
                  Gen.default with
                  n_txns = 6;
                  n_threads = 3;
                  max_ops = 3;
                  mode = `Random_values;
                  value_range = 2;
                })
           ()))
    (fun h ->
      let v = Serializable.check ~max_nodes:300_000 h in
      match v, si h with
      | Verdict.Sat _, Verdict.Sat _ -> true
      | Verdict.Sat _, Verdict.Unsat _ -> false
      | Verdict.Unsat _, _ -> true
      | Verdict.Unknown _, _ | _, Verdict.Unknown _ -> QCheck2.assume_fail ())

let suite =
  [
    ( "snapshot isolation",
      [
        test "classic anomalies" test_classics;
        test "old snapshots allowed" test_read_old_snapshot;
        test "chained writers" test_ww_disjointness_via_snapshot;
        prop_ser_implies_si;
      ] );
  ]
