open Tm_safety
open Helpers

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i =
    i + n <= m && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let test_stats_fig1 () =
  let s = Stats.of_history Figures.fig1 in
  Alcotest.(check int) "events" 18 s.Stats.events;
  Alcotest.(check int) "txns" 4 s.Stats.txns;
  Alcotest.(check int) "committed" 4 s.Stats.committed;
  Alcotest.(check int) "reads" 2 s.Stats.reads;
  Alcotest.(check int) "writes" 3 s.Stats.writes;
  Alcotest.(check int) "vars" 1 s.Stats.vars;
  Alcotest.(check bool) "overlap >= 2" true (s.Stats.max_overlap >= 2)

let test_stats_empty () =
  let s = Stats.of_history History.empty in
  Alcotest.(check int) "events" 0 s.Stats.events;
  Alcotest.(check int) "txns" 0 s.Stats.txns;
  Alcotest.(check int) "overlap" 0 s.Stats.max_overlap

let test_stats_statuses () =
  let h =
    Dsl.(
      history
        [ w 1 x 1; c 1; w 2 x 2; c_abort 2; w 3 x 3; c_inv 3; r_inv 4 x ])
  in
  let s = Stats.of_history h in
  Alcotest.(check int) "committed" 1 s.Stats.committed;
  Alcotest.(check int) "aborted" 1 s.Stats.aborted;
  Alcotest.(check int) "commit-pending" 1 s.Stats.commit_pending;
  Alcotest.(check int) "live" 1 s.Stats.live

let test_stats_sequential_overlap () =
  let h = Dsl.(seq [ (fun k -> [ w k x 1; c k ]); (fun k -> [ r k x 1; c k ]) ]) in
  let s = Stats.of_history h in
  Alcotest.(check int) "no overlap" 1 s.Stats.max_overlap;
  Alcotest.(check int) "no overlapping pairs" 0 s.Stats.overlapping_pairs

let test_dot_structure () =
  let dot = Dot.of_history Figures.fig4 in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Fmt.str "dot contains %s" needle) true
        (contains dot needle))
    [
      "digraph history";
      "t1 [";
      "t2 [";
      "t3 [";
      "aborted";
      "committed";
      (* R2(X) returns before T3's commit point: a conflict edge *)
      "t2 -> t3";
    ]

let test_dot_with_serialization () =
  match Du_opacity.check Figures.fig1 with
  | Verdict.Sat s ->
      let dot = Dot.of_history ~serialization:s Figures.fig1 in
      Alcotest.(check bool) "positions rendered" true (contains dot "S[0]")
  | v -> Alcotest.failf "fig1: %a" Verdict.pp v

let suite =
  [
    ( "stats & dot",
      [
        test "stats on fig1" test_stats_fig1;
        test "stats on empty" test_stats_empty;
        test "status counts" test_stats_statuses;
        test "sequential overlap" test_stats_sequential_overlap;
        test "dot structure" test_dot_structure;
        test "dot with serialization" test_dot_with_serialization;
      ] );
  ]
