(* Benchmark and experiment harness: regenerates every table/figure-style
   result catalogued in DESIGN.md (per-experiment index) and EXPERIMENTS.md.

     dune exec bench/main.exe             # everything
     dune exec bench/main.exe -- figures limit   # selected sections

   Verdict tables print paper-expected vs measured; timing tables are
   Bechamel estimates (ns per run, OLS on the monotonic clock). *)

open Tm_safety
open Bechamel

let section_header name =
  Fmt.pr "@.============================================================@.";
  Fmt.pr "== %s@." name;
  Fmt.pr "============================================================@."

(* --- Bechamel helpers ------------------------------------------------- *)

let ols =
  Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]

let run_bechamel ?(quota = 0.3) tests =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ()
  in
  let grouped = Test.make_grouped ~name:"" ~fmt:"%s%s" tests in
  let raw =
    Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped
  in
  Analyze.all ols Toolkit.Instance.monotonic_clock raw

let print_timings results =
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "      n/a"
        else if ns > 1e9 then Fmt.str "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Fmt.str "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Fmt.str "%8.2f µs" (ns /. 1e3)
        else Fmt.str "%8.0f ns" ns
      in
      Fmt.pr "  %-42s %s/run@." name pretty)
    rows

let yes_no v = if Verdict.is_sat v then "yes" else "no "
let expect b = if b then "yes" else "no "

(* --- Section: figures -------------------------------------------------- *)

let bench_figures () =
  section_header
    "figures — the paper's Figures 1-6: expected vs measured verdicts";
  Fmt.pr "%-8s  %-14s %-14s %-14s %-10s %-10s@." "figure" "du-opaque" "opaque"
    "final-state" "tms2" "rco";
  let ok = ref true in
  List.iter
    (fun (e : Figures.expectation) ->
      let du = Du_opacity.check e.history in
      let opq = Opacity.check e.history in
      let fs = Final_state.check e.history in
      let cell measured expected =
        let s = Fmt.str "%s (exp %s)" (yes_no measured) (expect expected) in
        if Verdict.is_sat measured <> expected then ok := false;
        s
      in
      let opt_cell check = function
        | Some expected -> cell (check e.history) expected
        | None -> "-"
      in
      Fmt.pr "%-8s  %-14s %-14s %-14s %-10s %-10s@." e.name
        (cell du e.du_opaque) (cell opq e.opaque) (cell fs e.final_state)
        (opt_cell (fun h -> Tms2.check h) e.tms2)
        (opt_cell (fun h -> Rco.check h) e.rco))
    Figures.catalog;
  Fmt.pr "  => %s@."
    (if !ok then "ALL FIGURE VERDICTS MATCH THE PAPER"
     else "MISMATCH — see above")

(* --- Section: limit ----------------------------------------------------- *)

let bench_limit () =
  section_header
    "limit — Proposition 1: Figure 2's prefix family has no stable \
     serialization";
  Fmt.pr
    "readers | T1 position in found serialization | every reader forced \
     before T1?@.";
  List.iter
    (fun readers ->
      let h = Figures.fig2 ~readers in
      let pos =
        match Du_opacity.check h with
        | Verdict.Sat s ->
            let rec index i = function
              | [] -> -1
              | k :: _ when k = 1 -> i
              | _ :: rest -> index (i + 1) rest
            in
            index 0 s.Serialization.order
        | Verdict.Unsat _ | Verdict.Unknown _ -> -1
      in
      let forced =
        List.for_all
          (fun reader ->
            Verdict.is_unsat
              (Search.serialize
                 { Search.du with extra_edges = [ (1, reader) ] }
                 h))
          (List.init (readers - 2) (fun i -> i + 3))
      in
      Fmt.pr "%7d | %6d                            | %b@." readers pos forced)
    [ 3; 4; 6; 8; 12; 16; 24; 32; 48; 64 ];
  Fmt.pr
    "  => T1's position diverges with the prefix length: the limit history \
     has no serialization (du-opacity is not limit-closed in general).@.";
  (* Theorem 5's restriction: if T1's tryC eventually completes, readers
     arriving after that must return 1, so only finitely many zero-readers
     exist and T1's position freezes — the ever-growing family now has a
     stable serialization (the limit is du-opaque). *)
  Fmt.pr
    "@.With the completeness restriction (Theorem 5): complete T1's tryC \
     after 4 zero-readers; later readers return 1.  T1's position is now \
     stable as the history grows:@.";
  Fmt.pr "late readers | T1 position@.";
  List.iter
    (fun late ->
      let base = Figures.fig2 ~readers:6 in
      let late_readers =
        List.concat
          (List.init late (fun i ->
               let k = 7 + i in
               Dsl.r k Dsl.x 1))
      in
      let completed =
        History.of_events_exn
          (History.to_list base
          @ (Event.Res (1, Event.Committed) :: late_readers))
      in
      match Du_opacity.check completed with
      | Verdict.Sat s ->
          let rec index i = function
            | [] -> -1
            | k :: _ when k = 1 -> i
            | _ :: rest -> index (i + 1) rest
          in
          Fmt.pr "%12d | %d@." late (index 0 s.Serialization.order)
      | Verdict.Unsat why -> Fmt.pr "%12d | UNSAT?! %s@." late why
      | Verdict.Unknown why -> Fmt.pr "%12d | ? %s@." late why)
    [ 0; 4; 8; 16; 32 ];
  Fmt.pr
    "  => position frozen at the number of zero-readers: the König-path \
     construction of Theorem 5 converges.@."

(* --- Section: inclusion ------------------------------------------------- *)

let bench_inclusion () =
  section_header
    "inclusion — Theorems 10 & 11 and Corollary 2 over random histories";
  let n = 2000 in
  let params = { Gen.default with n_txns = 6; n_threads = 3; max_ops = 3 } in
  let count name gen_params check =
    let sat = ref 0 in
    for seed = 1 to n do
      let h = Gen.run_seed gen_params seed in
      if check h then incr sat
    done;
    Fmt.pr "  %-48s %5d / %d@." name !sat n
  in
  let is_sat f h = Verdict.is_sat (f h) in
  count "du-opaque (snapshot-valued mix)" params
    (is_sat (fun h -> Du_opacity.check ~max_nodes:500_000 h));
  count "opaque" params (is_sat (Opacity.check ~max_nodes:500_000));
  count "final-state opaque" params (is_sat (Final_state.check ~max_nodes:500_000));
  (* implications, counted as violations *)
  let violations name gen_params bad =
    let v = ref 0 in
    for seed = 1 to n do
      if bad (Gen.run_seed gen_params seed) then incr v
    done;
    Fmt.pr "  %-48s %5d / %d  (0 expected)@." name !v n
  in
  violations "counterexamples to: du-opaque => opaque" params (fun h ->
      Verdict.is_sat (Du_opacity.check ~max_nodes:500_000 h)
      && Verdict.is_unsat (Opacity.check ~max_nodes:500_000 h));
  violations "counterexamples to: opaque => final-state" params (fun h ->
      Verdict.is_sat (Opacity.check ~max_nodes:500_000 h)
      && Verdict.is_unsat (Final_state.check ~max_nodes:500_000 h));
  violations "counterexamples to: du prefix-closure" params (fun h ->
      Verdict.is_sat (Du_opacity.check ~max_nodes:500_000 h)
      && List.exists
           (fun i ->
             Verdict.is_unsat
               (Du_opacity.check ~max_nodes:500_000 (History.prefix h i)))
           (History.response_indices h));
  let uw = { params with unique_writes = true } in
  violations "counterexamples to: unique writes du <=> opaque" uw (fun h ->
      Verdict.is_sat (Du_opacity.check ~max_nodes:500_000 h)
      <> Verdict.is_sat (Opacity.check ~max_nodes:500_000 h));
  Fmt.pr
    "  (fig4 witnesses strictness of Theorem 10: opaque but not du-opaque — \
     see the figures table)@."

(* --- Section: lemmas ---------------------------------------------------- *)

let bench_lemmas () =
  section_header "lemmas — constructive Lemma 1 and Lemma 4 on random inputs";
  let n = 2000 in
  let run params =
    let l1_checked = ref 0 and l1_ok = ref 0 and l1_rescued = ref 0 in
    let l4_checked = ref 0 and l4_ok = ref 0 in
    for seed = 1 to n do
      let h = Gen.run_seed params seed in
      match Du_opacity.check ~max_nodes:500_000 h with
      | Verdict.Sat s ->
          List.iter
            (fun i ->
              incr l1_checked;
              let si = Lemmas.project_prefix h s i in
              let p = History.prefix h i in
              if
                Serialization.validate ~claim:Serialization.Du_opaque p si
                = Ok ()
              then incr l1_ok
              else if
                Verdict.is_sat (Du_opacity.check ~max_nodes:500_000 p)
              then incr l1_rescued)
            (History.response_indices h);
          incr l4_checked;
          let s' = Lemmas.normalize_live_sets h s in
          if
            Lemmas.respects_live_sets h s'
            && Serialization.validate ~claim:Serialization.Du_opaque h s'
               = Ok ()
          then incr l4_ok
      | Verdict.Unsat _ | Verdict.Unknown _ -> ()
    done;
    (!l1_ok, !l1_rescued, !l1_checked, !l4_ok, !l4_checked)
  in
  let params = { Gen.default with n_txns = 6; n_threads = 3; max_ops = 3 } in
  let l1, r1, c1, l4, c4 = run params in
  Fmt.pr
    "  duplicate writes: Lemma 1 construction %d / %d (every one of the %d \
     failures has a prefix serialization anyway: %d — Corollary 2's \
     statement survives)@."
    l1 c1 (c1 - l1) r1;
  Fmt.pr "  duplicate writes: Lemma 4 normalisation %d / %d@." l4 c4;
  let l1u, _, c1u, l4u, c4u = run { params with unique_writes = true } in
  Fmt.pr
    "  unique writes:    Lemma 1 construction %d / %d (the paper's proof \
     step is valid here — Theorem 11's setting)@."
    l1u c1u;
  Fmt.pr "  unique writes:    Lemma 4 normalisation %d / %d@." l4u c4u;
  Fmt.pr
    "  => see EXPERIMENTS.md finding 1: Lemma 1 fails under duplicate \
     writes (witness: Findings.lemma1_gap), the checkers themselves are \
     unaffected.@."

(* --- Section: stm-safety ------------------------------------------------ *)

let bench_stm_safety () =
  section_header
    "stm-safety — Section 5: histories exported by each STM (simulator, \
     30 seeds)";
  let params =
    {
      Stm.Workload.default with
      n_threads = 3;
      txns_per_thread = 5;
      ops_per_txn = 3;
      n_vars = 4;
    }
  in
  Fmt.pr "%-12s %-9s %10s %10s %10s %12s@." "stm" "class" "du-opaque"
    "violations" "commits" "aborts";
  List.iter
    (fun stm ->
      let du_ok = ref 0 and bad = ref 0 in
      let commits = ref 0 and aborts = ref 0 in
      for seed = 1 to 30 do
        let r = Sim.Runner.run ~stm ~params ~seed () in
        commits := !commits + r.Sim.Runner.stats.Stm.Harness.commits;
        aborts :=
          !aborts
          + r.Sim.Runner.stats.Stm.Harness.op_aborts
          + r.Sim.Runner.stats.Stm.Harness.commit_aborts;
        match Du_opacity.check_fast ~max_nodes:1_000_000 r.Sim.Runner.history with
        | Verdict.Sat _ -> incr du_ok
        | Verdict.Unsat _ -> incr bad
        | Verdict.Unknown _ -> ()
      done;
      let cls = if List.mem stm Stm.Registry.safe then "safe" else "control" in
      Fmt.pr "%-12s %-9s %7d/30 %10d %10d %12d@." stm cls !du_ok !bad !commits
        !aborts)
    (Stm.Registry.safe @ Stm.Registry.controls);
  Fmt.pr
    "  => expected shape: safe rows 30/30 du-opaque; every control row has \
     violations.@."

(* --- Section: checker-scaling ------------------------------------------ *)

let stm_history ~stm ~txns ~seed =
  let params =
    {
      Stm.Workload.default with
      n_threads = 3;
      txns_per_thread = (txns + 2) / 3;
      ops_per_txn = 3;
      n_vars = 6;
    }
  in
  (Sim.Runner.run ~stm ~params ~seed ()).Sim.Runner.history

let tl2_history ~txns ~seed = stm_history ~stm:"tl2" ~txns ~seed

let bench_checker_scaling () =
  section_header
    "checker-scaling — checker cost vs history size (TL2-recorded, du-opaque \
     inputs)";
  let sizes = [ 6; 12; 24; 48 ] in
  let tests =
    List.concat_map
      (fun txns ->
        let h = tl2_history ~txns ~seed:(1000 + txns) in
        let events = History.length h in
        let name crit = Fmt.str "%s txns=%02d events=%03d" crit txns events in
        [
          Test.make ~name:(name "du-search   ")
            (Staged.stage (fun () -> ignore (Du_opacity.check h)));
          Test.make ~name:(name "du-fastpath ")
            (Staged.stage (fun () -> ignore (Du_opacity.check_fast h)));
          Test.make ~name:(name "final-state ")
            (Staged.stage (fun () -> ignore (Final_state.check h)));
          Test.make ~name:(name "opacity     ")
            (Staged.stage (fun () -> ignore (Opacity.check h)));
        ])
      sizes
  in
  print_timings (run_bechamel tests);
  let h = tl2_history ~txns:12 ~seed:1 in
  let tests =
    [
      Test.make ~name:"tms2         txns=12"
        (Staged.stage (fun () -> ignore (Tms2.check h)));
      Test.make ~name:"rco          txns=12"
        (Staged.stage (fun () -> ignore (Rco.check h)));
      Test.make ~name:"serializable txns=12"
        (Staged.stage (fun () -> ignore (Serializable.check h)));
      Test.make ~name:"strict-ser   txns=12"
        (Staged.stage (fun () -> ignore (Serializable.check_strict h)));
    ]
  in
  print_timings (run_bechamel tests);
  Fmt.pr
    "  => expected shape: fastpath ≤ search; opacity ≈ (responses × \
     final-state); all grow super-linearly in the worst case (the decision \
     problem is NP-hard).@."

(* --- Section: fastpath -------------------------------------------------- *)

let bench_fastpath () =
  section_header
    "fastpath — unique-writes polygraph vs general search (Theorem 11 \
     machinery)";
  let history_of_size txns seed =
    let params =
      {
        Stm.Workload.default with
        n_threads = 3;
        txns_per_thread = (txns + 2) / 3;
        ops_per_txn = 3;
        n_vars = 6;
        values = `Unique;
      }
    in
    (Sim.Runner.run ~max_retries:1 ~stm:"tl2" ~params ~seed ()).Sim.Runner.history
  in
  let tests =
    List.concat_map
      (fun txns ->
        let h = history_of_size txns (2000 + txns) in
        [
          Test.make ~name:(Fmt.str "polygraph    txns=%02d" txns)
            (Staged.stage (fun () -> ignore (Polygraph.check h)));
          Test.make ~name:(Fmt.str "search (du)  txns=%02d" txns)
            (Staged.stage (fun () -> ignore (Du_opacity.check h)));
        ])
      [ 6; 12; 24; 48 ]
  in
  print_timings (run_bechamel tests);
  Fmt.pr
    "  => expected shape: on these near-serial recorded histories the \
     history-order-hinted search is linear and wins; the polygraph's \
     O(n^3) closure costs more but is immune to the search's exponential \
     worst case (it never branches when propagation decides every \
     disjunction — which unique writes make the common case).@."

(* --- Section: stm-throughput ------------------------------------------- *)

let bench_stm_throughput () =
  section_header
    "stm-throughput — commits/s on real domains (Atomic memory, unrecorded)";
  Fmt.pr
    "  (host has %d core(s); with 1 core the serial baseline wins and \
     scalable STMs pay their bookkeeping — the multicore shape is who \
     *degrades least* under added domains)@."
    (Domain.recommended_domain_count ());
  let run stm domains ~contended =
    let params =
      {
        Stm.Workload.default with
        n_threads = domains;
        txns_per_thread = 4000 / domains;
        ops_per_txn = 4;
        n_vars = (if contended then 2 else 64);
        read_ratio = 0.5;
        zipf_theta = (if contended then 0.9 else 0.0);
      }
    in
    let r =
      Stm.Parallel.run ~algorithm:(Stm.Registry.find_exn stm) ~params ~seed:3 ()
    in
    ( Stm.Parallel.throughput r,
      r.Stm.Parallel.stats.Stm.Harness.op_aborts
      + r.Stm.Parallel.stats.Stm.Harness.commit_aborts )
  in
  List.iter
    (fun contended ->
      Fmt.pr "@.  %s contention:@."
        (if contended then "HIGH (2 vars, zipf 0.9)" else "LOW (64 vars)");
      Fmt.pr "  %-12s %18s %18s %18s@." "stm" "1 domain" "2 domains"
        "4 domains";
      List.iter
        (fun stm ->
          let cells =
            List.map
              (fun d ->
                let tput, aborts = run stm d ~contended in
                Fmt.str "%9.0f/s %5d†" tput aborts)
              [ 1; 2; 4 ]
          in
          Fmt.pr "  %-12s %18s %18s %18s@." stm (List.nth cells 0)
            (List.nth cells 1) (List.nth cells 2))
        [ "tl2"; "norec"; "tml"; "2pl"; "global-lock" ])
    [ false; true ];
  Fmt.pr "  († = aborts)@."

(* --- Section: abort-rate ------------------------------------------------ *)

let bench_abort_rate () =
  section_header
    "abort-rate — abort ratio vs contention (simulator, deterministic \
     interleaving)";
  Fmt.pr "  %-12s %10s %10s %10s %10s %10s@." "stm" "64 vars" "16 vars"
    "4 vars" "2 vars" "1 var";
  List.iter
    (fun stm ->
      let cells =
        List.map
          (fun n_vars ->
            let commits = ref 0 and aborts = ref 0 in
            for seed = 1 to 10 do
              let params =
                {
                  Stm.Workload.default with
                  n_threads = 4;
                  txns_per_thread = 15;
                  ops_per_txn = 3;
                  n_vars;
                }
              in
              let r = Sim.Runner.run ~stm ~params ~seed () in
              commits := !commits + r.Sim.Runner.stats.Stm.Harness.commits;
              aborts :=
                !aborts
                + r.Sim.Runner.stats.Stm.Harness.op_aborts
                + r.Sim.Runner.stats.Stm.Harness.commit_aborts
            done;
            let total = !commits + !aborts in
            if total = 0 then "-"
            else
              Fmt.str "%5.1f%%"
                (100. *. float_of_int !aborts /. float_of_int total))
          [ 64; 16; 4; 2; 1 ]
      in
      Fmt.pr "  %-12s %10s %10s %10s %10s %10s@." stm (List.nth cells 0)
        (List.nth cells 1) (List.nth cells 2) (List.nth cells 3)
        (List.nth cells 4))
    [ "tl2"; "norec"; "tml"; "2pl"; "global-lock"; "pessimistic" ];
  Fmt.pr
    "  => expected shape: abort rate rises as variables shrink; global-lock \
     and pessimistic never abort; TML/2PL abort aggressively under \
     contention.@."

(* --- Section: monitor --------------------------------------------------- *)

(* Perf T5: incremental monitor vs the pre-fast-path design on long
   recorded streams.  The baseline re-creates what Monitor.push used to do
   per response: one full certificate-hinted search over the whole prefix. *)

type monitor_row = {
  row_stm : string;
  row_events : int;
  row_responses : int;
  row_hits : int;
  row_searches : int;
  row_nodes : int;
  row_inc_s : float;
  row_full_s : float;
}

let measure_monitor_stream ~stm ~txns ~seed =
  let h = stm_history ~stm ~txns ~seed in
  let events = History.to_list h in
  let t0 = Stm.Clock.now () in
  let m = Monitor.create () in
  ignore (Monitor.push_all m events);
  let inc_s = Stm.Clock.now () -. t0 in
  let t0 = Stm.Clock.now () in
  let hint = ref None in
  List.iter
    (fun i ->
      match Du_opacity.check ?hint:!hint (History.prefix h i) with
      | Verdict.Sat s -> hint := Some s.Serialization.order
      | Verdict.Unsat _ | Verdict.Unknown _ -> ())
    (History.response_indices h);
  let full_s = Stm.Clock.now () -. t0 in
  {
    row_stm = stm;
    row_events = List.length events;
    row_responses = Monitor.responses_seen m;
    row_hits = Monitor.fastpath_hits m;
    row_searches = Monitor.searches_run m;
    row_nodes = Monitor.nodes_total m;
    row_inc_s = inc_s;
    row_full_s = full_s;
  }

let monitor_rows () =
  (* >= 2000 events per stream (3 threads x 84 txns x 4 boundaries x 2). *)
  List.map
    (fun (stm, seed) -> measure_monitor_stream ~stm ~txns:252 ~seed)
    [ ("tl2", 4000); ("norec", 5000) ]

let events_per_s row seconds =
  if seconds <= 0. then 0. else float_of_int row.row_events /. seconds

let hit_rate row =
  if row.row_responses = 0 then 0.
  else float_of_int row.row_hits /. float_of_int row.row_responses

let json_mode = ref false

let monitor_json rows =
  (* Hand-rolled JSON: stable keys, no dependency. *)
  let row_json r =
    Fmt.str
      {|    {"stm": %S, "events": %d, "responses": %d,
     "incremental": {"seconds": %.6f, "events_per_s": %.1f,
                     "fastpath_hits": %d, "hit_rate": %.4f,
                     "searches": %d, "nodes": %d},
     "full_baseline": {"seconds": %.6f, "events_per_s": %.1f},
     "speedup": %.2f}|}
      r.row_stm r.row_events r.row_responses r.row_inc_s
      (events_per_s r r.row_inc_s)
      r.row_hits (hit_rate r) r.row_searches r.row_nodes r.row_full_s
      (events_per_s r r.row_full_s)
      (if r.row_inc_s <= 0. then 0. else r.row_full_s /. r.row_inc_s)
  in
  Fmt.pr {|{"benchmark": "monitor", "unit": "events_per_s", "streams": [@.%s@.]}@.|}
    (String.concat ",\n" (List.map row_json rows))

let bench_monitor () =
  if !json_mode then monitor_json (monitor_rows ())
  else begin
    section_header "monitor — online verification cost";
    let tests =
      List.concat_map
        (fun txns ->
          let events =
            History.to_list (tl2_history ~txns ~seed:(3000 + txns))
          in
          let n = List.length events in
          [
            Test.make
              ~name:(Fmt.str "monitor stream   txns=%02d events=%03d" txns n)
              (Staged.stage (fun () ->
                   let m = Monitor.create () in
                   ignore (Monitor.push_all m events)));
            Test.make
              ~name:(Fmt.str "offline rechecks txns=%02d events=%03d" txns n)
              (Staged.stage (fun () ->
                   let h = History.of_events_exn events in
                   List.iter
                     (fun i -> ignore (Du_opacity.check (History.prefix h i)))
                     (History.response_indices h)));
          ])
        [ 6; 12; 24 ]
    in
    print_timings (run_bechamel tests);
    Fmt.pr
      "  => expected shape: the monitor (certificate-hinted) beats re-running \
       the checker per prefix, and the gap grows with length.@.";
    Fmt.pr "@.  Perf T5 — incremental vs full re-search on long streams:@.";
    Fmt.pr "  %-7s %7s %10s %9s %9s %12s %12s %8s@." "stm" "events"
      "responses" "hit-rate" "searches" "inc ev/s" "full ev/s" "speedup";
    List.iter
      (fun r ->
        Fmt.pr "  %-7s %7d %10d %8.1f%% %9d %12.0f %12.0f %7.1fx@." r.row_stm
          r.row_events r.row_responses
          (100. *. hit_rate r)
          r.row_searches
          (events_per_s r r.row_inc_s)
          (events_per_s r r.row_full_s)
          (if r.row_inc_s <= 0. then 0. else r.row_full_s /. r.row_inc_s))
      (monitor_rows ());
    Fmt.pr
      "  => expected shape: >= 90%% of responses absorbed by certificate \
       revalidation; speedup grows with stream length.@."
  end

(* --- Section: service --------------------------------------------------- *)

(* Load generator for [tm serve]: N client threads replaying recorded
   TL2/NOrec/fault-injected streams against a server (in-process unless
   --socket points at an external one), reporting aggregate events/s,
   checkpoint round-trip percentiles, and per-domain monitor fast-path
   hit rates.  Every close_session verdict is compared against the
   offline monitor's outcome on the same stream. *)

let opt_service_duration = ref 3.0
let opt_service_sessions = ref 4
let opt_service_domains = ref 4
let opt_service_shards = ref 1
let opt_service_socket : string option ref = ref None
let opt_service_open_sessions = ref 2_000
let opt_service_burst = ref 64

type service_stream = {
  ss_name : string;
  ss_events : Event.t list;
  ss_len : int;
  ss_expected : Service.Protocol.status;  (* offline monitor ground truth *)
}

let service_stream name events =
  let m = Monitor.create () in
  let expected =
    match Monitor.push_all m events with
    | `Ok -> Service.Protocol.S_ok
    | `Violation why -> Service.Protocol.S_violation why
    | `Budget why -> Service.Protocol.S_budget why
  in
  { ss_name = name; ss_events = events; ss_len = List.length events;
    ss_expected = expected }

let service_streams () =
  let recorded stm seed =
    service_stream
      (Fmt.str "%s/seed%d" stm seed)
      (History.to_list (stm_history ~stm ~txns:60 ~seed))
  in
  let faulted stm seed =
    let params =
      {
        Stm.Workload.default with
        n_threads = 3;
        txns_per_thread = 20;
        ops_per_txn = 3;
        n_vars = 4;
      }
    in
    let spec =
      Sim.Faults.sample ~n_threads:params.Stm.Workload.n_threads
        ~horizon:(Sim.Faults.horizon params) ~seed ()
    in
    let r = Sim.Faults.run_one ~check:false ~stm ~params ~spec ~seed () in
    service_stream
      (Fmt.str "%s-fault/seed%d" stm seed)
      (History.to_list r.Sim.Faults.history)
  in
  [ recorded "tl2" 11; recorded "norec" 12; recorded "tl2" 13;
    faulted "norec" 7 ]

type service_worker = {
  sw_stream : service_stream;
  mutable sw_events : int;  (* events sent *)
  mutable sw_replays : int;
  mutable sw_mismatches : int;
  mutable sw_latencies : float list;  (* checkpoint round-trips, seconds *)
  mutable sw_error : string option;
}

let service_worker_run addr deadline w =
  let c = Service.Client.connect addr in
  let sid = ref 0 in
  (try
     while Stm.Clock.now () < deadline do
       incr sid;
       Service.Client.open_session c !sid;
       Service.Client.send_events c !sid w.sw_stream.ss_events;
       let t0 = Stm.Clock.now () in
       ignore (Service.Client.checkpoint c !sid);
       w.sw_latencies <- (Stm.Clock.now () -. t0) :: w.sw_latencies;
       let fin = Service.Client.close_session c !sid in
       if fin.Service.Protocol.status <> w.sw_stream.ss_expected then
         w.sw_mismatches <- w.sw_mismatches + 1;
       w.sw_events <- w.sw_events + w.sw_stream.ss_len;
       w.sw_replays <- w.sw_replays + 1
     done
   with e -> w.sw_error <- Some (Printexc.to_string e));
  try Service.Client.close c with _ -> ()

let percentile sorted p =
  match Array.length sorted with
  | 0 -> nan
  | n ->
      let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) rank))

let domain_hit_rate (d : Service.Protocol.domain_stats) =
  if d.responses = 0 then 0.
  else float_of_int d.fastpath_hits /. float_of_int d.responses

(* --- overload phase: percentiles while the degradation ladder engages ----- *)

(* A deliberately tiny shard queue (hwm 2) and slow drain pressure from
   many concurrent sessions: most Events_at frames bounce off the
   high-watermark, so checkpoint round-trips are measured while the
   server is actively throttling — the p50/p99-under-overload columns
   BENCH_service.json tracks.  Every worker still finishes its stream
   (throttled frames are re-sent from the acked index), so verdict parity
   is asserted under overload too. *)

type overload_result = {
  ov_events : int;
  ov_wall : float;
  ov_throttles : int;
  ov_sheds : int;
  ov_mismatches : int;
  ov_latencies : float array;  (* sorted checkpoint RTTs, seconds *)
}

let bench_service_overload () =
  let srv =
    Service.Server.start
      (Service.Server.config ~domains:2 ~queue_capacity:4 ~hwm:2
         ~throttle_sample:1_000 ~throttle_shed:1_000_000
         (`Tcp ("127.0.0.1", 0)))
  in
  let addr = Service.Server.bound_addr srv in
  let stream = List.hd (service_streams ()) in
  let n = stream.ss_len in
  let throttles = Atomic.make 0 in
  let sheds = Atomic.make 0 in
  let mismatches = Atomic.make 0 in
  let events = Atomic.make 0 in
  let lat_mutex = Mutex.create () in
  let latencies = ref [] in
  let worker _i =
    let c = Service.Client.connect addr in
    Service.Client.open_session c 1;
    let arr = Array.of_list stream.ss_events in
    let rec drive cursor guard =
      if cursor >= n || guard > 200 * n then cursor
      else begin
        let k = min 8 (n - cursor) in
        Service.Client.send_events_at c 1 ~from:cursor
          (Array.to_list (Array.sub arr cursor k));
        let t0 = Stm.Clock.now () in
        let v = Service.Client.checkpoint c 1 in
        let rtt = Stm.Clock.now () -. t0 in
        Mutex.lock lat_mutex;
        latencies := rtt :: !latencies;
        Mutex.unlock lat_mutex;
        drive (max cursor v.Service.Protocol.applied) (guard + 1)
      end
    in
    let final = drive 0 0 in
    let v = Service.Client.close_session c 1 in
    if final = n && v.Service.Protocol.status <> stream.ss_expected then
      Atomic.incr mismatches;
    Atomic.set events (Atomic.get events + final);
    Atomic.set throttles (Atomic.get throttles + Service.Client.throttled c);
    if Service.Client.shed c <> None then Atomic.incr sheds;
    Service.Client.close c
  in
  let t0 = Stm.Clock.now () in
  let threads = List.init 8 (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  let wall = Stm.Clock.now () -. t0 in
  Service.Server.stop srv;
  {
    ov_events = Atomic.get events;
    ov_wall = wall;
    ov_throttles = Atomic.get throttles;
    ov_sheds = Atomic.get sheds;
    ov_mismatches = Atomic.get mismatches;
    ov_latencies = List.sort compare !latencies |> Array.of_list;
  }

(* --- open-loop phase: Zipfian session bursts on a fixed schedule ----------- *)

(* The closed-loop workers above send as fast as the server answers, so an
   overloaded server just slows its own load down and the measured
   latencies hide queueing.  The open-loop generator decouples arrivals
   from completions: sessions arrive in bursts on a fixed schedule whether
   or not the server has kept up, and each session's latency is measured
   from its *scheduled* arrival to its final verdict — so queueing delay
   (including coordinated omission) lands in the p50/p99 columns, exactly
   what a saturated front-end would observe.  Concurrency is bounded by a
   fixed connection pool (a wrk2-style compromise; unbounded in-flight
   sessions would need a thread per session), but late sessions still
   charge their wait against the schedule.  Streams are recorded from a
   Zipfian workload (zipf_theta 0.9: a hot location set — the sharded
   monitor's most skewed routing case). *)

type openloop_result = {
  ol_sessions : int;
  ol_events : int;
  ol_wall : float;
  ol_burst : int;
  ol_shards : int;
  ol_mismatches : int;
  ol_errors : int;
  ol_lat : float array;  (* scheduled arrival -> final verdict, sorted, s *)
}

let zipf_stream ~txns ~seed =
  let params =
    {
      Stm.Workload.default with
      n_threads = 4;
      txns_per_thread = (txns + 3) / 4;
      ops_per_txn = 3;
      n_vars = 16;
      zipf_theta = 0.9;
      (* unique written values: duplicate (var, value) writes poison a
         shard into benign escalation (Corollary 2), which would turn the
         sweep into a benchmark of the sequential monitor *)
      values = `Unique;
    }
  in
  (Sim.Runner.run ~stm:"tl2" ~params ~seed ()).Sim.Runner.history

let bench_service_openloop ~shards ~sessions ~burst =
  let srv =
    Service.Server.start
      (Service.Server.config ~domains:4 ~shards ~queue_capacity:256
         (`Tcp ("127.0.0.1", 0)))
  in
  let addr = Service.Server.bound_addr srv in
  (* a pool of distinct recorded streams, dealt round-robin to arrivals *)
  let pool =
    Array.init 8 (fun i ->
        service_stream
          (Fmt.str "zipf/seed%d" (41 + i))
          (History.to_list (zipf_stream ~txns:48 ~seed:(41 + i))))
  in
  let n = max 1 sessions in
  let burst = max 1 burst in
  (* bursts spaced so the whole campaign's arrivals span ~2 s of schedule,
     independent of the session count — more sessions = denser bursts *)
  let nbursts = (n + burst - 1) / burst in
  let gap = 2.0 /. float_of_int (max 1 nbursts) in
  let t0 = Stm.Clock.now () in
  let arrival i = t0 +. (gap *. float_of_int (i / burst)) in
  let next = Atomic.make 0 in
  let mismatches = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let events = Atomic.make 0 in
  let lat_mutex = Mutex.create () in
  let latencies = ref [] in
  let worker _ =
    let c = Service.Client.connect addr in
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let due = arrival i in
        let now = Stm.Clock.now () in
        if now < due then Thread.delay (due -. now);
        let s = pool.(i mod Array.length pool) in
        (try
           Service.Client.open_session c (i + 1);
           Service.Client.send_events c (i + 1) s.ss_events;
           let v = Service.Client.close_session c (i + 1) in
           if v.Service.Protocol.status <> s.ss_expected then
             Atomic.incr mismatches;
           ignore (Atomic.fetch_and_add events s.ss_len);
           let lat = Stm.Clock.now () -. due in
           Mutex.lock lat_mutex;
           latencies := lat :: !latencies;
           Mutex.unlock lat_mutex
         with _ -> Atomic.incr errors);
        go ()
      end
    in
    go ();
    try Service.Client.close c with _ -> ()
  in
  let threads = List.init 16 (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  let wall = Stm.Clock.now () -. t0 in
  Service.Server.stop srv;
  {
    ol_sessions = n;
    ol_events = Atomic.get events;
    ol_wall = wall;
    ol_burst = burst;
    ol_shards = shards;
    ol_mismatches = Atomic.get mismatches;
    ol_errors = Atomic.get errors;
    ol_lat = List.sort compare !latencies |> Array.of_list;
  }

(* --- shard sweep: one long Zipfian session at --shards 1/2/4/8 ------------- *)

(* Per-session sharding pays off on long streams, not on the small bursty
   sessions above: one session's events all land on one worker domain, so
   the sweep drives a single long recorded stream through servers that
   differ only in --shards and reports sustained events/s plus the
   certify/stitch counters behind it. *)

type sweep_point = {
  sp_shards : int;
  sp_events : int;
  sp_wall : float;
  sp_certifies : int;
  sp_incremental : int;
  sp_full : int;
  sp_escalated : string option;
  sp_parity : bool;
}

let bench_service_shard_sweep () =
  let stream =
    service_stream "zipf/sweep"
      (History.to_list (zipf_stream ~txns:360 ~seed:77))
  in
  List.map
    (fun shards ->
      let srv =
        Service.Server.start
          (Service.Server.config ~domains:1 ~shards ~queue_capacity:256
             (`Tcp ("127.0.0.1", 0)))
      in
      let addr = Service.Server.bound_addr srv in
      let c = Service.Client.connect addr in
      Service.Client.open_session c 1;
      let t0 = Stm.Clock.now () in
      Service.Client.send_events c 1 stream.ss_events;
      (* the checkpoint round-trip bounds the measurement at "all events
         pushed and certified", not "all bytes written to the socket" *)
      ignore (Service.Client.checkpoint c 1);
      let wall = Stm.Clock.now () -. t0 in
      let st = Service.Client.shard_stats c 1 in
      let v = Service.Client.close_session c 1 in
      let parity = v.Service.Protocol.status = stream.ss_expected in
      Service.Client.close c;
      Service.Server.stop srv;
      {
        sp_shards = shards;
        sp_events = stream.ss_len;
        sp_wall = wall;
        sp_certifies = st.Service.Protocol.certifies;
        sp_incremental = st.Service.Protocol.incremental;
        sp_full = st.Service.Protocol.full;
        sp_escalated = st.Service.Protocol.escalated;
        sp_parity = parity;
      })
    [ 1; 2; 4; 8 ]

(* --- recovery phase: crash, restart, resume -------------------------------- *)

(* How long a client is actually locked out when the server process dies:
   from the moment the replacement starts until Resume answers with the
   durably-applied index — i.e. session registry lookup + snapshot-load +
   journal-tail replay for the sizes below. *)

type recovery_result = {
  rc_events : int;
  rc_tail : int;  (* journalled events past the last snapshot *)
  rc_recovery_ms : float;
  rc_parity : bool;  (* resumed session finished with the offline verdict *)
}

let bench_service_recovery () =
  let scratch =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "tm-bench-recovery-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter
          (fun nm -> rm_rf (Filename.concat path nm))
          (try Sys.readdir path with Sys_error _ -> [||]);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  (* [snapshot = true]: checkpoint before the crash, so recovery is a
     snapshot-load.  [snapshot = false]: never checkpoint, so recovery
     replays the whole journalled prefix event by event — the worst
     case.  Either way the resumed client re-sends from the acked index
     and the final verdict is checked against the offline monitor. *)
  let one ~txns ~seed ~snapshot =
    rm_rf scratch;
    Unix.mkdir scratch 0o755;
    let events = History.to_list (tl2_history ~txns ~seed) in
    let arr = Array.of_list events in
    let n = List.length events in
    let expected =
      let m = Monitor.create () in
      match Monitor.push_all m events with
      | `Ok -> Service.Protocol.S_ok
      | `Violation why -> Service.Protocol.S_violation why
      | `Budget why -> Service.Protocol.S_budget why
    in
    let addr = `Unix (Filename.concat scratch "sock") in
    let cfg =
      Service.Server.config ~domains:2
        ~journal_dir:(Filename.concat scratch "journal")
        addr
    in
    let srv = Service.Server.start cfg in
    let c = Service.Client.connect addr in
    Service.Client.open_session c 1;
    Service.Client.send_events_at c 1 ~from:0 events;
    if snapshot then ignore (Service.Client.checkpoint c 1)
    else
      (* no checkpoint: give the shard a moment to drain (and journal)
         the stream; whatever is still queued is legitimately lost *)
      Thread.delay 0.3;
    Service.Server.crash srv;
    (try Unix.close (Service.Client.fd c) with Unix.Unix_error _ -> ());
    let t0 = Stm.Clock.now () in
    let srv2 = Service.Server.start cfg in
    let c2 = Service.Client.connect addr in
    let applied =
      match Service.Client.resume c2 1 ~from:0 with
      | Ok (applied, _, _) -> applied
      | Error (code, msg) ->
          Fmt.failwith "bench recovery: resume: %a: %s"
            Service.Protocol.pp_error_code code msg
    in
    let recovery_ms = (Stm.Clock.now () -. t0) *. 1e3 in
    if applied < n then
      Service.Client.send_events_at c2 1 ~from:applied
        (Array.to_list (Array.sub arr applied (n - applied)));
    let v = Service.Client.close_session c2 1 in
    let parity =
      v.Service.Protocol.applied = n && v.Service.Protocol.status = expected
    in
    Service.Client.close c2;
    Service.Server.stop srv2;
    rm_rf scratch;
    {
      rc_events = n;
      rc_tail = (if snapshot then 0 else applied);
      rc_recovery_ms = recovery_ms;
      rc_parity = parity;
    }
  in
  (* Evaluate in this order deliberately: OCaml list literals evaluate
     right-to-left, so bind each round explicitly. *)
  let r1 = one ~txns:120 ~seed:31 ~snapshot:true in
  let r2 = one ~txns:120 ~seed:31 ~snapshot:false in
  let r3 = one ~txns:480 ~seed:32 ~snapshot:true in
  let r4 = one ~txns:480 ~seed:32 ~snapshot:false in
  [ r1; r2; r3; r4 ]

let service_json ~endpoint ~wall ~sessions workers stats ~overload ~openloop
    ~sweep ~recovery =
  let events = List.fold_left (fun a w -> a + w.sw_events) 0 workers in
  let replays = List.fold_left (fun a w -> a + w.sw_replays) 0 workers in
  let mismatches =
    List.fold_left (fun a w -> a + w.sw_mismatches) 0 workers
  in
  let lat =
    List.concat_map (fun w -> w.sw_latencies) workers
    |> List.sort compare |> Array.of_list
  in
  let domain_json (d : Service.Protocol.domain_stats) =
    Fmt.str
      {|    {"live": %d, "closed": %d, "events": %d, "responses": %d,
     "fastpath_hits": %d, "hit_rate": %.4f, "searches": %d, "nodes": %d}|}
      d.live_sessions d.closed_sessions d.events d.responses d.fastpath_hits
      (domain_hit_rate d) d.searches d.nodes
  in
  let overload_json o =
    Fmt.str
      {|{"events": %d, "duration_s": %.3f, "events_per_s": %.1f,
   "throttles": %d, "sheds": %d, "verdict_mismatches": %d,
   "checkpoint_latency_ms": {"p50": %.3f, "p99": %.3f, "samples": %d}}|}
      o.ov_events o.ov_wall
      (if o.ov_wall <= 0. then 0.
       else float_of_int o.ov_events /. o.ov_wall)
      o.ov_throttles o.ov_sheds o.ov_mismatches
      (percentile o.ov_latencies 50. *. 1e3)
      (percentile o.ov_latencies 99. *. 1e3)
      (Array.length o.ov_latencies)
  in
  let recovery_json r =
    Fmt.str
      {|   {"events": %d, "journal_replay_events": %d, "recovery_ms": %.3f, "verdict_parity": %b}|}
      r.rc_events r.rc_tail r.rc_recovery_ms r.rc_parity
  in
  let openloop_json o =
    Fmt.str
      {|{"sessions": %d, "burst": %d, "shards": %d, "events": %d,
   "duration_s": %.3f, "events_per_s": %.1f,
   "session_latency_ms": {"p50": %.3f, "p99": %.3f, "samples": %d},
   "verdict_mismatches": %d, "errors": %d}|}
      o.ol_sessions o.ol_burst o.ol_shards o.ol_events o.ol_wall
      (if o.ol_wall <= 0. then 0. else float_of_int o.ol_events /. o.ol_wall)
      (percentile o.ol_lat 50. *. 1e3)
      (percentile o.ol_lat 99. *. 1e3)
      (Array.length o.ol_lat) o.ol_mismatches o.ol_errors
  in
  let sweep_json p =
    Fmt.str
      {|   {"shards": %d, "events": %d, "duration_s": %.3f, "events_per_s": %.1f,
    "certifies": %d, "incremental": %d, "full": %d, "escalated": %s,
    "verdict_parity": %b}|}
      p.sp_shards p.sp_events p.sp_wall
      (if p.sp_wall <= 0. then 0.
       else float_of_int p.sp_events /. p.sp_wall)
      p.sp_certifies p.sp_incremental p.sp_full
      (match p.sp_escalated with
      | None -> "null"
      | Some why -> Fmt.str "%S" why)
      p.sp_parity
  in
  Fmt.pr
    {|{"benchmark": "service", "unit": "events_per_s",
 "endpoint": %S, "duration_s": %.3f, "sessions": %d, "domains": %d,
 "events_sent": %d, "replays": %d, "events_per_s": %.1f,
 "checkpoint_latency_ms": {"p50": %.3f, "p99": %.3f, "samples": %d},
 "verdict_mismatches": %d,
 "per_domain": [
%s
 ],
 "overload": %s,
 "open_loop": %s,
 "shard_sweep": [
%s
 ],
 "recovery": [
%s
 ]}@.|}
    endpoint wall sessions (List.length stats) events replays
    (if wall <= 0. then 0. else float_of_int events /. wall)
    (percentile lat 50. *. 1e3)
    (percentile lat 99. *. 1e3)
    (Array.length lat) mismatches
    (String.concat ",\n" (List.map domain_json stats))
    (overload_json overload)
    (openloop_json openloop)
    (String.concat ",\n" (List.map sweep_json sweep))
    (String.concat ",\n" (List.map recovery_json recovery))

let bench_service () =
  let external_server = !opt_service_socket <> None in
  let server, addr =
    match !opt_service_socket with
    | Some path -> (None, `Unix path)
    | None ->
        let cfg =
          Service.Server.config ~domains:!opt_service_domains
            ~shards:!opt_service_shards
            (`Tcp ("127.0.0.1", 0))
        in
        let srv = Service.Server.start cfg in
        (Some srv, Service.Server.bound_addr srv)
  in
  let endpoint = Fmt.str "%a" Service.Wire.pp_addr addr in
  let streams = service_streams () in
  let n_streams = List.length streams in
  let sessions = max 1 !opt_service_sessions in
  let workers =
    List.init sessions (fun i ->
        {
          sw_stream = List.nth streams (i mod n_streams);
          sw_events = 0;
          sw_replays = 0;
          sw_mismatches = 0;
          sw_latencies = [];
          sw_error = None;
        })
  in
  let t0 = Stm.Clock.now () in
  let deadline = t0 +. !opt_service_duration in
  let threads =
    List.map (fun w -> Thread.create (service_worker_run addr deadline) w)
      workers
  in
  List.iter Thread.join threads;
  let wall = Stm.Clock.now () -. t0 in
  let stats =
    let c = Service.Client.connect addr in
    let s = Service.Client.stats c in
    Service.Client.close c;
    s
  in
  Option.iter (fun s -> Service.Server.stop s) server;
  List.iter
    (fun w ->
      match w.sw_error with
      | Some e ->
          Fmt.epr "service worker (%s): %s@." w.sw_stream.ss_name e
      | None -> ())
    workers;
  let overload = bench_service_overload () in
  let openloop =
    bench_service_openloop ~shards:!opt_service_shards
      ~sessions:!opt_service_open_sessions ~burst:!opt_service_burst
  in
  let sweep = bench_service_shard_sweep () in
  let recovery = bench_service_recovery () in
  if !json_mode then
    service_json ~endpoint ~wall ~sessions workers stats ~overload ~openloop
      ~sweep ~recovery
  else begin
    section_header
      (Fmt.str
         "service — [tm serve] under load (%s%s, %d sessions, %.1fs)"
         endpoint
         (if external_server then ", external" else "")
         sessions !opt_service_duration);
    let events = List.fold_left (fun a w -> a + w.sw_events) 0 workers in
    let replays = List.fold_left (fun a w -> a + w.sw_replays) 0 workers in
    let mismatches =
      List.fold_left (fun a w -> a + w.sw_mismatches) 0 workers
    in
    Fmt.pr "  %-22s %8s %8s %10s@." "stream" "replays" "events"
      "mismatches";
    List.iter
      (fun w ->
        Fmt.pr "  %-22s %8d %8d %10d@." w.sw_stream.ss_name w.sw_replays
          w.sw_events w.sw_mismatches)
      workers;
    let lat =
      List.concat_map (fun w -> w.sw_latencies) workers
      |> List.sort compare |> Array.of_list
    in
    Fmt.pr
      "  aggregate: %d events in %.2fs = %.0f events/s; checkpoint RTT \
       p50 %.3fms p99 %.3fms (%d samples)@."
      events wall
      (if wall <= 0. then 0. else float_of_int events /. wall)
      (percentile lat 50. *. 1e3)
      (percentile lat 99. *. 1e3)
      (Array.length lat);
    Fmt.pr "  per-domain shards:@.";
    List.iteri
      (fun i (d : Service.Protocol.domain_stats) ->
        Fmt.pr
          "    domain %d: %d live / %d closed sessions, %d events, \
           hit-rate %.1f%% (%d searches, %d nodes)@."
          i d.live_sessions d.closed_sessions d.events
          (100. *. domain_hit_rate d)
          d.searches d.nodes)
      stats;
    Fmt.pr "  => %s@."
      (if mismatches = 0 then
         "every close_session verdict matches the offline monitor"
       else Fmt.str "%d VERDICT MISMATCHES — investigate" mismatches);
    Fmt.pr "  (%d replays across %d sessions; server verdicts are the \
            online monitor's, so status ok certifies every prefix \
            du-opaque.)@."
      replays sessions;
    Fmt.pr
      "  under overload (hwm 2): %d events in %.2fs, %d throttles, %d \
       sheds, %d mismatches; checkpoint RTT p50 %.3fms p99 %.3fms@."
      overload.ov_events overload.ov_wall overload.ov_throttles
      overload.ov_sheds overload.ov_mismatches
      (percentile overload.ov_latencies 50. *. 1e3)
      (percentile overload.ov_latencies 99. *. 1e3);
    Fmt.pr
      "  open-loop (%d zipfian sessions, bursts of %d, %d shards): %d \
       events in %.2fs = %.0f events/s; session latency p50 %.3fms p99 \
       %.3fms; %d mismatches, %d errors@."
      openloop.ol_sessions openloop.ol_burst openloop.ol_shards
      openloop.ol_events openloop.ol_wall
      (if openloop.ol_wall <= 0. then 0.
       else float_of_int openloop.ol_events /. openloop.ol_wall)
      (percentile openloop.ol_lat 50. *. 1e3)
      (percentile openloop.ol_lat 99. *. 1e3)
      openloop.ol_mismatches openloop.ol_errors;
    Fmt.pr "  shard sweep (one long zipfian session):@.";
    List.iter
      (fun p ->
        Fmt.pr
          "    --shards %d: %6d events in %.3fs = %8.0f events/s (%d \
           certifies, %d incremental, %d full%s)  %s@."
          p.sp_shards p.sp_events p.sp_wall
          (if p.sp_wall <= 0. then 0.
           else float_of_int p.sp_events /. p.sp_wall)
          p.sp_certifies p.sp_incremental p.sp_full
          (match p.sp_escalated with
          | None -> ""
          | Some why -> Fmt.str ", escalated: %s" why)
          (if p.sp_parity then "verdict parity" else "PARITY LOST"))
      sweep;
    Fmt.pr "  crash recovery (restart + resume round-trip):@.";
    List.iter
      (fun r ->
        Fmt.pr
          "    %6d events (%6d replayed from journal): %7.3fms  %s@."
          r.rc_events r.rc_tail r.rc_recovery_ms
          (if r.rc_parity then "verdict parity" else "PARITY LOST"))
      recovery
  end

(* --- main ---------------------------------------------------------------- *)

(* --- verify: exhaustive DPOR verification (Perf T6) ----------------------- *)

let bench_verify () =
  let module V = Analysis.Verify in
  (* Two campaigns over the same 4-transaction scope: a sparse workload
     (few cross-fiber conflicts — every STM's schedule space collapses
     under DPOR while the naive DFS blows through its budget) and a
     contended one (real conflicts — the race analyzer must flag the
     dirty-read/eager controls and the du-opacity checker catches eager
     red-handed).  tl2 and 2pl sit out the contended round: their retry
     loops push even the reduced schedule space past the budget. *)
  let sparse = { V.default with naive_max_runs = 50_000 } in
  let contended =
    {
      sparse with
      V.seed = 5;
      stms =
        [
          "norec"; "mvcc"; "tml"; "global-lock"; "pessimistic"; "dirty-read";
          "eager";
        ];
    }
  in
  let campaign label cfg =
    let t0 = Stm.Clock.now () in
    let results = V.run cfg in
    let wall = Stm.Clock.now () -. t0 in
    if not !json_mode then begin
      section_header (Fmt.str "tm verify — %s workload" label);
      Fmt.pr "# %a, seed %d@." Stm.Workload.pp_params cfg.V.params cfg.V.seed;
      Fmt.pr "%a" V.pp_table results;
      List.iter
        (fun (r : V.stm_result) ->
          if Analysis.Race.racy r.r_races then
            Fmt.pr "@.%a@." V.pp_result r)
        results
    end;
    (label, cfg, wall, results)
  in
  let campaigns = [ campaign "sparse" sparse; campaign "contended" contended ] in
  if !json_mode then
    Fmt.pr {|{"bench": "verify", "campaigns": [%s]}@.|}
      (String.concat ", "
         (List.map
            (fun (label, cfg, wall, results) ->
              Fmt.str {|{"label": %S, "report": %s}|} label
                (V.to_json cfg ~wall results))
            campaigns))

(* --- Section: check ------------------------------------------------------ *)

let opt_check_sizes = ref [ 10_000; 100_000; 1_000_000 ]
let opt_check_criterion = ref "du"

(* Containment sweep for [bench check --criterion both]: every du-opaque
   history from every soak source must be last-use-opaque (theorem of the
   optional-visibility rendering), and the early-release source should
   populate the separation class.  CI gates on r_lastuse_containment = 0. *)
let check_containment () =
  let sources = Oracle.default_sources in
  let seeds = 24 in
  let histories = ref 0
  and du_sat = ref 0
  and lu_sat = ref 0
  and separated = ref 0
  and containment = ref 0
  and undecided = ref 0 in
  List.iteri
    (fun i source ->
      for s = 1 to seeds do
        let h = Oracle.produce source ~seed:(1000 + (i * seeds) + s) in
        incr histories;
        let du = Du_opacity.check_fast ~max_nodes:2_000_000 h in
        let lu = Last_use_opacity.check_fast ~max_nodes:2_000_000 h in
        match (du, Last_use_opacity.to_verdict lu) with
        | Verdict.Sat _, Verdict.Sat _ ->
            incr du_sat;
            incr lu_sat
        | Verdict.Sat _, Verdict.Unsat _ ->
            incr du_sat;
            incr containment
        | Verdict.Unsat _, Verdict.Sat _ ->
            incr lu_sat;
            incr separated
        | Verdict.Unsat _, Verdict.Unsat _ -> ()
        | Verdict.Unknown _, _ | _, Verdict.Unknown _ -> incr undecided
      done)
    sources;
  if not !json_mode then begin
    Fmt.pr "@.# containment sweep: %d sources x %d seeds@."
      (List.length sources) seeds;
    Fmt.pr
      "  histories %d  du-sat %d  lu-sat %d  separated %d  undecided %d  \
       containment-violations %d@."
      !histories !du_sat !lu_sat !separated !undecided !containment;
    if !containment = 0 then
      Fmt.pr "  => du-opaque implies last-use-opaque on every history@."
    else Fmt.pr "  => CONTAINMENT THEOREM VIOLATED — checker bug@."
  end;
  Fmt.str
    {|"containment": {"histories": %d, "du_sat": %d, "lu_sat": %d, "r_separated": %d, "undecided": %d, "r_lastuse_containment": %d}|}
    !histories !du_sat !lu_sat !separated !undecided !containment

let bench_check () =
  let criterion = !opt_check_criterion in
  let du_on = criterion = "du" || criterion = "both" in
  let lu_on = criterion = "last-use" || criterion = "both" in
  if not ((du_on || lu_on) && criterion <> "")
     || not (List.mem criterion [ "du"; "last-use"; "both" ])
  then begin
    Fmt.epr "bench: --criterion must be du, last-use or both (got %S)@."
      criterion;
    exit 1
  end;
  if not !json_mode then
    section_header
      (Fmt.str
         "check — %s backends vs history size (TL2-recorded, unique writes)"
         (match criterion with
         | "du" -> "du-opacity"
         | "last-use" -> "last-use-opacity"
         | _ -> "du- and last-use-opacity"));
  let history_of ~target =
    let threads = 4 and ops = 4 in
    (* ~10 events per transaction attempt: 2 per op plus the tryC pair. *)
    let txns = max 4 (target / 10) in
    let params =
      {
        Stm.Workload.default with
        n_threads = threads;
        txns_per_thread = (txns + threads - 1) / threads;
        ops_per_txn = ops;
        n_vars = 64;
        values = `Unique;
      }
    in
    (Sim.Runner.run ~stm:"tl2" ~params ~seed:(42 + target) ())
      .Sim.Runner.history
  in
  (* The pre-existing backends are superlinear on histories this large —
     [check_fast] crawls at ~2k events/s by 10k events and the search
     follows its per-response incremental revalidation — so each gets a
     hard cap; the graph backend runs at every size.  The asymmetry IS the
     result. *)
  let fast_cap = 120_000 and search_cap = 120_000 in
  let verdict_of = function
    | Verdict.Sat _ -> "sat"
    | Verdict.Unsat _ -> "unsat"
    | Verdict.Unknown _ -> "unknown"
  in
  let rows = ref [] in
  let time events backend f verdict =
    let t0 = Stm.Clock.now () in
    let v = f () in
    let s = Stm.Clock.now () -. t0 in
    rows := (events, backend, s, verdict v) :: !rows;
    if not !json_mode then
      Fmt.pr "  %-8s %9d events  %10.3f s  %12.0f events/s  %s@." backend
        events s
        (float_of_int events /. Float.max s 1e-9)
        (verdict v)
  in
  List.iter
    (fun target ->
      let h = history_of ~target in
      let n = History.length h in
      if not !json_mode then
        Fmt.pr "@.# target %d -> %d recorded events@." target n;
      if du_on then begin
        time n "graph"
          (fun () -> Conflict_graph.check h)
          (function
            | Conflict_graph.Sat _ -> "sat"
            | Conflict_graph.Unsat _ -> "unsat"
            | Conflict_graph.Ambiguous _ -> "ambiguous");
        if n <= search_cap then
          time n "search" (fun () -> Du_opacity.check h) verdict_of;
        if n <= fast_cap then
          time n "fast" (fun () -> Du_opacity.check_fast h) verdict_of
      end;
      if lu_on then begin
        (* The last-use core shares the greedy conflict-order fast path, so
           it belongs on the same axis as [fast]; the decorated search gets
           the same cap as the du search. *)
        if n <= fast_cap then
          time n "lu-fast"
            (fun () ->
              Last_use_opacity.to_verdict (Last_use_opacity.check_fast h))
            verdict_of;
        if n <= search_cap then
          time n "lu-search"
            (fun () ->
              Last_use_opacity.to_verdict (Last_use_opacity.check h))
            verdict_of
      end)
    !opt_check_sizes;
  let rows = List.rev !rows in
  (* Speedups at every size where the graph and a capped backend both ran. *)
  let speedups =
    List.filter_map
      (fun (n, b, s, _) ->
        if b = "graph" then None
        else
          List.find_map
            (fun (n', b', s', _) ->
              if n' = n && b' = "graph" then Some (n, b, s /. Float.max s' 1e-9)
              else None)
            rows)
      rows
  in
  let containment_json =
    if criterion = "both" then Some (check_containment ()) else None
  in
  if !json_mode then
    Fmt.pr
      {|{"bench": "check", "criterion": %S, "rows": [%s], "speedup_over_graph": [%s]%s}@.|}
      criterion
      (String.concat ", "
         (List.map
            (fun (n, b, s, v) ->
              Fmt.str
                {|{"events": %d, "backend": "%s", "seconds": %.4f, "events_per_s": %.0f, "verdict": "%s"}|}
                n b s
                (float_of_int n /. Float.max s 1e-9)
                v)
            rows))
      (String.concat ", "
         (List.map
            (fun (n, b, x) ->
              Fmt.str {|{"events": %d, "backend": "%s", "factor": %.1f}|} n b x)
            speedups))
      (match containment_json with Some j -> ", " ^ j | None -> "")
  else begin
    List.iter
      (fun (n, b, x) ->
        Fmt.pr "  graph is %.1fx faster than %s at %d events@." x b n)
      speedups;
    Fmt.pr
      "  => expected shape: graph linear (greedy fast path) through 1M \
       events; search/fast capped because they are superlinear here.@."
  end

let sections =
  [
    ("figures", bench_figures);
    ("limit", bench_limit);
    ("inclusion", bench_inclusion);
    ("lemmas", bench_lemmas);
    ("stm-safety", bench_stm_safety);
    ("checker-scaling", bench_checker_scaling);
    ("fastpath", bench_fastpath);
    ("stm-throughput", bench_stm_throughput);
    ("abort-rate", bench_abort_rate);
    ("monitor", bench_monitor);
    ("check", bench_check);
    ("verify", bench_verify);
    ("service", bench_service);
  ]

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let opt_value flag conv store rest =
    match rest with
    | v :: rest -> (
        (try store (conv v)
         with _ ->
           Fmt.epr "bench: bad value %S for %s@." v flag;
           exit 1);
        rest)
    | [] ->
        Fmt.epr "bench: %s needs a value@." flag;
        exit 1
  in
  let rec parse = function
    | [] -> []
    | "--json" :: rest ->
        json_mode := true;
        parse rest
    | "--duration" :: rest ->
        parse (opt_value "--duration" float_of_string
                 (fun v -> opt_service_duration := v) rest)
    | "--sessions" :: rest ->
        parse (opt_value "--sessions" int_of_string
                 (fun v -> opt_service_sessions := v) rest)
    | "--domains" :: rest ->
        parse (opt_value "--domains" int_of_string
                 (fun v -> opt_service_domains := v) rest)
    | "--shards" :: rest ->
        parse (opt_value "--shards" int_of_string
                 (fun v -> opt_service_shards := v) rest)
    | "--open-sessions" :: rest ->
        parse (opt_value "--open-sessions" int_of_string
                 (fun v -> opt_service_open_sessions := v) rest)
    | "--burst" :: rest ->
        parse (opt_value "--burst" int_of_string
                 (fun v -> opt_service_burst := v) rest)
    | "--socket" :: rest ->
        parse (opt_value "--socket" (fun s -> s)
                 (fun v -> opt_service_socket := Some v) rest)
    | "--criterion" :: rest ->
        parse
          (opt_value "--criterion" (fun s -> s)
             (fun v -> opt_check_criterion := v)
             rest)
    | "--sizes" :: rest ->
        parse
          (opt_value "--sizes"
             (fun s ->
               List.map int_of_string (String.split_on_char ',' s))
             (fun v -> opt_check_sizes := v)
             rest)
    | a :: rest -> a :: parse rest
  in
  let requested =
    match parse args with
    | _ :: _ as names -> names
    | [] ->
        (* "service" needs a live socket budget; run it only on request. *)
        List.filter (fun n -> n <> "service") (List.map fst sections)
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Fmt.epr "unknown section %S; available: %s@." name
            (String.concat ", " (List.map fst sections));
          exit 1)
    requested;
  if not !json_mode then Fmt.pr "@.done.@."
