(* Command-line front end.

     tm check history.txt --property du --timeline
     tm gen --txns 8 --seed 3 | tm check - --property all
     tm run --stm tl2 --threads 3 --check
     tm monitor history.txt
     tm serve --unix /tmp/tm.sock --domains 4
     tm submit history.txt --unix /tmp/tm.sock
     tm figures

   Histories use the textual format of {!Tm_safety.Parse} (see
   [tm check --help]) or the binary format of {!Tm_safety.Service.Codec}
   (auto-detected by its magic). *)

open Tm_safety
open Cmdliner

(* --- common ------------------------------------------------------------ *)

let read_input = function
  | "-" ->
      let buf = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel buf stdin 4096
         done
       with End_of_file -> ());
      Buffer.contents buf
  | path ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s

let history_of_input input =
  let text = read_input input in
  if Service.Codec.looks_binary text then
    match Service.Codec.history_of_string text with
    | Ok h -> Ok h
    | Error msg -> Error (`Msg ("cannot decode binary history: " ^ msg))
  else
    match Parse.of_string text with
    | Ok h -> Ok h
    | Error msg -> Error (`Msg ("cannot parse history: " ^ msg))

let input_arg =
  let doc = "History file in the tm text format; $(b,-) reads stdin." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let max_nodes_arg =
  let doc =
    "Search-node budget per check; exhausted budgets report 'unknown' \
     (exit 2) instead of running unbounded."
  in
  Arg.(value & opt (some int) None & info [ "max-nodes" ] ~doc)

let timeline_arg =
  let doc = "Print the history as an ASCII timeline first." in
  Arg.(value & flag & info [ "timeline"; "t" ] ~doc)

(* --- tm check ----------------------------------------------------------- *)

type property =
  | P_du
  | P_last_use
  | P_opacity
  | P_final_state
  | P_tms2
  | P_rco
  | P_ser
  | P_strict_ser
  | P_si
  | P_all

let property_conv =
  Arg.enum
    [
      ("du", P_du);
      ("last-use", P_last_use);
      ("opacity", P_opacity);
      ("final-state", P_final_state);
      ("tms2", P_tms2);
      ("rco", P_rco);
      ("serializable", P_ser);
      ("strict-serializable", P_strict_ser);
      ("si", P_si);
      ("all", P_all);
    ]

type backend = B_search | B_graph | B_both

let backend_conv =
  Arg.enum [ ("search", B_search); ("graph", B_graph); ("both", B_both) ]

(* The conflict-graph backend decides du-opacity; other properties keep
   their single checker regardless of [--backend]. *)
let du_checks backend =
  let search =
    ("du-opacity", fun ?max_nodes h -> Du_opacity.check ?max_nodes h)
  in
  let graph =
    ( "du-opacity (graph)",
      fun ?max_nodes h -> Conflict_graph.check_or_fallback ?max_nodes h )
  in
  match backend with
  | B_search -> [ search ]
  | B_graph -> [ graph ]
  | B_both -> [ ("du-opacity (search)", snd search); graph ]

let last_use_check =
  ( "last-use opacity",
    fun ?max_nodes h ->
      Last_use_opacity.to_verdict (Last_use_opacity.check ?max_nodes h) )

let rec checks_of_property backend = function
  | P_du -> du_checks backend
  | P_last_use -> [ last_use_check ]
  | P_opacity -> [ ("opacity", fun ?max_nodes h -> Opacity.check ?max_nodes h) ]
  | P_final_state ->
      [ ("final-state opacity", fun ?max_nodes h -> Final_state.check ?max_nodes h) ]
  | P_tms2 -> [ ("TMS2", fun ?max_nodes h -> Tms2.check ?max_nodes h) ]
  | P_rco ->
      [ ("read-commit order (GHS'08)", fun ?max_nodes h -> Rco.check ?max_nodes h) ]
  | P_ser ->
      [ ("serializability", fun ?max_nodes h -> Serializable.check ?max_nodes h) ]
  | P_strict_ser ->
      [
        ( "strict serializability",
          fun ?max_nodes h -> Serializable.check_strict ?max_nodes h );
      ]
  | P_si ->
      [
        ( "snapshot isolation",
          fun ?max_nodes h -> Snapshot_isolation.check ?max_nodes h );
      ]
  | P_all ->
      List.concat_map (checks_of_property backend)
        [
          P_du; P_last_use; P_opacity; P_final_state; P_tms2; P_rco; P_ser;
          P_strict_ser; P_si;
        ]

(* [--criterion] narrows a check run to the du vs last-use comparison the
   verify/bench surfaces report on; it overrides [--property] when given. *)
type criterion = C_du | C_lastuse | C_both

let criterion_conv =
  Arg.enum [ ("du", C_du); ("last-use", C_lastuse); ("both", C_both) ]

let checks_of_criterion backend = function
  | C_du -> checks_of_property backend P_du
  | C_lastuse -> [ last_use_check ]
  | C_both -> checks_of_property backend P_du @ [ last_use_check ]

let check_cmd =
  let property_arg =
    let doc = "Property to check: $(docv) ∈ du|opacity|final-state|tms2|rco|serializable|strict-serializable|si|all." in
    Arg.(value & opt property_conv P_du & info [ "property"; "p" ] ~docv:"PROP" ~doc)
  in
  let certificate_arg =
    let doc = "Print the serialization certificate on success." in
    Arg.(value & flag & info [ "certificate"; "c" ] ~doc)
  in
  let shrink_arg =
    let doc =
      "On violation, shrink the history to a locally minimal violating core \
       and print it as a timeline."
    in
    Arg.(value & flag & info [ "shrink"; "s" ] ~doc)
  in
  let backend_arg =
    let doc =
      "du-opacity checker backend: $(docv) ∈ search|graph|both.  [graph] \
       uses the incremental conflict-graph core (falling back to the \
       search only on genuinely ambiguous histories); [both] runs the two \
       and prints a verdict line each."
    in
    Arg.(
      value & opt backend_conv B_search
      & info [ "backend"; "b" ] ~docv:"BACKEND" ~doc)
  in
  let criterion_arg =
    let doc =
      "Safety criterion to judge: $(docv) ∈ du|last-use|both.  Overrides \
       $(b,--property); [both] prints one verdict line per criterion, \
       which is how early-release histories show the two separate."
    in
    Arg.(
      value & opt (some criterion_conv) None
      & info [ "criterion" ] ~docv:"CRIT" ~doc)
  in
  let dot_arg =
    let doc =
      "On a du-opacity violation, write a Graphviz rendering of the \
       (shrunk, when $(b,--shrink) is given) violating core to $(docv), \
       with the conflict-graph counterexample cycle highlighted."
    in
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)
  in
  let run input property criterion backend max_nodes timeline certificate
      shrink dot =
    match history_of_input input with
    | Error e -> e
    | Ok h ->
        if timeline then Fmt.pr "%s@." (Pretty.timeline h);
        let worst = ref 0 in
        let emit_dot core =
          match dot with
          | None -> ()
          | Some path ->
              let cycle = Conflict_graph.counterexample_cycle core in
              let oc = open_out path in
              output_string oc (Dot.of_history ?cycle core);
              close_out oc;
              Fmt.pr "  dot graph%s: %s@."
                (match cycle with
                | Some c ->
                    Fmt.str " (cycle %a)"
                      Fmt.(list ~sep:(any "->") (fmt "T%d"))
                      c
                | None -> "")
                path
        in
        let checks =
          match criterion with
          | Some c -> checks_of_criterion backend c
          | None -> checks_of_property backend property
        in
        List.iter
          (fun (name, check) ->
            match check ?max_nodes h with
            | Verdict.Sat s ->
                if certificate then
                  Fmt.pr "%-28s yes  [%a]@." name Serialization.pp s
                else Fmt.pr "%-28s yes@." name
            | Verdict.Unsat why -> (
                worst := max !worst 1;
                Fmt.pr "%-28s NO   (%s)@." name why;
                match
                  if shrink then
                    Shrink.minimal_violation
                      ~check:(fun h -> check ?max_nodes h)
                      h
                  else None
                with
                | Some core ->
                    Fmt.pr "  minimal violating core (%d events):@.%s"
                      (History.length core) (Pretty.timeline core);
                    Fmt.pr "  text: %s@." (Parse.to_text core);
                    emit_dot core
                | None -> emit_dot h)
            | Verdict.Unknown why ->
                worst := max !worst 2;
                Fmt.pr "%-28s ???  (%s)@." name why)
          checks;
        if !worst = 0 then `Ok () else `Error_code !worst
  in
  let term =
    Term.(
      const run $ input_arg $ property_arg $ criterion_arg $ backend_arg
      $ max_nodes_arg $ timeline_arg $ certificate_arg $ shrink_arg $ dot_arg)
  in
  let handle = function
    | `Ok () -> 0
    | `Error_code n -> n
    | `Msg m ->
        Fmt.epr "tm check: %s@." m;
        3
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check a history against a TM consistency property")
    Term.(const handle $ term)

(* --- tm gen ------------------------------------------------------------- *)

let gen_cmd =
  let txns = Arg.(value & opt int 8 & info [ "txns" ] ~doc:"Transactions.") in
  let vars = Arg.(value & opt int 3 & info [ "vars" ] ~doc:"Variables.") in
  let threads =
    Arg.(value & opt int 3 & info [ "threads" ] ~doc:"Interleaving degree.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let count =
    Arg.(value & opt int 1 & info [ "count" ] ~doc:"How many histories (one per line).")
  in
  let unique =
    Arg.(value & flag & info [ "unique-writes" ] ~doc:"Unique-writes mode (Theorem 11 premise).")
  in
  let random_values =
    Arg.(
      value & flag
      & info [ "random-values" ]
          ~doc:"Uniform random read results (mostly broken histories) instead \
                of snapshot semantics.")
  in
  let run txns vars threads seed count unique random_values =
    let params =
      {
        Gen.default with
        n_txns = txns;
        n_vars = vars;
        n_threads = threads;
        unique_writes = unique;
        mode = (if random_values then `Random_values else `Snapshot_values);
      }
    in
    for i = 0 to count - 1 do
      let h = Gen.run_seed params (seed + i) in
      print_endline (Parse.to_text h)
    done;
    0
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate random well-formed histories")
    Term.(const run $ txns $ vars $ threads $ seed $ count $ unique $ random_values)

(* --- tm run ------------------------------------------------------------- *)

let run_cmd =
  let stm =
    let names = List.map fst Stm.Registry.algorithms in
    let stm_conv = Arg.enum (List.map (fun n -> (n, n)) names) in
    Arg.(value & opt stm_conv "tl2" & info [ "stm" ] ~doc:"STM algorithm.")
  in
  let threads = Arg.(value & opt int 3 & info [ "threads" ] ~doc:"Threads.") in
  let txns =
    Arg.(value & opt int 5 & info [ "txns" ] ~doc:"Transactions per thread.")
  in
  let ops = Arg.(value & opt int 3 & info [ "ops" ] ~doc:"Operations per transaction.") in
  let vars = Arg.(value & opt int 4 & info [ "vars" ] ~doc:"Variables.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Seed.") in
  let zipf =
    Arg.(value & opt float 0.0 & info [ "zipf" ] ~doc:"Zipf skew (0 = uniform).")
  in
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Check the recorded history for du-opacity.")
  in
  let run stm threads txns ops vars seed zipf check timeline =
    let params =
      {
        Stm.Workload.default with
        n_threads = threads;
        txns_per_thread = txns;
        ops_per_txn = ops;
        n_vars = vars;
        zipf_theta = zipf;
      }
    in
    let r = Sim.Runner.run ~stm ~params ~seed () in
    let h = r.Sim.Runner.history in
    let s = r.Sim.Runner.stats in
    if timeline then Fmt.pr "%s@." (Pretty.timeline h)
    else print_endline (Parse.to_text h);
    Fmt.epr "# %s: %d commits, %d op-aborts, %d tryC-aborts, %d events@." stm
      s.Stm.Harness.commits s.Stm.Harness.op_aborts s.Stm.Harness.commit_aborts
      (History.length h);
    if not check then 0
    else
      match Du_opacity.check_fast ~max_nodes:5_000_000 h with
      | Verdict.Sat _ ->
          Fmt.epr "# du-opaque: yes@.";
          0
      | Verdict.Unsat why ->
          Fmt.epr "# du-opaque: NO — %s@." why;
          1
      | Verdict.Unknown why ->
          Fmt.epr "# du-opaque: unknown — %s@." why;
          2
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run an STM workload under the deterministic simulator")
    Term.(
      const run $ stm $ threads $ txns $ ops $ vars $ seed $ zipf $ check
      $ timeline_arg)

(* --- tm chaos ------------------------------------------------------------ *)

let chaos_cmd =
  let stm =
    let names = List.map fst Stm.Registry.algorithms in
    let stm_conv = Arg.enum (List.map (fun n -> (n, n)) names) in
    Arg.(value & opt stm_conv "tl2" & info [ "stm" ] ~doc:"STM algorithm.")
  in
  let seeds =
    Arg.(
      value & opt int 20
      & info [ "seeds" ] ~doc:"Number of seeded campaigns (seeds 1..N).")
  in
  let faults_arg =
    let kind_conv =
      Arg.enum
        (List.map
           (fun k -> (Stm.Faults.kind_to_string k, k))
           Stm.Faults.all_kinds)
    in
    let doc =
      "Fault kinds the sampled plans may contain: $(docv) ⊆ \
       crash,stall,abort,omission."
    in
    Arg.(
      value
      & opt (list kind_conv) [ `Crash; `Stall; `Spurious ]
      & info [ "faults" ] ~docv:"KINDS" ~doc)
  in
  let threads = Arg.(value & opt int 3 & info [ "threads" ] ~doc:"Threads.") in
  let txns =
    Arg.(value & opt int 5 & info [ "txns" ] ~doc:"Transactions per thread.")
  in
  let ops =
    Arg.(value & opt int 3 & info [ "ops" ] ~doc:"Operations per transaction.")
  in
  let vars = Arg.(value & opt int 4 & info [ "vars" ] ~doc:"Variables.") in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Stream every produced history through the du-opacity monitor \
             (verdict covers the history and all of its prefixes).")
  in
  let timelines =
    Arg.(
      value & flag
      & info [ "timelines" ] ~doc:"Print each produced history as a timeline.")
  in
  let service_arg =
    let doc =
      "Network-layer chaos instead of STM-internal faults: stream \
       fault-injected histories through a real durable tm serve instance \
       behind a fault-injecting proxy (torn/dropped/duplicated/delayed/\
       reordered frames, disconnects, and periodic server kill+restart), \
       and arbitrate every round: recovery with the offline monitor's \
       verdict, a documented clean error — never a wrong verdict or a hang."
    in
    Arg.(value & flag & info [ "service" ] ~doc)
  in
  let net_faults_arg =
    let kind_conv =
      Arg.enum
        (List.map
           (fun k -> (Service.Proxy.kind_to_string k, k))
           Service.Proxy.all_kinds)
    in
    let doc =
      "With --service: frame fault kinds the sampled plans may contain \
       ($(docv) ⊆ torn,drop,dup,delay,reorder,disconnect)."
    in
    Arg.(
      value
      & opt (list kind_conv) Service.Proxy.all_kinds
      & info [ "net-faults" ] ~docv:"KINDS" ~doc)
  in
  let points_arg =
    let doc = "With --service: fault points per sampled plan." in
    Arg.(value & opt int 2 & info [ "points" ] ~docv:"N" ~doc)
  in
  let kill_every_arg =
    let doc =
      "With --service: crash and restart the server mid-stream every k-th \
       seed (0 = never)."
    in
    Arg.(value & opt int 3 & info [ "kill-every" ] ~docv:"K" ~doc)
  in
  let deadline_arg =
    let doc = "With --service: per-round hang watchdog, seconds." in
    Arg.(value & opt float 30. & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "verbose" ] ~doc:"With --service: log proxy and server events.")
  in
  let run_service stm seeds net_kinds points kill_every deadline verbose
      max_nodes =
    let cfg =
      Service_chaos.config ~source:(`Faults stm)
        ~seeds:(List.init seeds (fun i -> i + 1))
        ~kinds:net_kinds ~points ~kill_every
        ~max_nodes:(Option.value max_nodes ~default:2_000_000)
        ~deadline
        ~log:(if verbose then fun m -> Fmt.epr "# %s@." m else ignore)
        ()
    in
    let report = Service_chaos.run cfg in
    Fmt.pr "# chaos --service: source=faults:%s, net-faults=%s, %d seeds@."
      stm
      (String.concat ","
         (List.map Service.Proxy.kind_to_string net_kinds))
      seeds;
    Fmt.pr "%a@." Service_chaos.pp_report report;
    if report.Service_chaos.wrong > 0 || report.Service_chaos.hangs > 0 then 1
    else 0
  in
  let run stm seeds kinds threads txns ops vars check timelines max_nodes
      service net_kinds points kill_every deadline verbose =
    if service then
      run_service stm seeds net_kinds points kill_every deadline verbose
        max_nodes
    else
    let params =
      {
        Stm.Workload.default with
        n_threads = threads;
        txns_per_thread = txns;
        ops_per_txn = ops;
        n_vars = vars;
      }
    in
    let max_nodes = Option.value max_nodes ~default:2_000_000 in
    let reports =
      Sim.Faults.campaign ~max_nodes ~check ~kinds ~stm ~params
        ~seeds:(List.init seeds (fun i -> i + 1))
        ()
    in
    Fmt.pr "# chaos: %s, %a, faults=%s@." stm Stm.Workload.pp_params params
      (String.concat "," (List.map Stm.Faults.kind_to_string kinds));
    Fmt.pr "%4s  %-28s %6s %5s %8s %5s  %s@." "seed" "plan" "events" "txns"
      "pending" "fate" "verdict";
    let ok = ref 0 and violations = ref 0 and budgets = ref 0 in
    let with_pending = ref 0 and incomplete = ref 0 in
    let responses = ref 0 and hits = ref 0 in
    let searches = ref 0 and nodes = ref 0 in
    List.iter
      (fun (r : Sim.Faults.report) ->
        if r.Sim.Faults.commit_pending > 0 then incr with_pending;
        if r.Sim.Faults.incomplete > 0 then incr incomplete;
        (match r.Sim.Faults.monitor with
        | Some m ->
            responses := !responses + m.Sim.Faults.responses;
            hits := !hits + m.Sim.Faults.fastpath_hits;
            searches := !searches + m.Sim.Faults.searches;
            nodes := !nodes + m.Sim.Faults.nodes
        | None -> ());
        let verdict =
          match r.Sim.Faults.outcome with
          | None -> "-"
          | Some `Ok ->
              incr ok;
              "ok"
          | Some (`Violation why) ->
              incr violations;
              Fmt.str "VIOLATION (%s)" why
          | Some (`Budget why) ->
              incr budgets;
              Fmt.str "unknown (%s)" why
        in
        let s = r.Sim.Faults.stats in
        Fmt.pr "%4d  %-28s %6d %5d %8d %5s  %s@." r.Sim.Faults.seed
          (Fmt.str "%a" Stm.Faults.pp_spec r.Sim.Faults.spec)
          (History.length r.Sim.Faults.history)
          (List.length (History.txns r.Sim.Faults.history))
          r.Sim.Faults.commit_pending
          (Fmt.str "%dc%dx" s.Stm.Harness.crashes s.Stm.Harness.stalls)
          verdict;
        if timelines then
          Fmt.pr "%s@." (Pretty.timeline r.Sim.Faults.history))
      reports;
    Fmt.pr
      "# %d runs: %d incomplete histories, %d with a pending tryCommit@."
      (List.length reports) !incomplete !with_pending;
    if check then begin
      Fmt.pr "# verdicts: %d ok, %d violations, %d budget-exhausted@." !ok
        !violations !budgets;
      if !responses > 0 then
        Fmt.pr
          "# monitor fast path: %d/%d responses revalidated in place \
           (%.1f%%), %d searches, %d nodes@."
          !hits !responses
          (100. *. float_of_int !hits /. float_of_int !responses)
          !searches !nodes
    end;
    if !violations > 0 then 1 else if !budgets > 0 then 2 else 0
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run an STM under a deterministic fault campaign (crashed threads, \
          stalled commits, spurious aborts, truncated traces) and check the \
          incomplete histories it produces.  With --service, run \
          network-layer chaos against a live durable tm serve instance \
          instead.")
    Term.(
      const run $ stm $ seeds $ faults_arg $ threads $ txns $ ops $ vars
      $ check $ timelines $ max_nodes_arg $ service_arg $ net_faults_arg
      $ points_arg $ kill_every_arg $ deadline_arg $ verbose_arg)

(* --- tm soak ------------------------------------------------------------- *)

let soak_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base PRNG seed; iteration $(i,i) uses seed + i.") in
  let iters =
    Arg.(
      value & opt (some int) None
      & info [ "iters" ]
          ~doc:"Stop after $(docv) iterations (default 200 when --seconds is \
                not given).")
  in
  let seconds =
    Arg.(
      value & opt (some float) None
      & info [ "seconds" ] ~doc:"Stop after $(docv) seconds of wall clock.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs" ] ~doc:"Worker domains in the soak pool.")
  in
  let sources =
    let doc =
      "Comma-separated history sources, cycled per iteration: $(b,gen) \
       (random histories), an STM name (recorded executions, e.g. \
       $(b,tl2),$(b,norec),$(b,pessimistic)), or $(b,faults-)$(i,STM) \
       (fault-injected campaigns).  Default: gen,tl2,gen,norec,faults-tl2,\
       gen,pessimistic,faults-norec."
    in
    Arg.(value & opt (some string) None & info [ "sources" ] ~docv:"TAGS" ~doc)
  in
  let serve =
    Arg.(
      value & flag
      & info [ "serve" ]
          ~doc:"Also round-trip every history through a loopback tm serve \
                instance (started in-process on a private Unix socket).")
  in
  let corpus =
    Arg.(
      value & opt string "corpus/soak"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Persist shrunk discrepancy repros under $(docv).")
  in
  let no_corpus =
    Arg.(value & flag & info [ "no-corpus" ] ~doc:"Do not persist repro files.")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the JSON report to $(docv) ($(b,-) = stdout).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress per-discrepancy progress logs.")
  in
  let run seed iters seconds jobs sources serve corpus no_corpus json
      max_nodes quiet =
    let sources =
      match sources with
      | None -> Ok None
      | Some s ->
          let tags = String.split_on_char ',' s |> List.filter (( <> ) "") in
          let rec go acc = function
            | [] -> Ok (Some (List.rev acc))
            | t :: rest -> (
                match Oracle.source_of_tag (String.trim t) with
                | Ok src -> go (src :: acc) rest
                | Error e -> Error e)
          in
          go [] tags
    in
    match sources with
    | Error e ->
        Fmt.epr "tm soak: %s@." e;
        3
    | Ok sources ->
        let server =
          if not serve then None
          else
            let path =
              Filename.concat (Filename.get_temp_dir_name ())
                (Fmt.str "tm-soak-%d.sock" (Unix.getpid ()))
            in
            let cfg =
              Service.Server.config ~domains:(max 1 jobs) ?max_nodes
                (`Unix path)
            in
            Some (Service.Server.start cfg)
        in
        let log = if quiet then ignore else fun m -> Fmt.epr "%s@." m in
        let cfg =
          Oracle.config ~base_seed:seed ?iters ?seconds ~jobs ?max_nodes
            ?sources
            ?serve:(Option.map Service.Server.bound_addr server)
            ?corpus_dir:(if no_corpus then None else Some corpus)
            ~log ()
        in
        let r = Oracle.run cfg in
        Option.iter (fun s -> Service.Server.stop s) server;
        Fmt.pr
          "# soak: %d iterations, %d events, %.1f s wall, %d unknown, %d \
           closure gap(s), %d job(s), seed %d@."
          r.Oracle.r_iterations r.Oracle.r_events r.Oracle.r_wall_s
          r.Oracle.r_unknowns r.Oracle.r_closure_gaps jobs seed;
        List.iter
          (fun (p : Oracle.path_stat) ->
            Fmt.pr "#   %-8s %10.0f events/s  (%d events, %.2f s)@."
              p.Oracle.p_path
              (if p.Oracle.p_seconds <= 0. then 0.
               else float_of_int p.Oracle.p_events /. p.Oracle.p_seconds)
              p.Oracle.p_events p.Oracle.p_seconds)
          r.Oracle.r_paths;
        List.iter
          (fun (d : Oracle.discrepancy) ->
            Fmt.pr
              "DISCREPANCY iter %d (%s, seed %d), shrunk %d -> %d events:@."
              d.Oracle.d_iter d.Oracle.d_source d.Oracle.d_seed
              (History.length d.Oracle.d_history)
              (History.length d.Oracle.d_shrunk);
            List.iter
              (fun f -> Fmt.pr "  %a@." Oracle.pp_finding f)
              d.Oracle.d_findings;
            Fmt.pr "%s@." (Pretty.timeline d.Oracle.d_shrunk);
            Fmt.pr "  text: %s@." (Parse.to_text d.Oracle.d_shrunk))
          r.Oracle.r_discrepancies;
        List.iter
          (fun p -> Fmt.pr "# repro written: %s@." p)
          r.Oracle.r_corpus_written;
        (match json with
        | None -> ()
        | Some "-" -> print_string (Oracle.report_json cfg r)
        | Some file ->
            let oc = open_out file in
            output_string oc (Oracle.report_json cfg r);
            close_out oc);
        Fmt.pr "# discrepancies: %d@." (List.length r.Oracle.r_discrepancies);
        if r.Oracle.r_discrepancies <> [] then 1 else 0
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Differential soak: drive random, recorded and fault-injected \
          histories through every du-opacity checker path in lockstep \
          (batch, fast, incremental, online monitor, optional loopback \
          service), classify any divergence, auto-shrink it while the \
          paths still disagree, and persist a deterministic repro into \
          the regression corpus")
    Term.(
      const run $ seed $ iters $ seconds $ jobs $ sources $ serve $ corpus
      $ no_corpus $ json $ max_nodes_arg $ quiet)

(* --- tm monitor --------------------------------------------------------- *)

let monitor_cmd =
  let run input max_nodes =
    match history_of_input input with
    | Error (`Msg m) ->
        Fmt.epr "tm monitor: %s@." m;
        3
    | Ok h -> (
        let m = Monitor.create ?max_nodes () in
        let report_fastpath () =
          let responses = Monitor.responses_seen m in
          let hits = Monitor.fastpath_hits m in
          if responses > 0 then
            Fmt.pr
              "fast path: %d/%d responses revalidated in place (%.1f%%), %d \
               searches, %d nodes@."
              hits responses
              (100. *. float_of_int hits /. float_of_int responses)
              (Monitor.searches_run m) (Monitor.nodes_total m)
        in
        match Monitor.push_all m (History.to_list h) with
        | `Ok ->
            Fmt.pr "ok: every prefix (%d events) is du-opaque@."
              (Monitor.events_seen m);
            report_fastpath ();
            0
        | `Violation why ->
            Fmt.pr "VIOLATION: %s@." why;
            (match Monitor.violation_index m with
            | Some i ->
                Fmt.pr "first violating prefix:@.%s@."
                  (Pretty.timeline (History.prefix h i))
            | None -> ());
            report_fastpath ();
            1
        | `Budget why ->
            Fmt.pr "unknown: %s@." why;
            report_fastpath ();
            2)
  in
  Cmd.v
    (Cmd.info "monitor" ~doc:"Stream a history through the online du-opacity monitor")
    Term.(const run $ input_arg $ max_nodes_arg)

(* --- tm serve / tm submit ------------------------------------------------ *)

let addr_of ~unix_path ~tcp : (Service.Wire.addr, [ `Msg of string ]) result =
  match unix_path, tcp with
  | Some _, Some _ -> Error (`Msg "--unix and --tcp are mutually exclusive")
  | Some path, None -> Ok (`Unix path)
  | None, Some spec -> (
      match String.rindex_opt spec ':' with
      | Some i -> (
          let host = String.sub spec 0 i in
          let port = String.sub spec (i + 1) (String.length spec - i - 1) in
          match int_of_string_opt port with
          | Some p -> Ok (`Tcp ((if host = "" then "127.0.0.1" else host), p))
          | None -> Error (`Msg ("cannot parse port in --tcp " ^ spec)))
      | None -> (
          match int_of_string_opt spec with
          | Some p -> Ok (`Tcp ("127.0.0.1", p))
          | None -> Error (`Msg ("cannot parse --tcp " ^ spec))))
  | None, None -> Error (`Msg "an endpoint is required: --unix PATH or --tcp [HOST:]PORT")

let unix_arg =
  let doc = "Serve on (connect to) a Unix-domain socket at $(docv)." in
  Arg.(value & opt (some string) None & info [ "unix" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc = "Serve on (connect to) a TCP endpoint $(docv) (default host 127.0.0.1)." in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"[HOST:]PORT" ~doc)

let serve_cmd =
  let domains_arg =
    let doc = "Shard pool size: sessions are sharded across $(docv) OCaml domains." in
    Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc = "Bounded work-queue capacity per domain (backpressure)." in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let shards_arg =
    let doc =
      "Monitor shards per session: events are partitioned by location \
       across $(docv) incremental conflict graphs and stitched into a \
       global certificate at every batch (two-phase certify/stitch).  \
       1 = the sequential per-session monitor."
    in
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress the per-connection event log.")
  in
  let journal_arg =
    let doc =
      "Make sessions durable: journal every applied event (and checkpoint \
       monitor snapshots) under $(docv), so sessions survive disconnects \
       and server restarts and can be resumed."
    in
    Arg.(
      value & opt (some string) None
      & info [ "journal"; "journal-dir" ] ~docv:"DIR" ~doc)
  in
  let journal_sync_arg =
    Arg.(
      value & flag
      & info [ "journal-sync" ]
          ~doc:"fsync every journal append (power-cut durability).")
  in
  let session_timeout_arg =
    let doc =
      "Seconds of complete silence after which a connection is presumed \
       dead, and how long an orphaned durable session stays resumable."
    in
    Arg.(
      value
      & opt float Service.Protocol.default_session_timeout
      & info [ "session-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let heartbeat_arg =
    let doc = "Advertised heartbeat interval for idle clients." in
    Arg.(
      value
      & opt float Service.Protocol.default_heartbeat
      & info [ "heartbeat" ] ~docv:"SECONDS" ~doc)
  in
  let max_conns_arg =
    let doc = "Admission control: refuse connections beyond $(docv)." in
    Arg.(value & opt int 1024 & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let max_sessions_arg =
    let doc = "Admission control: refuse sessions beyond $(docv)." in
    Arg.(value & opt int 8192 & info [ "max-sessions" ] ~docv:"N" ~doc)
  in
  let hwm_arg =
    let doc =
      "Mailbox high-watermark at which v2 sessions are throttled \
       (degradation ladder); default queue/2."
    in
    Arg.(value & opt (some int) None & info [ "hwm" ] ~docv:"N" ~doc)
  in
  let run unix_path tcp domains shards queue max_nodes quiet journal_dir
      journal_sync session_timeout heartbeat max_conns max_sessions hwm =
    match addr_of ~unix_path ~tcp with
    | Error (`Msg m) ->
        Fmt.epr "tm serve: %s@." m;
        3
    | Ok addr -> (
        let log =
          if quiet then ignore else fun msg -> Fmt.epr "tm serve: %s@." msg
        in
        match
          Service.Server.start
            (Service.Server.config ~domains ~shards ?max_nodes
               ~queue_capacity:queue ?journal_dir ~journal_sync
               ~session_timeout ~heartbeat ~max_conns ~max_sessions ?hwm ~log
               addr)
        with
        | exception Unix.Unix_error (e, _, arg) ->
            Fmt.epr "tm serve: cannot listen on %a: %s %s@."
              Service.Wire.pp_addr addr (Unix.error_message e) arg;
            3
        | exception Invalid_argument m ->
            Fmt.epr "tm serve: %s@." m;
            3
        | srv ->
            Fmt.pr "tm serve: listening on %a (%d domains%s, queue %d%s)@."
              Service.Wire.pp_addr
              (Service.Server.bound_addr srv)
              domains
              (if shards > 1 then Fmt.str ", %d monitor shards" shards else "")
              queue
              (match journal_dir with
              | Some d -> Fmt.str ", durable sessions in %s" d
              | None -> "");
            let stop _ =
              Service.Server.stop srv;
              exit 0
            in
            (try
               Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
               Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
             with Invalid_argument _ | Sys_error _ -> ());
            while true do
              Unix.sleep 3600
            done;
            0)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the streaming du-opacity checking service (binary wire \
          protocol, one online monitor per session, sessions sharded \
          across a domain pool; optionally durable, with crash recovery \
          and overload shedding)")
    Term.(
      const run $ unix_arg $ tcp_arg $ domains_arg $ shards_arg $ queue_arg
      $ max_nodes_arg $ quiet_arg $ journal_arg $ journal_sync_arg
      $ session_timeout_arg $ heartbeat_arg $ max_conns_arg $ max_sessions_arg
      $ hwm_arg)

let submit_cmd =
  let session_arg =
    let doc = "Client-side session identifier." in
    Arg.(value & opt int 1 & info [ "session" ] ~docv:"N" ~doc)
  in
  let chunk_arg =
    let doc = "Events per frame when streaming." in
    Arg.(value & opt int 512 & info [ "chunk" ] ~docv:"N" ~doc)
  in
  let durable_arg =
    let doc =
      "Fault-tolerant submission: open a durable session, resume after \
       disconnects or server restarts with bounded exponential backoff, \
       and re-send only unacknowledged events.  Requires the server to run \
       with --journal-dir."
    in
    Arg.(value & flag & info [ "durable" ] ~doc)
  in
  let retries_arg =
    let doc = "Reconnect/retry budget in durable mode." in
    Arg.(value & opt int 8 & info [ "retries" ] ~docv:"N" ~doc)
  in
  (* Exit codes mirror tm monitor (0 ok / 1 violation / 2 inconclusive),
     with 3 for every transport or protocol failure — each as a one-line
     diagnostic, never a bare exception trace. *)
  let verdict_exit (v : Service.Protocol.verdict) ~shed =
    match v.Service.Protocol.status with
    | Service.Protocol.S_violation why ->
        Fmt.pr "VIOLATION: %s@." why;
        1
    | Service.Protocol.S_budget why ->
        Fmt.pr "unknown: %s@." why;
        2
    | Service.Protocol.S_ok -> (
        match shed with
        | Some reason ->
            Fmt.pr
              "unknown: session shed under load (%s); verdict covers only \
               the first %d events@."
              reason v.Service.Protocol.applied;
            2
        | None ->
            Fmt.pr "ok: every prefix (%d events) is du-opaque@."
              v.Service.Protocol.events;
            0)
  in
  let run input unix_path tcp session chunk durable retries =
    match addr_of ~unix_path ~tcp with
    | Error (`Msg m) ->
        Fmt.epr "tm submit: %s@." m;
        3
    | Ok addr -> (
        match history_of_input input with
        | Error (`Msg m) ->
            Fmt.epr "tm submit: %s@." m;
            3
        | Ok h -> (
            let fail fmt = Fmt.kstr (fun m -> Fmt.epr "tm submit: %s@." m; 3) fmt in
            if durable then
              let backoff =
                { Service.Client.default_backoff with attempts = retries }
              in
              match
                Service.Client.submit_durable ~session ~chunk ~backoff
                  ~connect:(fun () ->
                    Service.Client.connect_retry ~backoff addr)
                  (History.to_list h)
              with
              | exception Service.Client.Server_error m ->
                  fail "server error: %s" m
              | exception Unix.Unix_error (e, _, _) ->
                  fail "cannot reach %a: %s" Service.Wire.pp_addr addr
                    (Unix.error_message e)
              | r ->
                  if r.Service.Client.reconnects > 0 then
                    Fmt.epr
                      "tm submit: recovered through %d reconnect(s), %d \
                       resend round(s)@."
                      r.Service.Client.reconnects r.Service.Client.retries;
                  verdict_exit r.Service.Client.verdict
                    ~shed:r.Service.Client.shed_reason
            else
              match Service.Client.connect addr with
              | exception Unix.Unix_error (e, _, _) ->
                  fail "cannot connect to %a: %s" Service.Wire.pp_addr addr
                    (Unix.error_message e)
              | client -> (
                  let finish code =
                    (try Service.Client.close client
                     with
                     | Service.Client.Server_error _ | Service.Wire.Closed
                     | Service.Wire.Desync _
                     | Unix.Unix_error _ -> ());
                    code
                  in
                  match Service.Client.submit ~session ~chunk client h with
                  | exception Service.Client.Server_error m ->
                      finish (fail "server error: %s" m)
                  | exception Service.Wire.Desync m ->
                      finish
                        (fail
                           "protocol desync (%s); client speaks protocol v%d \
                            — is the server older or newer?"
                           m Service.Protocol.version)
                  | exception Service.Wire.Closed ->
                      finish
                        (fail
                           "connection closed mid-stream; rerun with \
                            --durable to resume against a --journal-dir \
                            server")
                  | exception Unix.Unix_error (e, _, _) ->
                      finish (fail "i/o error: %s" (Unix.error_message e))
                  | v -> finish (verdict_exit v ~shed:None))))
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Stream a history into a running tm serve instance and print the \
          final verdict (same judgement and exit codes as tm monitor).  \
          With --durable, survives disconnects and server restarts by \
          resuming the session.")
    Term.(
      const run $ input_arg $ unix_arg $ tcp_arg $ session_arg $ chunk_arg
      $ durable_arg $ retries_arg)

(* --- tm verify ----------------------------------------------------------- *)

let verify_cmd =
  let stms =
    let names = List.map fst Stm.Registry.algorithms in
    let stm_conv = Arg.enum (List.map (fun n -> (n, n)) names) in
    Arg.(
      value & opt (list stm_conv) []
      & info [ "stm" ] ~docv:"STMS"
          ~doc:"STM algorithms to verify (default: all).")
  in
  let threads = Arg.(value & opt int 2 & info [ "threads" ] ~doc:"Threads.") in
  let txns =
    Arg.(value & opt int 2 & info [ "txns" ] ~doc:"Transactions per thread.")
  in
  let ops =
    Arg.(value & opt int 2 & info [ "ops" ] ~doc:"Operations per transaction.")
  in
  let vars = Arg.(value & opt int 2 & info [ "vars" ] ~doc:"Variables.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Workload seed.") in
  let max_runs =
    Arg.(
      value & opt int 200_000
      & info [ "max-runs" ] ~doc:"DPOR schedule budget.")
  in
  let naive_budget =
    Arg.(
      value & opt int 300_000
      & info [ "naive-budget" ]
          ~doc:
            "Schedule budget for the naive branch-everywhere baseline \
             (cross-checks the DPOR verdict set; 0 skips it).")
  in
  let max_retries =
    Arg.(
      value & opt int 4
      & info [ "max-retries" ]
          ~doc:
            "Per-program attempt budget; every retry is a fresh \
             transaction DPOR must explore, so keep it small for \
             abort-prone algorithms.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"Per-STM reports with race witnesses and first violations.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Write a JSON report to $(docv).")
  in
  let run stms threads txns ops vars seed max_runs naive_budget max_retries
      verbose json max_nodes =
    let cfg =
      {
        Analysis.Verify.stms;
        params =
          {
            Stm.Workload.default with
            n_threads = threads;
            txns_per_thread = txns;
            ops_per_txn = ops;
            n_vars = vars;
            read_ratio = 0.5;
          };
        seed;
        max_runs;
        naive_max_runs = naive_budget;
        max_retries;
        max_nodes = Option.value max_nodes ~default:1_000_000;
      }
    in
    let t0 = Stm.Clock.now () in
    let results =
      List.map
        (fun s ->
          let r = Analysis.Verify.run_stm cfg s in
          if verbose then Fmt.pr "%a@.@." Analysis.Verify.pp_result r;
          r)
        (match cfg.stms with
        | [] -> List.map fst Stm.Registry.algorithms
        | l -> l)
    in
    let wall = Stm.Clock.now () -. t0 in
    Fmt.pr "# verify: %a, seed %d@." Stm.Workload.pp_params cfg.params
      cfg.seed;
    Fmt.pr "%a" Analysis.Verify.pp_table results;
    Fmt.pr "# wall %.1fs@." wall;
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Analysis.Verify.to_json cfg ~wall results);
        close_out oc;
        Fmt.pr "# wrote %s@." path);
    if List.for_all Analysis.Verify.ok results then 0 else 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Exhaustively verify the registered STMs on a small workload: \
          DPOR-reduced schedule enumeration, du-opacity checks on every \
          distinct history, happens-before race analysis on every \
          schedule's access trace, and a naive-DFS verdict cross-check")
    Term.(
      const run $ stms $ threads $ txns $ ops $ vars $ seed $ max_runs
      $ naive_budget $ max_retries $ verbose $ json_arg $ max_nodes_arg)

(* --- tm lint ------------------------------------------------------------- *)

let lint_cmd =
  let roots =
    Arg.(
      value
      & pos_all string [ "lib"; "bin" ]
      & info [] ~docv:"DIR" ~doc:"Directories to scan (default: lib bin).")
  in
  let format_arg =
    let doc = "Output format: $(docv) ∈ text|json." in
    Arg.(
      value
      & opt (Arg.enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let rules_arg =
    let doc =
      "Comma-separated rule names to run (default: all; see --list-rules)."
    in
    Arg.(
      value
      & opt (some (Arg.list Arg.string)) None
      & info [ "rules" ] ~docv:"RULES" ~doc)
  in
  let list_rules_arg =
    Arg.(
      value & flag
      & info [ "list-rules" ] ~doc:"List the registered rules and exit.")
  in
  let self_test_arg =
    Arg.(
      value & flag
      & info [ "self-test" ]
          ~doc:
            "Run every rule against its embedded positive/negative fixtures \
             and exit non-zero if any rule is broken.")
  in
  let run roots format rules list_rules self_test =
    if list_rules then begin
      List.iter
        (fun (name, doc) -> Fmt.pr "%-24s %s@." name doc)
        Analysis.Lint.rule_docs;
      0
    end
    else if self_test then begin
      let results = Analysis.Lint.self_test () in
      List.iter
        (fun (name, ok) ->
          Fmt.pr "%-24s %s@." name (if ok then "ok" else "BROKEN"))
        results;
      if List.for_all snd results then begin
        Fmt.pr "lint self-test: %d rules ok@." (List.length results);
        0
      end
      else begin
        Fmt.pr "lint self-test: FAILED@.";
        1
      end
    end
    else begin
      match
        Option.map Analysis.Lint.unknown_rules rules
      with
      | Some (_ :: _ as unknown) ->
          Fmt.epr "lint: unknown rule%s: %s@."
            (if List.length unknown = 1 then "" else "s")
            (String.concat ", " unknown);
          2
      | Some [] | None -> (
          let findings =
            Analysis.Lint.scan_roots ?rules_enabled:rules roots
          in
          match format with
          | `Json ->
              let rules_run =
                Option.value rules ~default:Analysis.Lint.rule_names
              in
              print_string (Analysis.Lint.report_json ~rules_run findings);
              if findings = [] then 0 else 1
          | `Text -> (
              List.iter
                (fun f -> Fmt.pr "%a@." Analysis.Lint.pp_finding f)
                findings;
              match findings with
              | [] ->
                  Fmt.pr "lint: clean@.";
                  0
              | fs ->
                  Fmt.pr "lint: %d finding%s@." (List.length fs)
                    (if List.length fs = 1 then "" else "s");
                  1))
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static-analysis rule suite over OCaml sources: \
          polymorphic comparison/hashing/equality on history values, \
          quadratic scans in hot loops, Hashtbl iteration-order \
          nondeterminism, unsynchronized domain-shared state, blocking \
          calls under a mutex, swallowed exceptions, and stale lint \
          suppressions")
    Term.(
      const run $ roots $ format_arg $ rules_arg $ list_rules_arg
      $ self_test_arg)

(* --- tm figures ---------------------------------------------------------- *)

let figures_cmd =
  let run () =
    List.iter
      (fun (e : Figures.expectation) ->
        Fmt.pr "@.=== %s — %s ===@.%s" e.name e.claim (Pretty.timeline e.history);
        Fmt.pr "  text: %s@." (Parse.to_text e.history))
      Figures.catalog;
    0
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Print the paper's example histories (Figures 1-6)")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "tm" ~version:"1.0.0"
      ~doc:"Transactional-memory history checkers (du-opacity and friends)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            check_cmd; gen_cmd; run_cmd; chaos_cmd; soak_cmd; monitor_cmd;
            serve_cmd; submit_cmd; verify_cmd; lint_cmd; figures_cmd;
          ]))
