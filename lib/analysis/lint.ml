type finding = { file : string; line : int; rule : string; text : string }

let default_whitelist = [ "event.ml" ]

(* --- source preparation ---------------------------------------------------

   Blank out comments, string literals and character literals, preserving
   line structure and column positions, so the token scan below never fires
   inside documentation or message text.  Comments nest; double-quoted
   strings handle backslash escapes; quoted strings are matched by
   delimiter; a quote only starts a char literal for the quote-char-quote
   and quote-escape shapes (leaving type variables and primed identifiers
   alone). *)

let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let is_ld c = (c >= 'a' && c <= 'z') || c = '_' in
  let i = ref 0 in
  let depth = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if !depth > 0 then begin
      (* inside a comment *)
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        blank !i;
        blank (!i + 1);
        incr depth;
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        blank !i;
        blank (!i + 1);
        decr depth;
        i := !i + 2
      end
      else begin
        blank !i;
        incr i
      end
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      blank !i;
      blank (!i + 1);
      depth := 1;
      i := !i + 2
    end
    else if c = '"' then begin
      blank !i;
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        if src.[!i] = '\\' && !i + 1 < n then begin
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else begin
          if src.[!i] = '"' then fin := true;
          blank !i;
          incr i
        end
      done
    end
    else if c = '{' && !i + 1 < n && (src.[!i + 1] = '|' || is_ld src.[!i + 1])
    then begin
      (* possible quoted string {id|...|id} *)
      let j = ref (!i + 1) in
      while !j < n && is_ld src.[!j] do incr j done;
      if !j < n && src.[!j] = '|' then begin
        let id = String.sub src (!i + 1) (!j - !i - 1) in
        let close = "|" ^ id ^ "}" in
        let cl = String.length close in
        let k = ref (!j + 1) in
        let stop = ref (-1) in
        while !stop < 0 && !k + cl <= n do
          if String.sub src !k cl = close then stop := !k else incr k
        done;
        let last = if !stop < 0 then n - 1 else !stop + cl - 1 in
        for p = !i to last do blank p done;
        i := last + 1
      end
      else incr i
    end
    else if c = '\'' && !i + 2 < n && src.[!i + 1] = '\\' then begin
      (* '\n' '\\' '\xNN' ... : blank through the closing quote *)
      let j = ref (!i + 2) in
      while !j < n && src.[!j] <> '\'' && src.[!j] <> '\n' do incr j done;
      for p = !i to min !j (n - 1) do blank p done;
      i := !j + 1
    end
    else if c = '\'' && !i + 2 < n && src.[!i + 2] = '\'' && src.[!i + 1] <> '\\'
    then begin
      blank !i;
      blank (!i + 1);
      blank (!i + 2);
      i := !i + 3
    end
    else incr i
  done;
  Bytes.to_string out

(* --- token helpers -------------------------------------------------------- *)

let is_ident c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_op c = String.contains "=<>!&$%*+-/@^|~?:." c

(* First occurrence of [w] in [s] at or after [i], or [-1]. *)
let index_sub s i w =
  let lw = String.length w and ls = String.length s in
  let rec go i =
    if i + lw > ls then -1
    else if String.sub s i lw = w then i
    else go (i + 1)
  in
  go i

(* Find word [w] in [line] at a token boundary: neither side extends the
   identifier, and with [no_dot] the preceding char is not [.] (so
   [Int.compare] does not match bare [compare]) or [~] (labelled arg). *)
let find_word ?(no_dot = false) line w =
  let lw = String.length w and ll = String.length line in
  let rec go i =
    if i + lw > ll then None
    else
      match index_sub line i w with
      | -1 -> None
      | j ->
          let pre_ok =
            j = 0
            ||
            let p = line.[j - 1] in
            (not (is_ident p)) && not (no_dot && (p = '.' || p = '~'))
          in
          let post_ok = j + lw >= ll || not (is_ident line.[j + lw]) in
          if pre_ok && post_ok then Some j else go (j + 1)
  in
  go 0

(* --- poly-eq rule --------------------------------------------------------- *)

let protected_roots = [ "Event."; "History."; "Txn." ]

(* Right-hand paths that denote scalars (ints / status constructors), for
   which polymorphic comparison is fine and pervasive. *)
let allowed_paths =
  [
    "Txn.Committed";
    "Txn.Aborted";
    "Txn.Commit_pending";
    "Txn.Live";
    "Event.init_value";
  ]

let ends_with_binder prefix =
  (* [let f x], [and p], [{ field], [; field], [?(arg] or a bare field
     name before the [=]: a binding or default, not a comparison. *)
  let p = String.trim prefix in
  let lp = String.length p in
  if lp = 0 then true (* continuation line: ambiguous, stay quiet *)
  else
    (* A binder keyword with no [=] between it and our operator means the
       whole stretch is the bound pattern ([let h, torn], [let f x y]). *)
    let binder_kw =
      List.exists
        (fun k ->
          let rec hunt i =
            match find_word (String.sub p i (lp - i)) k with
            | None -> false
            | Some j ->
                let after = String.sub p (i + j) (lp - i - j) in
                (not (String.contains after '=')) || hunt (i + j + 1)
          in
          hunt 0)
        [ "let"; "and"; "val"; "method"; "external"; "type" ]
    in
    (* A prefix that is nothing but a path ([history], [Foo.field]) is a
       record-field binding in a multi-line literal. *)
    let bare_field =
      String.for_all (fun c -> is_ident c || c = '.') p
    in
    (* [{ field] / [; field]: an inline record-field binding. *)
    let field_bind =
      let j = ref lp in
      while !j > 0 && (is_ident p.[!j - 1] || p.[!j - 1] = '.' || p.[!j - 1] = ' ')
      do
        decr j
      done;
      !j > 0 && (p.[!j - 1] = '{' || p.[!j - 1] = ';')
    in
    binder_kw || bare_field || field_bind
    || p.[lp - 1] = '{' || p.[lp - 1] = ';' || p.[lp - 1] = '?'
    || p.[lp - 1] = '~'

let path_at line j =
  (* Read a [Module.sub.path] starting at [j]. *)
  let ll = String.length line in
  let k = ref j in
  while !k < ll && (is_ident line.[!k] || line.[!k] = '.') do incr k done;
  String.sub line j (!k - j)

let poly_eq_hits line =
  let ll = String.length line in
  let hits = ref [] in
  let i = ref 0 in
  while !i < ll do
    let c = line.[!i] in
    if is_op c then begin
      (* widest operator token starting here *)
      let j = ref !i in
      while !j < ll && is_op line.[!j] do incr j done;
      let op = String.sub line !i (!j - !i) in
      (if op = "=" || op = "<>" || op = "==" || op = "!=" then begin
         let k = ref !j in
         while !k < ll && (line.[!k] = ' ' || line.[!k] = '(') do incr k done;
         if
           List.exists
             (fun r ->
               let rl = String.length r in
               !k + rl <= ll && String.sub line !k rl = r)
             protected_roots
         then begin
           let path = path_at line !k in
           let binding =
             op = "=" && ends_with_binder (String.sub line 0 !i)
           in
           if (not binding) && not (List.mem path allowed_paths) then
             hits := !i :: !hits
         end
       end);
      i := !j
    end
    else incr i
  done;
  List.rev !hits

(* --- driver ---------------------------------------------------------------- *)

let scan_source ~file src =
  let stripped = strip src in
  let findings = ref [] in
  let add line rule text = findings := { file; line; rule; text } :: !findings in
  List.iteri
    (fun idx line ->
      let ln = idx + 1 in
      let text () = String.trim line in
      (match find_word line "Hashtbl.hash" with
      | Some _ -> add ln "poly-hash" (text ())
      | None -> ());
      (match find_word line "Stdlib.compare" with
      | Some _ -> add ln "poly-compare" (text ())
      | None ->
          (* bare, unqualified [compare] used as a value — not a definition
             ([let compare], [val compare], ...) *)
          (match find_word ~no_dot:true line "compare" with
          | Some j ->
              let defining =
                let p = String.trim (String.sub line 0 j) in
                let ends k =
                  let kl = String.length k and pl = String.length p in
                  pl >= kl
                  && String.sub p (pl - kl) kl = k
                  && (pl = kl || not (is_ident p.[pl - kl - 1]))
                in
                ends "let" || ends "and" || ends "rec" || ends "val"
                || ends "method" || ends "external"
              in
              if not defining then add ln "poly-compare" (text ())
          | None -> ()));
      if poly_eq_hits line <> [] then add ln "poly-eq" (text ()))
    (String.split_on_char '\n' stripped);
  List.rev !findings

let scan_files ?(whitelist = default_whitelist) files =
  List.concat_map
    (fun file ->
      if List.mem (Filename.basename file) whitelist then []
      else
        let ic = open_in_bin file in
        let len = in_channel_length ic in
        let src = really_input_string ic len in
        close_in ic;
        scan_source ~file src)
    files

let scan_roots ?whitelist roots =
  let files = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | entries ->
        Array.sort String.compare entries;
        Array.iter
          (fun e ->
            if e <> "" && e.[0] <> '.' && e <> "_build" then
              let p = Filename.concat dir e in
              if Sys.is_directory p then walk p
              else if Filename.check_suffix e ".ml" then files := p :: !files)
          entries
    | exception Sys_error _ -> ()
  in
  List.iter (fun r -> if Sys.file_exists r then walk r) roots;
  scan_files ?whitelist (List.sort String.compare !files)

let pp_finding ppf f =
  Fmt.pf ppf "%s:%d: [%s] %s" f.file f.line f.rule f.text
