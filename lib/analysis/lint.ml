type finding = { file : string; line : int; rule : string; text : string }

let default_whitelist = [ "event.ml" ]

(* --- source preparation ---------------------------------------------------

   Blank out comments, string literals and character literals, preserving
   line structure and column positions, so the token scans below never fire
   inside documentation or message text.  Comments nest; double-quoted
   strings handle backslash escapes; quoted strings are matched by
   delimiter; a quote only starts a char literal for the quote-char-quote
   and quote-escape shapes (leaving type variables and primed identifiers
   alone). *)

let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let is_ld c = (c >= 'a' && c <= 'z') || c = '_' in
  let i = ref 0 in
  let depth = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if !depth > 0 then begin
      (* inside a comment *)
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        blank !i;
        blank (!i + 1);
        incr depth;
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        blank !i;
        blank (!i + 1);
        decr depth;
        i := !i + 2
      end
      else begin
        blank !i;
        incr i
      end
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      blank !i;
      blank (!i + 1);
      depth := 1;
      i := !i + 2
    end
    else if c = '"' then begin
      blank !i;
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        if src.[!i] = '\\' && !i + 1 < n then begin
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else begin
          if src.[!i] = '"' then fin := true;
          blank !i;
          incr i
        end
      done
    end
    else if c = '{' && !i + 1 < n && (src.[!i + 1] = '|' || is_ld src.[!i + 1])
    then begin
      (* possible quoted string {id|...|id} *)
      let j = ref (!i + 1) in
      while !j < n && is_ld src.[!j] do incr j done;
      if !j < n && src.[!j] = '|' then begin
        let id = String.sub src (!i + 1) (!j - !i - 1) in
        let close = "|" ^ id ^ "}" in
        let cl = String.length close in
        let k = ref (!j + 1) in
        let stop = ref (-1) in
        while !stop < 0 && !k + cl <= n do
          if String.sub src !k cl = close then stop := !k else incr k
        done;
        let last = if !stop < 0 then n - 1 else !stop + cl - 1 in
        for p = !i to last do blank p done;
        i := last + 1
      end
      else incr i
    end
    else if c = '\'' && !i + 2 < n && src.[!i + 1] = '\\' then begin
      (* '\n' '\\' '\xNN' ... : blank through the closing quote *)
      let j = ref (!i + 2) in
      while !j < n && src.[!j] <> '\'' && src.[!j] <> '\n' do incr j done;
      for p = !i to min !j (n - 1) do blank p done;
      i := !j + 1
    end
    else if c = '\'' && !i + 2 < n && src.[!i + 2] = '\'' && src.[!i + 1] <> '\\'
    then begin
      blank !i;
      blank (!i + 1);
      blank (!i + 2);
      i := !i + 3
    end
    else incr i
  done;
  Bytes.to_string out

(* --- token helpers -------------------------------------------------------- *)

let is_ident c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_op c = String.contains "=<>!&$%*+-/@^|~?:." c

(* First occurrence of [w] in [s] at or after [i], or [-1]. *)
let index_sub s i w =
  let lw = String.length w and ls = String.length s in
  let rec go i =
    if i + lw > ls then -1
    else if String.sub s i lw = w then i
    else go (i + 1)
  in
  go i

let contains_sub s w = index_sub s 0 w >= 0

(* Find word [w] in [line] at a token boundary: neither side extends the
   identifier, and with [no_dot] the preceding char is not [.] (so
   [Int.compare] does not match bare [compare]) or [~] (labelled arg). *)
let find_word ?(no_dot = false) line w =
  let lw = String.length w and ll = String.length line in
  let rec go i =
    if i + lw > ll then None
    else
      match index_sub line i w with
      | -1 -> None
      | j ->
          let pre_ok =
            j = 0
            ||
            let p = line.[j - 1] in
            (not (is_ident p))
            && p <> '.'
            && not (no_dot && p = '~')
          in
          let post_ok = j + lw >= ll || not (is_ident line.[j + lw]) in
          if pre_ok && post_ok then Some j else go (j + 1)
  in
  go 0

(* Like [find_word] but a dotted path: [Hashtbl.fold] must not match inside
   [Foo.Hashtbl.fold]-style longer paths on the right ([post] must not
   extend the path with [.ident]). *)
let find_path line w =
  let lw = String.length w and ll = String.length line in
  let rec go i =
    if i + lw > ll then None
    else
      match index_sub line i w with
      | -1 -> None
      | j ->
          let pre_ok =
            j = 0 || ((not (is_ident line.[j - 1])) && line.[j - 1] <> '.')
          in
          let post_ok =
            j + lw >= ll
            || ((not (is_ident line.[j + lw])) && line.[j + lw] <> '.')
          in
          if pre_ok && post_ok then Some j else go (j + 1)
  in
  go 0

(* --- the source model ------------------------------------------------------

   Everything the rules share: the stripped text (split into lines), a
   token stream with line positions, per-line "inside a loop" flags, and
   the suppression pragmas parsed from the *raw* text (they live in
   comments, which the strip blanks). *)

module Source_model = struct
  type pragma = {
    p_line : int;  (* 1-based, the line where the comment opens *)
    p_end : int;  (* the line where the comment closes *)
    p_rules : string list;
    mutable p_used : bool;
  }

  type tok = { t_s : string; t_line : int; t_col : int }

  type t = {
    file : string;
    lines : string array;  (* stripped, 0-based; line l is lines.(l-1) *)
    tokens : tok array;
    loop : bool array;  (* 0-based per line: inside an iteration context *)
    pragmas : pragma list;
    stripped : string;
  }

  let mentions t w = find_path t.stripped w <> None

  let line t l =
    if l >= 1 && l <= Array.length t.lines then t.lines.(l - 1) else ""

  let in_loop t l = l >= 1 && l <= Array.length t.loop && t.loop.(l - 1)

  (* A window of stripped lines around [l], collapsed to one
     space-separated string — for the adjacency heuristics ("is the fold
     result sorted right after?"). *)
  let window t l ~before ~after =
    let lo = max 1 (l - before) and hi = min (Array.length t.lines) (l + after) in
    let b = Buffer.create 256 in
    for i = lo to hi do
      String.iter
        (fun c -> Buffer.add_char b (if c = '\n' then ' ' else c))
        t.lines.(i - 1);
      Buffer.add_char b ' '
    done;
    (* collapse runs of spaces so cross-line phrases like "acc ||" match *)
    let s = Buffer.contents b in
    let out = Buffer.create (String.length s) in
    let prev_sp = ref false in
    String.iter
      (fun c ->
        if c = ' ' then begin
          if not !prev_sp then Buffer.add_char out ' ';
          prev_sp := true
        end
        else begin
          prev_sp := false;
          Buffer.add_char out c
        end)
      s;
    Buffer.contents out

  (* --- tokenizer --- *)

  let tokenize stripped =
    let toks = ref [] in
    let n = String.length stripped in
    let line = ref 1 and bol = ref 0 in
    let i = ref 0 in
    while !i < n do
      let c = stripped.[!i] in
      if c = '\n' then begin
        incr line;
        incr i;
        bol := !i
      end
      else if c = ' ' || c = '\t' || c = '\r' then incr i
      else if is_ident c || (c = '.' && !i + 1 < n && is_ident stripped.[!i + 1])
      then begin
        let j = ref !i in
        while
          !j < n
          && (is_ident stripped.[!j]
             || (stripped.[!j] = '.'
                && !j + 1 < n
                && is_ident stripped.[!j + 1]))
        do
          incr j
        done;
        toks :=
          { t_s = String.sub stripped !i (!j - !i); t_line = !line;
            t_col = !i - !bol }
          :: !toks;
        i := !j
      end
      else if is_op c then begin
        let j = ref !i in
        while !j < n && is_op stripped.[!j] do incr j done;
        toks :=
          { t_s = String.sub stripped !i (!j - !i); t_line = !line;
            t_col = !i - !bol }
          :: !toks;
        i := !j
      end
      else begin
        toks :=
          { t_s = String.make 1 c; t_line = !line; t_col = !i - !bol }
          :: !toks;
        incr i
      end
    done;
    Array.of_list (List.rev !toks)

  (* --- loop regions ---

     A line is "inside a loop" when it sits in a [while]/[for]..[done]
     body, in the argument region of an iteration combinator
     ([List.iter (fun x -> ...) xs] and friends — the region lasts until
     the paren depth at the combinator token closes), or in the body of a
     [let rec] (until the next phrase at the same or shallower
     indentation, capped).  Over-approximation is fine: the consumers are
     tripwire rules whose false positives go through pragmas. *)

  let combinators =
    [
      "List.iter"; "List.iteri"; "List.map"; "List.mapi"; "List.rev_map";
      "List.fold_left"; "List.fold_right"; "List.concat_map"; "List.filter";
      "List.filter_map"; "List.exists"; "List.for_all"; "List.partition";
      "Array.iter"; "Array.iteri"; "Array.map"; "Array.mapi";
      "Array.fold_left"; "Array.exists"; "Array.for_all"; "Hashtbl.iter";
      "Hashtbl.fold"; "Seq.iter"; "Seq.fold_left"; "Seq.map"; "Queue.iter";
      "History.project";
    ]

  let rec_cap = 80
  let comb_cap = 60

  let loop_flags lines =
    let n = Array.length lines in
    let loop = Array.make n false in
    let depth = ref 0 in
    let wf = ref 0 in
    (* A combinator region stays open while the paren depth is above the
       depth at the combinator token, or — for call styles that close
       their parens per line ([List.fold_left] with each argument on its
       own line) — while subsequent lines are indented deeper than the
       combinator's line.  Capped so a tracking slip cannot paint the
       rest of the file. *)
    let combs = ref [] in
    (* (depth0, indent0, lines_left) *)
    let recs = ref [] in
    (* (indent0, lines_left) *)
    for l = 0 to n - 1 do
      let line = lines.(l) in
      let ll = String.length line in
      let indent =
        let j = ref 0 in
        while !j < ll && (line.[!j] = ' ' || line.[!j] = '\t') do incr j done;
        if !j >= ll then None else Some !j
      in
      (* close regions ended by this line's shape *)
      (match indent with
      | Some ind ->
          combs :=
            List.filter
              (fun (d0, i0, _) -> !depth > d0 || ind > i0)
              !combs;
          let starts kw =
            ind + String.length kw <= ll
            && String.sub line ind (String.length kw) = kw
          in
          if
            (starts "let " || starts "type " || starts "module "
           || starts "exception " || starts "val " || starts "open "
           || starts "include " || starts "end")
            && not (starts "let rec ")
          then recs := List.filter (fun (i, _) -> i < ind) !recs
      | None -> ());
      combs :=
        List.filter_map
          (fun (d, i, left) -> if left <= 0 then None else Some (d, i, left - 1))
          !combs;
      recs :=
        List.filter_map
          (fun (i, left) -> if left <= 0 then None else Some (i, left - 1))
          !recs;
      let active0 = !wf > 0 || !combs <> [] || !recs <> [] in
      let active_in_line = ref false in
      (* token scan of this line, tracking depth *)
      let i = ref 0 in
      while !i < ll do
        let c = line.[!i] in
        if c = '(' || c = '[' then begin
          incr depth;
          incr i
        end
        else if c = ')' || c = ']' then begin
          decr depth;
          incr i
        end
        else if is_ident c then begin
          let j = ref !i in
          while
            !j < ll
            && (is_ident line.[!j]
               || (line.[!j] = '.' && !j + 1 < ll && is_ident line.[!j + 1]))
          do
            incr j
          done;
          let w = String.sub line !i (!j - !i) in
          let boundary_ok = !i = 0 || not (is_ident line.[!i - 1]) in
          if boundary_ok then begin
            if w = "while" || w = "for" then begin
              incr wf;
              active_in_line := true
            end
            else if w = "done" then wf := max 0 (!wf - 1)
            else if List.mem w combinators then begin
              combs :=
                (!depth, Option.value indent ~default:0, comb_cap) :: !combs;
              active_in_line := true
            end
            else if w = "let" then begin
              (* [let rec]: peek the next word *)
              let k = ref !j in
              while !k < ll && line.[!k] = ' ' do incr k done;
              if
                !k + 3 <= ll
                && String.sub line !k 3 = "rec"
                && (!k + 3 = ll || not (is_ident line.[!k + 3]))
              then begin
                recs := (Option.value indent ~default:0, rec_cap) :: !recs;
                active_in_line := true
              end
            end
          end;
          i := !j
        end
        else incr i
      done;
      loop.(l) <- active0 || !active_in_line
    done;
    loop

  (* --- pragmas ---

     [(* lint: allow rule-a rule-b — optional prose *)] suppresses findings
     of the named rules on the lines the comment spans plus the one right
     below its close (so the justification may run to several lines).
     Parsed from the raw source (comments are blanked everywhere else).
     A pragma none of whose rules suppressed anything — or naming a rule
     that does not exist — is itself reported by [unused-suppression]. *)

  let pragma_marker = "(* lint: allow "

  let parse_pragmas raw =
    let acc = ref [] in
    let pos = ref 0 in
    let line_of p =
      let l = ref 1 in
      for i = 0 to p - 1 do
        if raw.[i] = '\n' then incr l
      done;
      !l
    in
    let continue = ref true in
    while !continue do
      match index_sub raw !pos pragma_marker with
      | -1 -> continue := false
      | j ->
          let stop =
            match index_sub raw j "*)" with
            | -1 -> String.length raw
            | s -> s
          in
          let body =
            String.sub raw
              (j + String.length pragma_marker)
              (stop - j - String.length pragma_marker)
          in
          (* rule names run to the first token that is not a rule-name
             shape (lowercase/dash); anything after is prose *)
          let words =
            String.split_on_char ' ' body
            |> List.concat_map (String.split_on_char '\n')
            |> List.filter (( <> ) "")
          in
          let is_rule_name w =
            w <> ""
            && String.for_all
                 (fun c -> (c >= 'a' && c <= 'z') || c = '-' || (c >= '0' && c <= '9'))
                 w
          in
          let rec take = function
            | w :: rest when is_rule_name w -> w :: take rest
            | _ -> []
          in
          let rules = take words in
          acc :=
            { p_line = line_of j; p_end = line_of stop; p_rules = rules;
              p_used = false }
            :: !acc;
          pos := j + String.length pragma_marker
    done;
    List.rev !acc

  let of_source ~file src =
    let stripped = strip src in
    let lines = Array.of_list (String.split_on_char '\n' stripped) in
    {
      file;
      lines;
      tokens = tokenize stripped;
      loop = loop_flags lines;
      pragmas = parse_pragmas src;
      stripped;
    }
end

(* --- rules ----------------------------------------------------------------- *)

type rule = {
  name : string;
  doc : string;
  check : Source_model.t -> finding list;
  positive : string;  (* self-test: must produce a [name] finding *)
  negative : string;  (* self-test near-miss: must not *)
}

let mk_finding (m : Source_model.t) line rule =
  { file = m.file; line; rule; text = String.trim (Source_model.line m line) }

(* --- ported rule: poly-hash --- *)

let check_poly_hash (m : Source_model.t) =
  let acc = ref [] in
  Array.iteri
    (fun idx line ->
      match find_path line "Hashtbl.hash" with
      | Some _ -> acc := mk_finding m (idx + 1) "poly-hash" :: !acc
      | None -> ())
    m.lines;
  List.rev !acc

(* --- ported rule: poly-compare --- *)

let check_poly_compare (m : Source_model.t) =
  let acc = ref [] in
  Array.iteri
    (fun idx line ->
      let ln = idx + 1 in
      match find_path line "Stdlib.compare" with
      | Some _ -> acc := mk_finding m ln "poly-compare" :: !acc
      | None -> (
          (* bare, unqualified [compare] used as a value — not a definition
             ([let compare], [val compare], ...) *)
          match find_word ~no_dot:true line "compare" with
          | Some j ->
              let defining =
                let p = String.trim (String.sub line 0 j) in
                let ends k =
                  let kl = String.length k and pl = String.length p in
                  pl >= kl
                  && String.sub p (pl - kl) kl = k
                  && (pl = kl || not (is_ident p.[pl - kl - 1]))
                in
                ends "let" || ends "and" || ends "rec" || ends "val"
                || ends "method" || ends "external"
              in
              if not defining then acc := mk_finding m ln "poly-compare" :: !acc
          | None -> ()))
    m.lines;
  List.rev !acc

(* --- ported rule: poly-eq --- *)

let protected_roots = [ "Event."; "History."; "Txn." ]

(* Right-hand paths that denote scalars (ints / status constructors), for
   which polymorphic comparison is fine and pervasive. *)
let allowed_paths =
  [
    "Txn.Committed";
    "Txn.Aborted";
    "Txn.Commit_pending";
    "Txn.Live";
    "Event.init_value";
  ]

let ends_with_binder prefix =
  (* [let f x], [and p], [{ field], [; field], [?(arg] or a bare field
     name before the [=]: a binding or default, not a comparison. *)
  let p = String.trim prefix in
  let lp = String.length p in
  if lp = 0 then true (* continuation line: ambiguous, stay quiet *)
  else
    (* A binder keyword with no [=] between it and our operator means the
       whole stretch is the bound pattern ([let h, torn], [let f x y]). *)
    let binder_kw =
      List.exists
        (fun k ->
          let rec hunt i =
            match find_word (String.sub p i (lp - i)) k with
            | None -> false
            | Some j ->
                let after = String.sub p (i + j) (lp - i - j) in
                (not (String.contains after '=')) || hunt (i + j + 1)
          in
          hunt 0)
        [ "let"; "and"; "val"; "method"; "external"; "type" ]
    in
    (* A prefix that is nothing but a path ([history], [Foo.field]) is a
       record-field binding in a multi-line literal. *)
    let bare_field = String.for_all (fun c -> is_ident c || c = '.') p in
    (* [{ field] / [; field]: an inline record-field binding. *)
    let field_bind =
      let j = ref lp in
      while
        !j > 0 && (is_ident p.[!j - 1] || p.[!j - 1] = '.' || p.[!j - 1] = ' ')
      do
        decr j
      done;
      !j > 0 && (p.[!j - 1] = '{' || p.[!j - 1] = ';')
    in
    binder_kw || bare_field || field_bind
    || p.[lp - 1] = '{' || p.[lp - 1] = ';' || p.[lp - 1] = '?'
    || p.[lp - 1] = '~'

let path_at line j =
  (* Read a [Module.sub.path] starting at [j]. *)
  let ll = String.length line in
  let k = ref j in
  while !k < ll && (is_ident line.[!k] || line.[!k] = '.') do incr k done;
  String.sub line j (!k - j)

let poly_eq_hits line =
  let ll = String.length line in
  let hits = ref [] in
  let i = ref 0 in
  while !i < ll do
    let c = line.[!i] in
    if is_op c then begin
      (* widest operator token starting here *)
      let j = ref !i in
      while !j < ll && is_op line.[!j] do incr j done;
      let op = String.sub line !i (!j - !i) in
      (if op = "=" || op = "<>" || op = "==" || op = "!=" then begin
         let k = ref !j in
         while !k < ll && (line.[!k] = ' ' || line.[!k] = '(') do incr k done;
         if
           List.exists
             (fun r ->
               let rl = String.length r in
               !k + rl <= ll && String.sub line !k rl = r)
             protected_roots
         then begin
           let path = path_at line !k in
           let binding = op = "=" && ends_with_binder (String.sub line 0 !i) in
           if (not binding) && not (List.mem path allowed_paths) then
             hits := !i :: !hits
         end
       end);
      i := !j
    end
    else incr i
  done;
  List.rev !hits

let check_poly_eq (m : Source_model.t) =
  let acc = ref [] in
  Array.iteri
    (fun idx line ->
      if poly_eq_hits line <> [] then
        acc := mk_finding m (idx + 1) "poly-eq" :: !acc)
    m.lines;
  List.rev !acc

(* --- rule: quadratic-hot-path ---

   Linear scans and tail-appends inside an iteration context: each is
   O(n) per step, so the enclosing loop goes quadratic — the exact
   pattern PRs 4 and 7 fixed by hand four times (Sched appends, Gen
   List.nth scheduling, membership scans in snapshot_isolation / limit /
   opacity).  Flagged only inside loop regions (see
   {!Source_model.loop_flags}); a one-shot append at top level is O(n)
   once and stays quiet. *)

let quadratic_scans =
  [ "List.nth"; "List.mem"; "List.memq"; "List.mem_assoc"; "List.assoc";
    "List.assoc_opt" ]

let check_quadratic (m : Source_model.t) =
  let acc = ref [] in
  Array.iteri
    (fun idx line ->
      let ln = idx + 1 in
      if Source_model.in_loop m ln then begin
        let scan_hit =
          List.exists (fun w -> find_path line w <> None) quadratic_scans
        in
        (* [xs @ [ x ]]: a tail-append — quadratic when iterated.  Find a
           lone [@] operator followed by [[. *)
        let append_hit =
          let ll = String.length line in
          let rec go i found =
            if found || i >= ll then found
            else if is_op line.[i] then begin
              let j = ref i in
              while !j < ll && is_op line.[!j] do incr j done;
              if String.sub line i (!j - i) = "@" then begin
                let k = ref !j in
                while !k < ll && line.[!k] = ' ' do incr k done;
                go !j (!k < ll && line.[!k] = '[')
              end
              else go !j false
            end
            else go (i + 1) false
          in
          go 0 false
        in
        if scan_hit || append_hit then
          acc := mk_finding m ln "quadratic-hot-path" :: !acc
      end)
    m.lines;
  List.rev !acc

(* --- rule: ordering-nondeterminism ---

   [Hashtbl.iter] / [Hashtbl.fold] enumerate in hash order — an arbitrary
   order that varies with the key set, the table's growth history and the
   OCaml version.  Feeding it into anything order-sensitive (a list that
   is not sorted afterwards, a "first" pick, a serialization order)
   corrupts verdicts silently.  The quiet heuristics recognize the two
   disciplined shapes: the result is sorted within a few lines, or the
   body is a commutative per-key effect (keyed store / monotonic flag /
   commutative accumulator). *)

let ordering_quiet_tokens =
  [
    "sort"; "<-"; ".set "; "Hashtbl.replace"; "Hashtbl.add"; "Hashtbl.remove";
    "Hashtbl.reset"; ":= true"; "acc ||"; "|| acc"; "ok &&"; "&& ok";
    "acc +"; "+ acc"; "max acc"; "min acc";
  ]

let check_ordering (m : Source_model.t) =
  let acc = ref [] in
  Array.iteri
    (fun idx line ->
      let ln = idx + 1 in
      if
        find_path line "Hashtbl.iter" <> None
        || find_path line "Hashtbl.fold" <> None
      then begin
        let w = Source_model.window m ln ~before:2 ~after:6 in
        if not (List.exists (contains_sub w) ordering_quiet_tokens) then
          acc := mk_finding m ln "ordering-nondeterminism" :: !acc
      end)
    m.lines;
  List.rev !acc

(* --- rule: domain-safety ---

   A module that spawns domains ([Domain.spawn] / [Shard_pool.create])
   shares its module-level mutable state across them.  Naked [ref] /
   [Hashtbl] / [Bytes] / [Buffer] / [Queue] bindings at the top level of
   such a module are flagged unless the module shows a synchronization
   discipline at all ([Mutex.] or [Atomic.] appears somewhere): a single
   unsynchronized cell is exactly the silent-verdict-corruption seed the
   dynamic [Race] analyzer hunts at the trace level. *)

let mutable_makers =
  [ "= ref "; "= ref("; "Hashtbl.create"; "Bytes.create"; "Bytes.make";
    "Buffer.create"; "Queue.create"; "Array.make"; "Dynarray.create" ]

let check_domain_safety (m : Source_model.t) =
  let spawns =
    Source_model.mentions m "Domain.spawn"
    || Source_model.mentions m "Shard_pool.create"
  in
  let disciplined =
    contains_sub m.stripped "Mutex." || contains_sub m.stripped "Atomic."
  in
  if (not spawns) || disciplined then []
  else begin
    let acc = ref [] in
    Array.iteri
      (fun idx line ->
        (* module-level bindings only: [let] at column 0 *)
        if
          String.length line > 4
          && String.sub line 0 4 = "let "
          && List.exists (fun w -> contains_sub line w) mutable_makers
        then acc := mk_finding m (idx + 1) "domain-safety" :: !acc)
      m.lines;
    List.rev !acc
  end

(* --- rule: lock-hygiene ---

   A blocking call while holding a [Mutex.t] turns backpressure into a
   lock-convoy (or a deadlock, if the unblocking party needs the same
   mutex).  Linear scan: [Mutex.lock] raises the held counter,
   [Mutex.unlock] lowers it, a top-level [let] resets it (straight-line
   approximation — lock/unlock pairs that span functions are invisible,
   as is [Fun.protect ~finally:unlock], whose unlock appears first
   textually).  [Condition.wait] is exempt: it releases the mutex. *)

let blocking_calls =
  [
    "Unix.read"; "Unix.write"; "Unix.accept"; "Unix.connect"; "Unix.select";
    "Unix.sleep"; "Unix.sleepf"; "Thread.delay"; "Thread.join"; "Domain.join";
    "Mailbox.put"; "Mailbox.take"; "Wire.send"; "Wire.send_many"; "Wire.recv";
  ]

let check_lock_hygiene (m : Source_model.t) =
  let acc = ref [] in
  let held = ref 0 in
  Array.iter
    (fun (t : Source_model.tok) ->
      if t.t_s = "let" && t.t_col = 0 then held := 0
      else if t.t_s = "Mutex.lock" then incr held
      else if t.t_s = "Mutex.unlock" then held := max 0 (!held - 1)
      else if !held > 0 && List.mem t.t_s blocking_calls then
        acc := mk_finding m t.t_line "lock-hygiene" :: !acc)
    m.tokens;
  List.rev !acc

(* --- rule: swallowed-exception ---

   [try ... with _ ->] (or a [_]-prefixed binder) eats every exception —
   including [Wire.Desync], [Codec.Error] and asynchronous ones — and
   turns a crash into a silently wrong continuation.  The try/match stack
   distinguishes the two [with]s, so [match x with _ -> ...] stays quiet;
   [| exception _ ->] is the match-form of the same trap and is flagged
   anywhere. *)

let check_swallowed (m : Source_model.t) =
  let acc = ref [] in
  let stack = ref [] in
  let toks = m.Source_model.tokens in
  let n = Array.length toks in
  let tok i = if i < n then toks.(i).Source_model.t_s else "" in
  let wildcard s =
    s <> "" && s.[0] = '_' && String.for_all is_ident s
  in
  for i = 0 to n - 1 do
    match tok i with
    | "try" -> stack := `Try :: !stack
    | "match" -> stack := `Match :: !stack
    | "with" -> (
        let top =
          match !stack with
          | t :: rest ->
              stack := rest;
              Some t
          | [] -> None
        in
        match top with
        | Some `Try ->
            let j = if tok (i + 1) = "|" then i + 2 else i + 1 in
            if wildcard (tok j) && tok (j + 1) = "->" then
              acc := mk_finding m toks.(j).Source_model.t_line "swallowed-exception" :: !acc
        | _ -> ())
    | "exception" ->
        if wildcard (tok (i + 1)) && tok (i + 2) = "->" then
          acc :=
            mk_finding m toks.(i + 1).Source_model.t_line "swallowed-exception"
            :: !acc
    | _ -> ()
  done;
  List.rev !acc

(* --- rule: unused-suppression (driver-implemented) ---

   A [(* lint: allow ... *)] pragma that suppressed nothing — or names an
   unknown rule — is reported here, so stale suppressions cannot
   accumulate and typos cannot silently disable a gate.  The check lives
   in the scan driver (it needs the other rules' post-filter findings);
   the registry entry exists so the rule can be listed, selected and
   self-tested like any other. *)

let check_unused_suppression (_ : Source_model.t) = []

(* --- registry --------------------------------------------------------------- *)

let rules =
  [
    {
      name = "poly-hash";
      doc = "Hashtbl.hash on interned history values";
      check = check_poly_hash;
      positive = "let f h = Hashtbl.hash h\n";
      negative = "let f h = Event.hash h\n";
    };
    {
      name = "poly-compare";
      doc = "Stdlib.compare or bare polymorphic compare";
      check = check_poly_compare;
      positive = "let f xs = List.sort compare xs\n";
      negative = "let compare a b = Int.compare a b\n";
    };
    {
      name = "poly-eq";
      doc = "polymorphic =/<> on Event./History./Txn. values";
      check = check_poly_eq;
      positive = "let f e ev = e = Event.Inv (1, ev)\n";
      negative = "let f t = t.status = Txn.Committed\n";
    };
    {
      name = "quadratic-hot-path";
      doc = "tail-append or linear List scan inside a loop";
      check = check_quadratic;
      positive =
        "let f items acc0 =\n\
        \  List.fold_left (fun acc x -> acc @ [ x ]) acc0 items\n";
      negative = "let f items last = items @ [ last ]\n";
    };
    {
      name = "ordering-nondeterminism";
      doc = "Hashtbl.iter/fold feeding order-sensitive computation";
      check = check_ordering;
      positive = "let f tbl =\n  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []\n";
      negative =
        "let f tbl =\n\
        \  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []\n\
        \  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)\n";
    };
    {
      name = "domain-safety";
      doc = "unsynchronized module-level mutable state in a domain-spawning module";
      check = check_domain_safety;
      positive =
        "let shared = ref 0\n\
         let go () = Domain.spawn (fun () -> incr shared)\n";
      negative =
        "let shared = Atomic.make 0\n\
         let go () = Domain.spawn (fun () -> Atomic.incr shared)\n";
    };
    {
      name = "lock-hygiene";
      doc = "blocking call while holding a Mutex";
      check = check_lock_hygiene;
      positive =
        "let f m fd buf =\n\
        \  Mutex.lock m;\n\
        \  let n = Unix.read fd buf 0 1 in\n\
        \  Mutex.unlock m;\n\
        \  n\n";
      negative =
        "let f m fd buf =\n\
        \  Mutex.lock m;\n\
        \  let n = pending m in\n\
        \  Mutex.unlock m;\n\
        \  Unix.read fd buf 0 n\n";
    };
    {
      name = "swallowed-exception";
      doc = "try ... with _ -> catch-all (or | exception _ ->)";
      check = check_swallowed;
      positive = "let f g x = try g x with _ -> 0\n";
      negative = "let f x = match x with _ -> 0\n";
    };
    {
      name = "unused-suppression";
      doc = "lint pragma that suppresses nothing (or names an unknown rule)";
      check = check_unused_suppression;
      positive = "(* lint: allow poly-hash *)\nlet x = 1\n";
      negative = "(* lint: allow poly-hash *)\nlet f h = Hashtbl.hash h\n";
    };
  ]

let rule_names = List.map (fun r -> r.name) rules
let rule_docs = List.map (fun r -> (r.name, r.doc)) rules

(* Per-rule file exemptions (by basename), each with a reviewed reason —
   the documented-whitelist arm of the false-positive policy (the other
   arm is inline pragmas; prefer those for single sites). *)
let rule_whitelist =
  [
    (* The certificate-search core and monitor do membership scans over
       per-transaction commit-choice and final-write lists, bounded by 2
       and by ops-per-txn respectively — measured flat in the PR 2/7
       hot-path work.  The DPOR explorer's [en]/[sleep] lists are bounded
       by the thread count.  [dot.ml] renders counterexample cycles
       (length = cycle length, tiny by construction).  The lint itself
       scans the fixed rule/keyword tables inside its token loops. *)
    ("quadratic-hot-path",
     [ "search.ml"; "serialization.ml"; "monitor.ml"; "explore.ml";
       "dot.ml"; "lint.ml" ]);
    (* The lint's own rule docs and self-test fixtures spell out pragma
       markers that the raw-text pragma parser would otherwise report. *)
    ("unused-suppression", [ "lint.ml" ]);
  ]

let whitelisted rule file =
  match List.assoc_opt rule rule_whitelist with
  | Some bases -> List.mem (Filename.basename file) bases
  | None -> false

(* --- driver ---------------------------------------------------------------- *)

let unknown_rules names =
  List.filter (fun r -> not (List.mem r rule_names)) names

let scan_source ?(rules_enabled = rule_names) ~file src =
  let m = Source_model.of_source ~file src in
  let enabled r = List.mem r.name rules_enabled in
  let raw =
    List.concat_map (fun r -> if enabled r then r.check m else []) rules
    |> List.filter (fun f -> not (whitelisted f.rule file))
  in
  (* pragma suppression: a pragma covers the lines its comment spans plus
     the line directly below the close *)
  let suppressed f =
    List.exists
      (fun (p : Source_model.pragma) ->
        if
          f.line >= p.p_line
          && f.line <= p.p_end + 1
          && List.mem f.rule p.p_rules
        then begin
          p.p_used <- true;
          true
        end
        else false)
      m.pragmas
  in
  let kept = List.filter (fun f -> not (suppressed f)) raw in
  let unused =
    if
      (not (List.mem "unused-suppression" rules_enabled))
      || whitelisted "unused-suppression" file
    then []
    else
      List.filter_map
        (fun (p : Source_model.pragma) ->
          let unknown = unknown_rules p.p_rules in
          if p.p_rules = [] then
            Some
              {
                file;
                line = p.p_line;
                rule = "unused-suppression";
                text = "pragma names no rules";
              }
          else if unknown <> [] then
            Some
              {
                file;
                line = p.p_line;
                rule = "unused-suppression";
                text = "pragma names unknown rule(s): " ^ String.concat ", " unknown;
              }
          else if not p.p_used then
            Some
              {
                file;
                line = p.p_line;
                rule = "unused-suppression";
                text =
                  "pragma suppresses nothing: " ^ String.concat " " p.p_rules;
              }
          else None)
        m.pragmas
  in
  List.sort
    (fun a b ->
      match Int.compare a.line b.line with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
    (kept @ unused)

let scan_files ?(whitelist = default_whitelist) ?rules_enabled files =
  List.concat_map
    (fun file ->
      if List.mem (Filename.basename file) whitelist then []
      else
        let ic = open_in_bin file in
        let len = in_channel_length ic in
        let src = really_input_string ic len in
        close_in ic;
        scan_source ?rules_enabled ~file src)
    files

let scan_roots ?whitelist ?rules_enabled roots =
  let files = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | entries ->
        Array.sort String.compare entries;
        Array.iter
          (fun e ->
            if e <> "" && e.[0] <> '.' && e <> "_build" then
              let p = Filename.concat dir e in
              if Sys.is_directory p then walk p
              else if Filename.check_suffix e ".ml" then files := p :: !files)
          entries
    | exception Sys_error _ -> ()
  in
  List.iter (fun r -> if Sys.file_exists r then walk r) roots;
  scan_files ?whitelist ?rules_enabled (List.sort String.compare !files)

(* --- output ----------------------------------------------------------------- *)

let pp_finding ppf f =
  Fmt.pf ppf "%s:%d: [%s] %s" f.file f.line f.rule f.text

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_json ?(rules_run = rule_names) findings =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"rules\": [";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Fmt.str "%S" r))
    rules_run;
  Buffer.add_string b "],\n";
  Buffer.add_string b (Fmt.str "  \"count\": %d,\n" (List.length findings));
  Buffer.add_string b "  \"findings\": [";
  List.iteri
    (fun i f ->
      Buffer.add_string b (if i > 0 then ",\n    " else "\n    ");
      Buffer.add_string b
        (Fmt.str
           "{\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"text\": \"%s\"}"
           (json_escape f.file) f.line (json_escape f.rule) (json_escape f.text)))
    findings;
  Buffer.add_string b (if findings = [] then "]\n}\n" else "\n  ]\n}\n");
  Buffer.contents b

(* --- self-test -------------------------------------------------------------- *)

let self_test () =
  List.map
    (fun r ->
      let fires src =
        List.exists
          (fun f -> f.rule = r.name)
          (scan_source ~file:("selftest/" ^ r.name ^ ".ml") src)
      in
      (r.name, fires r.positive && not (fires r.negative)))
    rules
