(** Static lint: a multi-rule token-level analysis engine.

    The engine strips comments, strings and char literals (preserving
    line/column positions), builds a shared {e source model} — stripped
    lines, a token stream, per-line loop-region flags, suppression
    pragmas — and runs every registered rule over it.  It is a tripwire,
    not a type checker: each rule over-approximates and false positives
    are routed through inline pragmas or the per-rule whitelist, never by
    deleting the rule.

    {2 Rules}

    - [poly-hash]: any use of [Hashtbl.hash].  [History.t]/[Event.t]
      carry interned structure whose polymorphic hash is
      representation-dependent; [Event.hash] and friends are the
      supported entry points.
    - [poly-compare]: [Stdlib.compare] or bare unqualified [compare]
      (qualified comparators — [Int.compare], [Event.compare], ... — are
      the fix).
    - [poly-eq]: [=] / [<>] / [==] / [!=] whose right operand is rooted
      in [Event.] / [History.] / [Txn.], excluding the scalar literals
      ([Txn.Committed] and the other status constructors,
      [Event.init_value]) and binding positions ([let x = ...],
      [{ field = ... }]).
    - [quadratic-hot-path]: [xs @ [x]] tail-append or a linear [List]
      scan ([List.nth]/[mem]/[assoc]/...) inside an iteration context
      (combinator argument, [while]/[for] body, [let rec] body) — O(n)
      per step under an O(n) loop.  One-shot uses outside loops are
      quiet.
    - [ordering-nondeterminism]: [Hashtbl.iter]/[Hashtbl.fold] feeding
      an order-sensitive computation.  Enumeration order is hash-order —
      arbitrary and version-dependent.  Quiet when the surrounding
      window shows a sort, a keyed store ([<-], [Hashtbl.replace], ...)
      or a commutative accumulator ([acc ||], [acc +], ...).
    - [domain-safety]: unsynchronized module-level mutable state
      ([ref]/[Hashtbl]/[Bytes]/[Buffer]/[Queue]/[Array] bindings at
      column 0) in a module that spawns domains ([Domain.spawn] /
      [Shard_pool.create]) and shows no [Mutex.]/[Atomic.] discipline
      anywhere.  Reconciled against the dynamic {!Race} analyzer by the
      test suite.
    - [lock-hygiene]: a blocking call ([Unix.read]/[write]/[accept],
      [Mailbox]/[Wire] ops, [Thread.delay], [Domain.join]) while holding
      a [Mutex] (linear token scan; [Condition.wait] is exempt — it
      releases the mutex).
    - [swallowed-exception]: [try ... with _ ->] catch-alls (or
      [| exception _ ->]) that can eat [Wire.Desync]/[Codec] errors;
      [match ... with _ ->] is the quiet near-miss.
    - [unused-suppression]: a [(* lint: allow <rule> *)] pragma that
      suppressed nothing, names no rules, or names an unknown rule — so
      stale suppressions cannot accumulate and typos cannot silently
      disable a gate.

    {2 Suppression}

    [(* lint: allow rule-a rule-b — optional prose *)] suppresses
    findings of the named rules on its own line and the line directly
    below.  File-level exemptions live in the per-rule whitelist inside
    the engine (reviewed, with reasons) and in the caller-supplied
    [?whitelist] of {!scan_files}/{!scan_roots} (whole-file skip by
    basename; [default_whitelist] covers [event.ml], which defines the
    canonical comparators).

    Wired as [tm lint] (with [--format json|text], [--rules],
    [--list-rules], [--self-test]) and run repo-wide over [lib/] + [bin/]
    by the test suite and CI. *)

type finding = {
  file : string;
  line : int;  (** 1-based *)
  rule : string;  (** one of {!rule_names} *)
  text : string;  (** the offending source line, trimmed *)
}

val rule_names : string list
(** Registered rule names, in registry order. *)

val rule_docs : (string * string) list
(** [(name, one-line description)] per registered rule. *)

val unknown_rules : string list -> string list
(** The subset of the given names that are not registered rules. *)

val default_whitelist : string list
(** File basenames exempt from the pass ([event.ml]). *)

val scan_source : ?rules_enabled:string list -> file:string -> string -> finding list
(** Lint one file's contents (the [file] name is used for reporting and
    for the per-rule whitelist).  [rules_enabled] defaults to every
    registered rule.  Findings are sorted by line, then rule. *)

val scan_files :
  ?whitelist:string list -> ?rules_enabled:string list -> string list -> finding list
(** Lint the given [.ml] files, skipping whitelisted basenames. *)

val scan_roots :
  ?whitelist:string list -> ?rules_enabled:string list -> string list -> finding list
(** Recursively collect and lint every [.ml] under the given directories
    (skipping [_build] and dot-directories), sorted by path. *)

val pp_finding : Format.formatter -> finding -> unit
(** [file:line: [rule] text] — one line per finding. *)

val report_json : ?rules_run:string list -> finding list -> string
(** Machine-readable report:
    [{"rules": [...], "count": n, "findings": [{"file", "line", "rule",
    "text"}, ...]}]. *)

val self_test : unit -> (string * bool) list
(** Run every rule against its embedded positive fixture (must fire) and
    near-miss negative (must stay quiet); [(name, ok)] per rule.  Wired
    as [tm lint --self-test] so a broken rule cannot silently pass CI. *)
