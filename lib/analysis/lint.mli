(** Static lint: no polymorphic comparison on history values.

    [History.t], [Event.t] and [Txn.t] carry interned/derived structure
    whose polymorphic ([Stdlib]) equality, ordering and hashing are
    representation-dependent traps — the dedicated [Event.compare] and
    friends are the supported entry points.  This pass greps the sources
    (token-level, after stripping comments and string literals — it is a
    tripwire, not a type checker) and reports:

    - [poly-hash]: any use of [Hashtbl.hash];
    - [poly-compare]: [Stdlib.compare] or bare unqualified [compare]
      (qualified comparators — [Int.compare], [Event.compare], ... — are
      the fix);
    - [poly-eq]: [=] / [<>] / [==] / [!=] whose right operand is rooted in
      [Event.] / [History.] / [Txn.], excluding the scalar literals
      ([Txn.Committed] and the other status constructors,
      [Event.init_value]) and binding positions ([let x = ...],
      [{ field = ... }]).

    Findings in whitelisted files (by basename — [event.ml] defines the
    canonical comparator and may use [Stdlib.compare]) are suppressed.
    Wired as [tm lint] and run over [lib/] + [bin/] by the test suite. *)

type finding = {
  file : string;
  line : int;  (** 1-based *)
  rule : string;  (** [poly-hash] | [poly-compare] | [poly-eq] *)
  text : string;  (** the offending source line, trimmed *)
}

val default_whitelist : string list
(** File basenames exempt from the pass. *)

val scan_source : file:string -> string -> finding list
(** Lint one file's contents (the [file] name is only for reporting). *)

val scan_files : ?whitelist:string list -> string list -> finding list
(** Lint the given [.ml] files, skipping whitelisted basenames. *)

val scan_roots : ?whitelist:string list -> string list -> finding list
(** Recursively collect and lint every [.ml] under the given directories
    (skipping [_build] and dot-directories), sorted by path. *)

val pp_finding : Format.formatter -> finding -> unit
