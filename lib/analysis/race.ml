type access = {
  step : int;
  fiber : int;
  kind : Tm_stm.Trace.kind;
  txn : int option;
}

type race_kind = Dirty_read | Write_write

type race = {
  rkind : race_kind;
  loc : int;
  writer : access;
  other : access;
  witness : string;
}

type report = {
  accesses : int;
  locations : int;
  sync_locations : int;
  races : race list;
}

(* Per-fiber scan state. *)
type fiber_state = {
  mutable clock : Vclock.t;
  mutable txn : int option;  (* inside an attempt, after its Began mark *)
  mutable candidates : cand list;  (* suspect reads of the open attempt *)
}

and cand = { c_loc : int; c_read : access; c_writer : access; c_wclock : Vclock.t }

(* --- witness rendering ---------------------------------------------------

   A witness is the slice of the trace a reviewer needs: every access to
   the racing location plus the involved fibers' attempt marks, between the
   unsynchronized write and the point the race was established.  Long
   windows elide the middle. *)

let pp_entry ~norm ppf (s, e) =
  match e with
  | Tm_stm.Trace.Access { fiber; loc; kind } ->
      Fmt.pf ppf "%6d  fiber %d  %a l%d" s fiber Tm_stm.Trace.pp_kind kind
        (norm loc)
  | Tm_stm.Trace.Mark { fiber; txn; mark } ->
      Fmt.pf ppf "%6d  fiber %d  txn %d %s" s fiber txn
        (match mark with
        | Tm_stm.Trace.Began -> "began"
        | Tm_stm.Trace.Committed -> "committed"
        | Tm_stm.Trace.Aborted -> "aborted")

let witness_string (trace : Tm_stm.Trace.t) ~norm ~loc ~fibers ~lo ~hi =
  let keep s e =
    s >= lo && s <= hi
    &&
    match e with
    | Tm_stm.Trace.Access a -> norm a.loc = loc
    | Tm_stm.Trace.Mark m -> List.mem m.fiber fibers
  in
  let lines = ref [] in
  Array.iteri (fun s e -> if keep s e then lines := (s, e) :: !lines) trace;
  let lines = List.rev !lines in
  let shown =
    let n = List.length lines in
    if n <= 12 then List.map (Fmt.str "%a" (pp_entry ~norm)) lines
    else
      let head = List.filteri (fun i _ -> i < 5) lines in
      let tail = List.filteri (fun i _ -> i >= n - 5) lines in
      List.map (Fmt.str "%a" (pp_entry ~norm)) head
      @ [ Fmt.str "  ... %d entries elided ..." (n - 10) ]
      @ List.map (Fmt.str "%a" (pp_entry ~norm)) tail
  in
  String.concat "\n" shown

(* --- the analysis --------------------------------------------------------- *)

let analyze (trace : Tm_stm.Trace.t) =
  (* Location normalization (order of first appearance) and sync
     classification (any cas/fetch-add anywhere in the trace). *)
  let norm_tbl : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let next_loc = ref 0 in
  let sync : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (function
      | Tm_stm.Trace.Access { loc; kind; _ } ->
          let d =
            match Hashtbl.find_opt norm_tbl loc with
            | Some d -> d
            | None ->
                let d = !next_loc in
                incr next_loc;
                Hashtbl.add norm_tbl loc d;
                d
          in
          (match kind with
          | Tm_stm.Trace.Cas | Tm_stm.Trace.Fetch_add ->
              Hashtbl.replace sync d ()
          | Tm_stm.Trace.Read | Tm_stm.Trace.Write -> ())
      | Tm_stm.Trace.Mark _ -> ())
    trace;
  let norm loc = Hashtbl.find norm_tbl loc in
  (* Scan state. *)
  let fibers : (int, fiber_state) Hashtbl.t = Hashtbl.create 8 in
  let fiber f =
    match Hashtbl.find_opt fibers f with
    | Some fs -> fs
    | None ->
        let fs = { clock = Vclock.zero; txn = None; candidates = [] } in
        Hashtbl.add fibers f fs;
        fs
  in
  let sync_clock : (int, Vclock.t) Hashtbl.t = Hashtbl.create 16 in
  let last_write : (int, access * Vclock.t) Hashtbl.t = Hashtbl.create 64 in
  let accesses = ref 0 in
  (* Deduplicated findings, chronological. *)
  let seen : (race_kind * int * int * int, unit) Hashtbl.t =
    Hashtbl.create 8
  in
  let races = ref [] in
  let report rkind ~loc ~(writer : access) ~(other : access) ~hi =
    let pair = (min writer.fiber other.fiber, max writer.fiber other.fiber) in
    let key = (rkind, loc, fst pair, snd pair) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      let witness =
        witness_string trace ~norm ~loc
          ~fibers:[ writer.fiber; other.fiber ]
          ~lo:writer.step ~hi
      in
      races := { rkind; loc; writer; other; witness } :: !races
    end
  in
  Array.iteri
    (fun step entry ->
      match entry with
      | Tm_stm.Trace.Mark { fiber = f; txn; mark } -> (
          let fs = fiber f in
          match mark with
          | Tm_stm.Trace.Began -> fs.txn <- Some txn
          | Tm_stm.Trace.Aborted ->
              (* Aborted attempts never used their suspect reads. *)
              fs.candidates <- [];
              fs.txn <- None
          | Tm_stm.Trace.Committed ->
              (* Suspect reads that were neither revalidated nor aborted
                 were committed without ever synchronizing on the write. *)
              List.iter
                (fun c ->
                  report Dirty_read ~loc:c.c_loc ~writer:c.c_writer
                    ~other:
                      {
                        c.c_read with
                        txn = Some (Option.value c.c_read.txn ~default:txn);
                      }
                    ~hi:step)
                (List.rev fs.candidates);
              fs.candidates <- [];
              fs.txn <- None)
      | Tm_stm.Trace.Access { fiber = f; loc; kind } ->
          incr accesses;
          let fs = fiber f in
          let d = norm loc in
          if Hashtbl.mem sync d then begin
            (* Acquire-release fence on the location's clock. *)
            let l =
              Option.value
                (Hashtbl.find_opt sync_clock d)
                ~default:Vclock.zero
            in
            fs.clock <- Vclock.tick (Vclock.join fs.clock l) f;
            Hashtbl.replace sync_clock d fs.clock
          end
          else begin
            let this () = { step; fiber = f; kind; txn = fs.txn } in
            (if Tm_stm.Trace.is_write kind then (
               (match Hashtbl.find_opt last_write d with
               | Some (w, wc)
                 when w.fiber <> f && not (Vclock.leq_at wc fs.clock w.fiber)
                 ->
                   report Write_write ~loc:d ~writer:w ~other:(this ())
                     ~hi:step
               | _ -> ());
               fs.clock <- Vclock.tick fs.clock f;
               Hashtbl.replace last_write d (this (), fs.clock))
             else begin
               (* A synchronized re-read of the same location revalidates
                  earlier suspect reads of it: the value was confirmed
                  after properly ordering the write (NOrec's value-based
                  revalidation).  An unordered re-read confirms nothing. *)
               fs.candidates <-
                 List.filter
                   (fun c ->
                     c.c_loc <> d
                     || not
                          (Vclock.leq_at c.c_wclock fs.clock
                             c.c_writer.fiber))
                   fs.candidates;
               (match Hashtbl.find_opt last_write d with
               | Some (w, wc)
                 when w.fiber <> f && not (Vclock.leq_at wc fs.clock w.fiber)
                 ->
                   (* Suspect: judged at the attempt's end mark. *)
                   fs.candidates <-
                     { c_loc = d; c_read = this (); c_writer = w; c_wclock = wc }
                     :: fs.candidates
               | _ -> ());
               fs.clock <- Vclock.tick fs.clock f
             end)
          end)
    trace;
  {
    accesses = !accesses;
    locations = !next_loc;
    sync_locations = Hashtbl.length sync;
    races = List.rev !races;
  }

let racy r = r.races <> []

let merge a b =
  let seen = Hashtbl.create 8 in
  let key r =
    ( r.rkind,
      r.loc,
      min r.writer.fiber r.other.fiber,
      max r.writer.fiber r.other.fiber )
  in
  let races =
    List.filter
      (fun r ->
        if Hashtbl.mem seen (key r) then false
        else begin
          Hashtbl.add seen (key r) ();
          true
        end)
      (a.races @ b.races)
  in
  {
    accesses = max a.accesses b.accesses;
    locations = max a.locations b.locations;
    sync_locations = max a.sync_locations b.sync_locations;
    races;
  }

let pp_kind ppf = function
  | Dirty_read -> Fmt.string ppf "dirty read"
  | Write_write -> Fmt.string ppf "write-write"

let pp_txn ppf = function
  | Some t -> Fmt.pf ppf ", txn %d" t
  | None -> ()

let pp_race ppf r =
  Fmt.pf ppf "@[<v 2>%a on l%d: fiber %d %a (step %d%a) vs fiber %d's \
              unsynchronized %a (step %d%a)@,%a@]"
    pp_kind r.rkind r.loc r.other.fiber Tm_stm.Trace.pp_kind r.other.kind
    r.other.step pp_txn r.other.txn r.writer.fiber Tm_stm.Trace.pp_kind
    r.writer.kind r.writer.step pp_txn r.writer.txn Fmt.lines r.witness

let pp_report ppf r =
  if r.races = [] then
    Fmt.pf ppf "no races (%d accesses, %d locations, %d sync)" r.accesses
      r.locations r.sync_locations
  else
    Fmt.pf ppf "@[<v>%d race%s (%d accesses, %d locations, %d sync)@,%a@]"
      (List.length r.races)
      (if List.length r.races = 1 then "" else "s")
      r.accesses r.locations r.sync_locations
      Fmt.(list ~sep:(any "@,") pp_race)
      r.races
