(** Happens-before race analysis over recorded STM traces.

    Consumes a {!Tm_stm.Trace.t} (every shared-memory access plus
    transaction-attempt marks, as recorded by [Tm_sim.Runner] or
    {!Tm_stm.Atomic_mem}) and reports the unsynchronized access pairs that
    make an STM implementation racy — the property separating the
    deliberately sloppy controls ([dirty-read], [eager]) from the properly
    synchronized algorithms (TL2, NOrec, global-lock), independently of
    whether the observed schedule happened to produce a violation.

    {b The model.}  Locations that ever see a [cas] or [fetch_add] are
    {e synchronization locations} (lock words, version clocks, sequence
    locks); every access to one is treated as an acquire-release fence on
    that location's clock, so accesses to a sync location are totally
    ordered and never themselves reported.  All other locations hold data,
    and two rules apply:

    - {e Dirty read}: a read in a {e committed} attempt observed another
      fiber's write it was not happens-before-ordered with — and the
      attempt neither aborted (admitting TL2's validate-then-abort reads)
      nor {e revalidated} the read before committing.  A revalidation is a
      later read of the same location by the same attempt at a point where
      the original write {e is} ordered — exactly NOrec's value-based
      revalidation, which re-reads the read set after going through the
      sequence lock.  A committed attempt retaining an unordered,
      unrevalidated read has used a value it never synchronized on: a
      zombie read.
    - {e Write-write}: two writes to the same data location by different
      fibers with no ordering between them, reported unconditionally —
      well-synchronized deferred-update STMs only publish while holding a
      lock.

    Reported races are deduplicated per (rule, location, fiber pair),
    keeping the chronologically first witness. *)

type access = {
  step : int;  (** index into the analyzed trace *)
  fiber : int;
  kind : Tm_stm.Trace.kind;
  txn : int option;
      (** the transaction attempt the access belongs to, when it executed
          between that attempt's [Began] and its end mark *)
}

type race_kind = Dirty_read | Write_write

type race = {
  rkind : race_kind;
  loc : int;  (** normalized location id (order of first appearance) *)
  writer : access;  (** the unsynchronized write *)
  other : access;
      (** the racing access: the committed read ([Dirty_read]) or the
          second write ([Write_write]) *)
  witness : string;
      (** shrunk, human-readable excerpt of the trace: the accesses to the
          racing location and the involved fibers' attempt marks between
          the two accesses *)
}

type report = {
  accesses : int;  (** shared-memory accesses analyzed *)
  locations : int;  (** distinct locations, after normalization *)
  sync_locations : int;  (** locations classified as synchronization *)
  races : race list;  (** deduplicated, in order of detection *)
}

val analyze : Tm_stm.Trace.t -> report

val racy : report -> bool

val merge : report -> report -> report
(** Combine reports from different schedules of the same program (location
    ids are comparable when both traces come from the same
    [Tm_sim.Explore] session): unions the races, re-deduplicating, and
    keeps the maximum of the size fields. *)

val pp_kind : Format.formatter -> race_kind -> unit
val pp_race : Format.formatter -> race -> unit
val pp_report : Format.formatter -> report -> unit
