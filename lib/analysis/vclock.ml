type t = int array

let zero = [||]
let get c i = if i < Array.length c then c.(i) else 0

let tick c i =
  let n = max (Array.length c) (i + 1) in
  let c' = Array.init n (fun j -> get c j) in
  c'.(i) <- c'.(i) + 1;
  c'

let join a b =
  let n = max (Array.length a) (Array.length b) in
  Array.init n (fun i -> max (get a i) (get b i))

let leq_at c c' owner = get c owner <= get c' owner

let pp ppf c =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any ",") int) c
