(** Vector clocks over fiber ids.

    Persistent (operations return fresh clocks), with an implicit-zero
    representation: components beyond the stored length are 0, so clocks
    grow lazily as fiber ids appear.  Used by the happens-before engine
    ({!Race}) to order recorded trace events. *)

type t
(** A vector clock; component [i] counts fiber [i]'s events. *)

val zero : t

val get : t -> int -> int
(** [get c i] is component [i] (0 when never ticked). *)

val tick : t -> int -> t
(** [tick c i] increments component [i]. *)

val join : t -> t -> t
(** Component-wise maximum. *)

val leq_at : t -> t -> int -> bool
(** [leq_at c c' owner]: is the event with clock [c], performed by fiber
    [owner], ordered at-or-before [c']?  For a clock taken at [owner]'s
    event this single-component test is the full happens-before check. *)

val pp : Format.formatter -> t -> unit
