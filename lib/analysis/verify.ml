module Explore = Tm_sim.Explore
module Du = Tm_checker.Du_opacity
module Lu = Tm_checker.Last_use_opacity
module Verdict = Tm_checker.Verdict

type config = {
  stms : string list;
  params : Tm_stm.Workload.params;
  seed : int;
  max_runs : int;
  naive_max_runs : int;
  max_retries : int;
  max_nodes : int;
}

let default =
  {
    stms = [];
    params =
      {
        Tm_stm.Workload.default with
        n_threads = 2;
        txns_per_thread = 2;
        ops_per_txn = 2;
        n_vars = 2;
        read_ratio = 0.5;
      };
    seed = 1;
    max_runs = 200_000;
    naive_max_runs = 300_000;
    max_retries = 4;
    max_nodes = 1_000_000;
  }

type verdicts = {
  sat : int;
  unsat : int;
  unknown : int;
  first_unsat : string option;
}

type stm_result = {
  r_stm : string;
  r_dpor : Explore.outcome;
  r_histories : int;
  r_verdicts : verdicts;
  r_lu_verdicts : verdicts;
  r_lastuse_containment : int;
  r_separated : int;
  r_races : Race.report;
  r_racy_schedules : int;
  r_naive : Explore.outcome option;
  r_naive_histories : int;
  r_naive_verdicts : verdicts option;
  r_match : bool option;
  r_graph_checked : int;
  r_graph_mismatch : int;
  r_seconds : float;
}

let empty_report =
  { Race.accesses = 0; locations = 0; sync_locations = 0; races = [] }

(* Judge a deduplicated history set under both criteria.  With [graph],
   every history is also judged by the conflict-graph backend (falling back
   to the search on [Ambiguous]) and decided disagreements are counted —
   the exhaustive small-scope cross-check of the two checker cores.  Every
   history additionally drives the criterion lattice: [containment] counts
   du-opaque histories that fail last-use opacity (a theorem violation,
   must be 0 everywhere), [separated] counts the interesting converse —
   last-use-opaque histories that are not du-opaque, the class the
   early-release STM exists to produce. *)
let verdicts_of ?(graph = false) cfg (histories : (string, History.t) Hashtbl.t)
    =
  let sat = ref 0 and unsat = ref 0 and unknown = ref 0 in
  let lu_sat = ref 0 and lu_unsat = ref 0 and lu_unknown = ref 0 in
  let first_unsat = ref None and lu_first_unsat = ref None in
  let containment = ref 0 and separated = ref 0 in
  let graph_checked = ref 0 and graph_mismatch = ref 0 in
  (* Judge in sorted-key order: [first_unsat] below reports the *first*
     violating history, and hash order would make that report (and any
     diff against it) vary across OCaml versions and key sets. *)
  let ordered =
    Hashtbl.fold (fun key h acc -> (key, h) :: acc) histories []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (key, h) ->
      let v = Du.check_fast ~max_nodes:cfg.max_nodes h in
      (match v with
      | Verdict.Sat _ -> incr sat
      | Verdict.Unsat why ->
          incr unsat;
          if !first_unsat = None then
            first_unsat := Some (Fmt.str "%s@.%s" why (String.trim key))
      | Verdict.Unknown _ -> incr unknown);
      let l = Lu.check_fast ~max_nodes:cfg.max_nodes h in
      (match l with
      | Lu.Sat _ -> incr lu_sat
      | Lu.Unsat why ->
          incr lu_unsat;
          if !lu_first_unsat = None then
            lu_first_unsat := Some (Fmt.str "%s@.%s" why (String.trim key))
      | Lu.Ambiguous _ -> incr lu_unknown);
      (match v, l with
      | Verdict.Sat _, Lu.Unsat _ -> incr containment
      | Verdict.Unsat _, Lu.Sat _ -> incr separated
      | _ -> ());
      if graph then begin
        incr graph_checked;
        let g = Tm_checker.Conflict_graph.check_or_fallback ~max_nodes:cfg.max_nodes h in
        match g, v with
        | Verdict.Sat _, Verdict.Sat _
        | Verdict.Unsat _, Verdict.Unsat _
        | Verdict.Unknown _, _
        | _, Verdict.Unknown _ ->
            ()
        | _ -> incr graph_mismatch
      end)
    ordered;
  ( {
      sat = !sat;
      unsat = !unsat;
      unknown = !unknown;
      first_unsat = !first_unsat;
    },
    {
      sat = !lu_sat;
      unsat = !lu_unsat;
      unknown = !lu_unknown;
      first_unsat = !lu_first_unsat;
    },
    !containment,
    !separated,
    !graph_checked,
    !graph_mismatch )

let run_stm cfg stm =
  (match Tm_stm.Registry.find stm with
  | Some _ -> ()
  | None -> ignore (Tm_stm.Registry.find_exn stm));
  let t0 = Tm_stm.Clock.now () in
  (* DPOR pass: record each schedule's history (deduplicated — DPOR visits
     one interleaving per trace, but distinct traces can still commute into
     the same history) and race-analyze its access trace. *)
  let histories : (string, History.t) Hashtbl.t = Hashtbl.create 256 in
  let races = ref empty_report in
  let racy_schedules = ref 0 in
  let on_result (r : Tm_sim.Runner.result) =
    let key = Parse.to_text r.history in
    if not (Hashtbl.mem histories key) then Hashtbl.add histories key r.history;
    match r.trace with
    | None -> ()
    | Some t ->
        let rep = Race.analyze t in
        if Race.racy rep then incr racy_schedules;
        races := Race.merge !races rep
  in
  let dpor =
    Explore.explore_stm_results ~algo:`Dpor ~max_runs:cfg.max_runs
      ~max_retries:cfg.max_retries ~trace:true ~stm ~params:cfg.params
      ~seed:cfg.seed ~on_result ()
  in
  (* Verdicts over the distinct histories, each cross-checked against the
     conflict-graph backend and judged under both safety criteria. *)
  let dv, lv, containment, separated, graph_checked, graph_mismatch =
    verdicts_of ~graph:true cfg histories
  in
  (* Naive baseline: same transition system, branch-everywhere DFS.  The
     naive enumeration sees every interleaving, DPOR one representative per
     Mazurkiewicz trace; interleavings of the same trace can serialize the
     history's events differently, so the comparable artifact is the {e set
     of checker verdicts}, not the set of history texts. *)
  let naive, naive_histories, naive_verdicts, matches =
    if cfg.naive_max_runs <= 0 then (None, 0, None, None)
    else begin
      let nh : (string, History.t) Hashtbl.t = Hashtbl.create 256 in
      let on_history h =
        let key = Parse.to_text h in
        if not (Hashtbl.mem nh key) then Hashtbl.add nh key h
      in
      let o =
        Explore.explore_stm ~algo:`Naive ~max_runs:cfg.naive_max_runs
          ~max_retries:cfg.max_retries ~stm ~params:cfg.params ~seed:cfg.seed
          ~on_history ()
      in
      let nv, _, _, _, _, _ = verdicts_of cfg nh in
      let flags (v : verdicts) = (v.sat > 0, v.unsat > 0, v.unknown > 0) in
      (* A truncated enumeration can only under-approximate. *)
      let sub (a, b, c) (a', b', c') =
        ((not a) || a') && ((not b) || b') && ((not c) || c')
      in
      let m =
        match (dpor.Explore.exhaustive, o.Explore.exhaustive) with
        | true, true -> flags nv = flags dv
        | true, false -> sub (flags nv) (flags dv)
        | false, true -> sub (flags dv) (flags nv)
        | false, false -> true
      in
      (Some o, Hashtbl.length nh, Some nv, Some m)
    end
  in
  {
    r_stm = stm;
    r_dpor = dpor;
    r_histories = Hashtbl.length histories;
    r_verdicts = dv;
    r_lu_verdicts = lv;
    r_lastuse_containment = containment;
    r_separated = separated;
    r_races = !races;
    r_racy_schedules = !racy_schedules;
    r_naive = naive;
    r_naive_histories = naive_histories;
    r_naive_verdicts = naive_verdicts;
    r_match = matches;
    r_graph_checked = graph_checked;
    r_graph_mismatch = graph_mismatch;
    r_seconds = Tm_stm.Clock.now () -. t0;
  }

let run cfg =
  let stms =
    match cfg.stms with
    | [] -> List.map fst Tm_stm.Registry.algorithms
    | l -> l
  in
  List.map (run_stm cfg) stms

let ok r =
  r.r_verdicts.unknown = 0
  && r.r_lu_verdicts.unknown = 0
  && r.r_match <> Some false
  && r.r_graph_mismatch = 0
  && r.r_lastuse_containment = 0
  &&
  if List.mem r.r_stm Tm_stm.Registry.safe then
    r.r_verdicts.unsat = 0 && not (Race.racy r.r_races)
  else if List.mem r.r_stm Tm_stm.Registry.lastuse_safe then
    (* Early release sits strictly between the criteria: every history
       last-use-opaque, race-free — du-violations are expected, not
       required (that depends on the workload's contention). *)
    r.r_lu_verdicts.unsat = 0 && not (Race.racy r.r_races)
  else true

(* --- rendering ------------------------------------------------------------- *)

let pp_outcome ppf (o : Explore.outcome) =
  Fmt.pf ppf "%d run%s%s" o.runs
    (if o.runs = 1 then "" else "s")
    (if o.exhaustive then "" else " (cut)")

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v 2>%s: DPOR %a, %d pruned (%.1fx), %d distinct histories@,\
     du-opacity: %d sat / %d unsat / %d unknown@,\
     last-use:   %d sat / %d unsat / %d unknown (%d separated, %d \
     containment violation%s)@,\
     races: %a (%d racy schedule%s)"
    r.r_stm pp_outcome r.r_dpor r.r_dpor.schedules_pruned
    r.r_dpor.reduction_factor r.r_histories r.r_verdicts.sat
    r.r_verdicts.unsat r.r_verdicts.unknown r.r_lu_verdicts.sat
    r.r_lu_verdicts.unsat r.r_lu_verdicts.unknown r.r_separated
    r.r_lastuse_containment
    (if r.r_lastuse_containment = 1 then "" else "s")
    Race.pp_report r.r_races r.r_racy_schedules
    (if r.r_racy_schedules = 1 then "" else "s");
  Fmt.pf ppf "@,graph backend: %d cross-checked, %d mismatch%s"
    r.r_graph_checked r.r_graph_mismatch
    (if r.r_graph_mismatch = 1 then "" else "es");
  (match r.r_naive with
  | Some n ->
      Fmt.pf ppf "@,naive: %a, %d distinct histories, %s" pp_outcome n
        r.r_naive_histories
        (match r.r_match with
        | Some true when n.exhaustive -> "verdict sets EQUAL"
        | Some true -> "naive verdicts ⊆ DPOR's"
        | Some false -> "VERDICT MISMATCH"
        | None -> "")
  | None -> ());
  (match r.r_verdicts.first_unsat with
  | Some w -> Fmt.pf ppf "@,@[<v 2>first violation:@,%a@]" Fmt.lines w
  | None -> ());
  (match r.r_lu_verdicts.first_unsat with
  | Some w ->
      Fmt.pf ppf "@,@[<v 2>first last-use violation:@,%a@]" Fmt.lines w
  | None -> ());
  Fmt.pf ppf "@]"

let pp_table ppf results =
  Fmt.pf ppf "%-13s %9s %4s %7s %9s %6s %5s/%5s %5s/%5s %4s %4s %5s %5s %5s@."
    "stm" "dpor" "exh" "pruned" "naive" "match" "du+" "du-" "lu+" "lu-" "sep"
    "cont" "graph" "races" "sec";
  List.iter
    (fun r ->
      Fmt.pf ppf
        "%-13s %9d %4s %7d %9s %6s %5d/%5d %5d/%5d %4d %4s %5s %5d %5.1f@."
        r.r_stm r.r_dpor.Explore.runs
        (if r.r_dpor.Explore.exhaustive then "yes" else "cut")
        r.r_dpor.Explore.schedules_pruned
        (match r.r_naive with
        | Some n ->
            Fmt.str "%d%s" n.Explore.runs
              (if n.Explore.exhaustive then "" else "+")
        | None -> "-")
        (match r.r_match with
        | Some true -> "ok"
        | Some false -> "FAIL"
        | None -> "-")
        r.r_verdicts.sat r.r_verdicts.unsat r.r_lu_verdicts.sat
        r.r_lu_verdicts.unsat r.r_separated
        (if r.r_lastuse_containment = 0 then "0"
         else Fmt.str "%dBAD" r.r_lastuse_containment)
        (if r.r_graph_mismatch = 0 then "ok"
         else Fmt.str "%dBAD" r.r_graph_mismatch)
        (List.length r.r_races.Race.races)
        r.r_seconds)
    results

(* --- JSON ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json cfg ~wall results =
  let p = cfg.params in
  let outcome_json (o : Explore.outcome) =
    Fmt.str
      {|{"runs": %d, "exhaustive": %b, "schedules_pruned": %d, "reduction_factor": %.2f}|}
      o.runs o.exhaustive o.schedules_pruned o.reduction_factor
  in
  let race_json (r : Race.race) =
    Fmt.str
      {|{"kind": "%s", "loc": %d, "writer_fiber": %d, "other_fiber": %d, "witness": "%s"}|}
      (match r.rkind with
      | Race.Dirty_read -> "dirty-read"
      | Race.Write_write -> "write-write")
      r.loc r.writer.Race.fiber r.other.Race.fiber (json_escape r.witness)
  in
  let stm_json r =
    Fmt.str
      {|    {"stm": "%s",
     "dpor": %s,
     "naive": %s,
     "verdict_sets_match": %s,
     "distinct_histories": %d, "naive_distinct_histories": %d,
     "verdicts": {"sat": %d, "unsat": %d, "unknown": %d},
     "lu_verdicts": {"sat": %d, "unsat": %d, "unknown": %d},
     "r_lastuse_containment": %d, "r_separated": %d,
     "naive_verdicts": %s,
     "graph": {"checked": %d, "mismatch": %d},
     "racy_schedules": %d,
     "races": [%s],
     "seconds": %.3f,
     "ok": %b}|}
      r.r_stm
      (outcome_json r.r_dpor)
      (match r.r_naive with Some n -> outcome_json n | None -> "null")
      (match r.r_match with
      | Some b -> string_of_bool b
      | None -> "null")
      r.r_histories r.r_naive_histories r.r_verdicts.sat r.r_verdicts.unsat
      r.r_verdicts.unknown r.r_lu_verdicts.sat r.r_lu_verdicts.unsat
      r.r_lu_verdicts.unknown r.r_lastuse_containment r.r_separated
      (match r.r_naive_verdicts with
      | Some v ->
          Fmt.str {|{"sat": %d, "unsat": %d, "unknown": %d}|} v.sat v.unsat
            v.unknown
      | None -> "null")
      r.r_graph_checked r.r_graph_mismatch r.r_racy_schedules
      (String.concat ", " (List.map race_json r.r_races.Race.races))
      r.r_seconds (ok r)
  in
  Fmt.str
    {|{
  "bench": "verify",
  "params": {"n_threads": %d, "txns_per_thread": %d, "ops_per_txn": %d,
             "n_vars": %d, "read_ratio": %.2f, "seed": %d,
             "max_runs": %d, "naive_max_runs": %d, "max_retries": %d,
             "max_nodes": %d},
  "wall_s": %.3f,
  "stms": [
%s
  ]
}
|}
    p.n_threads p.txns_per_thread p.ops_per_txn p.n_vars p.read_ratio cfg.seed
    cfg.max_runs cfg.naive_max_runs cfg.max_retries cfg.max_nodes wall
    (String.concat ",\n" (List.map stm_json results))
