(** Exhaustive small-scope verification of the registered STMs.

    For each algorithm, enumerates {e every} schedule of a small workload
    with {!Tm_sim.Explore} (DPOR by default), checks each distinct recorded
    history under {e both} safety criteria
    ({!Tm_checker.Du_opacity.check_fast} and
    {!Tm_checker.Last_use_opacity.check_fast} — including the containment
    theorem du ⇒ last-use as a per-history invariant), and runs the
    happens-before race analyzer ({!Race}) over each schedule's
    shared-memory trace.  Optionally replays the same workload under the
    naive branch-everywhere DFS to cross-check the reduction: DPOR explores
    one representative per Mazurkiewicz trace, so the {e set of distinct
    histories} — and therefore the set of checker verdicts — must coincide
    with the naive enumeration whenever the naive enumeration finishes.

    This is the engine behind [tm verify]. *)

type config = {
  stms : string list;  (** registry names; [[]] means every algorithm *)
  params : Tm_stm.Workload.params;
  seed : int;
  max_runs : int;  (** DPOR schedule budget *)
  naive_max_runs : int;  (** naive-baseline budget; [0] skips the baseline *)
  max_retries : int;
      (** per-program attempt budget for the harness.  Small by design:
          every retry is a fresh transaction whose interleavings DPOR must
          also explore, and abort-prone algorithms (early release aborts a
          reader whenever its dependency is still unresolved at commit)
          turn a generous budget into schedule-space explosion *)
  max_nodes : int;  (** du-opacity search budget per history *)
}

val default : config
(** Every registered STM, a 4-transaction workload small enough for DPOR to
    finish exhaustively, a naive baseline that typically gets cut off. *)

type verdicts = {
  sat : int;
  unsat : int;
  unknown : int;
  first_unsat : string option;
      (** pretty-printed explanation + history of the first violation *)
}

type stm_result = {
  r_stm : string;
  r_dpor : Tm_sim.Explore.outcome;
  r_histories : int;  (** distinct histories over all DPOR schedules *)
  r_verdicts : verdicts;  (** du-opacity, over distinct histories *)
  r_lu_verdicts : verdicts;  (** last-use opacity, over the same set *)
  r_lastuse_containment : int;
      (** histories du-opaque but {e not} last-use-opaque — a violation of
          the containment theorem, must be 0 for every STM *)
  r_separated : int;
      (** histories last-use-opaque but not du-opaque: the separation
          class.  Expected positive for the early-release STM on contended
          workloads, 0 for every du-safe algorithm *)
  r_races : Race.report;  (** merged over every schedule's trace *)
  r_racy_schedules : int;
  r_naive : Tm_sim.Explore.outcome option;
  r_naive_histories : int;  (** distinct histories the baseline saw *)
  r_naive_verdicts : verdicts option;
  r_match : bool option;
      (** verdict-set agreement with the baseline.  Interleavings of the
          same Mazurkiewicz trace can serialize the history's events
          differently, so history texts are not comparable across the two
          enumerations — the verdict profile (is any history Sat / Unsat /
          Unknown) is.  Equality when both enumerations finished,
          [naive ⊆ DPOR] when one was cut off; [None] when no baseline
          ran *)
  r_graph_checked : int;
      (** distinct histories also judged by
          {!Tm_checker.Conflict_graph.check_or_fallback} *)
  r_graph_mismatch : int;
      (** decided disagreements between the graph backend and
          [check_fast] — always 0 unless one of the two checker cores is
          wrong *)
  r_seconds : float;
}

val run_stm : config -> string -> stm_result
(** @raise Invalid_argument on an unknown STM name. *)

val run : config -> stm_result list

val ok : stm_result -> bool
(** No [Unknown] verdicts under either criterion, baseline agreement when
    one ran, zero graph-backend mismatches, zero containment violations,
    [safe] algorithms all-[Sat] and race-free, and [lastuse_safe]
    algorithms all last-use-[Sat] and race-free (their du-violations are
    expected, not penalised).  (Whether a control {e must} be flagged
    depends on the workload actually having cross-fiber conflicts, so that
    expectation lives with the contended configs in the tests and the
    bench, not here.) *)

val pp_result : Format.formatter -> stm_result -> unit
val pp_table : Format.formatter -> stm_result list -> unit

val to_json : config -> wall:float -> stm_result list -> string
(** The BENCH_verify.json payload. *)
