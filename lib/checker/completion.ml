(* Events Definition 2 appends for transaction [txn] under [decision]. *)
let completion_suffix (txn : Txn.t) decision =
  let k = txn.Txn.id in
  match txn.Txn.status with
  | Txn.Committed | Txn.Aborted -> []
  | Txn.Commit_pending ->
      [ Event.Res (k, (if decision then Event.Committed else Event.Aborted)) ]
  | Txn.Abort_pending -> [ Event.Res (k, Event.Aborted) ]
  | Txn.Live ->
      if Txn.is_complete txn then
        [ Event.Inv (k, Event.Try_commit); Event.Res (k, Event.Aborted) ]
      else [ Event.Res (k, Event.Aborted) ]

let canonical ~decide h =
  let suffix =
    List.concat_map
      (fun txn -> completion_suffix txn (decide txn.Txn.id))
      (History.infos h)
  in
  History.of_events_exn (History.to_list h @ suffix)

let count h =
  let p = List.length (History.commit_pending h) in
  if p >= Sys.int_size - 2 then max_int else 1 lsl p

let enumerate ?(limit = 1024) h =
  let pending = History.commit_pending h in
  (* 2^p decision vectors; enumerate them as bit masks so the limit bounds
     the work done, not just the work kept — a crash/stall fault campaign
     can leave dozens of transactions commit-pending, and materialising
     2^p closures before truncating would hang long before the cap.
     Mask bit [i] clear = commit [pending.(i)], so mask 0 is the all-commit
     completion and the enumeration order matches the historical one. *)
  let n = min (count h) (max 0 limit) in
  List.init n (fun mask ->
      let decide k =
        let rec bit i = function
          | [] -> false
          | k' :: rest ->
              if k' = k then (mask lsr i) land 1 = 0 else bit (i + 1) rest
        in
        bit 0 pending
      in
      canonical ~decide h)

let is_completion candidate ~of_:h =
  History.is_t_complete candidate
  &&
  let txns_h = List.sort Int.compare (History.txns h) in
  let txns_c = List.sort Int.compare (History.txns candidate) in
  List.equal Int.equal txns_h txns_c
  && List.for_all
       (fun (txn : Txn.t) ->
         let per_tx hh k =
           List.filter (fun ev -> Event.tx_of ev = k) (History.to_list hh)
         in
         let base = per_tx h txn.Txn.id in
         let got = per_tx candidate txn.Txn.id in
         let expected_with decision =
           base @ completion_suffix txn decision
         in
         List.equal Event.equal got (expected_with true)
         || List.equal Event.equal got (expected_with false))
       (History.infos h)
