(** Completions of a history (Definition 2), made explicit.

    A completion resolves every incomplete transaction: a pending
    [read]/[write]/[tryA] responds [A_k]; a pending [tryC] responds [C_k]
    {e or} [A_k] (the one free choice); a complete but not t-complete
    transaction gets [tryC_k · A_k] appended.  Where the inserted events land
    in the sequence does not affect equivalence (per-transaction
    subsequences are what equivalence compares), so this module inserts
    canonically at the end of the history.

    The search engine handles completions implicitly through commit
    decisions; this module exists so tests can check Definition 3(1) — "S is
    equivalent to {e some} completion of H" — literally. *)

val canonical : decide:(Event.tx -> bool) -> History.t -> History.t
(** The completion committing exactly the pending-[tryC] transactions that
    [decide] selects (the decision is ignored for transactions whose fate is
    already sealed). *)

val count : History.t -> int
(** Number of completions, [2^p] for [p] pending-[tryC] transactions
    (saturating at [max_int]). *)

val enumerate : ?limit:int -> History.t -> History.t list
(** All completions, one per decision vector over the pending-[tryC]
    transactions ([2^p]; capped at [limit], default 1024).  The cap bounds
    the work performed, not just the result length, so enumerating a
    history with a large pending set is safe; compare the result length
    with {!count} to detect truncation. *)

val is_completion : History.t -> of_:History.t -> bool
(** Is the first history a completion of [of_] (with canonical or any other
    insertion points)?  Checked per Definition 2, transaction by
    transaction. *)
