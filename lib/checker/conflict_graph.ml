(* Direct-serialization-graph backend with Pearce–Kelly incremental cycle
   detection.  See the .mli for the contract; the notes here are about the
   mechanics.

   The graph's nodes are interned transactions; its edges are the orderings
   every du-opaque serialization must respect:

   - real-time edges, kept to a transitive reduction: a new transaction
     gets edges only from the current *frontier* of maximal t-complete
     transactions (a t-complete transaction covered by a later one is
     dropped from the frontier, its ordering implied transitively);
   - reads-from edges (writer before reader), determined because written
     (variable, value) pairs are unique across transactions — any
     duplicate, and any later write that would retract an existing
     attribution, *poisons* the state into Ambiguous instead;
   - anti-dependency edges: for a read attributed to writer [w], every
     other committed writer of the variable must sit outside the open
     interval (w, reader) of the serialization.  These are not materialised
     pairwise (that is quadratic in hot variables); instead the maintained
     topological order is scanned at verdict time — a per-variable sorted
     array of committed-writer positions makes the "is anything inside the
     interval" test a binary search — and only actual offenders get an
     edge, forced when one direction would close a cycle, by tryC order
     otherwise (a heuristic, recorded in [tainted]: contradictions reached
     after a heuristic choice answer Ambiguous, never Unsat).

   Acyclicity under edge insertion is maintained with the Pearce–Kelly
   dynamic topological order, which lives in {!Topo} (shared with the
   sharded monitor's commit-order arbiter): an edge already respecting the
   order is free; otherwise the affected region is discovered and its
   order indices reassigned.  Edges live in index-linked arena pools, so
   insertion allocates nothing beyond amortised array growth; each edge is
   tagged with its kind (real-time / reads-from / repair) so the sharded
   monitor can drain a shard's forced edges into its global stitch. *)

type result =
  | Sat of Serialization.t
  | Unsat of string
  | Ambiguous of string

type stats = {
  nodes : int;
  edges : int;
  reorders : int;
  repairs : int;
  tainted : bool;
}

module Pvec = Topo.Pvec

(* Dense bitsets over interned variable ids (32 bits per word so shifts
   stay well inside OCaml's 63-bit integers). *)
module Bitset = struct
  type t = { mutable w : int array }

  let create () = { w = [||] }

  let add t i =
    let j = i lsr 5 in
    if j >= Array.length t.w then begin
      let a' = Array.make (max (j + 1) ((2 * Array.length t.w) + 1)) 0 in
      Array.blit t.w 0 a' 0 (Array.length t.w);
      t.w <- a'
    end;
    t.w.(j) <- t.w.(j) lor (1 lsl (i land 31))

  let iter f t =
    Array.iteri
      (fun j word ->
        if word <> 0 then
          for b = 0 to 31 do
            if word land (1 lsl b) <> 0 then f ((j lsl 5) + b)
          done)
      t.w
end

module Inc = struct
  (* Edge kinds, as stored in the Topo arena: real-time and reads-from
     edges are forced at push time and sound in any larger context that
     preserves real-time order; repair edges are added at verdict time
     (forced unless the state is tainted — see [repair]). *)
  let k_rt = 0
  let k_rf = 1
  let k_repair = 2

  (* A value-returning external read, as recorded at its response.
     [rd_writer] is the attributed writer node, or -1 for a read of the
     initial value.  Attributions are never rebound — a write that would
     change one poisons the whole state. *)
  type reader = {
    rd_node : int;
    rd_var : int;
    rd_value : int;
    rd_res : int;  (* stream index of the read's response *)
    rd_writer : int;
  }

  let dummy_reader =
    { rd_node = -1; rd_var = -1; rd_value = 0; rd_res = -1; rd_writer = -1 }

  type t = {
    (* interning *)
    node_of_tx : (Event.tx, int) Hashtbl.t;
    tx_of_node : int Pvec.t;
    var_of_tvar : (Event.tvar, int) Hashtbl.t;
    mutable nvars : int;
    (* the DSG itself: nodes, kinded edges and the maintained topological
       order all live in the Pearce–Kelly structure *)
    topo : Topo.t;
    (* per-node state (parallel vectors, indexed by node) *)
    first_ev : int Pvec.t;
    completion : int Pvec.t;  (* index of C_k/A_k; -1 while not t-complete *)
    tryc_inv : int Pvec.t;  (* index of the tryC invocation; -1 *)
    aborted : int Pvec.t;  (* 0/1 *)
    must_commit : int Pvec.t;  (* 0/1: forced commit decision *)
    pend_kind : int Pvec.t;  (* 0 none / 1 read / 2 write / 3 tryC / 4 tryA *)
    pend_var : int Pvec.t;
    pend_val : int Pvec.t;
    wset : Bitset.t Pvec.t;
    rset : Bitset.t Pvec.t;
    (* write bookkeeping; keys are dense (var, value) or (node, var) *)
    own : (int * int, int) Hashtbl.t;  (* deferred buffer: (node,var) -> v *)
    writes_seen : (int * int, int) Hashtbl.t;  (* all writes: (var,v) -> node *)
    final_writer : (int * int, int) Hashtbl.t;  (* (var,v) -> node, current *)
    fw_val : (int * int, int) Hashtbl.t;  (* (node,var) -> current final v *)
    readers_by_vv : (int * int, (int * int) list ref) Hashtbl.t;
        (* (var,v) -> (reader node, attributed writer | -1 init | -2 none) *)
    reads : reader Pvec.t;  (* attributed + initial-value reads, in order *)
    writers_of_var : (int, int list ref) Hashtbl.t;  (* committed writers *)
    (* frontier of maximal t-complete transactions (queue over a vector) *)
    frontier : int Pvec.t;
    mutable f_lo : int;
    (* per-variable sorted committed-writer positions, rebuilt lazily *)
    var_cache : (int, (int * int) array * int) Hashtbl.t;
        (* var -> (sorted (ord, node) positions, epoch at build) *)
    mutable epoch : int;  (* bumped at each resolution pass *)
    (* stream state *)
    mutable idx : int;
    mutable poison : (int * string) option;  (* stream index it fired at *)
    mutable violation : (int * string) option;
    mutable cycle : int list option;  (* first counterexample cycle (nodes) *)
    mutable taint : bool;
    mutable repairs : int;
    (* node order validated by the last [verdict] (greedy or exact), for
       {!order_hints}; dropped on every push *)
    mutable last_order : int array option;
  }

  let create () =
    {
      node_of_tx = Hashtbl.create 64;
      tx_of_node = Pvec.create 0;
      var_of_tvar = Hashtbl.create 16;
      nvars = 0;
      topo = Topo.create ();
      first_ev = Pvec.create 0;
      completion = Pvec.create (-1);
      tryc_inv = Pvec.create (-1);
      aborted = Pvec.create 0;
      must_commit = Pvec.create 0;
      pend_kind = Pvec.create 0;
      pend_var = Pvec.create 0;
      pend_val = Pvec.create 0;
      wset = Pvec.create (Bitset.create ());
      rset = Pvec.create (Bitset.create ());
      own = Hashtbl.create 64;
      writes_seen = Hashtbl.create 64;
      final_writer = Hashtbl.create 64;
      fw_val = Hashtbl.create 64;
      readers_by_vv = Hashtbl.create 64;
      reads = Pvec.create dummy_reader;
      writers_of_var = Hashtbl.create 16;
      frontier = Pvec.create 0;
      f_lo = 0;
      var_cache = Hashtbl.create 16;
      epoch = 0;
      idx = 0;
      poison = None;
      violation = None;
      cycle = None;
      taint = false;
      repairs = 0;
      last_order = None;
    }

  let nnodes g = g.tx_of_node.Pvec.n
  let tx g n = Pvec.get g.tx_of_node n

  let poison g why = if g.poison = None then g.poison <- Some (g.idx, why)
  let violate g why = if g.violation = None then g.violation <- Some (g.idx, why)

  let vid g x =
    match Hashtbl.find_opt g.var_of_tvar x with
    | Some i -> i
    | None ->
        let i = g.nvars in
        g.nvars <- i + 1;
        Hashtbl.replace g.var_of_tvar x i;
        i

  (* Variable names in messages: dense ids are only ever created from
     [Event.tvar]s, so keep a reverse map implicitly via messages built at
     intern sites.  For verdict-time messages we print the dense id. *)
  let pp_var g ppf v =
    let shown = ref false in
    Hashtbl.iter
      (fun tv dv ->
        if dv = v && not !shown then begin
          shown := true;
          Event.pp_tvar ppf tv
        end)
      g.var_of_tvar;
    if not !shown then Fmt.pf ppf "X?%d" v

  (* --- edges and Pearce–Kelly maintenance ------------------------------ *)

  (* The order, the kinded edge arenas and the reorder machinery live in
     [g.topo]; these are thin views with the node-id conventions baked in. *)

  let ord g n = Topo.ord g.topo n
  let add_edge g ~kind u v = Topo.add_edge ~kind g.topo u v
  let reach g a b = Topo.reach g.topo a b

  (* --- transactions ----------------------------------------------------- *)

  let cycle_msg g u v =
    Fmt.str "ordering T%d before T%d closes a cycle" (tx g u) (tx g v)

  (* The edge u -> v was refused because a path v ~> u already exists (the
     insertion was rolled back, so the path still does).  Recover one such
     path by parent-tracking DFS — the nodes of the counterexample cycle
     u -> v -> ... -> u that [tm check --dot] renders. *)
  let record_cycle g u v =
    if g.cycle = None then
      match Topo.find_path g.topo v u with
      | Some path ->
          (* [path] runs v ... u; drop the final u and prepend it so the
             list reads u -> v -> ... (closing back to u implicitly). *)
          let rec drop_last = function
            | [] | [ _ ] -> []
            | x :: rest -> x :: drop_last rest
          in
          g.cycle <- Some (u :: drop_last path)
      | None -> ()

  let on_cycle g u v =
    record_cycle g u v;
    if g.taint then
      poison g
        (Fmt.str "%s (after a heuristic write-order choice)" (cycle_msg g u v))
    else violate g (cycle_msg g u v)

  let node g k =
    match Hashtbl.find_opt g.node_of_tx k with
    | Some n -> n
    | None ->
        let n = nnodes g in
        Hashtbl.replace g.node_of_tx k n;
        Pvec.push g.tx_of_node k;
        (* new nodes take the largest order index, so edges from existing
           nodes never trigger a reorder *)
        let n' = Topo.add_node g.topo in
        assert (n = n');
        Pvec.push g.first_ev g.idx;
        Pvec.push g.completion (-1);
        Pvec.push g.tryc_inv (-1);
        Pvec.push g.aborted 0;
        Pvec.push g.must_commit 0;
        Pvec.push g.pend_kind 0;
        Pvec.push g.pend_var (-1);
        Pvec.push g.pend_val 0;
        Pvec.push g.wset (Bitset.create ());
        Pvec.push g.rset (Bitset.create ());
        (* real-time edges: the frontier holds exactly the maximal
           t-complete transactions, each of which really-time-precedes the
           newcomer; everything below them is implied transitively *)
        for fi = g.f_lo to g.frontier.Pvec.n - 1 do
          match add_edge g ~kind:k_rt (Pvec.get g.frontier fi) n with
          | `Ok -> ()
          | `Cycle -> on_cycle g (Pvec.get g.frontier fi) n
        done;
        n

  let t_complete g n =
    Pvec.set g.completion n g.idx;
    (* drop frontier members now covered: they completed before [n] even
       started, so their edge to [n] plus [n]'s future edges imply theirs *)
    let first_n = Pvec.get g.first_ev n in
    while
      g.f_lo < g.frontier.Pvec.n
      && Pvec.get g.completion (Pvec.get g.frontier g.f_lo) < first_n
    do
      g.f_lo <- g.f_lo + 1
    done;
    Pvec.push g.frontier n

  let register_writer g x w =
    (match Hashtbl.find_opt g.writers_of_var x with
    | Some r -> r := w :: !r
    | None -> Hashtbl.replace g.writers_of_var x (ref [ w ]));
    Hashtbl.remove g.var_cache x

  let force_commit g w =
    if Pvec.get g.must_commit w = 0 then begin
      Pvec.set g.must_commit w 1;
      Bitset.iter (fun x -> register_writer g x w) (Pvec.get g.wset w)
    end

  let add_vv_reader g x v entry =
    match Hashtbl.find_opt g.readers_by_vv (x, v) with
    | Some r -> r := entry :: !r
    | None -> Hashtbl.replace g.readers_by_vv (x, v) (ref [ entry ])

  let do_write g n x v =
    (match Hashtbl.find_opt g.writes_seen (x, v) with
    | Some o when o <> n ->
        (* A duplicate from an already-aborted writer — the common case
           under STM retry, where an aborted attempt's program re-executes —
           is harmless: no read can ever be legally attributed to the
           aborted transaction (any that was is already a violation), so
           the value's ownership simply transfers.  A duplicate between two
           transactions that could both commit leaves reads-from genuinely
           undetermined: poison. *)
        if Pvec.get g.aborted o = 1 then Hashtbl.replace g.writes_seen (x, v) n
        else
          poison g
            (Fmt.str "T%d and T%d both write %d to %a" (tx g o) (tx g n) v
               (pp_var g) x)
    | Some _ -> ()
    | None -> Hashtbl.replace g.writes_seen (x, v) n);
    (* a write whose (var, value) an earlier read already returned — not
       attributed to this writer — could retract that read's verdict.
       Reads bound to a since-aborted writer, and reads no write could
       explain, are already recorded violations that precede this write,
       so they need no poison. *)
    (match Hashtbl.find_opt g.readers_by_vv (x, v) with
    | Some readers ->
        if
          List.exists
            (fun (_, w) ->
              w = -1 || (w >= 0 && w <> n && Pvec.get g.aborted w = 0))
            !readers
        then
          poison g
            (Fmt.str
               "T%d writes %d to %a, a value an earlier read returned from \
                elsewhere"
               (tx g n) v (pp_var g) x)
    | None -> ());
    (match Hashtbl.find_opt g.fw_val (n, x) with
    | Some v_old when v_old <> v ->
        (match Hashtbl.find_opt g.readers_by_vv (x, v_old) with
        | Some readers ->
            if List.exists (fun (_, w) -> w = n) !readers then
              poison g
                (Fmt.str
                   "T%d overwrites %a after a read was attributed to its \
                    previous write"
                   (tx g n) (pp_var g) x)
        | None -> ());
        Hashtbl.remove g.final_writer (x, v_old)
    | Some _ | None -> ());
    Hashtbl.replace g.fw_val (n, x) v;
    Hashtbl.replace g.final_writer (x, v) n;
    Hashtbl.replace g.own (n, x) v;
    Bitset.add (Pvec.get g.wset n) x

  let do_read g n x v =
    Bitset.add (Pvec.get g.rset n) x;
    match Hashtbl.find_opt g.own (n, x) with
    | Some own_v ->
        if v <> own_v then
          violate g
            (Fmt.str "T%d: internal read of %a returned %d, own write was %d"
               (tx g n) (pp_var g) x v own_v)
    | None ->
        if v = Event.init_value then begin
          (match Hashtbl.find_opt g.final_writer (x, v) with
          | Some w when w <> n && Pvec.get g.aborted w = 0 ->
              poison g
                (Fmt.str
                   "T%d writes the initial value %d to %a: ambiguous \
                    reads-from"
                   (tx g w) v (pp_var g) x)
          | Some _ | None -> ());
          add_vv_reader g x v (n, -1);
          Pvec.push g.reads
            { rd_node = n; rd_var = x; rd_value = v; rd_res = g.idx;
              rd_writer = -1 }
        end
        else
          match Hashtbl.find_opt g.final_writer (x, v) with
          | None ->
              violate g
                (Fmt.str
                   "T%d reads %d from %a but no transaction's final write \
                    has that value"
                   (tx g n) v (pp_var g) x);
              add_vv_reader g x v (n, -2)
          | Some w when w = n ->
              poison g (Fmt.str "T%d externally reads its own write" (tx g n))
          | Some w ->
              if Pvec.get g.aborted w = 1 then
                violate g
                  (Fmt.str "T%d reads from T%d, which cannot commit" (tx g n)
                     (tx g w))
              else begin
                let tc = Pvec.get g.tryc_inv w in
                if tc < 0 || tc >= g.idx then
                  violate g
                    (Fmt.str
                       "T%d reads from T%d before it invoked tryC (deferred \
                        update violated)"
                       (tx g n) (tx g w))
                else begin
                  force_commit g w;
                  (match add_edge g ~kind:k_rf w n with
                  | `Ok -> ()
                  | `Cycle -> on_cycle g w n);
                  add_vv_reader g x v (n, w);
                  Pvec.push g.reads
                    { rd_node = n; rd_var = x; rd_value = v; rd_res = g.idx;
                      rd_writer = w }
                end
              end

  let push g ev =
    g.last_order <- None;
    (match ev with
    | Event.Inv (k, inv) -> (
        let n = node g k in
        match inv with
        | Event.Read x ->
            Pvec.set g.pend_kind n 1;
            Pvec.set g.pend_var n (vid g x)
        | Event.Write (x, v) ->
            Pvec.set g.pend_kind n 2;
            Pvec.set g.pend_var n (vid g x);
            Pvec.set g.pend_val n v
        | Event.Try_commit ->
            Pvec.set g.pend_kind n 3;
            Pvec.set g.tryc_inv n g.idx
        | Event.Try_abort -> Pvec.set g.pend_kind n 4)
    | Event.Res (k, res) -> (
        let n = node g k in
        let pk = Pvec.get g.pend_kind n in
        Pvec.set g.pend_kind n 0;
        match res with
        | Event.Write_ok ->
            if pk = 2 then
              do_write g n (Pvec.get g.pend_var n) (Pvec.get g.pend_val n)
            else poison g "ok response without a pending write"
        | Event.Read_ok v ->
            if pk = 1 then do_read g n (Pvec.get g.pend_var n) v
            else poison g "read response without a pending read"
        | Event.Committed ->
            force_commit g n;
            t_complete g n
        | Event.Aborted ->
            if Pvec.get g.must_commit n = 1 then
              violate g
                (Fmt.str
                   "T%d aborted, but an earlier read forces it to commit"
                   (tx g n));
            Pvec.set g.aborted n 1;
            t_complete g n));
    g.idx <- g.idx + 1

  (* --- verdict ---------------------------------------------------------- *)

  exception Decided of result

  let contradiction g why =
    raise
      (Decided
         (if g.taint then
            Ambiguous ("ordering contradiction after heuristic choice: " ^ why)
          else Unsat why))

  (* Sorted (ord, node) array of the committed writers of [x].  The cache
     entry is dropped by [register_writer] when a writer is added, and
     keyed on the pass epoch.  Within a pass the positions may go stale as
     repairs reorder the region — [repair] re-checks current positions
     before acting, and the fixpoint loop only stops after a clean pass
     against freshly built arrays, so staleness costs at most an extra
     pass, never a wrong verdict. *)
  let writer_array g x =
    match Hashtbl.find_opt g.var_cache x with
    | Some (arr, ep) when ep = g.epoch -> arr
    | _ ->
        let current =
          match Hashtbl.find_opt g.writers_of_var x with
          | Some r -> !r
          | None -> []
        in
        let arr =
          Array.of_list (List.map (fun n -> (ord g n, n)) current)
        in
        Array.sort (fun (a, _) (b, _) -> Int.compare a b) arr;
        Hashtbl.replace g.var_cache x (arr, g.epoch);
        arr

  (* Committed writers of [r.rd_var] strictly inside the serialization
     interval the read forbids: (writer, reader) for attributed reads,
     (-inf, reader) for initial-value reads. *)
  let offenders g (r : reader) =
    let arr = writer_array g r.rd_var in
    if Array.length arr = 0 then []
    else begin
      let lo =
        if r.rd_writer < 0 then min_int else ord g r.rd_writer
      in
      let hi = ord g r.rd_node in
      (* first index with ord > lo *)
      let l = ref 0 and rgt = ref (Array.length arr) in
      while !l < !rgt do
        let m = (!l + !rgt) / 2 in
        if fst arr.(m) <= lo then l := m + 1 else rgt := m
      done;
      let acc = ref [] in
      let i = ref !l in
      while !i < Array.length arr && fst arr.(!i) < hi do
        let w'' = snd arr.(!i) in
        if w'' <> r.rd_node && w'' <> r.rd_writer then acc := w'' :: !acc;
        incr i
      done;
      !acc
    end

  (* Position of a committed writer in commit order: its [Committed]
     response index, or past-end-of-stream (by tryC invocation) for
     read-forced writers still live.  For every deferred-update STM the
     commit responses happen inside the commit critical section, so this
     is the version order the implementation actually induced — the right
     default ordering for write pairs no read constrains. *)
  let commit_key g n =
    let c = Pvec.get g.completion n in
    if c >= 0 then c
    else
      g.idx
      +
      let t = Pvec.get g.tryc_inv n in
      if t >= 0 then t else Pvec.get g.first_ev n

  (* Order [w''] out of the read's forbidden interval.  With
     [~heuristic:false] only acts when exactly one direction is possible
     (unit propagation); with [~heuristic:true] an unconstrained pair is
     decided by commit order — see [commit_key] — and the state is
     tainted, because a later contradiction may be that choice's fault
     rather than the history's.  Returns true iff an edge was added (the
     pair is then resolved for good: reachability only grows).  Raises
     [Decided] when both directions are impossible. *)
  let repair g ~heuristic (r : reader) w'' =
    let i = r.rd_node in
    let added u v =
      match add_edge g ~kind:k_repair u v with
      | `Ok ->
          g.repairs <- g.repairs + 1;
          true
      | `Cycle ->
          record_cycle g u v;
          contradiction g (cycle_msg g u v)
    in
    if r.rd_writer < 0 then begin
      if ord g w'' >= ord g i then false
      else if reach g w'' i then begin
        (* the read forces i -> w'', but w'' already reaches i: that path
           plus the forced edge is the counterexample cycle *)
        record_cycle g i w'';
        contradiction g
          (Fmt.str
             "T%d reads the initial value of %a but committed writer T%d \
              must precede it"
             (tx g i) (pp_var g) r.rd_var (tx g w''))
      end
      else added i w''
    end
    else begin
      let w = r.rd_writer in
      if
        not
          (ord g w < ord g w'' && ord g w'' < ord g i)
      then false
      else begin
        let fst_blocked = reach g w w'' in
        (* w'' -> w would close a cycle *)
        let snd_blocked = reach g w'' i in
        (* i -> w'' would close a cycle *)
        match (fst_blocked, snd_blocked) with
        | true, true ->
            (* evicting w'' after the reader closes i -> w'' -> ... -> i;
               record that direction's cycle as the counterexample *)
            record_cycle g i w'';
            contradiction g
              (Fmt.str
                 "committed writer T%d cannot leave the interval between \
                  T%d and its reader T%d"
                 (tx g w'') (tx g w) (tx g i))
        | true, false -> added i w''
        | false, true -> added w'' w
        | false, false ->
            if not heuristic then false
            else begin
              g.taint <- true;
              if commit_key g w'' < commit_key g w then added w'' w
              else added i w''
            end
      end
    end

  (* Greedy verdict fast path: one commit-key-greedy topological sort of
     the current graph (Kahn's algorithm over a binary heap), then a purely
     static validation of every read interval and a linear replay against
     the resulting order — no graph mutation, no Pearce–Kelly reorders.
     On histories an STM actually produced, the commit order IS a valid
     serialization, so this succeeds and the whole verdict is
     O((nodes + edges + reads) log nodes).  When it fails, the exact
     repair machinery below takes over. *)

  let greedy_order g =
    let n = nnodes g in
    let indeg = Array.make (max 1 n) 0 in
    ignore
      (Topo.iter_edges_from g.topo ~cursor:0 (fun _ v _ ->
           indeg.(v) <- indeg.(v) + 1));
    (* binary min-heap of (commit_key, node) *)
    let hk = Array.make (max 1 n) 0 and hn = Array.make (max 1 n) 0 in
    let hsz = ref 0 in
    let swap i j =
      let k = hk.(i) and m = hn.(i) in
      hk.(i) <- hk.(j);
      hn.(i) <- hn.(j);
      hk.(j) <- k;
      hn.(j) <- m
    in
    let push key nd =
      hk.(!hsz) <- key;
      hn.(!hsz) <- nd;
      let i = ref !hsz in
      incr hsz;
      while !i > 0 && hk.((!i - 1) / 2) > hk.(!i) do
        swap ((!i - 1) / 2) !i;
        i := (!i - 1) / 2
      done
    in
    let pop () =
      let nd = hn.(0) in
      decr hsz;
      hk.(0) <- hk.(!hsz);
      hn.(0) <- hn.(!hsz);
      let i = ref 0 in
      let go = ref true in
      while !go do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        if l < !hsz && hk.(l) < hk.(!s) then s := l;
        if r < !hsz && hk.(r) < hk.(!s) then s := r;
        if !s <> !i then begin
          swap !s !i;
          i := !s
        end
        else go := false
      done;
      nd
    in
    for nd = 0 to n - 1 do
      if indeg.(nd) = 0 then push (commit_key g nd) nd
    done;
    (* [Array.make n] and not [max 1 n]: an empty graph must yield an
       empty order, or the phantom slot masquerades as node 0 downstream
       (the sharded monitor certifies empty shards all the time) *)
    let order = Array.make n 0 in
    let k = ref 0 in
    while !hsz > 0 do
      let nd = pop () in
      order.(!k) <- nd;
      incr k;
      Topo.succ_iter g.topo nd (fun v ->
          indeg.(v) <- indeg.(v) - 1;
          if indeg.(v) = 0 then push (commit_key g v) v)
    done;
    (* the graph is acyclic by construction, so the sort is total *)
    assert (!k = n);
    order

  (* Do all reads respect their anti-dependency intervals under [order]?
     Purely static: positions instead of graph edges. *)
  let intervals_ok g order =
    let n = nnodes g in
    let pos = Array.make (max 1 n) 0 in
    Array.iteri (fun p nd -> pos.(nd) <- p) order;
    let by_var = Hashtbl.create 64 in
    Hashtbl.iter
      (fun x r ->
        let arr = Array.of_list (List.map (fun w -> pos.(w)) !r) in
        Array.sort Int.compare arr;
        Hashtbl.replace by_var x arr)
      g.writers_of_var;
    let ok = ref true in
    let ri = ref 0 in
    while !ok && !ri < g.reads.Pvec.n do
      let r = Pvec.get g.reads !ri in
      (match Hashtbl.find_opt by_var r.rd_var with
      | None -> ()
      | Some arr ->
          let lo = if r.rd_writer < 0 then -1 else pos.(r.rd_writer) in
          let hi = pos.(r.rd_node) in
          (* first position > lo *)
          let l = ref 0 and rgt = ref (Array.length arr) in
          while !l < !rgt do
            let m = (!l + !rgt) / 2 in
            if arr.(m) <= lo then l := m + 1 else rgt := m
          done;
          (* any committed writer strictly inside (lo, hi) offends — the
             bound writer sits at lo and the reader at hi, so neither can
             be such an entry *)
          if !l < Array.length arr && arr.(!l) < hi then ok := false);
      incr ri
    done;
    !ok

  (* Repair every read's interval to a clean fixpoint.  The first pass
     applies only forced repairs (unit propagation); later passes also
     decide unconstrained pairs by commit order.  Because all heuristic
     choices are drawn from the one global commit order, they are mutually
     consistent and can be applied eagerly — no per-decision re-pass is
     needed, so the work is O(passes × reads × log writers + repairs),
     and on histories the STM really produced the commit order is the
     version order, so no choice ever backfires into a contradiction. *)
  let resolve g =
    let pass ~heuristic =
      g.epoch <- g.epoch + 1;
      let acted = ref false in
      for ri = 0 to g.reads.Pvec.n - 1 do
        let r = Pvec.get g.reads ri in
        List.iter
          (fun w'' -> if repair g ~heuristic r w'' then acted := true)
          (offenders g r)
      done;
      !acted
    in
    ignore (pass ~heuristic:false);
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
        if pass ~heuristic:true then continue_ := true
    done

  (* Linear replay of the candidate serialization against Definition 3's
     value clauses: global legality (latest committed writer) and the
     local-serialization (deferred-update filter) expectation per read. *)
  let replay g order =
    let reads_of = Array.make (max 1 (nnodes g)) [] in
    for ri = g.reads.Pvec.n - 1 downto 0 do
      let r = Pvec.get g.reads ri in
      reads_of.(r.rd_node) <- r :: reads_of.(r.rd_node)
    done;
    let state = Array.make (max 1 g.nvars) Event.init_value in
    let stacks = Array.make (max 1 g.nvars) [] in
    (* (tryC invocation index, value), newest first *)
    let bad = ref None in
    Array.iter
      (fun nd ->
        if !bad = None then begin
          List.iter
            (fun (r : reader) ->
              if !bad = None then begin
                let rec du = function
                  | [] -> Event.init_value
                  | (tc, v) :: rest -> if tc < r.rd_res then v else du rest
                in
                let glob = state.(r.rd_var) in
                let duv = du stacks.(r.rd_var) in
                if glob <> r.rd_value || duv <> r.rd_value then
                  bad :=
                    Some
                      (Fmt.str
                         "T%d's read of %a returns %d where the order yields \
                          %d (du view %d)"
                         (tx g nd) (pp_var g) r.rd_var r.rd_value glob duv)
              end)
            reads_of.(nd);
          if !bad = None && Pvec.get g.must_commit nd = 1 then
            Bitset.iter
              (fun x ->
                match Hashtbl.find_opt g.fw_val (nd, x) with
                | Some v ->
                    state.(x) <- v;
                    stacks.(x) <- (Pvec.get g.tryc_inv nd, v) :: stacks.(x)
                | None -> ())
              (Pvec.get g.wset nd)
        end)
      order;
    !bad

  let verdict g =
    (* Whichever fired first in stream order wins: a violation detected
       before any poison rests only on trustworthy attributions (and
       non-du-opacity is monotone under extension), while a violation
       detected after a poison may rest on state the poison made
       unreliable. *)
    match (g.poison, g.violation) with
    | Some (pi, pw), Some (vi, _) when pi < vi -> Ambiguous pw
    | _, Some (_, vw) -> Unsat vw
    | Some (_, pw), None -> Ambiguous pw
    | None, None -> (
        let fast =
          let order = greedy_order g in
          if intervals_ok g order && replay g order = None then Some order
          else None
        in
        match fast with
        | Some order ->
            g.last_order <- Some order;
            let ids = Array.to_list (Array.map (fun nd -> tx g nd) order) in
            let committed =
              List.filter
                (fun k ->
                  Pvec.get g.must_commit (Hashtbl.find g.node_of_tx k) = 1)
                ids
            in
            Sat (Serialization.make ~order:ids ~committed)
        | None -> (
        match resolve g with
        | () -> (
                let n = nnodes g in
                let order = Array.init n (fun i -> i) in
                Array.sort
                  (fun a b -> Int.compare (ord g a) (ord g b))
                  order;
                match replay g order with
                | Some why ->
                    (* defensive: the resolution missed a clause; the exact
                       search arbitrates *)
                    Ambiguous ("internal: graph certificate rejected: " ^ why)
                | None ->
                    g.last_order <- Some order;
                    let ids =
                      Array.to_list (Array.map (fun nd -> tx g nd) order)
                    in
                    let committed =
                      List.filter
                        (fun k ->
                          Pvec.get g.must_commit
                            (Hashtbl.find g.node_of_tx k)
                          = 1)
                        ids
                    in
                    Sat (Serialization.make ~order:ids ~committed))
        | exception Decided r ->
            (match r with
            | Unsat why -> violate g why
            | Ambiguous why -> poison g why
            | Sat _ -> ());
            r))

  let events g = g.idx
  let cycle g = Option.map (List.map (tx g)) g.cycle

  let stats g =
    {
      nodes = nnodes g;
      edges = Topo.edge_count g.topo;
      reorders = Topo.reorders g.topo;
      repairs = g.repairs;
      tainted = g.taint;
    }

  type edge_kind = Rt | Reads_from | Repair

  let edges_from g ~cursor =
    let acc = ref [] in
    let cursor' =
      Topo.iter_edges_from g.topo ~cursor (fun u v k ->
          let kind =
            if k = k_rt then Rt else if k = k_rf then Reads_from else Repair
          in
          acc := (tx g u, tx g v, kind) :: !acc)
    in
    (List.rev !acc, cursor')

  (* The serialization decisions behind the last [Sat], as a minimal edge
     set: consecutive committed writers of each variable are chained in
     certificate order, and every external read is ordered before the
     first committed writer following its reads-from interval.  Any order
     respecting these hints (plus the eager reads-from edges already in
     the arena) satisfies every read interval the certificate validated —
     without the cross-variable over-constraint a full totalisation of
     the certificate order would impose. *)
  let order_hints g =
    match g.last_order with
    | None -> []
    | Some order ->
        let n = nnodes g in
        let pos = Array.make (max 1 n) 0 in
        Array.iteri (fun p nd -> pos.(nd) <- p) order;
        let acc = ref [] in
        let add u v = if u <> v then acc := (tx g u, tx g v) :: !acc in
        let chains = Hashtbl.create 16 in
        Hashtbl.iter
          (fun x r ->
            let arr = Array.of_list !r in
            Array.sort (fun a b -> Int.compare pos.(a) pos.(b)) arr;
            Hashtbl.replace chains x arr;
            for i = 0 to Array.length arr - 2 do
              add arr.(i) arr.(i + 1)
            done)
          g.writers_of_var;
        for ri = 0 to g.reads.Pvec.n - 1 do
          let r = Pvec.get g.reads ri in
          match Hashtbl.find_opt chains r.rd_var with
          | None -> ()
          | Some arr ->
              let lo = if r.rd_writer < 0 then -1 else pos.(r.rd_writer) in
              (* first chained writer positioned past the reads-from bound;
                 the certificate placed it at or after the reader, and the
                 chain orders every later writer behind it *)
              let l = ref 0 and rgt = ref (Array.length arr) in
              while !l < !rgt do
                let m = (!l + !rgt) / 2 in
                if pos.(arr.(m)) <= lo then l := m + 1 else rgt := m
              done;
              if !l < Array.length arr then add r.rd_node arr.(!l)
        done;
        !acc
end

let check_stats h =
  let g = Inc.create () in
  List.iter (Inc.push g) (History.to_list h);
  (Inc.verdict g, Inc.stats g)

let check h = fst (check_stats h)

let counterexample_cycle h =
  let g = Inc.create () in
  List.iter (Inc.push g) (History.to_list h);
  (* verdict-time resolution can be what closes the cycle *)
  ignore (Inc.verdict g);
  Inc.cycle g

let check_or_fallback ?max_nodes h =
  match check h with
  | Sat s -> Verdict.Sat s
  | Unsat why -> Verdict.Unsat why
  | Ambiguous _ -> Du_opacity.check ?max_nodes h
