(** Direct-serialization-graph backend for du-opacity (ROADMAP item 2).

    Where {!Search} decides Definition 3 by backtracking over transaction
    orders, this module builds the {e direct serialization graph} the
    definition induces — real-time edges, reads-from edges, and
    anti-dependency ("the other committed writer of [X] is not between the
    writer and the reader") constraints — and decides du-opacity by keeping
    that graph acyclic.  Acyclicity is maintained {e incrementally} with a
    Pearce–Kelly topological-order algorithm: inserting an edge costs
    nothing when it already respects the maintained order (the overwhelming
    case on event streams, where edges point forward in time) and a bounded
    reorder of the affected region otherwise, instead of a re-search or an
    O(n²) closure matrix as in {!Polygraph}.  Transactions and variables
    are interned to dense ids, per-transaction read/write sets are bitsets,
    and the adjacency lists live in arena-allocated (index-linked) edge
    pools, so checking a million-event history allocates a handful of flat
    arrays.

    The backend is {e sound but deliberately partial}: on states it cannot
    decide cheaply it answers {!Ambiguous} and the caller falls back to the
    exact search.  Fallback triggers exactly when:

    - two distinct transactions write the same value to the same variable
      (the paper's unique-writes assumption fails, so reads-from is not
      determined — e.g. {!Tm_figures.Findings.corollary2_gap});
    - a transaction overwrites a variable after another transaction's read
      was already attributed to the overwritten value, or writes a value
      that an earlier read returned without being attributable to this
      writer (the incremental reads-from binding would have to be
      retracted);
    - a transaction writes the initial value that another transaction
      read (the read could be of the initial state or of that writer);
    - an ordering contradiction is reached {e after} some anti-dependency
      was resolved heuristically rather than forced (the contradiction may
      be an artifact of the heuristic choice, so only the search may call
      the history non-du-opaque);
    - defensively, when the internal linear-replay validation of a
      candidate certificate fails.

    On every other state the verdict is definitive: [Sat] carries a
    certificate that passed an independent linear replay of Definition 3's
    clauses (and is additionally re-checked by {!Serialization.validate}
    wherever the {!Monitor} or the oracle adopts it), and [Unsat] is only
    ever derived from forced edges, so it is sound for the checked prefix
    and — because every verdict-affecting future rebinding is poisoned into
    {!Ambiguous} — stays sound under extension. *)

type result =
  | Sat of Serialization.t
  | Unsat of string
  | Ambiguous of string  (** undecided: fall back to the exact search *)

type stats = {
  nodes : int;  (** interned transactions *)
  edges : int;  (** arena-allocated graph edges *)
  reorders : int;  (** Pearce–Kelly affected-region reorders *)
  repairs : int;  (** anti-dependency edges added at verdict time *)
  tainted : bool;  (** some repair was heuristic, not forced *)
}

val check : History.t -> result
(** Offline check of a complete history: one pass over the events, then
    anti-dependency resolution and a linear certificate replay.  Intended
    for million-event histories; see [bench check]. *)

val check_stats : History.t -> result * stats

val check_or_fallback : ?max_nodes:int -> History.t -> Verdict.t
(** {!check}, with {!Ambiguous} resolved by {!Du_opacity.check} — same
    verdicts as the exact search on every input. *)

val counterexample_cycle : History.t -> Event.tx list option
(** The first counterexample cycle the graph closed while judging [h]:
    transactions [T_a -> T_b -> ... ] (implicitly closing back to [T_a]),
    recovered from the edge arena at refusal time.  [None] when no edge
    insertion ever closed a cycle — in particular on every accepted
    history, but also on histories refuted by a value clause alone.
    Feeds the cycle highlighting of {!Dot.of_history} via
    [tm check --dot]. *)

(** Incremental (online) interface: feed events as they arrive, ask for a
    verdict of the stream seen so far only when needed.  {!Monitor} pushes
    every accepted event here and consults {!Inc.verdict} before running a
    backtracking search. *)
module Inc : sig
  type t

  val create : unit -> t

  val push : t -> Event.t -> unit
  (** Ingest one event.  O(1) amortised for responses that do not change
      the edge set; edge insertions cost a Pearce–Kelly update.  Events
      must be pushed in stream order and be well-formed (the monitor's
      {!History.extend} has already validated them). *)

  val verdict : t -> result
  (** Verdict for the pushed prefix.  May add forced anti-dependency edges
      (monotone: they remain valid for every later verdict) and runs the
      linear replay validation on success. *)

  val events : t -> int

  val stats : t -> stats

  val cycle : t -> Event.tx list option
  (** As {!counterexample_cycle}, for the pushed prefix: set at the first
      refused edge insertion, [None] before. *)

  (** What forced an edge: real-time order, a determined reads-from
      attribution, or a verdict-time anti-dependency repair.  Repair
      edges made after a heuristic choice are not forced by the history;
      the state is tainted and the sharded monitor treats the shard's
      orderings as a proposal to re-validate globally, not as ground
      truth. *)
  type edge_kind = Rt | Reads_from | Repair

  val edges_from : t -> cursor:int -> (Event.tx * Event.tx * edge_kind) list * int
  (** Drain the edge arena from [cursor] (0 for everything), in insertion
      order, as [(source, destination, kind)] over transaction ids; returns
      the new cursor.  Edges are append-only once accepted, so successive
      calls see exactly the edges inserted in between — how the sharded
      monitor harvests each shard's forced orderings into its global
      commit-order arbiter. *)

  val order_hints : t -> (Event.tx * Event.tx) list
  (** The anti-dependency decisions behind the latest [Sat] {!verdict},
      as a minimal [(before, after)] edge set over transaction ids:
      committed writers of each variable chained in certificate order,
      and each external read ordered before the first committed writer
      past its reads-from interval.  These constraints are satisfied by
      the certificate's own order but are {e not} all forced by the
      history — the sharded monitor plants them in its arbiter as a
      proposal and re-validates the stitched order independently.
      Empty unless the last verdict was [Sat] with no event pushed
      since. *)
end
