type access = { txn : Event.tx; time : int; is_write : bool }

let accesses_per_var h =
  let tbl : (Event.tvar, access list) Hashtbl.t = Hashtbl.create 16 in
  let add var a =
    Hashtbl.replace tbl var (a :: Option.value ~default:[] (Hashtbl.find_opt tbl var))
  in
  List.iter
    (fun (txn : Txn.t) ->
      (* A committed writer's writes take effect at its commit point, which
         deferred-update implementations reach at the tryC invocation. *)
      (if txn.Txn.status = Txn.Committed then
         match Txn.tryc_inv_index txn with
         | Some time ->
             List.iter
               (fun (var, _) ->
                 add var { txn = txn.Txn.id; time; is_write = true })
               (Txn.final_writes txn)
         | None -> ());
      List.iter
        (fun (r : Txn.read) ->
          match r.Txn.kind with
          | `Internal _ -> ()
          | `External ->
              add r.Txn.var
                { txn = txn.Txn.id; time = r.Txn.res_index; is_write = false })
        (Txn.reads txn))
    (History.infos h);
  tbl

let conflict_graph h =
  let tbl = accesses_per_var h in
  let edges = ref [] in
  Hashtbl.iter
    (fun _var accesses ->
      let sorted =
        List.sort (fun a b -> Int.compare a.time b.time) accesses
      in
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun b ->
                if a.txn <> b.txn && (a.is_write || b.is_write) then
                  edges := (a.txn, b.txn) :: !edges)
              rest;
            pairs rest
      in
      pairs sorted)
    tbl;
  (* Real-time order is part of the serialization requirement. *)
  let txns = History.txns h in
  List.iter
    (fun a ->
      List.iter
        (fun b -> if History.rt_precedes h a b then edges := (a, b) :: !edges)
        txns)
    txns;
  List.sort_uniq
    (fun (a, b) (a', b') ->
      match Int.compare a a' with 0 -> Int.compare b b' | c -> c)
    !edges

let topological_order h edges =
  let txns = History.txns h in
  let pending = Hashtbl.create 16 in
  let succs = Hashtbl.create 16 in
  List.iter (fun k -> Hashtbl.replace pending k 0) txns;
  List.iter
    (fun (a, b) ->
      Hashtbl.replace pending b (1 + Hashtbl.find pending b);
      Hashtbl.replace succs a (b :: Option.value ~default:[] (Hashtbl.find_opt succs a)))
    edges;
  (* Kahn's algorithm; ties broken by first event so that the order matches
     the history on conflict-free segments. *)
  let ready () =
    List.filter (fun k -> Hashtbl.find pending k = 0) txns
    |> List.sort (fun a b ->
           Int.compare (History.info h a).Txn.first_index
             (History.info h b).Txn.first_index)
  in
  let rec go acc remaining =
    if remaining = 0 then Some (List.rev acc)
    else
      match List.find_opt (fun k -> Hashtbl.find pending k = 0) (ready ()) with
      | None -> None (* cycle *)
      | Some k ->
          Hashtbl.replace pending k (-1);
          List.iter
            (fun b -> Hashtbl.replace pending b (Hashtbl.find pending b - 1))
            (Option.value ~default:[] (Hashtbl.find_opt succs k));
          go (k :: acc) (remaining - 1)
  in
  go [] (List.length txns)

let attempt h =
  match topological_order h (conflict_graph h) with
  | None -> None
  | Some order ->
      let s = Serialization.make ~order ~committed:(History.committed h) in
      (match Serialization.validate ~claim:Serialization.Du_opaque h s with
      | Ok () -> Some s
      | Error _ -> None)
