let status_colour = function
  | Txn.Committed -> "palegreen"
  | Txn.Aborted -> "lightcoral"
  | Txn.Commit_pending -> "khaki"
  | Txn.Abort_pending -> "lightsalmon"
  | Txn.Live -> "lightgrey"

let rt_edges h =
  let txns = History.txns h in
  let direct a b =
    History.rt_precedes h a b
    && not
         (List.exists
            (fun c ->
              c <> a && c <> b
              && History.rt_precedes h a c
              && History.rt_precedes h c b)
            txns)
  in
  List.concat_map
    (fun a -> List.filter_map (fun b -> if direct a b then Some (a, b) else None) txns)
    txns

let of_history ?serialization ?cycle h =
  let buf = Buffer.create 1024 in
  let pr fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  pr "digraph history {\n  rankdir=LR;\n  node [style=filled, shape=box];\n";
  (* Cycle highlighting: the listed transactions (and the edges between
     consecutive ones, closing back to the first) are drawn in red. *)
  let cycle = Option.value cycle ~default:[] in
  let on_cycle k = List.mem k cycle in
  let cycle_edges =
    match cycle with
    | [] -> []
    | first :: _ ->
        let rec pairs = function
          | [] -> []
          | [ last ] -> [ (last, first) ]
          | a :: (b :: _ as rest) -> (a, b) :: pairs rest
        in
        pairs cycle
  in
  let cycle_edge a b = List.mem (a, b) cycle_edges in
  let position k =
    match serialization with
    | None -> None
    | Some s ->
        let rec go i = function
          | [] -> None
          | k' :: _ when k' = k -> Some i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 s.Serialization.order
  in
  List.iter
    (fun (txn : Txn.t) ->
      let label =
        match position txn.Txn.id with
        | Some p -> Fmt.str "T%d\\n%a\\nS[%d]" txn.Txn.id Txn.pp_status txn.Txn.status p
        | None -> Fmt.str "T%d\\n%a" txn.Txn.id Txn.pp_status txn.Txn.status
      in
      pr "  t%d [label=\"%s\", fillcolor=%s%s];\n" txn.Txn.id label
        (status_colour txn.Txn.status)
        (if on_cycle txn.Txn.id then ", color=red, penwidth=2" else ""))
    (History.infos h);
  List.iter
    (fun (a, b) ->
      if cycle_edge a b then pr "  t%d -> t%d [color=red, penwidth=2];\n" a b
      else pr "  t%d -> t%d;\n" a b)
    (rt_edges h);
  List.iter
    (fun (a, b) ->
      if cycle_edge a b then
        pr "  t%d -> t%d [style=dashed, color=red, penwidth=2];\n" a b
      else pr "  t%d -> t%d [style=dashed, color=grey40];\n" a b)
    (Conflict_opacity.conflict_graph h
    |> List.filter (fun (a, b) -> not (History.rt_precedes h a b)));
  (* cycle edges the drawn relations do not already contain (e.g. a
     verdict-time anti-dependency repair) still need to appear *)
  let drawn = rt_edges h @ Conflict_opacity.conflict_graph h in
  List.iter
    (fun (a, b) ->
      if not (List.mem (a, b) drawn) then
        pr "  t%d -> t%d [style=dotted, color=red, penwidth=2];\n" a b)
    cycle_edges;
  pr "}\n";
  Buffer.contents buf
