(** Graphviz export of a history's precedence structure, for debugging
    violations visually: one node per transaction (coloured by status),
    solid edges for real-time order (transitively reduced), dashed edges
    for conflict order, and — when a serialization is supplied — node
    labels carrying its positions. *)

val of_history :
  ?serialization:Serialization.t ->
  ?cycle:Event.tx list ->
  History.t ->
  string
(** DOT source ([digraph]).  [cycle] (as produced by
    {!Conflict_graph.counterexample_cycle}) highlights the listed
    transactions and the edges between consecutive ones — closing back to
    the first — in red; a cycle edge that is neither a real-time nor a
    conflict edge (a verdict-time repair) is added dotted. *)
