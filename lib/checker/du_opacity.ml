let check_stats ?max_nodes ?hint h =
  Search.search { Search.du with max_nodes; hint } h

let check ?max_nodes ?hint h = fst (check_stats ?max_nodes ?hint h)

let check_fast ?max_nodes h =
  match Conflict_opacity.attempt h with
  | Some s -> Verdict.Sat s
  | None -> check ?max_nodes h

type inc = Search.ictx

let incremental () = Search.ictx Search.du

let check_inc ?max_nodes ?hint inc h = Search.search_ictx ?max_nodes ?hint inc h
