(** Du-opacity (Definition 3) — the paper's contribution.

    A history [H] is du-opaque if some legal t-complete t-sequential history
    [S] is equivalent to a completion of [H], respects [H]'s real-time
    order, and every value-returning [read_k(X)] is legal in its local
    serialization [S^{k,X}_H]: the prefix of [S] up to the read, with every
    transaction that had not invoked [tryC] in [H] before the read's
    response filtered out.  The filter is what makes the deferred-update
    semantics explicit — no read can depend on a transaction that has not
    started committing.

    Positive verdicts carry a certificate checked by
    {!Serialization.validate}.  Under the paper's unique-writes assumption
    du-opacity is prefix-closed (Corollary 2), making a positive verdict
    for [H] sound for every prefix too; with duplicate written values that
    inference fails ({!Tm_figures.Findings.corollary2_gap}) — prefixes must
    be judged on their own. *)

val check : ?max_nodes:int -> ?hint:Event.tx list -> History.t -> Verdict.t

val check_stats :
  ?max_nodes:int -> ?hint:Event.tx list -> History.t -> Verdict.t * Search.stats

val check_fast : ?max_nodes:int -> History.t -> Verdict.t
(** Tries the polynomial conflict-order fast path ({!Conflict_opacity})
    before falling back to the exact search.  Same verdicts as {!check} on
    every input; faster on histories whose conflict order is already a valid
    serialization (e.g. histories recorded from well-behaved STMs). *)

(** {1 Incremental checking}

    For a caller that checks an ever-growing history repeatedly — the
    online monitor — a persistent {!Search.ictx} amortises the
    per-transaction table construction across calls.  Same verdicts as
    {!check} on every input. *)

type inc

val incremental : unit -> inc
(** A fresh du-mode incremental context. *)

val check_inc :
  ?max_nodes:int -> ?hint:Event.tx list -> inc -> History.t -> Verdict.t * Search.stats
(** [check_inc inc h] — like {!check_stats}, but successive calls must pass
    successive extensions of the same history and pay only for the events
    appended since the previous call. *)
