type result =
  | Sat of Serialization.t
  | Unsat of string
  | Ambiguous of string

let of_verdict = function
  | Verdict.Sat s -> Sat s
  | Verdict.Unsat why -> Unsat why
  | Verdict.Unknown why -> Ambiguous why

let to_verdict = function
  | Sat s -> Verdict.Sat s
  | Unsat why -> Verdict.Unsat why
  | Ambiguous why -> Verdict.Unknown why

let is_sat = function Sat _ -> true | Unsat _ | Ambiguous _ -> false
let is_unsat = function Unsat _ -> true | Sat _ | Ambiguous _ -> false

let pp ppf = function
  | Sat s -> Fmt.pf ppf "Sat [%a]" Serialization.pp s
  | Unsat why -> Fmt.pf ppf "Unsat (%s)" why
  | Ambiguous why -> Fmt.pf ppf "Ambiguous (%s)" why

let decoration h =
  List.map
    (fun (t : Txn.t) -> (t.Txn.id, Txn.closing_writes t))
    (History.infos h)

let check_stats ?max_nodes ?hint h =
  let v, stats = Search.search { Search.lu with max_nodes; hint } h in
  (of_verdict v, stats)

let check ?max_nodes ?hint h = fst (check_stats ?max_nodes ?hint h)

let check_fast ?max_nodes h =
  (* A conflict-order du-opacity certificate is verbatim a last-use one:
     closed-writer visibility is optional, so a witness that never uses it
     still witnesses the weaker criterion. *)
  match Conflict_opacity.attempt h with
  | Some s -> Sat s
  | None -> check ?max_nodes h

type inc = Search.ictx

let incremental () = Search.ictx Search.lu

let check_inc ?max_nodes ?hint inc h =
  let v, stats = Search.search_ictx ?max_nodes ?hint inc h in
  (of_verdict v, stats)
