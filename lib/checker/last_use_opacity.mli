(** Last-use opacity (Siek–Wojciechowski) — the early-release criterion.

    Du-opacity forbids any read from a transaction that has not invoked
    [tryC]; early-release TMs violate that on purpose, publishing a
    variable as soon as its {e closing write} — the transaction's last
    write to it — has executed.  Last-use opacity is the matching safety
    criterion: a read from a live or even aborted writer is admissible
    provided the writer had already closed the variable, because nothing
    the writer does afterwards (including aborting) can change the value
    it published.

    {2 The rendering checked here}

    This module decides {e final-state} last-use opacity of a single
    history under a {e per-location} closing-write decoration computed
    from the history itself ({!decoration}, {!Txn.closing_writes}) — the
    same single-history judgment shape as {!Du_opacity.check}:

    - some serialization [S] (order + commit decisions from a completion,
      as in Definition 2/3) must be equivalent to a completion of the
      history, respect its real-time order, and be legal as follows;
    - a transaction {e committed} by [S] is Vis-legal: every external
      read sees the final write of the latest committed preceding
      transaction in [S] (initial value if none);
    - a transaction {e aborted} by [S] is LVis-legal with {e optional}
      visibility of closed writers: scanning its preceding transactions
      in [S] latest first, a committed writer of the variable is a
      mandatory stop (its value must match), while a non-committed
      writer whose closing write on the variable responded in the
      history before the read did is a candidate the witness may
      include (legal if the value matches) or skip;
    - internal reads return the transaction's own latest preceding
      write, as everywhere else in the repo.

    Optional candidate visibility is what makes the criterion lattice
    work: every du-opacity witness is verbatim a last-use witness
    (du-opaque ⇒ last-use-opaque, tested as a ≥1000-iteration containment
    property), while histories where a reader observes a closed-but-
    uncommitted write — exactly what {!Tm_stm.Early_release} produces —
    are last-use-opaque but {e not} du-opaque.  A cascading abort whose
    {e committed} reader kept the aborted value is neither.

    Like final-state opacity (and unlike du-opacity under unique writes),
    this judgment is {e not} prefix-closed: an extension can supply the
    closed writer that resurrects a dead prefix.  {!check_inc} therefore
    judges each prefix as a standalone history with its own decoration —
    its verdict at a boundary always equals {!check} of that prefix.

    Verdicts follow the same three-valued honesty contract as
    {!Conflict_graph}: [Ambiguous] means the search budget was exhausted
    and is never a safety verdict. *)

type result =
  | Sat of Serialization.t
      (** witnessed; the certificate validates under
          {!Serialization.validate} with claim [Last_use] *)
  | Unsat of string  (** no serialization exists *)
  | Ambiguous of string
      (** the node budget was exhausted — not a verdict *)

val is_sat : result -> bool
val is_unsat : result -> bool
val pp : Format.formatter -> result -> unit

val to_verdict : result -> Verdict.t
(** [Ambiguous] maps to {!Verdict.Unknown}. *)

val of_verdict : Verdict.t -> result
(** Inverse of {!to_verdict}. *)

val decoration : History.t -> (Event.tx * (Event.tvar * int) list) list
(** The closing-write decoration the judgment is relative to: for every
    transaction, the response index of its last successful write per
    variable ({!Txn.closing_writes}). *)

val check : ?max_nodes:int -> ?hint:Event.tx list -> History.t -> result

val check_stats :
  ?max_nodes:int -> ?hint:Event.tx list -> History.t -> result * Search.stats

val check_fast : ?max_nodes:int -> History.t -> result
(** Tries the polynomial conflict-order fast path ({!Conflict_opacity})
    before the exact search — sound because a du-opacity certificate is
    also a last-use one (optional candidate visibility). *)

(** {1 Incremental checking}

    Same persistent-context amortisation as {!Du_opacity.incremental}.
    Each call judges the current prefix exactly (with the prefix's own
    closing-write decoration): the verdict is {e not} sticky, matching
    the criterion's lack of prefix closure. *)

type inc

val incremental : unit -> inc

val check_inc :
  ?max_nodes:int ->
  ?hint:Event.tx list ->
  inc ->
  History.t ->
  result * Search.stats
(** Successive calls must pass successive extensions of one history and
    pay only for the events appended since the previous call. *)
