let project_prefix h s i =
  let hi = History.prefix h i in
  let txns_i = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace txns_i k ()) (History.txns hi);
  let order =
    List.filter (fun k -> Hashtbl.mem txns_i k) s.Serialization.order
  in
  let committed =
    List.filter
      (fun k ->
        let txn = History.info hi k in
        match txn.Txn.status with
        | Txn.Committed -> true
        | Txn.Commit_pending -> Serialization.commits s k
        | Txn.Aborted | Txn.Abort_pending | Txn.Live -> false)
      order
  in
  Serialization.make ~order ~committed

let positions order =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i k -> Hashtbl.replace tbl k i) order;
  fun k -> Hashtbl.find tbl k

let respects_live_sets h s =
  let order = s.Serialization.order in
  let pos = positions order in
  List.for_all
    (fun k ->
      List.for_all
        (fun m -> (not (History.ls_precedes h k m)) || pos k < pos m)
        order)
    order

let normalize_live_sets h s =
  (* Iteratively move each transaction k to immediately precede the earliest
     (in the current order) transaction l with k ≺LS l, whenever l currently
     precedes k. *)
  let move_before order k l =
    let without = List.filter (fun x -> x <> k) order in
    let rec insert = function
      | [] -> [ k ]
      | x :: rest when x = l -> k :: x :: rest
      | x :: rest -> x :: insert rest
    in
    insert without
  in
  let step order =
    let pos = positions order in
    let offending k =
      (* earliest (in the current order) l with k ≺LS l, if it precedes k *)
      let earliest =
        List.find_opt (fun l -> l <> k && History.ls_precedes h k l) order
      in
      match earliest with
      | Some l when pos l < pos k -> Some (k, l)
      | Some _ | None -> None
    in
    List.find_map offending order
  in
  let rec fix order fuel =
    if fuel = 0 then order
    else
      match step order with
      | None -> order
      | Some (k, l) -> fix (move_before order k l) (fuel - 1)
  in
  let n = List.length s.Serialization.order in
  let order = fix s.Serialization.order (n * n + 1) in
  { s with Serialization.order }
