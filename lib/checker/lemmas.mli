(** The paper's constructive lemmas, implemented as certificate
    transformers.

    These are the workhorses of the safety proofs: Lemma 1 gives
    prefix-closure (Corollary 2) and, with Lemma 4 and König's path lemma,
    limit-closure under the completeness restriction (Theorem 5).  Making
    them executable lets the test suite check their contracts on thousands of
    random histories — effectively a mechanised sanity check of the proofs —
    and lets the online monitor reuse certificates across prefixes. *)

val project_prefix : History.t -> Serialization.t -> int -> Serialization.t
(** Lemma 1: from a du-opaque serialization [S] of [H], build a serialization
    [S^i] of [H^i = prefix h i] whose transaction sequence is a subsequence
    of [S]'s.  Per the paper's construction: transactions of [H^i] keep
    their order from [S]; a transaction t-complete in [H^i] keeps its
    decision; one whose [tryC] is pending in [H^i] keeps its decision from
    [S]; every other transaction aborts.

    {b Caveat found by this reproduction}: the construction — and the
    lemma's statement — is only sound under the {e unique-writes}
    assumption.  With duplicate writes the proof's inference "the
    serialization's writer of a legal read must have begun committing
    before the read returned" fails (local-serialization legality is
    value-based: an older retained writer of the same value may justify
    the read), and [Tm_figures.Findings.lemma1_gap] is an explicit
    counterexample where no serialization of the prefix inherits [S]'s
    order.  Worse, the differential soak harness later found
    [Tm_figures.Findings.corollary2_gap]: with duplicate writes Corollary
    2's {e statement} itself fails — a du-opaque history with a
    non-du-opaque prefix.  Property tests confirm the construction (and
    the corollary) on unique-writes histories.  See EXPERIMENTS.md. *)

val normalize_live_sets : History.t -> Serialization.t -> Serialization.t
(** Lemma 4: given a serialization [S] of a history whose live sets are
    complete, produce a serialization that moreover respects the live-set
    order: whenever [T_k ≺LS T_m] ({!History.ls_precedes}), [T_k] precedes
    [T_m].  Implements the paper's iterative move: any [T_k] placed after
    the earliest [T_l] with [T_k ≺LS T_l] is moved to immediately precede
    [T_l]. *)

val respects_live_sets : History.t -> Serialization.t -> bool
(** Does the serialization order every pair related by [≺LS]? *)
