type report = {
  depths : int list;
  never_complete : Event.tx list;
  chain : (int * Event.tx list) list;
  stabilised : bool;
  all_du_opaque : bool;
}

let rec list_is_prefix eq a b =
  match a, b with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys -> eq x y && list_is_prefix eq xs ys

let analyze ?max_nodes ~family ~depths () =
  let depths = List.sort_uniq Int.compare depths in
  let members = List.map (fun d -> (d, family d)) depths in
  (* Monotonicity: each member a prefix of the next.  [History.is_prefix]
     is O(1) for members sharing storage and a single traversal otherwise —
     never the two full list conversions per pair this used to cost. *)
  let rec check_monotone = function
    | (d1, h1) :: ((d2, h2) :: _ as rest) ->
        if not (History.is_prefix h1 ~of_:h2) then
          Fmt.invalid_arg
            "Limit.analyze: member at depth %d is not a prefix of depth %d" d1
            d2;
        check_monotone rest
    | [ _ ] | [] -> ()
  in
  check_monotone members;
  let deepest = match List.rev members with (_, h) :: _ -> h | [] -> History.empty in
  (* Transactions that are complete in some member: one complete-id table
     per member, built in a single pass, instead of scanning each member's
     whole transaction list per queried id. *)
  let complete_sets =
    List.map
      (fun (_, h) ->
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun (t : Txn.t) ->
            if Txn.is_complete t then Hashtbl.replace tbl t.Txn.id ())
          (History.infos h);
        tbl)
      members
  in
  let completes_somewhere k =
    List.exists (fun tbl -> Hashtbl.mem tbl k) complete_sets
  in
  let never_complete =
    List.filter (fun k -> not (completes_somewhere k)) (History.txns deepest)
  in
  (* Serialization chain: one online monitor consumes the family member by
     member — each member's events beyond the previous one are pushed and
     the running certificate read off at the boundary.  This is the König
     path construction run through the monitor's revalidation fast path:
     searches only happen where a response actually perturbs the running
     certificate, and each is hinted by it. *)
  let all_du = ref true in
  let monitor = Monitor.create ?max_nodes () in
  let consumed = ref 0 in
  let chain =
    List.map
      (fun (d, h) ->
        let len = History.length h in
        for i = !consumed to len - 1 do
          ignore (Monitor.push monitor (History.get h i))
        done;
        consumed := len;
        match Monitor.certificate monitor with
        | Some s ->
            let cseq =
              List.filter
                (fun k -> Txn.is_complete (History.info h k))
                s.Serialization.order
            in
            (d, cseq)
        | None ->
            all_du := false;
            (d, []))
      members
  in
  let rec stable = function
    | (_, a) :: ((_, b) :: _ as rest) ->
        list_is_prefix Int.equal a b && stable rest
    | [ _ ] | [] -> true
  in
  {
    depths;
    never_complete;
    chain;
    stabilised = !all_du && stable chain;
    all_du_opaque = !all_du;
  }
