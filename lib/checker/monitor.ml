type outcome = [ `Ok | `Violation of string | `Budget of string ]

type state =
  | Running of Serialization.t  (* certificate of the current prefix *)
  | Failed of outcome

type t = {
  max_nodes : int option;
  mutable history : History.t;
  mutable state : state;
  mutable violation_index : int option;
  mutable events_seen : int;
  mutable searches_run : int;
  mutable nodes_total : int;
  seen : (Event.tx, unit) Hashtbl.t;
      (* transactions already in the running certificate's order — O(1)
         membership where scanning the order would make a long stream of
         permanently-pending transactions quadratic *)
}

let create ?max_nodes () =
  {
    max_nodes;
    history = History.empty;
    state = Running (Serialization.make ~order:[] ~committed:[]);
    violation_index = None;
    events_seen = 0;
    searches_run = 0;
    nodes_total = 0;
    seen = Hashtbl.create 64;
  }

let outcome_of_state = function
  | Running _ -> `Ok
  | Failed o -> o

let fail m o =
  m.state <- Failed o;
  if m.violation_index = None then
    m.violation_index <- Some (History.length m.history);
  o

let push m ev =
  match m.state with
  | Failed o -> o
  | Running cert -> (
      m.events_seen <- m.events_seen + 1;
      match History.extend m.history ev with
      | Error e ->
          fail m (`Violation (Fmt.str "%a" History.pp_error e))
      | Ok h' -> (
          m.history <- h';
          match ev with
          | Event.Inv (k, _) ->
              (* Extending by an invocation preserves du-opacity and its
                 certificate (see .mli); only register the new transaction.
                 A transaction that never responds again — a crashed thread,
                 a stalled tryC — simply stays registered here forever: it
                 constrains nothing until a response event triggers the next
                 search, where the engine aborts it in a completion. *)
              let order =
                if Hashtbl.mem m.seen k then cert.Serialization.order
                else begin
                  Hashtbl.replace m.seen k ();
                  cert.Serialization.order @ [ k ]
                end
              in
              m.state <- Running { cert with Serialization.order };
              `Ok
          | Event.Res (_, _) -> (
              let verdict, stats =
                Du_opacity.check_stats ?max_nodes:m.max_nodes
                  ~hint:cert.Serialization.order h'
              in
              m.searches_run <- m.searches_run + 1;
              m.nodes_total <- m.nodes_total + stats.Search.nodes;
              match verdict with
              | Verdict.Sat cert' ->
                  m.state <- Running cert';
                  `Ok
              | Verdict.Unsat why ->
                  fail m
                    (`Violation
                      (Fmt.str "prefix of length %d is not du-opaque: %s"
                         (History.length h') why))
              | Verdict.Unknown why -> fail m (`Budget why))))

let push_all m events =
  List.fold_left (fun _ ev -> push m ev) (outcome_of_state m.state) events

let history m = m.history

let certificate m =
  match m.state with Running c -> Some c | Failed _ -> None

let pending_txns m =
  List.length
    (List.filter
       (fun txn -> not (Txn.is_t_complete txn))
       (History.infos m.history))

let violation_index m = m.violation_index
let events_seen m = m.events_seen
let searches_run m = m.searches_run
let nodes_total m = m.nodes_total
