type outcome = [ `Ok | `Violation of string | `Budget of string ]

(* The running certificate is held unmaterialised: [rev_order] accumulates
   transactions by an O(1) cons (newest first) and [committed] is the
   decision set; the forward {!Serialization.t} view is (re)built only when
   something needs it — a validator run, a search hint, the [certificate]
   accessor — and cached until the order or the decisions change.

   Invariant (while no failure has been recorded): the certificate is a
   valid du-opaque serialization of [history], i.e.
   [Serialization.validate ~claim:Du_opaque history (certificate)] holds.
   Every fast-path acceptance below preserves it by construction; the
   search fallback re-establishes it with a fresh witness. *)
type t = {
  max_nodes : int option;
  inc : Du_opacity.inc;  (* persistent search context for the fallback *)
  graph : Conflict_graph.Inc.t;
      (* incremental conflict-graph backend, fed every accepted event;
         consulted before each backtracking search and trusted whenever it
         decides — see [run_search] *)
  mutable history : History.t;
  mutable failed : outcome option;  (* [None] while the prefix is du-opaque *)
  mutable rev_order : Event.tx list;
  mutable committed : Serialization.Tx_set.t;
  mutable forward : Serialization.t option;  (* cache of the forward view *)
  mutable violation_index : int option;
  mutable events_seen : int;
  mutable responses_seen : int;
  mutable fastpath_hits : int;
  mutable graph_hits : int;
  mutable searches_run : int;
  mutable nodes_total : int;
  mutable pending : int;
      (* transactions in [history] that are not yet t-complete, maintained
         incrementally: +1 on a transaction's first invocation, -1 on its
         C_k/A_k.  [snapshot] is taken per batch by the streaming service,
         so recomputing this from [History.infos] (O(T log T)) would make
         per-session accounting quadratic over a stream. *)
  seen : (Event.tx, unit) Hashtbl.t;
      (* transactions already in the running certificate's order — O(1)
         membership where scanning the order would make a long stream of
         permanently-pending transactions quadratic *)
}

let create ?max_nodes () =
  {
    max_nodes;
    inc = Du_opacity.incremental ();
    graph = Conflict_graph.Inc.create ();
    history = History.empty;
    failed = None;
    rev_order = [];
    committed = Serialization.Tx_set.empty;
    forward = None;
    violation_index = None;
    events_seen = 0;
    responses_seen = 0;
    fastpath_hits = 0;
    graph_hits = 0;
    searches_run = 0;
    nodes_total = 0;
    pending = 0;
    seen = Hashtbl.create 64;
  }

let force_forward m =
  match m.forward with
  | Some s -> s
  | None ->
      let s =
        { Serialization.order = List.rev m.rev_order; committed = m.committed }
      in
      m.forward <- Some s;
      s

let fail m o =
  m.failed <- Some o;
  if m.violation_index = None then
    m.violation_index <- Some (History.length m.history);
  o

let run_search m h' =
  (* The graph backend has already ingested every accepted event; when it
     decides the prefix, no backtracking search is needed.  A [Sat]
     certificate is only adopted after the independent validator accepts
     it, so the monitor's invariant is preserved unconditionally; an
     [Unsat] is sound by construction (forced edges only, no heuristic
     taint).  Only [Ambiguous] — duplicate written values, retracted
     reads-from bindings, heuristic contradictions — reaches the search. *)
  let graph_decision =
    match Conflict_graph.Inc.verdict m.graph with
    | Conflict_graph.Sat cert -> (
        match Serialization.validate ~claim:Serialization.Du_opaque h' cert with
        | Ok () -> Some (Verdict.Sat cert)
        | Error _ -> None (* defensive: arbitrate with the search *))
    | Conflict_graph.Unsat why -> Some (Verdict.Unsat why)
    | Conflict_graph.Ambiguous _ -> None
  in
  match graph_decision with
  | Some (Verdict.Sat cert) ->
      m.graph_hits <- m.graph_hits + 1;
      m.rev_order <- List.rev cert.Serialization.order;
      m.committed <- cert.Serialization.committed;
      m.forward <- Some cert;
      `Ok
  | Some (Verdict.Unsat why) ->
      m.graph_hits <- m.graph_hits + 1;
      fail m
        (`Violation
          (Fmt.str "prefix of length %d is not du-opaque: %s"
             (History.length h') why))
  | Some (Verdict.Unknown _) | None ->
  let hint = (force_forward m).Serialization.order in
  let verdict, stats =
    Du_opacity.check_inc ?max_nodes:m.max_nodes ~hint m.inc h'
  in
  m.searches_run <- m.searches_run + 1;
  m.nodes_total <- m.nodes_total + stats.Search.nodes;
  match verdict with
  | Verdict.Sat cert ->
      m.rev_order <- List.rev cert.Serialization.order;
      m.committed <- cert.Serialization.committed;
      m.forward <- Some cert;
      `Ok
  | Verdict.Unsat why ->
      fail m
        (`Violation
          (Fmt.str "prefix of length %d is not du-opaque: %s"
             (History.length h') why))
  | Verdict.Unknown why -> fail m (`Budget why)

(* Expected values for an external read of [var] whose response sits at
   [res_index], scanning certificate predecessors latest-first ([before_rev])
   and skipping transaction [skip] (0 = none; ids are positive).  Returns the
   final-state expectation (latest committed writer, Definition 4 legality)
   and the local-serialization expectation (latest committed writer retained
   by the deferred-update filter, Definition 3(3)); a valid certificate needs
   the read to return both. *)
let expected m h ~skip ~res_index var before_rev =
  let final_write w =
    List.assoc_opt var (Txn.final_writes (History.info h w))
  in
  let retained w =
    match Txn.tryc_inv_index (History.info h w) with
    | Some j -> j < res_index
    | None -> false
  in
  let rec go sem du = function
    | [] ->
        ( Option.value sem ~default:Event.init_value,
          Option.value du ~default:Event.init_value )
    | w :: rest -> (
        match sem, du with
        | Some s, Some d -> (s, d)
        | _ when w = skip -> go sem du rest
        | _ ->
            if Serialization.Tx_set.mem w m.committed then
              match final_write w with
              | Some v ->
                  let sem = match sem with Some _ -> sem | None -> Some v in
                  let du =
                    match du with
                    | Some _ -> du
                    | None -> if retained w then Some v else None
                  in
                  go sem du rest
              | None -> go sem du rest
            else go sem du rest)
  in
  go None None before_rev

(* Would every value-returning read of [k] be valid if [k] sat at the end of
   the certificate order?  Sufficient for adopting the order that moves [k]
   there: [k]'s moved segment is the only thing the validator would see
   differently — transactions between [k]'s old slot and the end lose only
   an entry that contributed nothing (aborted, or committing just now with
   no read downstream of the move), and the real-time clause cannot bind
   [k] forward since [k]'s latest event is the newest in the history. *)
let reads_valid_at_end m h k =
  let txn = History.info h k in
  List.for_all
    (fun (r : Txn.read) ->
      match r.Txn.kind with
      | `Internal own -> r.Txn.value = own
      | `External ->
          let sem, du =
            expected m h ~skip:k ~res_index:r.Txn.res_index r.Txn.var
              m.rev_order
          in
          r.Txn.value = sem && r.Txn.value = du)
    (Txn.reads txn)

let move_to_end m k =
  (match m.rev_order with
  | k' :: _ when k' = k -> ()  (* already last *)
  | _ -> m.rev_order <- k :: List.filter (fun k' -> k' <> k) m.rev_order);
  m.forward <- None

let rec last_read = function
  | [] -> None
  | [ (r : Txn.read) ] -> Some r
  | _ :: rest -> last_read rest

let handle_response m h' k res =
  let hit () =
    m.fastpath_hits <- m.fastpath_hits + 1;
    `Ok
  in
  match res with
  | Event.Write_ok ->
      (* A live transaction is aborted by the running certificate, so its
         write is invisible to every other transaction and unconstrained. *)
      hit ()
  | Event.Read_ok v -> (
      (* In place first: the new read is the only clause the validator would
         check afresh, so compare it against the expectations at [k]'s
         current certificate position.  Failing that, try sliding [k] (live,
         hence certificate-aborted) to the end of the order — the common
         case of a read that observed a transaction committed after [k]'s
         birth.  Only then search. *)
      let txn = History.info h' k in
      match last_read (Txn.reads txn) with
      | None -> run_search m h' (* defensive: cannot happen on Read_ok *)
      | Some r ->
          let ok_in_place =
            match r.Txn.kind with
            | `Internal own -> v = own
            | `External ->
                let rec drop_to = function
                  | [] -> []
                  | k' :: rest -> if k' = k then rest else drop_to rest
                in
                let sem, du =
                  expected m h' ~skip:0 ~res_index:r.Txn.res_index r.Txn.var
                    (drop_to m.rev_order)
                in
                v = sem && v = du
          in
          if ok_in_place then hit ()
          else if reads_valid_at_end m h' k then begin
            move_to_end m k;
            hit ()
          end
          else run_search m h')
  | Event.Committed ->
      if Serialization.Tx_set.mem k m.committed then
        (* An earlier search already decided to commit [k]; the response
           merely resolves the pending tryC the way the certificate does. *)
        hit ()
      else if reads_valid_at_end m h' k then begin
        (* Flip [k]'s decision to commit while moving it to the end: its
           writes become visible to no one (nothing reads after the newest
           event) and the deferred-update filter retains it for no earlier
           read, so only [k]'s own reads need rechecking. *)
        move_to_end m k;
        m.committed <- Serialization.Tx_set.add k m.committed;
        m.forward <- None;
        hit ()
      end
      else begin
        (* Commit [k] in place — e.g. a snapshot-style transaction whose
           reads are older than an interleaved writer — and let the full
           certificate validator arbitrate. *)
        let cand =
          {
            Serialization.order = List.rev m.rev_order;
            committed = Serialization.Tx_set.add k m.committed;
          }
        in
        match Serialization.validate ~claim:Serialization.Du_opaque h' cand with
        | Ok () ->
            m.committed <- cand.Serialization.committed;
            m.forward <- Some cand;
            hit ()
        | Error _ -> run_search m h'
      end
  | Event.Aborted ->
      if not (Serialization.Tx_set.mem k m.committed) then
        (* The certificate already aborts [k]: the pending operation was
           resolved with A_k in the completion, which the response now
           makes literal. *)
        hit ()
      else begin
        (* A commit-pending transaction the certificate chose to commit
           (someone read its value) aborted after all; flip and revalidate,
           searching — typically refuting — when the flip fails. *)
        let cand =
          {
            Serialization.order = List.rev m.rev_order;
            committed = Serialization.Tx_set.remove k m.committed;
          }
        in
        match Serialization.validate ~claim:Serialization.Du_opaque h' cand with
        | Ok () ->
            m.committed <- cand.Serialization.committed;
            m.forward <- Some cand;
            hit ()
        | Error _ -> run_search m h'
      end

let push m ev =
  match m.failed with
  | Some o -> o
  | None -> (
      m.events_seen <- m.events_seen + 1;
      match History.extend m.history ev with
      | Error e -> fail m (`Violation (Fmt.str "%a" History.pp_error e))
      | Ok h' -> (
          m.history <- h';
          Conflict_graph.Inc.push m.graph ev;
          match ev with
          | Event.Inv (k, _) ->
              (* Extending by an invocation preserves du-opacity and its
                 certificate (see .mli); only register the new transaction.
                 A transaction that never responds again — a crashed thread,
                 a stalled tryC — simply stays registered here forever: it
                 constrains nothing until a response event involves it. *)
              if not (Hashtbl.mem m.seen k) then begin
                Hashtbl.replace m.seen k ();
                m.rev_order <- k :: m.rev_order;
                m.forward <- None;
                m.pending <- m.pending + 1
              end;
              `Ok
          | Event.Res (k, res) ->
              (* [extend] validated the response against [k]'s pending
                 invocation, so C_k/A_k t-completes exactly one counted
                 transaction; later events for [k] are ill-formed and never
                 reach here. *)
              (match res with
              | Event.Committed | Event.Aborted -> m.pending <- m.pending - 1
              | Event.Read_ok _ | Event.Write_ok -> ());
              m.responses_seen <- m.responses_seen + 1;
              handle_response m h' k res))

let push_all m events =
  List.fold_left
    (fun _ ev -> push m ev)
    (match m.failed with Some o -> o | None -> `Ok)
    events

let history m = m.history

let certificate m =
  match m.failed with None -> Some (force_forward m) | Some _ -> None

let pending_txns m = m.pending

let violation_index m = m.violation_index
let events_seen m = m.events_seen
let responses_seen m = m.responses_seen
let fastpath_hits m = m.fastpath_hits
let graph_hits m = m.graph_hits
let searches_run m = m.searches_run
let nodes_total m = m.nodes_total

type snapshot = {
  events : int;
  responses : int;
  fastpath_hits : int;
  searches : int;
  nodes : int;
  pending : int;
}

let snapshot (m : t) =
  {
    events = m.events_seen;
    responses = m.responses_seen;
    fastpath_hits = m.fastpath_hits;
    searches = m.searches_run;
    nodes = m.nodes_total;
    pending = pending_txns m;
  }

let status (m : t) = match m.failed with Some o -> o | None -> `Ok

(* --- serializable checkpoints ------------------------------------------- *)

type persisted = {
  p_max_nodes : int option;
  p_events : Event.t list;
  p_status : outcome;
  p_violation_index : int option;
  p_counters : snapshot;
}

let persist (m : t) =
  {
    p_max_nodes = m.max_nodes;
    p_events = History.to_list m.history;
    p_status = status m;
    p_violation_index = m.violation_index;
    p_counters = snapshot m;
  }

(* Rebuild by replaying the accepted history through a fresh monitor: the
   original built its certificate, search context, and sticky state from
   exactly this push sequence, so the deterministic replay reproduces them
   bit for bit.  The recorded counters are then adopted wholesale — they can
   legitimately exceed the replayed ones (events rejected by [History.extend]
   are counted but never enter [history]) and must survive a round-trip so
   hit rates are checkpoint-transparent.  A recorded [`Ok] that the replay
   refutes convicts the blob (or the code) of corruption; a recorded failure
   is adopted even where the replayed history alone stays clean, because the
   failing event may have been rejected before reaching the history. *)
let of_persisted p =
  let m = create ?max_nodes:p.p_max_nodes () in
  let replayed = push_all m p.p_events in
  match p.p_status, replayed with
  | `Ok, (`Violation why | `Budget why) ->
      Error
        (Fmt.str "monitor snapshot is corrupt: replay refutes it (%s)" why)
  | `Ok, `Ok | (`Violation _ | `Budget _), _ ->
      (match p.p_status with
      | `Ok -> ()
      | (`Violation _ | `Budget _) as o ->
          m.failed <- Some o;
          m.violation_index <- p.p_violation_index);
      m.events_seen <- p.p_counters.events;
      m.responses_seen <- p.p_counters.responses;
      m.fastpath_hits <- p.p_counters.fastpath_hits;
      m.searches_run <- p.p_counters.searches;
      m.nodes_total <- p.p_counters.nodes;
      Ok m
