(** Online du-opacity verification, one event at a time.

    The monitor decides "is {e every prefix} of the stream so far
    du-opaque?" — the safety closure of du-opacity, which is what
    Corollary 9 turns into a runtime verifier: under the paper's
    unique-writes assumption du-opacity is prefix-closed (Corollary 2) and
    the closure coincides with du-opacity of the current history; with
    duplicate written values it is strictly stronger, because an extension
    can resurrect a dead prefix ({!Tm_figures.Findings.corollary2_gap}).
    The closure is the right online property either way: a client that
    observed a non-du-opaque prefix acted on an inconsistent snapshot at
    that moment, and nothing committed later can retract it.  Violations
    are therefore {e sticky} by definition — the monitor reports the first
    violating prefix length and stops searching.

    Event ingestion is cheap by default.  Invocations extend the running
    certificate in O(1): the new pending operation aborts in a completion
    and constrains nothing.  Responses go through a {e certificate
    revalidation} fast path before any search: the running certificate,
    extended with the completion choice the response implies (commit a
    pending [tryC] in place or at the end of the order, keep everything
    else), is checked against the clauses of Definition 3 that the new
    event could violate — via the independent {!Serialization} validator
    where a full recheck is needed — and only when no such extension is
    valid does the monitor fall back to the backtracking search, seeded
    with the previous order as a hint and run over a persistent
    {!Search.ictx} so the per-transaction tables are never rebuilt.  On
    well-behaved streams (e.g. recorded from TL2 or NOrec) nearly all
    responses are absorbed by revalidation; see {!fastpath_hits}.

    The monitor accepts {e incomplete} input gracefully: histories whose
    final event leaves transactions live or commit-pending (crashed
    threads, stalled [tryC]s, truncated traces) are first-class — pending
    transactions are tracked for as long as the stream lives, and with a
    [max_nodes] budget every push terminates with an outcome rather than
    hanging on an adversarial pending-set explosion. *)

type t

val create : ?max_nodes:int -> unit -> t
(** [max_nodes] bounds each per-response search; exceeding it yields a
    [`Budget] outcome rather than a false verdict. *)

type outcome =
  [ `Ok  (** the prefix so far is du-opaque *)
  | `Violation of string  (** first failure; sticky from now on *)
  | `Budget of string  (** a search exceeded [max_nodes]; sticky *) ]

val push : t -> Event.t -> outcome
val push_all : t -> Event.t list -> outcome

val history : t -> History.t
val certificate : t -> Serialization.t option
(** Certificate of the last verified prefix, when still [`Ok]. *)

val violation_index : t -> int option
(** Length of the first violating prefix, if a violation occurred. *)

val pending_txns : t -> int
(** Transactions in the accepted stream that are not yet t-complete, as an
    O(1) gauge maintained by {!push} (the streaming service snapshots every
    batch, so a recount per call would be quadratic over a stream) —
    including permanently-pending ones (crashed threads, stalled [tryC]s),
    which the monitor tracks indefinitely without corrupting its state:
    they sit in the certificate order and are resolved afresh, per search,
    through the completion choices. *)

(** {1 Statistics (for the monitoring benchmark)} *)

val events_seen : t -> int

val responses_seen : t -> int
(** Response events accepted or rejected so far; every one was handled
    either by the revalidation fast path or by a search. *)

val fastpath_hits : t -> int
(** Responses absorbed by certificate revalidation — no backtracking
    search ran.  [fastpath_hits / responses_seen] is the fast-path hit
    rate reported by [tm monitor] and [tm chaos]. *)

val searches_run : t -> int
val nodes_total : t -> int

val graph_hits : t -> int
(** Fallback situations the incremental conflict-graph backend decided —
    a validated [Sat] certificate adopted, or a sound [Unsat] — so no
    backtracking search ran.  Counted inside {!searches_run}'s trigger
    sites but not in {!searches_run} itself: a response is accounted to
    exactly one of revalidation ({!fastpath_hits}), the graph, or the
    search. *)

type snapshot = {
  events : int;  (** {!events_seen} *)
  responses : int;  (** {!responses_seen} *)
  fastpath_hits : int;
  searches : int;
  nodes : int;
  pending : int;  (** {!pending_txns} at snapshot time *)
}
(** One coherent view of the counters above, cheap enough to take per batch
    of pushed events.  The streaming service diffs successive snapshots to
    account monitor work to its per-domain shard counters. *)

val snapshot : t -> snapshot

val status : t -> outcome
(** The outcome the next {!push} would return before ingesting anything:
    [`Ok] while every accepted prefix is du-opaque, otherwise the sticky
    [`Violation]/[`Budget] already reported. *)

(** {1 Serializable checkpoints}

    A {!persisted} value captures everything needed to rebuild a monitor
    that is {e behaviourally identical} to the original: the accepted
    history, the sticky outcome, and the statistics counters.  Restoring
    replays the history through a fresh monitor — event ingestion is
    deterministic, so the certificate, the incremental search context, and
    every future verdict come out exactly as if the stream had never been
    interrupted — and then adopts the recorded counters, so fast-path hit
    rates are checkpoint-transparent too.  The streaming service's durable
    sessions serialize these capsules to disk (see [Tm_service.Journal])
    and recover crashed sessions by snapshot-load + journal-replay. *)

type persisted = {
  p_max_nodes : int option;
  p_events : Event.t list;  (** the accepted history, in stream order *)
  p_status : outcome;
  p_violation_index : int option;
  p_counters : snapshot;
}

val persist : t -> persisted

val of_persisted : persisted -> (t, string) result
(** Replays [p_events] through a fresh monitor and adopts the recorded
    sticky outcome and counters.  [Error _] when the capsule is corrupt:
    it records [`Ok] but the replay finds a violation.  (The converse — a
    recorded failure over a clean-replaying history — is legitimate: the
    event that tripped the monitor may have been rejected as ill-formed
    before ever entering the history.) *)
