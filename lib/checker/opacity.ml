(* The indices in [response_indices] are ascending prefix lengths, one per
   response, so [n] is among them iff the last event is a response — an
   O(1) test, instead of scanning the list and copying it with a
   non-tail-recursive append. *)
let prefix_lengths h =
  let n = History.length h in
  let at_responses = History.response_indices h in
  if n = 0 || Event.is_res (History.get h (n - 1)) then at_responses
  else List.rev (n :: List.rev at_responses)

let check ?max_nodes h =
  (* Check short prefixes first so [Unsat] reports the shortest violating
     prefix, matching how the paper's Figure 3 is analysed. *)
  let rec go last = function
    | [] -> last
    | i :: rest -> (
        match Final_state.check ?max_nodes (History.prefix h i) with
        | Verdict.Sat _ as v -> go v rest
        | Verdict.Unsat why ->
            Verdict.Unsat
              (Fmt.str "prefix of length %d is not final-state opaque: %s" i
                 why)
        | Verdict.Unknown _ as v -> v)
  in
  go (Verdict.Sat (Serialization.make ~order:[] ~committed:[])) (prefix_lengths h)

let first_bad_prefix ?max_nodes h =
  let rec go = function
    | [] -> None
    | i :: rest -> (
        match Final_state.check ?max_nodes (History.prefix h i) with
        | Verdict.Sat _ -> go rest
        | Verdict.Unsat _ -> Some i
        | Verdict.Unknown why ->
            failwith ("Opacity.first_bad_prefix: " ^ why))
  in
  go (prefix_lengths h)
