(** Opacity (Definition 5, Guerraoui & Kapalka): every finite prefix is
    final-state opaque.

    Only prefixes ending at a response event need checking: extending a
    history by a lone invocation adds at most a pending operation, which
    every completion aborts without constraining legality or real-time
    order (this is property-tested).  By the paper's Theorem 10,
    [Du_opacity.check h = Sat _] implies [check h = Sat _], but not
    conversely (Figure 4). *)

val prefix_lengths : History.t -> int list
(** Ascending prefix lengths at which a verdict can change: one per
    response, plus the full length when the history ends mid-operation.
    O(n), allocation-shared with {!History.response_indices} when the
    final event is a response — it sits on the per-history hot path and
    is timing-regression-guarded at ≥2000 responses. *)

val check : ?max_nodes:int -> History.t -> Verdict.t
(** [Sat] carries the final-state serialization of the full history; [Unsat]
    names the length of the shortest prefix that is not final-state
    opaque. *)

val first_bad_prefix : ?max_nodes:int -> History.t -> int option
(** Length of the shortest prefix that is not final-state opaque, if any.
    @raise Failure if the budget runs out on some prefix. *)
