type result =
  | Sat of Serialization.t
  | Unsat of string
  | Not_unique of string

let duplicate_write h =
  let seen : (Event.tvar * Event.value, Event.tx) Hashtbl.t =
    Hashtbl.create 64
  in
  let dup = ref None in
  List.iter
    (fun (txn : Txn.t) ->
      List.iter
        (fun (x, v) ->
          match Hashtbl.find_opt seen (x, v) with
          | Some owner when owner <> txn.Txn.id ->
              if !dup = None then dup := Some (owner, txn.Txn.id, x, v)
          | Some _ -> ()
          | None -> Hashtbl.replace seen (x, v) txn.Txn.id)
        (Txn.writes txn))
    (History.infos h);
  !dup

let unique_writes h = duplicate_write h = None

(* Transitive-closure digraph with cycle refusal. *)
module Closure = struct
  type t = { n : int; reach : bool array array }

  let create n = { n; reach = Array.make_matrix n n false }

  let copy c = { n = c.n; reach = Array.map Array.copy c.reach }

  let reaches c a b = c.reach.(a).(b)

  (* Add a -> b; [Error ()] if that closes a cycle. *)
  let add c a b =
    if a = b || c.reach.(b).(a) then Error ()
    else begin
      if not c.reach.(a).(b) then
        for u = 0 to c.n - 1 do
          if u = a || c.reach.(u).(a) then
            for v = 0 to c.n - 1 do
              if v = b || c.reach.(b).(v) then c.reach.(u).(v) <- true
            done
        done;
      Ok ()
    end
end

type constraints = {
  (* (a, b, c, d): a->b or c->d must hold. *)
  mutable disjunctions : (int * int * int * int) list;
}

exception Contradiction of string
exception Ambiguous of string

let check h =
  match duplicate_write h with
  | Some (t1, t2, x, v) ->
      Not_unique
        (Fmt.str "T%d and T%d both write %d to %a" t1 t2 v Event.pp_tvar x)
  | None -> (
      let infos = Array.of_list (History.infos h) in
      let n = Array.length infos in
      let index = Hashtbl.create (2 * n + 1) in
      Array.iteri (fun i t -> Hashtbl.replace index t.Txn.id i) infos;
      (* Fixed reads-from: for each external read, its unique writer. *)
      let final_writer : (Event.tvar * Event.value, int) Hashtbl.t =
        Hashtbl.create 64
      in
      Array.iteri
        (fun i t ->
          List.iter
            (fun (x, v) -> Hashtbl.replace final_writer (x, v) i)
            (Txn.final_writes t))
        infos;
      let must_commit = Array.make n false in
      Array.iteri
        (fun i t -> if t.Txn.status = Txn.Committed then must_commit.(i) <- true)
        infos;
      let external_reads i =
        List.filter
          (fun (r : Txn.read) -> r.Txn.kind = `External)
          (Txn.reads infos.(i))
      in
      try
        (* Resolve each read to its writer (or the initial value), forcing
           commit decisions and checking the deferred-update precondition:
           the writer must have invoked tryC before the read returned. *)
        let reads_from = ref [] in
        for i = 0 to n - 1 do
          List.iter
            (fun (r : Txn.read) ->
              if r.Txn.value = Event.init_value then begin
                (match Hashtbl.find_opt final_writer (r.Txn.var, r.Txn.value) with
                | Some w when w <> i ->
                    raise
                      (Ambiguous
                         (Fmt.str
                            "T%d writes the initial value %d to %a: ambiguous \
                             reads-from"
                            infos.(w).Txn.id r.Txn.value Event.pp_tvar r.Txn.var))
                | Some _ | None -> ());
                reads_from := (i, r, None) :: !reads_from
              end
              else
                match Hashtbl.find_opt final_writer (r.Txn.var, r.Txn.value) with
                | None ->
                    raise
                      (Contradiction
                         (Fmt.str
                            "T%d reads %d from %a but no transaction's final \
                             write has that value"
                            infos.(i).Txn.id r.Txn.value Event.pp_tvar r.Txn.var))
                | Some w when w = i ->
                    (* Cannot happen: an external read precedes every own
                       write in program order, and values are unique. *)
                    raise
                      (Contradiction
                         (Fmt.str "T%d externally reads its own write"
                            infos.(i).Txn.id))
                | Some w ->
                    (* lint: allow quadratic-hot-path — commit_choices ≤ 2 *)
                    if not (List.mem true (Txn.commit_choices infos.(w))) then
                      raise
                        (Contradiction
                           (Fmt.str "T%d reads from T%d, which cannot commit"
                              infos.(i).Txn.id infos.(w).Txn.id));
                    (match Txn.tryc_inv_index infos.(w) with
                    | Some j when j < r.Txn.res_index -> ()
                    | Some _ | None ->
                        raise
                          (Contradiction
                             (Fmt.str
                                "T%d reads from T%d before it invoked tryC \
                                 (deferred update violated)"
                                infos.(i).Txn.id infos.(w).Txn.id)));
                    must_commit.(w) <- true;
                    reads_from := (i, r, Some w) :: !reads_from)
            (external_reads i)
        done;
        (* Internal reads: value must equal the own latest preceding write. *)
        Array.iter
          (fun t ->
            List.iter
              (fun (r : Txn.read) ->
                match r.Txn.kind with
                | `Internal own when own <> r.Txn.value ->
                    raise
                      (Contradiction
                         (Fmt.str "T%d: internal read of %a returned %d, own \
                                   write was %d"
                            t.Txn.id Event.pp_tvar r.Txn.var r.Txn.value own))
                | `Internal _ | `External -> ())
              (Txn.reads t))
          infos;
        (* Aborting every pending transaction that nobody reads from is
           sound; afterwards all decisions are fixed. *)
        let committed i = must_commit.(i) in
        let writers_of_var : (Event.tvar, int list) Hashtbl.t =
          Hashtbl.create 16
        in
        Array.iteri
          (fun i t ->
            if committed i then
              List.iter
                (fun (x, _) ->
                  Hashtbl.replace writers_of_var x
                    (i
                    :: Option.value ~default:[]
                         (Hashtbl.find_opt writers_of_var x)))
                (Txn.final_writes t))
          infos;
        let closure = Closure.create n in
        let add_or_fail why a b =
          match Closure.add closure a b with
          | Ok () -> ()
          | Error () ->
              raise
                (Contradiction
                   (Fmt.str "ordering T%d before T%d (%s) closes a cycle"
                      infos.(a).Txn.id infos.(b).Txn.id why))
        in
        (* Base edges: real time and reads-from. *)
        for a = 0 to n - 1 do
          for b = 0 to n - 1 do
            if a <> b && History.rt_precedes h infos.(a).Txn.id infos.(b).Txn.id
            then add_or_fail "real-time order" a b
          done
        done;
        let cons = { disjunctions = [] } in
        List.iter
          (fun (i, (r : Txn.read), w) ->
            (match w with
            | Some w -> add_or_fail "reads-from" w i
            | None -> ());
            let others =
              Option.value ~default:[] (Hashtbl.find_opt writers_of_var r.Txn.var)
              |> List.filter (fun w'' -> Some w'' <> w && w'' <> i)
            in
            List.iter
              (fun w'' ->
                match w with
                | None ->
                    (* Initial-value read: every committed writer of the
                       variable must follow the reader. *)
                    add_or_fail "read of initial value" i w''
                | Some w ->
                    cons.disjunctions <- (w'', w, i, w'') :: cons.disjunctions)
              others)
          !reads_from;
        (* Propagate disjunctions to fixpoint, then branch on leftovers. *)
        let rec solve closure disjunctions =
          let progress = ref false in
          let undecided =
            List.filter
              (fun (a, b, c, d) ->
                if Closure.reaches closure a b || Closure.reaches closure c d
                then false
                else if Closure.reaches closure b a then begin
                  (* first disjunct impossible: force the second *)
                  (match Closure.add closure c d with
                  | Ok () -> ()
                  | Error () ->
                      raise
                        (Contradiction
                           "both disjuncts of an ordering constraint close \
                            cycles"));
                  progress := true;
                  false
                end
                else if Closure.reaches closure d c then begin
                  (match Closure.add closure a b with
                  | Ok () -> ()
                  | Error () ->
                      raise
                        (Contradiction
                           "both disjuncts of an ordering constraint close \
                            cycles"));
                  progress := true;
                  false
                end
                else true)
              disjunctions
          in
          if !progress then solve closure undecided
          else
            match undecided with
            | [] -> closure
            | (a, b, c, d) :: rest -> (
                (* Branch: try a->b, then c->d. *)
                let attempt edge_a edge_b =
                  let c' = Closure.copy closure in
                  match Closure.add c' edge_a edge_b with
                  | Error () -> None
                  | Ok () -> (
                      match solve c' rest with
                      | c'' -> Some c''
                      | exception Contradiction _ -> None)
                in
                match attempt a b with
                | Some c'' -> c''
                | None -> (
                    match attempt c d with
                    | Some c'' -> c''
                    | None ->
                        raise
                          (Contradiction
                             "no resolution of ordering constraints")))
        in
        let closure = solve closure cons.disjunctions in
        (* Linearise: repeatedly output a minimal unplaced node. *)
        let placed = Array.make n false in
        let order = ref [] in
        for _ = 1 to n do
          let candidate = ref (-1) in
          for i = n - 1 downto 0 do
            if
              (not placed.(i))
              && Array.for_all (fun j -> j)
                   (Array.init n (fun j ->
                        placed.(j)
                        || not (Closure.reaches closure j i)))
            then candidate := i
          done;
          if !candidate < 0 then raise (Contradiction "cycle at linearisation");
          placed.(!candidate) <- true;
          order := !candidate :: !order
        done;
        let order = List.rev_map (fun i -> infos.(i).Txn.id) !order in
        let committed_ids =
          List.filter (fun k -> must_commit.(Hashtbl.find index k)) order
        in
        let s = Serialization.make ~order ~committed:committed_ids in
        (* Definitional safety net: the certificate must validate. *)
        (match Serialization.validate ~claim:Serialization.Du_opaque h s with
        | Ok () -> Sat s
        | Error why ->
            Not_unique ("internal: polygraph certificate rejected: " ^ why))
      with
      | Contradiction why -> Unsat why
      | Ambiguous why -> Not_unique why)

let check_or_fallback h =
  match check h with
  | Sat s -> Verdict.Sat s
  | Unsat why -> Verdict.Unsat why
  | Not_unique _ -> Du_opacity.check h
