(* The definition quantifies over transactions that commit on X — in the
   completion, not merely in H: a commit-pending writer that the chosen
   completion commits is constrained exactly like a committed one.  The
   edges are therefore conditional on the target committing, which the
   search engine supports natively ([commit_edges]). *)
let edges h =
  let infos = History.infos h in
  List.concat_map
    (fun (m : Txn.t) ->
      match m.Txn.status with
      | Txn.Aborted | Txn.Abort_pending | Txn.Live -> []
      | Txn.Committed | Txn.Commit_pending -> (
          match Txn.tryc_inv_index m with
          | None -> []
          | Some m_tryc ->
              (* Hoisted to a set: the membership test runs once per read
                 of every other transaction. *)
              let wset = Hashtbl.create 8 in
              List.iter (fun x -> Hashtbl.replace wset x ()) (Txn.write_set m);
              List.filter_map
                (fun (k : Txn.t) ->
                  if k.Txn.id = m.Txn.id then None
                  else if
                    List.exists
                      (fun (r : Txn.read) ->
                        Hashtbl.mem wset r.Txn.var && r.Txn.res_index < m_tryc)
                      (Txn.reads k)
                  then Some (k.Txn.id, m.Txn.id)
                  else None)
                infos))
    infos

let check ?max_nodes h =
  Search.serialize
    { Search.default with commit_edges = edges h; max_nodes }
    h
