type mode = Plain | Du | Last_use

type options = {
  mode : mode;
  extra_edges : (Event.tx * Event.tx) list;
  commit_edges : (Event.tx * Event.tx) list;
  respect_rt : bool;
  max_nodes : int option;
  hint : Event.tx list option;
}

let default =
  { mode = Plain; extra_edges = []; commit_edges = []; respect_rt = true;
    max_nodes = None; hint = None }

let du = { default with mode = Du }
let lu = { default with mode = Last_use }

type stats = { nodes : int; memo_hits : int; prefiltered : bool }

exception Exhausted

(* Per-transaction data, indexed densely by 0..n-1, kept across searches.

   The context is a persistent accumulator: [sync] consumes only the events
   appended since the previous call, growing the dense arrays amortised and
   keeping the transaction/variable/key interning tables alive, so an online
   monitor that searches occasionally over an ever-growing history pays for
   each event once instead of rebuilding everything per search.  Real-time
   edges are derived at each transaction's birth: the transactions t-complete
   at that moment are exactly its RT predecessors, so a single cons-list
   snapshot replaces the batch O(n^2) double loop. *)
type ictx = {
  mode : mode;
  respect_rt : bool;
  extra_edges : (Event.tx * Event.tx) list;
  commit_edges : (Event.tx * Event.tx) list;
  mutable n : int;  (* transactions known *)
  mutable synced : int;  (* events consumed so far *)
  mutable ids : Event.tx array;  (* dense index -> transaction id *)
  mutable reads : Txn.read list array;  (* external reads, dense var ids *)
  mutable final_writes : (int * Event.value) list array;  (* dense var ids *)
  mutable choices : bool list array;
  mutable tryc_inv : int option array;
  mutable closing : (int * int) list array;
      (* dense var -> res index of the closing (last) write, per txn *)
  mutable rt_preds : int list array;  (* must-precede (real time), dense *)
  mutable demands : int list array;  (* keys of external reads *)
  index : (Event.tx, int) Hashtbl.t;
  var_index : (Event.tvar, int) Hashtbl.t;
  mutable n_vars : int;
  keys : (int * Event.value, int) Hashtbl.t;  (* (dense var, value) -> key *)
  mutable n_keys : int;
  mutable t_complete : int list;  (* t-complete so far, most recent first *)
}

let ictx (opts : options) =
  {
    mode = opts.mode;
    respect_rt = opts.respect_rt;
    extra_edges = opts.extra_edges;
    commit_edges = opts.commit_edges;
    n = 0;
    synced = 0;
    ids = [||];
    reads = [||];
    final_writes = [||];
    choices = [||];
    tryc_inv = [||];
    closing = [||];
    rt_preds = [||];
    demands = [||];
    index = Hashtbl.create 64;
    var_index = Hashtbl.create 16;
    n_vars = 0;
    keys = Hashtbl.create 32;
    n_keys = 0;
    t_complete = [];
  }

let grow c =
  let cap = Array.length c.ids in
  if c.n = cap then begin
    let ncap = max 8 (2 * cap) in
    let g a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 cap;
      b
    in
    c.ids <- g c.ids 0;
    c.reads <- g c.reads [];
    c.final_writes <- g c.final_writes [];
    c.choices <- g c.choices [];
    c.tryc_inv <- g c.tryc_inv None;
    c.closing <- g c.closing [];
    c.rt_preds <- g c.rt_preds [];
    c.demands <- g c.demands []
  end

let dense_var c x =
  match Hashtbl.find_opt c.var_index x with
  | Some d -> d
  | None ->
      let d = c.n_vars in
      c.n_vars <- d + 1;
      Hashtbl.replace c.var_index x d;
      d

let key_of c xv =
  match Hashtbl.find_opt c.keys xv with
  | Some k -> k
  | None ->
      let k = c.n_keys in
      c.n_keys <- k + 1;
      Hashtbl.replace c.keys xv k;
      k

(* Recompute transaction [d]'s row from its summary in [h].  Values some
   external read demands are interned as keys here; a writer's supplies are
   resolved per search (never cached), so a key interned after the writer
   last changed is still seen. *)
let refresh c h d =
  let txn = History.info h c.ids.(d) in
  let reads =
    Txn.reads txn
    |> List.filter_map (fun (r : Txn.read) ->
           match r.Txn.kind with
           | `Internal _ -> None (* checked by the prefilter *)
           | `External -> Some { r with Txn.var = dense_var c r.Txn.var })
  in
  c.reads.(d) <- reads;
  c.demands.(d) <-
    List.map (fun (r : Txn.read) -> key_of c (r.Txn.var, r.Txn.value)) reads;
  c.final_writes.(d) <-
    List.map (fun (x, v) -> (dense_var c x, v)) (Txn.final_writes txn);
  c.choices.(d) <- Txn.commit_choices txn;
  c.tryc_inv.(d) <- Txn.tryc_inv_index txn;
  c.closing.(d) <-
    List.map (fun (x, p) -> (dense_var c x, p)) (Txn.closing_writes txn)

(* Consume the events of [h] beyond the last synced position.  [h] must be
   an extension of the history previously synced into [c] (the monitor only
   ever extends; batch searches use a fresh context). *)
let sync c h =
  let len = History.length h in
  if len < c.synced then
    invalid_arg "Search.sync: history is shorter than the synced prefix";
  if len > c.synced then begin
    let dirty = ref [] in
    let mark d =
      match !dirty with
      | d' :: _ when d' = d -> ()
      | _ -> dirty := d :: !dirty
    in
    for i = c.synced to len - 1 do
      match History.get h i with
      | Event.Inv (k, _) -> (
          match Hashtbl.find_opt c.index k with
          | Some d -> mark d
          | None ->
              grow c;
              let d = c.n in
              c.n <- d + 1;
              Hashtbl.replace c.index k d;
              c.ids.(d) <- k;
              c.rt_preds.(d) <- (if c.respect_rt then c.t_complete else []);
              mark d)
      | Event.Res (k, res) -> (
          match Hashtbl.find_opt c.index k with
          | None ->
              invalid_arg "Search.sync: response without known transaction"
          | Some d ->
              mark d;
              (match res with
              | Event.Committed | Event.Aborted ->
                  c.t_complete <- d :: c.t_complete
              | Event.Read_ok _ | Event.Write_ok -> ()))
    done;
    c.synced <- len;
    List.sort_uniq Int.compare !dirty |> List.iter (refresh c h)
  end

(* Necessary conditions, checked in linear time.  A violation here refutes
   every serialization, so most negative instances never reach the search. *)
let prefilter c h =
  let n = c.n in
  let internal_ok =
    let rec check_infos = function
      | [] -> Ok ()
      | (t : Txn.t) :: rest ->
          let bad =
            List.find_opt
              (fun (r : Txn.read) ->
                match r.Txn.kind with
                | `Internal own -> r.Txn.value <> own
                | `External -> false)
              (Txn.reads t)
          in
          (match bad with
          | Some r ->
              Error
                (Fmt.str
                   "T%d: internal read of %a returned %d instead of its own \
                    latest write"
                   t.Txn.id Event.pp_tvar r.Txn.var r.Txn.value)
          | None -> check_infos rest)
    in
    check_infos (History.infos h)
  in
  match internal_ok with
  | Error _ as e -> e
  | Ok () ->
      (* Every external read of a non-initial value needs a possible writer:
         some other transaction whose final write to the variable has that
         value and that is allowed to commit — in Du mode, one that moreover
         invoked tryC before the read's response.  In Last_use mode a
         writer that can never commit still serves a reader that may abort,
         provided its closing write on the variable responded before the
         read did (early release). *)
      let writer_possible i (r : Txn.read) =
        let closed_before w =
          match List.assoc_opt r.Txn.var c.closing.(w) with
          | Some p -> p < r.Txn.res_index
          | None -> false
        in
        let ok w =
          w <> i
          && List.exists
               (fun (x, v) -> x = r.Txn.var && v = r.Txn.value)
               c.final_writes.(w)
          &&
          match c.mode with
          | Plain -> List.mem true c.choices.(w)
          | Du -> (
              List.mem true c.choices.(w)
              &&
              match c.tryc_inv.(w) with
              | Some j -> j < r.Txn.res_index
              | None -> false)
          | Last_use ->
              List.mem true c.choices.(w)
              || (List.mem false c.choices.(i) && closed_before w)
        in
        let rec exists w = w < n && (ok w || exists (w + 1)) in
        exists 0
      in
      let rec check i =
        if i >= n then Ok ()
        else
          match
            List.find_opt
              (fun (r : Txn.read) ->
                r.Txn.value <> Event.init_value && not (writer_possible i r))
              c.reads.(i)
          with
          | Some r ->
              Error
                (Fmt.str
                   "T%d reads value %d but no transaction can commit that \
                    value%s"
                   c.ids.(i) r.Txn.value
                   (match c.mode with
                   | Du -> " having begun committing before the read returned"
                   | Last_use ->
                       " (or have closed the variable before the read \
                        returned, the reader being abortable)"
                   | Plain -> ""))
          | None -> check (i + 1)
      in
      check 0

(* The key must determine everything the remaining subtree's feasibility
   depends on: which transactions are placed AND with which decision (the
   availability prune reads decisions), plus the visible write state. *)
let memo_key mode placed decision stacks n =
  let buf = Buffer.create 64 in
  for i = 0 to n - 1 do
    Buffer.add_char buf
      (if not placed.(i) then '0' else if decision.(i) then 'c' else 'a')
  done;
  Array.iter
    (fun stack ->
      Buffer.add_char buf '|';
      match mode with
      | Plain -> (
          match stack with
          | [] -> ()
          | (_, v) :: _ -> Buffer.add_string buf (string_of_int v))
      | Du | Last_use ->
          List.iter
            (fun (w, _) ->
              Buffer.add_string buf (string_of_int w);
              Buffer.add_char buf ',')
            stack)
    stacks;
  Buffer.contents buf

(* Symmetry reduction.  Transactions [i] and [j] are interchangeable when
   transposing them is an automorphism of the whole constraint system:
   same commit choices and final writes, same precedence environment, the
   same sidedness w.r.t. every read's deferred-update filter, and pairwise
   matching reads.  At any search node where both are unplaced, expanding
   only the smaller index is then complete — any serialization starting
   with the other maps to one starting with it by the transposition.
   This collapses e.g. the paper's Figure 2 family, whose zero-readers are
   all interchangeable, from exponential to linear. *)
let equivalence_matrix c n preds succs =
  let all_reads =
    List.concat (List.init n (fun i -> c.reads.(i)))
  in
  (* A writer's "sidedness" w.r.t. a read: did its tryC (and, in Last_use
     mode, its closing write on the read's variable) respond before the
     read did?  Interchangeable transactions must agree on it for every
     read in the history, or transposing them changes which writers a
     local serialization retains. *)
  let sided k (r : Txn.read) =
    let tc =
      match c.tryc_inv.(k) with
      | Some t -> t < r.Txn.res_index
      | None -> false
    in
    let closed =
      match c.mode with
      | Plain | Du -> false
      | Last_use -> (
          match List.assoc_opt r.Txn.var c.closing.(k) with
          | Some p -> p < r.Txn.res_index
          | None -> false)
    in
    (tc, closed)
  in
  let equivalent i j =
    c.choices.(i) = c.choices.(j)
    && c.final_writes.(i) = c.final_writes.(j)
    && List.length c.reads.(i) = List.length c.reads.(j)
    && (let swap x = if x = i then j else if x = j then i else x in
        let set_eq a b =
          List.sort_uniq Int.compare (List.map swap a)
          = List.sort_uniq Int.compare b
        in
        set_eq preds.(i) preds.(j)
        && set_eq succs.(i) succs.(j)
        (* identical sidedness as writers, for every read in the history *)
        && List.for_all (fun r -> sided i r = sided j r) all_reads
        (* pairwise matching reads, modulo the transposition *)
        && List.for_all2
             (fun (ri : Txn.read) (rj : Txn.read) ->
               ri.Txn.var = rj.Txn.var
               && ri.Txn.value = rj.Txn.value
               && (let rec upto k =
                     k >= n
                     || (sided k ri = sided (swap k) rj && upto (k + 1))
                   in
                   upto 0))
             c.reads.(i) c.reads.(j))
  in
  let matrix = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if equivalent i j then begin
        matrix.(i).(j) <- true;
        matrix.(j).(i) <- true
      end
    done
  done;
  matrix

(* One search over the transactions currently in [c].  Everything sized by
   the current [c.n] is local to the call: the dense rows persist, the
   search state does not. *)
let run c ~max_nodes ~hint ~extra_edges ~commit_edges h =
  let n = c.n in
  if n = 0 then
    ( Verdict.Sat (Serialization.make ~order:[] ~committed:[]),
      { nodes = 0; memo_hits = 0; prefiltered = true } )
  else
    match prefilter c h with
    | Error why ->
        (Verdict.Unsat why, { nodes = 0; memo_hits = 0; prefiltered = true })
    | Ok () ->
        let placed = Array.make n false in
        let preds_uniq =
          let base = Array.init n (fun b -> c.rt_preds.(b)) in
          List.iter
            (fun (ka, kb) ->
              match Hashtbl.find_opt c.index ka, Hashtbl.find_opt c.index kb with
              | Some a, Some b -> if a <> b then base.(b) <- a :: base.(b)
              | _, _ ->
                  invalid_arg "Search: extra edge names unknown transaction")
            extra_edges;
          Array.map (List.sort_uniq Int.compare) base
        in
        let commit_preds = Array.make n [] in
        List.iter
          (fun (ka, kb) ->
            match Hashtbl.find_opt c.index ka, Hashtbl.find_opt c.index kb with
            | Some a, Some b ->
                if a <> b then commit_preds.(b) <- a :: commit_preds.(b)
            | _, _ ->
                invalid_arg "Search: commit edge names unknown transaction")
          commit_edges;
        let pending = Array.make n 0 in
        Array.iteri
          (fun b preds -> pending.(b) <- List.length preds)
          preds_uniq;
        let succs = Array.make n [] in
        Array.iteri
          (fun b preds ->
            List.iter (fun a -> succs.(a) <- b :: succs.(a)) preds)
          preds_uniq;
        let stacks : (int * Event.value) list array =
          Array.make c.n_vars []
        in
        (* Writer-availability bookkeeping for the look-ahead prune:
           [avail.(k)] counts transactions that could still commit the
           (var, value) behind key [k]; [waiting.(k)] counts unplaced
           transactions demanding it.  Aborting the last potential supplier
           of a still-demanded value dooms the whole subtree.  Supplies are
           resolved here, per search, against the up-to-date key table. *)
        let supplies =
          Array.init n (fun i ->
              if List.mem true c.choices.(i) then
                List.filter_map
                  (fun (x, v) -> Hashtbl.find_opt c.keys (x, v))
                  c.final_writes.(i)
              else [])
        in
        let zero_key =
          Array.init c.n_vars (fun x ->
              Hashtbl.find_opt c.keys (x, Event.init_value))
        in
        let avail = Array.make (max 1 c.n_keys) 0 in
        let waiting = Array.make (max 1 c.n_keys) 0 in
        Array.iter (List.iter (fun k -> avail.(k) <- avail.(k) + 1)) supplies;
        for i = 0 to n - 1 do
          List.iter (fun k -> waiting.(k) <- waiting.(k) + 1) c.demands.(i)
        done;
        (* The initial state supplies every initial-value key until a
           committed non-initial write to the variable is visible. *)
        Array.iter
          (function Some k -> avail.(k) <- avail.(k) + 1 | None -> ())
          zero_key;
        let nonzero_commits = Array.make (max 1 c.n_vars) 0 in
        (* Placement priority: hint order first, then order of first event
           in the history (dense indices already follow first appearance). *)
        let priority =
          match hint with
          | None -> Array.init n (fun i -> i)
          | Some hint ->
              let pos = Hashtbl.create 16 in
              List.iteri (fun p k -> Hashtbl.replace pos k p) hint;
              let rank i =
                match Hashtbl.find_opt pos c.ids.(i) with
                | Some p -> p
                | None -> max_int
              in
              let arr = Array.init n (fun i -> i) in
              Array.sort
                (fun a b ->
                  match Int.compare (rank a) (rank b) with
                  | 0 -> Int.compare a b
                  | c -> c)
                arr;
              arr
        in
        let order = Array.make n (-1) in
        let decision = Array.make n false in
        let nodes = ref 0 in
        let memo_hits = ref 0 in
        let memo : (string, unit) Hashtbl.t = Hashtbl.create 256 in
        let budget = match max_nodes with Some b -> b | None -> max_int in
        (* The symmetry matrix costs O(n^2 * reads); a hinted search that
           succeeds straight down never consults it, so build it lazily the
           first time the search actually has to backtrack.  Pruning only
           from that point on is sound: the canonical-candidate rule is a
           per-node completeness argument, independent across nodes. *)
        let equiv = ref None in
        let branched = ref false in
        (* Candidate [i] is redundant while an unplaced interchangeable
           transaction with a smaller index exists. *)
        let canonical i =
          (not !branched)
          ||
          let matrix =
            match !equiv with
            | Some m -> m
            | None ->
                let m = equivalence_matrix c n preds_uniq succs in
                equiv := Some m;
                m
          in
          let rec go j =
            j >= i || ((placed.(j) || not matrix.(j).(i)) && go (j + 1))
          in
          go 0
        in
        let retained w res_index =
          match c.tryc_inv.(w) with
          | Some j -> j < res_index
          | None -> false
        in
        let reads_ok i =
          List.for_all
            (fun (r : Txn.read) ->
              let stack = stacks.(r.Txn.var) in
              let global_ok =
                match stack with
                | [] -> r.Txn.value = Event.init_value
                | (_, v) :: _ -> r.Txn.value = v
              in
              global_ok
              &&
              match c.mode with
              | Plain | Last_use -> true
              | Du -> (
                  (* Legality in the local serialization: the first retained
                     committed writer (scanning from the latest) must have
                     written the value; none retained means initial value. *)
                  let rec scan = function
                    | [] -> r.Txn.value = Event.init_value
                    | (w, v) :: rest ->
                        if retained w r.Txn.res_index then r.Txn.value = v
                        else scan rest
                  in
                  scan stack))
            c.reads.(i)
        in
        (* Last-use legality is decision-dependent, so it is checked per
           commit choice inside the expansion loop.  In Last_use mode the
           stacks carry {e every} placed writer ([decision] tells the
           committed ones apart):

           - a reader that commits must be Vis-legal — its reads see the
             latest {e committed} write preceding it in the serialization
             (aborted entries are skipped);
           - a reader that does not commit is judged against LVis with
             {e optional} visibility of closed writers: scanning latest
             first, a committed writer is a mandatory stop (its value must
             match), while a non-committed writer whose closing write on
             the variable responded before the read is a candidate the
             witness may but need not include (legal if the value matches,
             skipped otherwise). *)
        let released w (r : Txn.read) =
          match List.assoc_opt r.Txn.var c.closing.(w) with
          | Some p -> p < r.Txn.res_index
          | None -> false
        in
        let reads_ok_lu i commit =
          List.for_all
            (fun (r : Txn.read) ->
              let rec scan = function
                | [] -> r.Txn.value = Event.init_value
                | (w, v) :: rest ->
                    if decision.(w) then r.Txn.value = v
                    else if
                      (not commit) && released w r && r.Txn.value = v
                    then true
                    else scan rest
              in
              scan stacks.(r.Txn.var))
            c.reads.(i)
        in
        let exception Found in
        let rec dfs depth =
          incr nodes;
          if !nodes > budget then raise Exhausted;
          if depth = n then raise Found;
          let key = memo_key c.mode placed decision stacks n in
          if Hashtbl.mem memo key then incr memo_hits
          else begin
            let commit_allowed i =
              List.for_all (fun a -> placed.(a)) commit_preds.(i)
            in
            Array.iter
              (fun i ->
                if
                  (not placed.(i))
                  && pending.(i) = 0
                  && canonical i
                  && (c.mode = Last_use || reads_ok i)
                then
                  List.iter
                    (fun commit ->
                      if
                        ((not commit) || commit_allowed i)
                        && (c.mode <> Last_use || reads_ok_lu i commit)
                      then begin
                        placed.(i) <- true;
                        order.(depth) <- i;
                        decision.(i) <- commit;
                        List.iter (fun b -> pending.(b) <- pending.(b) - 1)
                          succs.(i);
                        List.iter
                          (fun k -> waiting.(k) <- waiting.(k) - 1)
                          c.demands.(i);
                        if not commit then
                          List.iter
                            (fun k -> avail.(k) <- avail.(k) - 1)
                            supplies.(i);
                        let pushed =
                          (* Last_use stacks carry aborted writers too (for
                             the optional-candidate scan); only committed
                             non-initial writes feed the prune accounting. *)
                          if commit || c.mode = Last_use then begin
                            List.iter
                              (fun (x, v) ->
                                stacks.(x) <- (i, v) :: stacks.(x);
                                if commit && v <> Event.init_value then begin
                                  nonzero_commits.(x) <- nonzero_commits.(x) + 1;
                                  if nonzero_commits.(x) = 1 then
                                    match zero_key.(x) with
                                    | Some k -> avail.(k) <- avail.(k) - 1
                                    | None -> ()
                                end)
                              c.final_writes.(i);
                            c.final_writes.(i)
                          end
                          else []
                        in
                        (* Look-ahead prune: did this placement exhaust the
                           last supply of a value some unplaced transaction
                           still needs to read? *)
                        let key_ok k = avail.(k) > 0 || waiting.(k) = 0 in
                        let feasible =
                          (* Unsound in Last_use mode: a writer that can
                             never commit may still supply abortable
                             readers after its closing write. *)
                          if c.mode = Last_use then true
                          else if commit then
                            List.for_all
                              (fun (x, v) ->
                                v = Event.init_value
                                ||
                                match zero_key.(x) with
                                | Some k -> key_ok k
                                | None -> true)
                              pushed
                          else List.for_all key_ok supplies.(i)
                        in
                        if feasible then dfs (depth + 1);
                        branched := true;
                        List.iter
                          (fun (x, v) ->
                            (match stacks.(x) with
                            | _ :: rest -> stacks.(x) <- rest
                            | [] -> assert false);
                            if commit && v <> Event.init_value then begin
                              nonzero_commits.(x) <- nonzero_commits.(x) - 1;
                              if nonzero_commits.(x) = 0 then
                                match zero_key.(x) with
                                | Some k -> avail.(k) <- avail.(k) + 1
                                | None -> ()
                            end)
                          pushed;
                        if not commit then
                          List.iter
                            (fun k -> avail.(k) <- avail.(k) + 1)
                            supplies.(i);
                        List.iter
                          (fun k -> waiting.(k) <- waiting.(k) + 1)
                          c.demands.(i);
                        List.iter (fun b -> pending.(b) <- pending.(b) + 1)
                          succs.(i);
                        placed.(i) <- false
                      end)
                    c.choices.(i))
              priority;
            Hashtbl.replace memo key ()
          end
        in
        let outcome =
          match dfs 0 with
          | () ->
              Verdict.Unsat
                (Fmt.str "no serialization exists (%d nodes explored)" !nodes)
          | exception Found ->
              let order_ids =
                Array.to_list (Array.map (fun i -> c.ids.(i)) order)
              in
              let committed =
                Array.to_list order
                |> List.filter (fun i -> decision.(i))
                |> List.map (fun i -> c.ids.(i))
              in
              Verdict.Sat (Serialization.make ~order:order_ids ~committed)
          | exception Exhausted ->
              Verdict.Unknown
                (Fmt.str "node budget exhausted after %d nodes" !nodes)
        in
        (outcome, { nodes = !nodes; memo_hits = !memo_hits; prefiltered = false })

let search_ictx ?max_nodes ?hint c h =
  sync c h;
  run c ~max_nodes ~hint ~extra_edges:c.extra_edges
    ~commit_edges:c.commit_edges h

let search opts h =
  search_ictx ?max_nodes:opts.max_nodes ?hint:opts.hint (ictx opts) h

let serialize opts h = fst (search opts h)
