(** Serialization search: the engine behind every exact checker.

    Given a history [H], the engine looks for a transaction order and a
    commit decision per transaction (together: a {!Serialization.t}) such
    that the denoted t-complete t-sequential history is legal, equivalent to
    a completion of [H], and respects the real-time order — i.e. a
    final-state serialization (Definition 4).  Two refinements are
    selectable:

    - {!mode} [Du] additionally enforces Definition 3(3): every
      value-returning read must be legal in its {e local serialization},
      computed incrementally from the per-variable stacks of committed
      writes and the positions of [tryC] invocations in [H].
    - {!mode} [Last_use] relaxes legality for non-committed readers per
      Siek–Wojciechowski's last-use opacity (our per-location rendering):
      a reader the serialization commits must still see the latest
      committed preceding write, but a reader it aborts may additionally
      read from a preceding {e non-committed} writer whose {e closing
      write} on the variable (its last write to it in [H], see
      {!Txn.closing_writes}) responded before the read did — the value an
      early-release TM publishes.  Closed-writer visibility is optional
      per read (the witness may skip a candidate), which makes every
      final-state/du witness a last-use witness and containment a theorem.
    - [extra_edges] adds must-precede constraints between transactions,
      which is how the TMS2 and read-commit-order checkers are obtained.

    Deciding existence is NP-hard in general (it subsumes view
    serializability), so the engine is a backtracking search over placement
    orders with: a linear-time necessary-condition prefilter that dispatches
    most negative instances, placement candidates ordered by first event in
    [H] (recorded histories are nearly serial, so this hint usually hits on
    the first descent), failure memoisation keyed on the placed set and the
    visible write state, a symmetry reduction built lazily on first
    backtrack, and an optional node budget that turns the verdict into
    [Unknown] instead of running unbounded. *)

type mode = Plain | Du | Last_use

type options = {
  mode : mode;
  extra_edges : (Event.tx * Event.tx) list;
      (** [(a, b)]: [T_a] must precede [T_b] in the serialization *)
  commit_edges : (Event.tx * Event.tx) list;
      (** [(a, b)]: [T_a] must precede [T_b] {e if the serialization commits
          [T_b]} — needed by constraints that quantify over transactions
          committed in the completion rather than in the history (the
          read-commit-order definition) *)
  respect_rt : bool;  (** enforce clause (2); [false] for serializability *)
  max_nodes : int option;  (** search-node budget; [None] = exact, unbounded *)
  hint : Event.tx list option;
      (** try this transaction order first (online monitoring reuses the
          previous prefix's certificate) *)
}

val default : options
(** [Plain] mode, no extra edges, real time respected, no budget, no hint. *)

val du : options
(** [default] with [mode = Du]. *)

val lu : options
(** [default] with [mode = Last_use]. *)

type stats = {
  nodes : int;  (** search nodes expanded *)
  memo_hits : int;
  prefiltered : bool;  (** the prefilter decided without search *)
}

val search : options -> History.t -> Verdict.t * stats

val serialize : options -> History.t -> Verdict.t
(** [search] without the statistics. *)

(** {1 Incremental searching}

    An online monitor extends one history forever and searches it
    occasionally.  Rebuilding the per-transaction tables for every search
    would make each one Ω(events); an {!ictx} instead accumulates them
    across calls — dense arrays grown amortised, transaction/variable/key
    interning kept alive, real-time edges derived once at each transaction's
    birth — so a search over an extension pays only for the events appended
    since the previous call (plus the search proper). *)

type ictx
(** A persistent search context.  Mutable; not thread-safe. *)

val ictx : options -> ictx
(** Fresh context capturing [mode], [respect_rt] and the edge constraints
    from [options] ([max_nodes] and [hint] are per-search, see
    {!search_ictx}). *)

val search_ictx :
  ?max_nodes:int -> ?hint:Event.tx list -> ictx -> History.t -> Verdict.t * stats
(** [search_ictx c h] syncs [c] with [h] and searches.  Successive calls on
    the same context must pass successive {e extensions} of the same
    history (as produced by {!History.extend}); the context consumes only
    the new events.  [search opts h] is [search_ictx (ictx opts) h]. *)
