let committed_projection h =
  (* [keep] runs once per event: membership must be O(1), not a scan of
     the committed list (quadratic in transaction count on big recorded
     histories). *)
  let committed = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace committed k ()) (History.committed h);
  History.project h ~keep:(Hashtbl.mem committed)

let check ?max_nodes h =
  Search.serialize
    { Search.default with respect_rt = false; max_nodes }
    (committed_projection h)

let check_strict ?max_nodes h =
  Search.serialize
    { Search.default with max_nodes }
    (committed_projection h)
