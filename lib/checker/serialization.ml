module Tx_set = Set.Make (Int)

type t = { order : Event.tx list; committed : Tx_set.t }

let make ~order ~committed =
  { order; committed = Tx_set.of_list committed }

let commits s k = Tx_set.mem k s.committed

let pp ppf s =
  let pp_tx ppf k =
    Fmt.pf ppf "T%d%s" k (if Tx_set.mem k s.committed then "" else "(A)")
  in
  Fmt.(list ~sep:(any ", ") pp_tx) ppf s.order

type claim = Final_state | Du_opaque | Last_use

(* The t-sequential history denoted by the certificate (see .mli). *)
let to_history h s =
  let completed_events k =
    let txn = History.info h k in
    let events =
      Array.to_list txn.Txn.ops
      |> List.concat_map (fun (op : Op.t) ->
             let inv = Event.Inv (k, op.Op.inv) in
             match op.Op.res with
             | Some res -> [ inv; Event.Res (k, res) ]
             | None ->
                 (* Definition 2: a pending tryC is resolved by the decision;
                    any other pending operation returns A_k. *)
                 let res =
                   match op.Op.inv with
                   | Event.Try_commit when commits s k -> Event.Committed
                   | Event.Try_commit | Event.Try_abort | Event.Read _
                   | Event.Write _ ->
                       Event.Aborted
                 in
                 [ inv; Event.Res (k, res) ])
    in
    if Txn.is_complete txn && not (Txn.is_t_complete txn) then
      events @ [ Event.Inv (k, Event.Try_commit); Event.Res (k, Event.Aborted) ]
    else events
  in
  History.of_events_exn (List.concat_map completed_events s.order)

let check_permutation h s =
  let expected = List.sort Int.compare (History.txns h) in
  let got = List.sort Int.compare s.order in
  if List.equal Int.equal expected got then Ok ()
  else Error "order is not a permutation of the transactions of the history"

let check_decisions h s =
  List.fold_left
    (fun acc k ->
      match acc with
      | Error _ -> acc
      | Ok () ->
          let txn = History.info h k in
          let decision = commits s k in
          if List.mem decision (Txn.commit_choices txn) then Ok ()
          else
            Error
              (Fmt.str
                 "T%d is %a in the history but %s in the serialization — no \
                  completion allows this"
                 k Txn.pp_status txn.Txn.status
                 (if decision then "committed" else "aborted")))
    (Ok ()) s.order

let check_real_time h s =
  (* Clause (2) of Definition 3: T_k ≺RT T_m implies T_k <S T_m. *)
  let rec go = function
    | [] -> Ok ()
    | k :: rest ->
        if List.exists (fun m -> History.rt_precedes h m k) rest then
          let m = List.find (fun m -> History.rt_precedes h m k) rest in
          Error
            (Fmt.str "real-time order violated: T%d precedes T%d in the \
                      history but follows it in the serialization" m k)
        else go rest
  in
  go s.order

(* Clause (3) of Definition 3, recomputed directly from the definition of the
   local serialization S^{k,X}_H.  For each value-returning read, replay the
   serialization prefix before T_k keeping only transactions T_m whose
   tryC_m invocation appears in H before the read's response. *)
let check_local_serializations h s =
  (* Per-transaction data is derived once: [Txn.final_writes] and
     [tryc_inv_index] allocate on every call, and this check walks them per
     (read, predecessor) pair. *)
  let tryc_cache = Hashtbl.create 16 in
  let writes_cache = Hashtbl.create 16 in
  let tryc_inv k =
    match Hashtbl.find_opt tryc_cache k with
    | Some v -> v
    | None ->
        let v = Txn.tryc_inv_index (History.info h k) in
        Hashtbl.replace tryc_cache k v;
        v
  in
  let final_writes k =
    match Hashtbl.find_opt writes_cache k with
    | Some v -> v
    | None ->
        let v = Txn.final_writes (History.info h k) in
        Hashtbl.replace writes_cache k v;
        v
  in
  (* The serialization prefix before the transaction under scrutiny is
     accumulated in reverse — an O(1) cons per step instead of an O(n)
     append — and scanned latest-first, so the first retained committed
     writer found is the one the local serialization exposes and the scan
     can stop there. *)
  let check_read k before_rev (read : Txn.read) =
    match read.Txn.kind with
    | `Internal own ->
        if read.Txn.value = own then Ok ()
        else
          Error
            (Fmt.str "T%d: internal read of %a returned %d, own write was %d"
               k Event.pp_tvar read.Txn.var read.Txn.value own)
    | `External ->
        let retained m =
          match tryc_inv m with
          | Some i -> i < read.Txn.res_index
          | None -> false
        in
        let rec latest = function
          | [] -> None
          | m :: rest ->
              if commits s m && retained m then
                match List.assoc_opt read.Txn.var (final_writes m) with
                | Some v -> Some v
                | None -> latest rest
              else latest rest
        in
        let expected =
          Option.value (latest before_rev) ~default:Event.init_value
        in
        if read.Txn.value = expected then Ok ()
        else
          Error
            (Fmt.str
               "T%d: read of %a returned %d but its local serialization \
                (deferred-update filter) yields %d"
               k Event.pp_tvar read.Txn.var read.Txn.value expected)
  in
  let rec go before_rev = function
    | [] -> Ok ()
    | k :: rest ->
        let txn = History.info h k in
        let result =
          List.fold_left
            (fun acc read ->
              match acc with
              | Error _ -> acc
              | Ok () -> check_read k before_rev read)
            (Ok ()) (Txn.reads txn)
        in
        (match result with
        | Error _ -> result
        | Ok () -> go (k :: before_rev) rest)
  in
  go [] s.order

(* Last-use legality (the [Last_use] claim), replayed over the
   serialization order directly.  [Semantics.legal] is deliberately NOT
   reused here: it demands every transaction — aborted ones included —
   read the latest committed state, which is exactly the clause last-use
   opacity relaxes.  Instead:

   - a reader the serialization {e commits} is Vis-legal: each external
     read sees the final write of the latest {e committed} preceding
     writer of the variable (initial value if none);
   - a reader it {e aborts} is judged against LVis with optional
     visibility of closed writers: scanning preceding writers latest
     first, a committed writer is a mandatory stop (value must match),
     while a non-committed writer whose closing write on the variable
     (its last write to it in [h]) responded before the read is a
     candidate the witness may include (legal if the value matches) or
     skip.  Internal reads must return the transaction's own latest
     preceding write in both cases. *)
let check_last_use h s =
  let closing_cache = Hashtbl.create 16 in
  let writes_cache = Hashtbl.create 16 in
  let closing m =
    match Hashtbl.find_opt closing_cache m with
    | Some v -> v
    | None ->
        let v = Txn.closing_writes (History.info h m) in
        Hashtbl.replace closing_cache m v;
        v
  in
  let final_writes m =
    match Hashtbl.find_opt writes_cache m with
    | Some v -> v
    | None ->
        let v = Txn.final_writes (History.info h m) in
        Hashtbl.replace writes_cache m v;
        v
  in
  let check_read k k_commits before_rev (read : Txn.read) =
    match read.Txn.kind with
    | `Internal own ->
        if read.Txn.value = own then Ok ()
        else
          Error
            (Fmt.str "T%d: internal read of %a returned %d, own write was %d"
               k Event.pp_tvar read.Txn.var read.Txn.value own)
    | `External ->
        let closed_before m =
          match List.assoc_opt read.Txn.var (closing m) with
          | Some p -> p < read.Txn.res_index
          | None -> false
        in
        let rec scan = function
          | [] -> read.Txn.value = Event.init_value
          | m :: rest -> (
              match List.assoc_opt read.Txn.var (final_writes m) with
              | None -> scan rest
              | Some v ->
                  if commits s m then read.Txn.value = v
                  else if
                    (not k_commits) && closed_before m && read.Txn.value = v
                  then true
                  else scan rest)
        in
        if scan before_rev then Ok ()
        else
          Error
            (Fmt.str
               "T%d: read of %a returned %d, not justified by the latest \
                committed preceding write nor by a closed preceding writer"
               k Event.pp_tvar read.Txn.var read.Txn.value)
  in
  let rec go before_rev = function
    | [] -> Ok ()
    | k :: rest ->
        let txn = History.info h k in
        let result =
          List.fold_left
            (fun acc read ->
              match acc with
              | Error _ -> acc
              | Ok () -> check_read k (commits s k) before_rev read)
            (Ok ()) (Txn.reads txn)
        in
        (match result with
        | Error _ -> result
        | Ok () -> go (k :: before_rev) rest)
  in
  go [] s.order

let validate ?(claim = Du_opaque) ?(respect_rt = true) h s =
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let* () = check_permutation h s in
  let* () = check_decisions h s in
  let* () = if respect_rt then check_real_time h s else Ok () in
  match claim with
  | Last_use -> check_last_use h s
  | Final_state | Du_opaque ->
      let* () = Semantics.legal (to_history h s) in
      (match claim with
      | Final_state | Last_use -> Ok ()
      | Du_opaque -> check_local_serializations h s)
