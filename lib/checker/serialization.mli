(** Serialization certificates and their independent validation.

    A serialization of a history [H] (Definition 3) is represented by the
    order in which the transactions of [H] appear in the equivalent legal
    t-complete t-sequential history [S], together with the commit decision
    taken for each transaction by the chosen completion of [H]
    (Definition 2).  The full history [S] is recoverable: [S] runs the
    transactions in [order], each contributing its operations from [H]
    completed according to its decision.

    {!validate} checks a certificate against every clause of the paper's
    definitions {e from scratch} — it shares no code with the search engine
    that produced the certificate, so agreement between the two is a
    meaningful cross-check (and is itself tested). *)

module Tx_set : Set.S with type elt = Event.tx

type t = { order : Event.tx list; committed : Tx_set.t }

val make : order:Event.tx list -> committed:Event.tx list -> t
val commits : t -> Event.tx -> bool
val pp : Format.formatter -> t -> unit

(** Which definition the certificate claims to witness. *)
type claim =
  | Final_state
      (** final-state opacity (Definition 4): equivalence to a completion,
          real-time order, legality *)
  | Du_opaque
      (** du-opacity (Definition 3): [Final_state] plus legality of every
          value-returning read in its local serialization w.r.t. [H] and
          [S] *)
  | Last_use
      (** final-state last-use opacity (Siek–Wojciechowski, per-location
          rendering): equivalence, decisions and real-time order as in
          [Final_state], but legality is replayed directly over [order] —
          committed readers see the latest committed preceding write,
          while non-committed readers may {e additionally} read from a
          preceding non-committed writer whose {e closing write} on the
          variable ({!Txn.closing_writes}) responded in [H] before the
          read did.  Closed-writer visibility is optional per read, so
          every valid [Final_state] or [Du_opaque] certificate also
          validates under this claim. *)

val validate :
  ?claim:claim ->
  ?respect_rt:bool ->
  History.t ->
  t ->
  (unit, string) result
(** [validate ~claim h s] — defaults: [claim = Du_opaque],
    [respect_rt = true].  [respect_rt:false] drops clause (2) (used for
    plain serializability).  On failure the error pinpoints the violated
    clause. *)

val to_history : History.t -> t -> History.t
(** The t-complete t-sequential history [S] denoted by the certificate:
    transactions laid out sequentially in [order], each with its events from
    [H] completed according to its decision (pending operations answered
    [A_k]; missing or pending [tryC_k] resolved per the decision;
    transactions that never invoked [tryC_k] get [tryC_k · A_k] appended, as
    in Definition 2). *)
