(* Sharded online monitor: the event stream is partitioned by location
   across per-shard incremental conflict graphs, and du-opacity of the
   whole stream is decided by a two-phase certify/stitch protocol.  See
   the .mli for the contract; the notes here are about mechanics and the
   soundness argument.

   The coordinator is serial and cheap: it extends the accepted history
   (well-formedness fails at exactly the index {!Monitor} would fail at),
   tracks which shards each transaction has touched (a bitmask, which
   caps the shard count at 62), appends location events to the owning
   shard's buffer and boundary events to every touched shard's buffer,
   and maintains its own global real-time frontier over an arbiter
   {!Topo}.  All per-shard work — draining buffers into
   {!Conflict_graph.Inc.push} and computing per-shard verdicts — happens
   under the caller-supplied executor, one closure per shard over
   disjoint state, so a domain pool can run the shards in parallel.

   Certify stitches the shards back together:

   1. every shard must answer [Sat] — an [Unsat] or [Ambiguous]
      escalates.  A *tainted* [Sat] (one that leaned on a heuristic
      anti-dependency choice) is accepted: it is still a
      replay-validated certificate for the current projection, the
      taint only clouds how a future shard-local contradiction would be
      classified, and any such contradiction surfaces as a non-[Sat]
      verdict — which escalates to the monitor's authoritative answer;
   2. the shards' freshly forced reads-from and repair edges are drained
      (by arena cursor) into the arbiter graph, which already carries
      the exact global real-time order, and each shard's serialization
      decisions — per-variable committed-writer chains and read
      anti-dependencies, see {!Conflict_graph.Inc.order_hints} — are
      planted as hint edges so the stitched order honours the intervals
      the shard validated; a cycle either way escalates.  Shard-local
      real-time edges are *not* drained: they are computed over the
      projection, where a transaction can appear to start later than it
      did, so they may be strictly stronger than the real order;
   3. a candidate global order is a greedy Kahn traversal of the arbiter
      graph keyed by completion order (live transactions last, by first
      appearance), committing exactly the transactions that committed in
      the history plus the attributed writers the reads-from edges force;
   4. the candidate is validated against Definition 3, incrementally
      from the longest common prefix with the previously validated
      order: the frozen state past the divergence point is rewound
      (live transactions sit at the tail of the stitched order, so each
      completion migrates one forward and churns only the tail), and
      just the suffix plus the frozen transactions' new reads are
      checked, against per-variable binary-searchable stacks of
      committed-writer positions — suffix writers take positions above
      every surviving frozen reader, so they cannot retroactively
      offend a validated read.  Only a commit decision that moved on a
      transaction still frozen below the rewind point — state the
      incremental path would wrongly reuse — forces the independent
      {!Serialization.validate} to run in full.  A rejected candidate
      escalates.

   Escalation replays the accepted history through a fresh {!Monitor}
   and hands the stream over to it for good, so after escalation every
   outcome — verdict, violation index, budget behaviour — is the
   monitor's own, by construction.  The sharded paths therefore never
   declare a violation themselves; they only ever declare [`Ok], and
   only on the strength of a validated certificate.

   Why certifying the *current* prefix suffices for the safety closure
   (every prefix du-opaque): non-prefix-closedness of du-opacity needs
   two transactions writing the same value to the same variable
   (Corollary 2; {!Tm_figures.Findings.corollary2_gap}), and any such
   duplicate poisons the owning shard — variables do not cross shards —
   into [Ambiguous], which escalates.  On the unique-writes fragment
   that remains, du-opacity is prefix-closed, so a validated current
   prefix certifies every prefix since the last certify. *)

module Pvec = Topo.Pvec

type outcome = Monitor.outcome

exception Stitch_fail of string

type shard = {
  graph : Conflict_graph.Inc.t;
  mutable buf : Event.t list;  (* routed, newest first; drained by certify *)
  mutable cursor : int;  (* arena position up to which edges were drained *)
  mutable verdict : Conflict_graph.result;  (* slot written by the executor *)
  hinted : (Event.tx * Event.tx, unit) Hashtbl.t;
      (* order hints already planted in the arbiter, so each certify only
         adds the new ones *)
}

(* Coordinator-side per-transaction state.  [ti_pend_var] remembers the
   variable of the pending read/write invocation so its response can be
   routed to the same shard (responses do not carry the variable). *)
type txinfo = {
  ti_node : int;  (* arbiter node id *)
  mutable ti_mask : int;  (* bitmask of shards this transaction touched *)
  mutable ti_pend_var : int;
  mutable ti_committed : bool;
  mutable ti_must_commit : bool;  (* reads-from source: stitch must commit *)
}

type mode = Sharded | Escalated of Monitor.t

type stitch_stats = {
  shards : int;
  certifies : int;
  incremental : int;  (* certifies validated on the frontier fast path *)
  full : int;  (* certifies that ran the full independent validation *)
  escalated : string option;  (* why the stream was handed to a monitor *)
}

type t = {
  nshards : int;
  run : (unit -> unit) array -> unit;
  max_nodes : int option;
  shards : shard array;
  txs : (Event.tx, txinfo) Hashtbl.t;
  (* commit-order arbiter: exact real-time edges plus drained shard edges *)
  topo : Topo.t;
  node_tx : Event.tx Pvec.t;
  first_ev : int Pvec.t;
  completion : int Pvec.t;  (* index of C_k/A_k; -1 while live *)
  frontier : int Pvec.t;
  mutable f_lo : int;
  mutable history : History.t;
  mutable mode : mode;
  (* counters *)
  mutable events_seen : int;
  mutable responses_seen : int;
  mutable pending : int;
  mutable n_certifies : int;
  mutable n_incremental : int;
  mutable n_full : int;
  mutable why : string option;
  (* last validated stitch, for the frontier-incremental certify *)
  mutable vorder : Event.tx array;
  vpos : (Event.tx, int) Hashtbl.t;  (* position in [vorder] *)
  vcommitted : (Event.tx, unit) Hashtbl.t;  (* committed by the stitch *)
  var_stacks : (Event.tvar, (int * Event.tx * Event.value) Pvec.t) Hashtbl.t;
      (* var -> committed-writer (position, writer, final value), ascending *)
  mutable vevents : int;  (* history length at the last validation *)
  decided : (Event.tx, unit) Hashtbl.t;
      (* frozen txns whose commit decision moved since the last seal; only
         one still frozen *below* the stitch's rewind point forces a full
         re-validation *)
  changed : (Event.tx, unit) Hashtbl.t;  (* frozen txns with new events *)
  wseen : (Event.tvar * Event.value, Event.tx) Hashtbl.t;
      (* first writer of each (variable, value) pair — the coordinator's
         Corollary 2 guard *)
  tryc_inv : (Event.tx, int) Hashtbl.t;  (* index of tryC_k's invocation *)
}

let default_run jobs = Array.iter (fun job -> job ()) jobs

let create ?max_nodes ?(nshards = 1) ?(run = default_run) () =
  if nshards < 1 || nshards > 62 then
    invalid_arg "Sharded_monitor.create: shard count must be within [1, 62]";
  {
    nshards;
    run;
    max_nodes;
    shards =
      Array.init nshards (fun _ ->
          {
            graph = Conflict_graph.Inc.create ();
            buf = [];
            cursor = 0;
            verdict = Conflict_graph.Ambiguous "not yet certified";
            hinted = Hashtbl.create 64;
          });
    txs = Hashtbl.create 64;
    topo = Topo.create ();
    node_tx = Pvec.create 0;
    first_ev = Pvec.create 0;
    completion = Pvec.create (-1);
    frontier = Pvec.create 0;
    f_lo = 0;
    history = History.empty;
    mode = Sharded;
    events_seen = 0;
    responses_seen = 0;
    pending = 0;
    n_certifies = 0;
    n_incremental = 0;
    n_full = 0;
    why = None;
    vorder = [||];
    vpos = Hashtbl.create 64;
    vcommitted = Hashtbl.create 64;
    var_stacks = Hashtbl.create 16;
    vevents = 0;
    decided = Hashtbl.create 16;
    changed = Hashtbl.create 16;
    wseen = Hashtbl.create 64;
    tryc_inv = Hashtbl.create 64;
  }

let nshards t = t.nshards

let status t =
  match t.mode with Sharded -> `Ok | Escalated m -> Monitor.status m

let history t =
  match t.mode with Sharded -> t.history | Escalated m -> Monitor.history m

let violation_index t =
  match t.mode with Sharded -> None | Escalated m -> Monitor.violation_index m

let events_seen t =
  match t.mode with Sharded -> t.events_seen | Escalated m -> Monitor.events_seen m

let responses_seen t =
  match t.mode with
  | Sharded -> t.responses_seen
  | Escalated m -> Monitor.responses_seen m

let pending_txns t =
  match t.mode with Sharded -> t.pending | Escalated m -> Monitor.pending_txns m

let escalated t = match t.mode with Sharded -> false | Escalated _ -> true

let stitch_stats t =
  {
    shards = t.nshards;
    certifies = t.n_certifies;
    incremental = t.n_incremental;
    full = t.n_full;
    escalated = t.why;
  }

let snapshot t : Monitor.snapshot =
  match t.mode with
  | Escalated m -> Monitor.snapshot m
  | Sharded ->
      (* The monitor's counter vocabulary, reinterpreted (see .mli):
         every response is absorbed without a search while sharded. *)
      {
        Monitor.events = t.events_seen;
        responses = t.responses_seen;
        fastpath_hits = t.responses_seen;
        searches = t.n_certifies;
        nodes = t.n_full;
        pending = t.pending;
      }

let escalate t why =
  match t.mode with
  | Escalated _ -> ()
  | Sharded ->
      t.why <- Some why;
      let m = Monitor.create ?max_nodes:t.max_nodes () in
      ignore (Monitor.push_all m (History.to_list t.history));
      t.mode <- Escalated m

(* --- coordinator: routing and the arbiter's real-time order ------------ *)

let shard_of t x = x mod t.nshards

let route t si ev =
  let s = t.shards.(si) in
  s.buf <- ev :: s.buf

let broadcast t mask ev =
  let si = ref 0 and m = ref mask in
  while !m <> 0 do
    if !m land 1 <> 0 then route t !si ev;
    incr si;
    m := !m lsr 1
  done

let intern t k i =
  match Hashtbl.find_opt t.txs k with
  | Some ti -> ti
  | None ->
      let n = Topo.add_node t.topo in
      Pvec.push t.node_tx k;
      Pvec.push t.first_ev i;
      Pvec.push t.completion (-1);
      (* exact real-time edges, from the global frontier of maximal
         t-complete transactions (everything below is implied) *)
      for fi = t.f_lo to t.frontier.Pvec.n - 1 do
        match Topo.add_edge ~kind:0 t.topo (Pvec.get t.frontier fi) n with
        | `Ok -> ()
        | `Cycle -> assert false (* the new node has no outgoing edges *)
      done;
      t.pending <- t.pending + 1;
      let ti =
        {
          ti_node = n;
          ti_mask = 0;
          ti_pend_var = -1;
          ti_committed = false;
          ti_must_commit = false;
        }
      in
      Hashtbl.replace t.txs k ti;
      ti

let complete t ti i =
  Pvec.set t.completion ti.ti_node i;
  let first_n = Pvec.get t.first_ev ti.ti_node in
  (* drop frontier members covered by the newcomer: they completed before
     it even started, so their future edges are implied transitively *)
  while
    t.f_lo < t.frontier.Pvec.n
    && Pvec.get t.completion (Pvec.get t.frontier t.f_lo) < first_n
  do
    t.f_lo <- t.f_lo + 1
  done;
  Pvec.push t.frontier ti.ti_node;
  t.pending <- t.pending - 1

let ingest t ev =
  let i = History.length t.history - 1 in
  let frozen k = Hashtbl.mem t.vpos k in
  match ev with
  | Event.Inv (k, Event.Read x) ->
      let ti = intern t k i in
      ti.ti_pend_var <- x;
      let si = shard_of t x in
      ti.ti_mask <- ti.ti_mask lor (1 lsl si);
      route t si ev
  | Event.Inv (k, Event.Write (x, v)) -> (
      (* the Corollary 2 guard, pulled up to the coordinator: a duplicate
         written value between two transactions that could both commit
         would poison the owning shard at its next certify anyway, but
         escalating at the write keeps the replayed prefix — and so the
         doomed sharded work — minimal.  A duplicate from an
         already-aborted writer (the STM-retry idiom) is harmless and
         just transfers the value's ownership, as in
         {!Conflict_graph.Inc}. *)
      let dup =
        match Hashtbl.find_opt t.wseen (x, v) with
        | Some k' when k' <> k ->
            let ti' = Hashtbl.find t.txs k' in
            if ti'.ti_committed || Pvec.get t.completion ti'.ti_node < 0 then
              Some k'
            else None
        | _ -> None
      in
      match dup with
      | Some k' ->
          escalate t
            (Fmt.str
               "T%d and T%d both write %d to %a, which forfeits prefix \
                closure (Corollary 2)"
               k' k v Event.pp_tvar x)
      | None ->
          Hashtbl.replace t.wseen (x, v) k;
          let ti = intern t k i in
          ti.ti_pend_var <- x;
          let si = shard_of t x in
          ti.ti_mask <- ti.ti_mask lor (1 lsl si);
          route t si ev)
  | Event.Inv (k, (Event.Try_commit | Event.Try_abort)) ->
      let ti = intern t k i in
      (match ev with
      | Event.Inv (_, Event.Try_commit) -> Hashtbl.replace t.tryc_inv k i
      | _ -> ());
      broadcast t ti.ti_mask ev
  | Event.Res (k, (Event.Read_ok _ | Event.Write_ok)) ->
      let ti = Hashtbl.find t.txs k in
      t.responses_seen <- t.responses_seen + 1;
      route t (shard_of t ti.ti_pend_var) ev;
      ti.ti_pend_var <- -1;
      if frozen k then Hashtbl.replace t.changed k ()
  | Event.Res (k, ((Event.Committed | Event.Aborted) as r)) ->
      let ti = Hashtbl.find t.txs k in
      t.responses_seen <- t.responses_seen + 1;
      (* an A_k answering a pending read/write reaches that operation's
         shard too: its invocation already set the mask bit *)
      broadcast t ti.ti_mask ev;
      complete t ti i;
      ti.ti_pend_var <- -1;
      (match r with
      | Event.Committed ->
          ti.ti_committed <- true;
          if frozen k && not (Hashtbl.mem t.vcommitted k) then
            Hashtbl.replace t.decided k ()
      | Event.Aborted ->
          if frozen k && Hashtbl.mem t.vcommitted k then
            Hashtbl.replace t.decided k ()
      | _ -> ());
      if frozen k then Hashtbl.replace t.changed k ()

let push t ev =
  match t.mode with
  | Escalated m -> Monitor.push m ev
  | Sharded -> (
      t.events_seen <- t.events_seen + 1;
      match History.extend t.history ev with
      | Error _ -> (
          (* A monitor would reject this event too — but it may also have
             failed earlier, inside the uncertified window; the replay
             decides both with the right violation index. *)
          escalate t "ill-formed event";
          match t.mode with
          | Escalated m -> Monitor.push m ev
          | Sharded -> assert false)
      | Ok h' ->
          t.history <- h';
          ingest t ev;
          (* ingest can escalate (duplicate written value), and the
             replayed monitor may already have a verdict for this event *)
          status t)

let push_all t events =
  List.fold_left (fun _ ev -> push t ev) (status t) events

(* --- phase 2: the stitch ------------------------------------------------ *)

let cert_commits t k =
  let ti = Hashtbl.find t.txs k in
  ti.ti_committed || ti.ti_must_commit

(* Greedy Kahn traversal of the arbiter graph, keyed by completion order
   (live transactions last, by first appearance).  The arbiter is kept
   acyclic by [Topo.add_edge], so the traversal is total. *)
let kahn t =
  let n = Topo.nodes t.topo in
  let indeg = Array.make (max 1 n) 0 in
  ignore
    (Topo.iter_edges_from t.topo ~cursor:0 (fun _ v _ ->
         indeg.(v) <- indeg.(v) + 1));
  let key nd =
    let c = Pvec.get t.completion nd in
    if c >= 0 then c else (max_int / 2) + Pvec.get t.first_ev nd
  in
  (* binary min-heap over (key, node) *)
  let heap = Array.make (max 1 n) (0, 0) in
  let hn = ref 0 in
  let push_h kv =
    let i = ref !hn in
    incr hn;
    heap.(!i) <- kv;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if fst heap.(p) > fst heap.(!i) then begin
        let tmp = heap.(p) in
        heap.(p) <- heap.(!i);
        heap.(!i) <- tmp;
        i := p
      end
      else continue := false
    done
  in
  let pop_h () =
    let top = heap.(0) in
    decr hn;
    heap.(0) <- heap.(!hn);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let small = ref !i in
      if l < !hn && fst heap.(l) < fst heap.(!small) then small := l;
      if r < !hn && fst heap.(r) < fst heap.(!small) then small := r;
      if !small <> !i then begin
        let tmp = heap.(!small) in
        heap.(!small) <- heap.(!i);
        heap.(!i) <- tmp;
        i := !small
      end
      else continue := false
    done;
    top
  in
  for nd = 0 to n - 1 do
    if indeg.(nd) = 0 then push_h (key nd, nd)
  done;
  let out = Array.make n (-1) in
  let m = ref 0 in
  while !hn > 0 do
    let _, nd = pop_h () in
    out.(!m) <- nd;
    incr m;
    Topo.succ_iter t.topo nd (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then push_h (key v, v))
  done;
  assert (!m = n);
  Array.map (Pvec.get t.node_tx) out

let stack_of t x =
  match Hashtbl.find_opt t.var_stacks x with
  | Some s -> s
  | None ->
      let s = Pvec.create (-1, -1, 0) in
      Hashtbl.replace t.var_stacks x s;
      s

(* Number of leading stack entries whose position is below [p]. *)
let stack_below stack p =
  let lo = ref 0 and hi = ref stack.Pvec.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let pos, _, _ = Pvec.get stack mid in
    if pos < p then lo := mid + 1 else hi := mid
  done;
  !lo

(* Check one transaction's value-returning reads (with response index
   [>= min_res]) at stitched position [p], against the same clauses
   [Serialization.validate ~claim:Du_opaque] applies: an internal read
   returns the own write; an external read returns the final write of the
   latest stitch-committed preceding writer both with and without the
   deferred-update filter (tryC invoked before the read responded). *)
let check_txn t k p ~min_res ~check_decision =
  let txn = History.info t.history k in
  let dec = cert_commits t k in
  if check_decision && not (List.mem dec (Txn.commit_choices txn)) then
    raise
      (Stitch_fail
         (Fmt.str "no completion lets T%d be %s" k
            (if dec then "committed" else "aborted")));
  List.iter
    (fun (r : Txn.read) ->
      if r.Txn.res_index >= min_res then
        match r.Txn.kind with
        | `Internal own ->
            if r.Txn.value <> own then
              raise
                (Stitch_fail
                   (Fmt.str "T%d: internal read of %a returned %d, not %d" k
                      Event.pp_tvar r.Txn.var r.Txn.value own))
        | `External ->
            let stack = stack_of t r.Txn.var in
            let below = stack_below stack p in
            let latest =
              if below = 0 then Event.init_value
              else
                let _, _, v = Pvec.get stack (below - 1) in
                v
            in
            if r.Txn.value <> latest then
              raise
                (Stitch_fail
                   (Fmt.str
                      "T%d: read of %a returned %d, latest committed \
                       preceding write is %d"
                      k Event.pp_tvar r.Txn.var r.Txn.value latest));
            let rec du_filtered i =
              if i < 0 then Event.init_value
              else
                let _, m, v = Pvec.get stack i in
                match Hashtbl.find_opt t.tryc_inv m with
                | Some ti when ti < r.Txn.res_index -> v
                | _ -> du_filtered (i - 1)
            in
            let filtered = du_filtered (below - 1) in
            if r.Txn.value <> filtered then
              raise
                (Stitch_fail
                   (Fmt.str
                      "T%d: read of %a returned %d but the deferred-update \
                       filter yields %d"
                      k Event.pp_tvar r.Txn.var r.Txn.value filtered)))
    (Txn.reads txn)

let freeze_txn t k p =
  Hashtbl.replace t.vpos k p;
  if cert_commits t k then begin
    Hashtbl.replace t.vcommitted k ();
    List.iter
      (fun (x, v) ->
        let stack = stack_of t x in
        Pvec.push stack (p, k, v))
      (Txn.final_writes (History.info t.history k))
  end

let seal_validation t order =
  t.vorder <- order;
  t.vevents <- History.length t.history;
  Hashtbl.reset t.decided;
  Hashtbl.reset t.changed

(* On failure the caches are left half-updated — harmless, because every
   failure escalates and an escalated monitor never consults them. *)
let validate_incremental t order nv =
  t.n_incremental <- t.n_incremental + 1;
  match
    (* new reads of frozen transactions: their positions are below every
       appended writer's, so the frozen stacks already decide them *)
    (* lint: allow ordering-nondeterminism — each key checked
       independently; any failure escalates regardless of which fires *)
    Hashtbl.iter
      (fun k () ->
        match Hashtbl.find_opt t.vpos k with
        | Some p -> check_txn t k p ~min_res:t.vevents ~check_decision:false
        | None -> ())
      t.changed;
    (* appended transactions, in stitched order: check, then expose *)
    for p = nv to Array.length order - 1 do
      let k = order.(p) in
      check_txn t k p ~min_res:0 ~check_decision:true;
      freeze_txn t k p
    done
  with
  | () ->
      seal_validation t order;
      Ok ()
  | exception Stitch_fail why -> Error why

let validate_full t order =
  t.n_full <- t.n_full + 1;
  let order_l = Array.to_list order in
  let s =
    Serialization.make ~order:order_l
      ~committed:(List.filter (cert_commits t) order_l)
  in
  match Serialization.validate t.history s with
  | Error why -> Error why
  | Ok () ->
      Hashtbl.reset t.vpos;
      Hashtbl.reset t.vcommitted;
      Hashtbl.reset t.var_stacks;
      Array.iteri (fun p k -> freeze_txn t k p) order;
      seal_validation t order;
      Ok ()

(* Forget the frozen state from position [c] on.  Live transactions are
   stitched at the tail of the order, so each one that completes migrates
   forward and diverges the tail on the next certify; rewinding just the
   divergent suffix (positions, commit marks, stack entries at [>= c])
   keeps certify proportional to the churn instead of re-validating the
   whole history. *)
let rewind t c =
  for i = c to Array.length t.vorder - 1 do
    let k = t.vorder.(i) in
    Hashtbl.remove t.vpos k;
    Hashtbl.remove t.vcommitted k
  done;
  Hashtbl.iter
    (fun _ stack ->
      while
        stack.Pvec.n > 0
        &&
        let pos, _, _ = Pvec.get stack (stack.Pvec.n - 1) in
        pos >= c
      do
        Pvec.pop stack
      done)
    t.var_stacks

let stitch t =
  let order = kahn t in
  let nv = Array.length t.vorder in
  let n = Array.length order in
  let common = ref 0 in
  while !common < nv && !common < n && order.(!common) = t.vorder.(!common) do
    incr common
  done;
  (* a commit decision that moved on a transaction still frozen *below*
     the rewind point has already leaked into stack state the incremental
     path would reuse — only then is the full re-validation needed *)
  let stale =
    Hashtbl.fold
      (fun k () acc ->
        acc
        ||
        match Hashtbl.find_opt t.vpos k with
        | Some p -> p < !common
        | None -> false)
      t.decided false
  in
  let res =
    if stale then validate_full t order
    else begin
      if !common < nv then rewind t !common;
      validate_incremental t order !common
    end
  in
  match res with
  | Ok () -> `Ok
  | Error why ->
      escalate t (Fmt.str "stitched order rejected: %s" why);
      status t

let certify t =
  match t.mode with
  | Escalated m -> Monitor.status m
  | Sharded -> (
      t.n_certifies <- t.n_certifies + 1;
      (* phase 1, parallel per shard: drain the routed events and compute
         the shard-local certificate *)
      let jobs =
        Array.map
          (fun s ->
            fun () ->
             let events = List.rev s.buf in
             s.buf <- [];
             List.iter (Conflict_graph.Inc.push s.graph) events;
             s.verdict <- Conflict_graph.Inc.verdict s.graph)
          t.shards
      in
      t.run jobs;
      let bad = ref None in
      Array.iteri
        (fun i s ->
          if !bad = None then
            match s.verdict with
            (* a tainted [Sat] is still a replay-validated certificate for
               the current projection; taint only clouds how a *future*
               contradiction would be classified, and the stitch
               re-validates the global order independently anyway *)
            | Conflict_graph.Sat _ -> ()
            | Conflict_graph.Unsat why | Conflict_graph.Ambiguous why ->
                bad := Some (Fmt.str "shard %d: %s" i why))
        t.shards;
      match !bad with
      | Some why ->
          escalate t why;
          status t
      | None -> (
          (* drain the freshly forced shard edges into the arbiter *)
          let cycle = ref None in
          Array.iter
            (fun s ->
              let edges, cursor' =
                Conflict_graph.Inc.edges_from s.graph ~cursor:s.cursor
              in
              s.cursor <- cursor';
              List.iter
                (fun (a, b, kind) ->
                  match kind with
                  | Conflict_graph.Inc.Rt -> ()
                  | Conflict_graph.Inc.Reads_from | Conflict_graph.Inc.Repair
                    ->
                      if !cycle = None then begin
                        let ta = Hashtbl.find t.txs a
                        and tb = Hashtbl.find t.txs b in
                        (match
                           Topo.add_edge ~kind:1 t.topo ta.ti_node tb.ti_node
                         with
                        | `Ok -> ()
                        | `Cycle ->
                            cycle :=
                              Some
                                (Fmt.str
                                   "shard orderings of T%d and T%d close a \
                                    cycle"
                                   a b));
                        if
                          kind = Conflict_graph.Inc.Reads_from
                          && not (ta.ti_committed || ta.ti_must_commit)
                        then begin
                          ta.ti_must_commit <- true;
                          if
                            Hashtbl.mem t.vpos a
                            && not (Hashtbl.mem t.vcommitted a)
                          then Hashtbl.replace t.decided a ()
                        end
                      end)
                edges;
              (* plant the certificate's serialization decisions (per-var
                 writer chains, read anti-dependencies — see
                 [Inc.order_hints]) so the stitched order honours them;
                 shards disagreeing about a cross-shard pair close a
                 cycle, which escalates *)
              if !cycle = None then
                List.iter
                  (fun ((a, b) as h) ->
                    if !cycle = None && not (Hashtbl.mem s.hinted h) then begin
                      Hashtbl.replace s.hinted h ();
                      let ta = Hashtbl.find t.txs a
                      and tb = Hashtbl.find t.txs b in
                      match
                        Topo.add_edge ~kind:2 t.topo ta.ti_node tb.ti_node
                      with
                      | `Ok -> ()
                      | `Cycle ->
                          cycle :=
                            Some
                              (Fmt.str
                                 "shard order hints for T%d and T%d close a \
                                  cycle"
                                 a b)
                    end)
                  (Conflict_graph.Inc.order_hints s.graph))
            t.shards;
          match !cycle with
          | Some why ->
              escalate t why;
              status t
          | None -> stitch t))

(* --- serializable checkpoints ------------------------------------------ *)

let persist t =
  ignore (certify t);
  {
    Monitor.p_max_nodes = t.max_nodes;
    p_events = History.to_list (history t);
    p_status = status t;
    p_violation_index = violation_index t;
    p_counters = snapshot t;
  }

let of_persisted ?nshards ?run (p : Monitor.persisted) =
  match p.Monitor.p_status with
  | `Violation _ | `Budget _ ->
      (* a recorded failure is adopted exactly as [Monitor.of_persisted]
         adopts it, and the stream stays escalated from the start *)
      Result.map
        (fun m ->
          let t = create ?max_nodes:p.Monitor.p_max_nodes ?nshards ?run () in
          t.mode <- Escalated m;
          t)
        (Monitor.of_persisted p)
  | `Ok -> (
      let t = create ?max_nodes:p.Monitor.p_max_nodes ?nshards ?run () in
      ignore (push_all t p.Monitor.p_events);
      match certify t with
      | `Ok -> Ok t
      | `Violation why | `Budget why ->
          Error
            (Fmt.str "corrupt capsule: recorded `Ok but the replay finds: %s"
               why))
