(** Location-sharded online du-opacity monitor.

    A drop-in, scale-out sibling of {!Monitor}: events stream in one at a
    time, and the safety closure of du-opacity — {e every prefix} of the
    stream du-opaque — is decided by a {e two-phase certify/stitch}
    protocol instead of one sequential certificate:

    {ol
    {- {b Shard-local certify.}  Events are partitioned by location:
       a read or write of variable [X] (invocation and response) belongs
       to shard [X mod nshards]; transaction-boundary events ([tryC],
       [tryA], [C_k], [A_k]) are broadcast to every shard the transaction
       has touched.  Each shard feeds its subsequence to its own
       incremental conflict graph ({!Conflict_graph.Inc}).  All shard
       work runs under a caller-supplied executor (one closure per shard,
       over disjoint state), so an OCaml 5 domain pool can run the shards
       in parallel; the default executor is sequential.}
    {- {b Global stitch.}  {!certify} asks every shard for a [Sat]
       (tainted or not: a tainted certificate is still replay-validated
       for the current projection, and the stitch re-validates
       globally), drains the shards' freshly forced reads-from and
       repair edges (never their real-time edges, which are computed
       over a projection and may be stronger than the real order) into
       a commit-order arbiter that also carries the exact global
       real-time frontier, plants each certificate's serialization
       decisions as hint edges ({!Conflict_graph.Inc.order_hints}),
       extracts a candidate global order by a greedy Kahn traversal
       keyed by completion order, and validates it against Definition 3
       — incrementally when the candidate extends the previously
       validated order (only appended transactions and the frozen
       transactions' new reads are re-checked, against
       binary-searchable per-variable committed-writer stacks), through
       the independent {!Serialization.validate} otherwise.}}

    {b The sharded paths never declare a violation.}  Anything the
    protocol cannot certify — a shard [Unsat] or [Ambiguous], a
    cross-shard cycle, a rejected stitched order, an
    ill-formed event — {e escalates}: the accepted history is replayed
    through a fresh {!Monitor} (with the same [max_nodes] budget) which
    then owns the stream for good.  After escalation every observable —
    outcome, violation index, counters — is the monitor's own, so the
    sharded monitor agrees with {!Monitor} on every stream by
    construction; before escalation it reports [`Ok], which is sound
    because a violating prefix can never be certified: duplicate written
    values (the one way du-opacity loses prefix-closure, Corollary 2)
    poison the owning shard into escalation, and on the unique-writes
    fragment a validated current prefix covers every prefix below it.

    {!push} is deliberately cheap — well-formedness, routing, real-time
    bookkeeping — and verdicts are only computed at {!certify}
    boundaries; in between, {!status} is the {e provisional} [`Ok].  The
    streaming service certifies at checkpoint, close and resume points,
    and {!persist} certifies before capturing a capsule, so a recorded
    [`Ok] is always a certified one. *)

type t

type outcome = Monitor.outcome

val create :
  ?max_nodes:int ->
  ?nshards:int ->
  ?run:((unit -> unit) array -> unit) ->
  unit ->
  t
(** [max_nodes] is the search budget of the escalation monitor (as in
    {!Monitor.create}).  [nshards] defaults to [1] — a single shard whose
    conflict graph certifies the whole stream, which is the cheapest
    configuration for streams without location parallelism — and must be
    within [[1, 62]] (shard sets are tracked as bitmasks).  [run] executes
    an array of independent shard jobs and must call each exactly once,
    on any domain, returning only when all have finished; it defaults to
    running them sequentially in the calling domain. *)

val push : t -> Event.t -> outcome
(** Ingest one event.  [`Ok] means {e accepted}, not certified: verdicts
    are computed by {!certify}.  After escalation this is exactly
    {!Monitor.push}, sticky failures included. *)

val push_all : t -> Event.t list -> outcome

val certify : t -> outcome
(** Run both phases over everything pushed so far and return the stream's
    outcome: [`Ok] iff a stitched global certificate validated (in which
    case every prefix since the last certify is du-opaque), otherwise the
    escalation monitor's sticky verdict. *)

val status : t -> outcome
(** Current outcome without doing any work: the provisional [`Ok] while
    un-escalated, the monitor's sticky outcome after. *)

val history : t -> History.t
val violation_index : t -> int option
val events_seen : t -> int
val responses_seen : t -> int
val pending_txns : t -> int
val nshards : t -> int

val escalated : t -> bool
(** Has the stream been handed to a sequential {!Monitor}?  Escalation is
    permanent but benign: it also happens on streams a single conflict
    graph cannot certify (duplicate written values, say), where the
    monitor may well still answer [`Ok]. *)

type stitch_stats = {
  shards : int;
  certifies : int;  (** {!certify} calls so far *)
  incremental : int;  (** certifies validated on the frontier fast path *)
  full : int;  (** certifies that ran {!Serialization.validate} in full *)
  escalated : string option;  (** what triggered escalation, if anything *)
}

val stitch_stats : t -> stitch_stats

val snapshot : t -> Monitor.snapshot
(** The monitor's counter vocabulary, so the streaming service can account
    sharded sessions unchanged.  While un-escalated the reinterpretation
    is: every response counts as a fast-path hit (no backtracking search
    ever runs), [searches] counts {!certify} calls and [nodes] counts the
    certifies that needed a full (non-incremental) stitch validation. *)

val persist : t -> Monitor.persisted
(** Certifies, then captures a {!Monitor.persisted} capsule — the two
    monitors share the checkpoint format, so journals and snapshots are
    oblivious to which one wrote them. *)

val of_persisted :
  ?nshards:int ->
  ?run:((unit -> unit) array -> unit) ->
  Monitor.persisted ->
  (t, string) result
(** Rebuild from a capsule: replay the recorded events and certify.  A
    recorded failure is adopted exactly as {!Monitor.of_persisted} adopts
    it (the rebuilt stream starts escalated); [Error _] when the capsule
    records [`Ok] but the replay cannot certify it. *)
