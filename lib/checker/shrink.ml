let truncate_to_first_bad bad h =
  let lens = History.response_indices h @ [ History.length h ] in
  let lens = List.sort_uniq Int.compare lens in
  match List.find_opt (fun i -> bad (History.prefix h i)) lens with
  | Some i -> History.prefix h i
  | None -> h

let drop_transactions bad h =
  (* Rebuilding [History.txns] and scanning it per candidate is O(n²) in
     transaction count on the large repro histories this shrinker exists
     for; a removed-set keeps the same skip semantics in O(1). *)
  let gone = Hashtbl.create 16 in
  List.fold_left
    (fun h k ->
      if Hashtbl.mem gone k then h
      else
        let candidate = History.project h ~keep:(fun k' -> k' <> k) in
        if bad candidate then begin
          Hashtbl.replace gone k ();
          candidate
        end
        else h)
    h (History.txns h)

(* Candidate operation removals: the event-index pairs of each complete
   operation.  Removing a complete operation keeps per-transaction
   sequences alternating, hence well-formed. *)
let op_spans h =
  List.concat_map
    (fun (txn : Txn.t) ->
      Array.to_list txn.Txn.ops
      |> List.filter_map (fun (op : Op.t) ->
             match op.Op.res_index with
             | Some r -> Some (op.Op.inv_index, r)
             | None -> Some (op.Op.inv_index, op.Op.inv_index)))
    (History.infos h)

let remove_span h (a, b) =
  let events =
    List.filteri (fun i _ -> i <> a && i <> b) (History.to_list h)
  in
  match History.of_events events with Ok h' -> Some h' | Error _ -> None

let drop_operations bad h =
  (* One pass; spans are recomputed after each successful removal since
     indices shift. *)
  let rec go h =
    let improved =
      List.find_map
        (fun span ->
          match remove_span h span with
          | Some candidate when bad candidate -> Some candidate
          | Some _ | None -> None)
        (op_spans h)
    in
    match improved with Some h' -> go h' | None -> h
  in
  go h

let minimal ~bad h =
  if not (bad h) then None
  else
    let h = truncate_to_first_bad bad h in
    let rec fixpoint h =
      let h' = drop_operations bad (drop_transactions bad h) in
      if History.length h' < History.length h then fixpoint h' else h'
    in
    Some (fixpoint h)

let minimal_violation ?max_nodes ?check h =
  let check =
    match check with
    | Some f -> f
    | None -> fun h -> Du_opacity.check_fast ?max_nodes h
  in
  minimal ~bad:(fun h -> Verdict.is_unsat (check h)) h
