(** Minimisation of histories exhibiting a bad property.

    When a recorded history fails du-opacity — or, more generally, exhibits
    any caller-defined badness, such as "two checkers disagree on it" — the
    offending core is usually a handful of events buried in thousands.
    {!minimal} shrinks while preserving the badness, by (in order):

    + truncating to the shortest bad prefix (for an extension-stable
      badness such as a prefix-du-opacity violation this is sound by
      construction: the first bad prefix stays bad in every extension; for
      an arbitrary predicate it is a greedy step kept only when some
      prefix is bad);
    + greedily dropping whole transactions (a projection of a well-formed
      history is well-formed — kept only when the badness persists);
    + greedily dropping individual completed operations.

    Every candidate is re-checked against [bad], so the result provably
    exhibits the property; it is locally minimal (no single transaction or
    operation can be removed), not globally minimal.  Violations found by
    the negative controls — and checker discrepancies found by the
    differential soak harness — typically shrink to 2-3 transactions and
    under a dozen events, small enough to read as a paper-style figure. *)

val minimal : bad:(History.t -> bool) -> History.t -> History.t option
(** [minimal ~bad h] is [None] when [bad h] is false, otherwise a locally
    minimal history satisfying [bad].  [bad] must be deterministic; it is
    called once per candidate, so its cost dominates the shrink. *)

val minimal_violation :
  ?max_nodes:int ->
  ?check:(History.t -> Verdict.t) ->
  History.t ->
  History.t option
(** {!minimal} with [bad h = Verdict.is_unsat (check h)].  [check] defaults
    to {!Du_opacity.check_fast}; any checker returning {!Verdict.t} works
    ([Unknown] is treated as "do not keep this shrink step", so budgets
    never produce a non-violating result). *)
