module Int_map = Map.Make (Int)

exception Exhausted

let check ?max_nodes h =
  let committed = Hashtbl.create 16 in
  List.iter (fun k -> Hashtbl.replace committed k ()) (History.committed h);
  let infos =
    List.filter
      (fun (t : Txn.t) -> Hashtbl.mem committed t.Txn.id)
      (History.infos h)
    |> Array.of_list
  in
  let n = Array.length infos in
  (* Internal reads are snapshot-independent: own latest write. *)
  let internal_bad =
    Array.exists
      (fun t ->
        List.exists
          (fun (r : Txn.read) ->
            match r.Txn.kind with
            | `Internal own -> r.Txn.value <> own
            | `External -> false)
          (Txn.reads t))
      infos
  in
  if internal_bad then
    Verdict.Unsat "a committed transaction misreads its own write"
  else begin
    let external_reads =
      Array.map
        (fun t ->
          List.filter (fun (r : Txn.read) -> r.Txn.kind = `External) (Txn.reads t))
        infos
    in
    let final_writes = Array.map Txn.final_writes infos in
    let write_sets = Array.map Txn.write_set infos in
    (* Write-write conflicts, computed once: the DFS consults them at every
       node, where a per-candidate [List.mem] scan over write sets made the
       inner loop quadratic in the write-set sizes. *)
    let conflict =
      let tbl = Hashtbl.create 64 in
      Array.iteri
        (fun i ws ->
          List.iter
            (fun x ->
              match Hashtbl.find_opt tbl x with
              | Some r -> r := i :: !r
              | None -> Hashtbl.replace tbl x (ref [ i ]))
            ws)
        write_sets;
      let m = Array.make_matrix n n false in
      Hashtbl.iter
        (fun _ r ->
          List.iter
            (fun i -> List.iter (fun j -> m.(i).(j) <- true) !r)
            !r)
        tbl;
      m
    in
    let budget = Option.value max_nodes ~default:max_int in
    let nodes = ref 0 in
    (* snapshots.(s) = database state after the first [s] placed commits *)
    let snapshots = Array.make (n + 1) Int_map.empty in
    let placed = Array.make n false in
    let position = Array.make n (-1) in
    let order = Array.make n (-1) in
    let exception Found in
    let lookup state x = Option.value (Int_map.find_opt x state) ~default:Event.init_value in
    let reads_match i s =
      List.for_all
        (fun (r : Txn.read) -> lookup snapshots.(s) r.Txn.var = r.Txn.value)
        external_reads.(i)
    in
    let rec dfs depth =
      incr nodes;
      if !nodes > budget then raise Exhausted;
      if depth = n then raise Found;
      for i = 0 to n - 1 do
        if not placed.(i) then begin
          (* Write-write rule: the snapshot must start after the commit of
             every earlier transaction sharing a written variable. *)
          let lower = ref 0 in
          for j = 0 to n - 1 do
            if placed.(j) && conflict.(i).(j) then
              lower := max !lower (position.(j) + 1)
          done;
          let lower = !lower in
          let feasible =
            let rec exists s = s <= depth && (reads_match i s || exists (s + 1)) in
            exists lower
          in
          if feasible then begin
            placed.(i) <- true;
            position.(i) <- depth;
            order.(depth) <- i;
            snapshots.(depth + 1) <-
              List.fold_left
                (fun state (x, v) -> Int_map.add x v state)
                snapshots.(depth) final_writes.(i);
            dfs (depth + 1);
            placed.(i) <- false;
            position.(i) <- -1
          end
        end
      done
    in
    match dfs 0 with
    | () -> Verdict.Unsat (Fmt.str "no SI execution exists (%d nodes)" !nodes)
    | exception Found ->
        let ids = Array.to_list (Array.map (fun i -> infos.(i).Txn.id) order) in
        Verdict.Sat (Serialization.make ~order:ids ~committed:ids)
    | exception Exhausted ->
        Verdict.Unknown (Fmt.str "node budget exhausted after %d nodes" !nodes)
  end
