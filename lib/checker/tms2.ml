let tryc_res_index (txn : Txn.t) =
  Array.fold_left
    (fun acc (op : Op.t) ->
      match acc, op.Op.inv with
      | None, Event.Try_commit -> op.Op.res_index
      | acc, _ -> acc)
    None txn.Txn.ops

let edges h =
  let infos = History.infos h in
  List.concat_map
    (fun (a : Txn.t) ->
      if a.Txn.status <> Txn.Committed then []
      else
        match tryc_res_index a with
        | None -> []
        | Some a_commit ->
            (* Hoisted to a set: the membership test runs once per read
               variable of every other transaction. *)
            let wset = Hashtbl.create 8 in
            List.iter (fun x -> Hashtbl.replace wset x ()) (Txn.write_set a);
            List.filter_map
              (fun (b : Txn.t) ->
                if b.Txn.id = a.Txn.id then None
                else
                  match Txn.tryc_inv_index b with
                  | Some b_tryc
                    when a_commit < b_tryc
                         && List.exists (Hashtbl.mem wset)
                              (Txn.read_set b) ->
                      Some (a.Txn.id, b.Txn.id)
                  | Some _ | None -> None)
              infos)
    infos

let check ?max_nodes h =
  Search.serialize
    { Search.default with extra_edges = edges h; max_nodes }
    h
