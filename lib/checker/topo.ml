(* Pearce–Kelly dynamic topological order over a growable DAG, extracted
   from the conflict-graph backend so the sharded monitor's commit-order
   arbiter can maintain its own stitched graph with the same machinery.

   Nodes are dense ids handed out by [add_node]; a new node takes the
   largest order index, so edges from existing nodes never trigger a
   reorder.  Edges live in two index-linked arena pools (out- and
   in-adjacency) plus a hash set for O(1) duplicate suppression, so
   insertion allocates nothing beyond amortised array growth.  An edge
   already respecting the maintained order is free; otherwise the affected
   region — forward reachability from the target bounded by the source's
   position, backward from the source bounded by the target's — is
   discovered and its order indices reassigned.  [`Cycle] leaves the graph
   exactly as it was.

   Each edge carries a small caller-defined [kind] tag; [iter_edges_from]
   drains the arena from a cursor, which is how the sharded monitor
   harvests a shard's forced edges into the global stitch graph. *)

(* Growable array with push/get/set; the workhorse for per-node state and
   the edge arenas (shared with the conflict-graph backend). *)
module Pvec = struct
  type 'a t = { mutable a : 'a array; mutable n : int; dummy : 'a }

  let create dummy = { a = Array.make 16 dummy; n = 0; dummy }

  let push v x =
    if v.n = Array.length v.a then begin
      let a' = Array.make (2 * v.n) v.dummy in
      Array.blit v.a 0 a' 0 v.n;
      v.a <- a'
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let get v i = v.a.(i)
  let set v i x = v.a.(i) <- x
  let pop v = v.n <- v.n - 1
end

type t = {
  ord : int Pvec.t;  (* maintained topological index *)
  (* edge arenas: logical edge e has out-list links (e_dst, e_next) from
     its source and in-list links (e_src, e_inext) from its target *)
  out_head : int Pvec.t;
  in_head : int Pvec.t;
  e_dst : int Pvec.t;
  e_next : int Pvec.t;
  e_src : int Pvec.t;
  e_inext : int Pvec.t;
  e_kind : int Pvec.t;
  edge_set : (int * int, unit) Hashtbl.t;
  (* work areas *)
  mark : int Pvec.t;
  mutable stamp : int;
  dfs_stack : int Pvec.t;
  dfa : int Pvec.t;  (* affected-region scratch: forward set *)
  dfb : int Pvec.t;  (* backward set *)
  mutable reorders : int;
}

let create () =
  {
    ord = Pvec.create 0;
    out_head = Pvec.create (-1);
    in_head = Pvec.create (-1);
    e_dst = Pvec.create (-1);
    e_next = Pvec.create (-1);
    e_src = Pvec.create (-1);
    e_inext = Pvec.create (-1);
    e_kind = Pvec.create 0;
    edge_set = Hashtbl.create 256;
    mark = Pvec.create 0;
    stamp = 0;
    dfs_stack = Pvec.create 0;
    dfa = Pvec.create 0;
    dfb = Pvec.create 0;
    reorders = 0;
  }

let nodes t = t.ord.Pvec.n
let ord t n = Pvec.get t.ord n
let edge_count t = t.e_dst.Pvec.n
let reorders t = t.reorders

let add_node t =
  let n = nodes t in
  Pvec.push t.ord n;
  Pvec.push t.out_head (-1);
  Pvec.push t.in_head (-1);
  Pvec.push t.mark 0;
  n

let arena_add t u v kind =
  let e = t.e_dst.Pvec.n in
  Pvec.push t.e_dst v;
  Pvec.push t.e_next (Pvec.get t.out_head u);
  Pvec.set t.out_head u e;
  Pvec.push t.e_src u;
  Pvec.push t.e_inext (Pvec.get t.in_head v);
  Pvec.set t.in_head v e;
  Pvec.push t.e_kind kind

let arena_rollback t u v =
  let e = t.e_dst.Pvec.n - 1 in
  Pvec.set t.out_head u (Pvec.get t.e_next e);
  Pvec.set t.in_head v (Pvec.get t.e_inext e);
  Pvec.pop t.e_dst;
  Pvec.pop t.e_next;
  Pvec.pop t.e_src;
  Pvec.pop t.e_inext;
  Pvec.pop t.e_kind

let fresh_stamp t =
  t.stamp <- t.stamp + 1;
  t.stamp

(* Forward DFS from [v] restricted to ord <= ub, collecting into [t.dfa];
   true iff [target] was reached. *)
let dfs_fwd t v ub target =
  let st = fresh_stamp t in
  t.dfa.Pvec.n <- 0;
  t.dfs_stack.Pvec.n <- 0;
  Pvec.push t.dfs_stack v;
  Pvec.set t.mark v st;
  let hit = ref false in
  while t.dfs_stack.Pvec.n > 0 && not !hit do
    let w = Pvec.get t.dfs_stack (t.dfs_stack.Pvec.n - 1) in
    Pvec.pop t.dfs_stack;
    Pvec.push t.dfa w;
    let e = ref (Pvec.get t.out_head w) in
    while !e >= 0 && not !hit do
      let s = Pvec.get t.e_dst !e in
      if s = target then hit := true
      else if Pvec.get t.ord s <= ub && Pvec.get t.mark s <> st then begin
        Pvec.set t.mark s st;
        Pvec.push t.dfs_stack s
      end;
      e := Pvec.get t.e_next !e
    done
  done;
  !hit

(* Backward DFS from [u] restricted to ord >= lb, collecting into [t.dfb]. *)
let dfs_bwd t u lb =
  let st = fresh_stamp t in
  t.dfb.Pvec.n <- 0;
  t.dfs_stack.Pvec.n <- 0;
  Pvec.push t.dfs_stack u;
  Pvec.set t.mark u st;
  while t.dfs_stack.Pvec.n > 0 do
    let w = Pvec.get t.dfs_stack (t.dfs_stack.Pvec.n - 1) in
    Pvec.pop t.dfs_stack;
    Pvec.push t.dfb w;
    let e = ref (Pvec.get t.in_head w) in
    while !e >= 0 do
      let s = Pvec.get t.e_src !e in
      if Pvec.get t.ord s >= lb && Pvec.get t.mark s <> st then begin
        Pvec.set t.mark s st;
        Pvec.push t.dfs_stack s
      end;
      e := Pvec.get t.e_inext !e
    done
  done

let reorder t =
  (* Reassign the affected region's order indices: the backward set keeps
     its relative order, then the forward set — both sorted by current
     ord — packed into the same index pool, smallest first. *)
  let nb = t.dfb.Pvec.n and nf = t.dfa.Pvec.n in
  let all = Array.make (nb + nf) 0 in
  for i = 0 to nb - 1 do
    all.(i) <- Pvec.get t.dfb i
  done;
  for i = 0 to nf - 1 do
    all.(nb + i) <- Pvec.get t.dfa i
  done;
  let by_ord a b = Int.compare (Pvec.get t.ord a) (Pvec.get t.ord b) in
  let back = Array.sub all 0 nb and fwd = Array.sub all nb nf in
  Array.sort by_ord back;
  Array.sort by_ord fwd;
  let pool = Array.map (Pvec.get t.ord) all in
  Array.sort Int.compare pool;
  let k = ref 0 in
  Array.iter
    (fun n ->
      Pvec.set t.ord n pool.(!k);
      incr k)
    back;
  Array.iter
    (fun n ->
      Pvec.set t.ord n pool.(!k);
      incr k)
    fwd;
  t.reorders <- t.reorders + 1

let add_edge ?(kind = 0) t u v =
  if u = v then `Cycle
  else if Hashtbl.mem t.edge_set (u, v) then `Ok
  else begin
    arena_add t u v kind;
    if Pvec.get t.ord u < Pvec.get t.ord v then begin
      Hashtbl.replace t.edge_set (u, v) ();
      `Ok
    end
    else begin
      let lb = Pvec.get t.ord v and ub = Pvec.get t.ord u in
      if dfs_fwd t v ub u then begin
        arena_rollback t u v;
        `Cycle
      end
      else begin
        dfs_bwd t u lb;
        reorder t;
        Hashtbl.replace t.edge_set (u, v) ();
        `Ok
      end
    end
  end

(* Is there a path a ~> b?  Only possible when ord a < ord b; DFS bounded
   by b's order index. *)
let reach t a b =
  if a = b then true
  else if Pvec.get t.ord a >= Pvec.get t.ord b then false
  else begin
    let ub = Pvec.get t.ord b in
    let st = fresh_stamp t in
    t.dfs_stack.Pvec.n <- 0;
    Pvec.push t.dfs_stack a;
    Pvec.set t.mark a st;
    let hit = ref false in
    while t.dfs_stack.Pvec.n > 0 && not !hit do
      let w = Pvec.get t.dfs_stack (t.dfs_stack.Pvec.n - 1) in
      Pvec.pop t.dfs_stack;
      let e = ref (Pvec.get t.out_head w) in
      while !e >= 0 && not !hit do
        let s = Pvec.get t.e_dst !e in
        if s = b then hit := true
        else if Pvec.get t.ord s < ub && Pvec.get t.mark s <> st then begin
          Pvec.set t.mark s st;
          Pvec.push t.dfs_stack s
        end;
        e := Pvec.get t.e_next !e
      done
    done;
    !hit
  end

(* A path v ~> u, by parent-tracking DFS — used to recover the nodes of a
   counterexample cycle after [add_edge t u v] was refused (the insertion
   was rolled back, so the path still exists). *)
let find_path t v u =
  if v = u then Some [ v ]
  else begin
    let st = fresh_stamp t in
    let parent = Hashtbl.create 32 in
    t.dfs_stack.Pvec.n <- 0;
    Pvec.push t.dfs_stack v;
    Pvec.set t.mark v st;
    let hit = ref false in
    while t.dfs_stack.Pvec.n > 0 && not !hit do
      let w = Pvec.get t.dfs_stack (t.dfs_stack.Pvec.n - 1) in
      Pvec.pop t.dfs_stack;
      let e = ref (Pvec.get t.out_head w) in
      while !e >= 0 && not !hit do
        let s = Pvec.get t.e_dst !e in
        if Pvec.get t.mark s <> st then begin
          Pvec.set t.mark s st;
          Hashtbl.replace parent s w;
          if s = u then hit := true else Pvec.push t.dfs_stack s
        end;
        e := Pvec.get t.e_next !e
      done
    done;
    if not !hit then None
    else begin
      let rec build s acc =
        if s = v then s :: acc else build (Hashtbl.find parent s) (s :: acc)
      in
      Some (build u [])
    end
  end

let succ_iter t n f =
  let e = ref (Pvec.get t.out_head n) in
  while !e >= 0 do
    f (Pvec.get t.e_dst !e);
    e := Pvec.get t.e_next !e
  done

let iter_edges_from t ~cursor f =
  let n = t.e_dst.Pvec.n in
  for e = max 0 cursor to n - 1 do
    f (Pvec.get t.e_src e) (Pvec.get t.e_dst e) (Pvec.get t.e_kind e)
  done;
  n
