(** Pearce–Kelly dynamic topological order over a growable DAG.

    Extracted from the conflict-graph backend ({!Conflict_graph.Inc}) so
    the sharded monitor's commit-order arbiter can maintain its stitched
    global graph with the same machinery.  Nodes are dense ids handed out
    by {!add_node}; edges are arena-allocated and deduplicated, and
    {!add_edge} maintains a topological order incrementally — an edge that
    already respects the order is O(1), anything else pays a bounded
    affected-region reorder, and an edge that would close a cycle is
    refused with the graph left exactly as it was. *)

(** Growable array with push/get/set — shared with the conflict-graph
    backend's per-node state vectors. *)
module Pvec : sig
  type 'a t = { mutable a : 'a array; mutable n : int; dummy : 'a }

  val create : 'a -> 'a t
  val push : 'a t -> 'a -> unit
  val get : 'a t -> int -> 'a
  val set : 'a t -> int -> 'a -> unit
  val pop : 'a t -> unit
end

type t

val create : unit -> t

val add_node : t -> int
(** Next dense node id, appended at the end of the maintained order (so
    edges from existing nodes never trigger a reorder). *)

val nodes : t -> int
val edge_count : t -> int

val reorders : t -> int
(** Affected-region reorders performed so far. *)

val ord : t -> int -> int
(** The node's current topological index.  Total over nodes; any two
    nodes compare consistently with every inserted edge. *)

val add_edge : ?kind:int -> t -> int -> int -> [ `Ok | `Cycle ]
(** Insert edge [u -> v] tagged with [kind] (default [0], caller-defined
    meaning), maintaining the order.  [`Cycle] refuses the insertion and
    leaves the graph untouched; duplicates are [`Ok] no-ops. *)

val reach : t -> int -> int -> bool
(** Is there a path [a ~> b]?  DFS bounded by [b]'s order index. *)

val find_path : t -> int -> int -> int list option
(** [find_path t v u] is a path [v ... u] when one exists — used to
    recover a counterexample cycle after [add_edge t u v] was refused. *)

val succ_iter : t -> int -> (int -> unit) -> unit
(** Iterate the direct successors of a node. *)

val iter_edges_from : t -> cursor:int -> (int -> int -> int -> unit) -> int
(** Iterate arena edges with index [>= cursor] as [f src dst kind],
    in insertion order; returns the new cursor (the current edge count).
    Edges are append-only once accepted, so successive calls drain exactly
    the edges inserted in between — how the sharded monitor harvests a
    shard's forced edges into the global stitch graph. *)
