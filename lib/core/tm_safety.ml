(** Umbrella module: the library's public API in one namespace.

    {[
      open Tm_safety

      let h = Parse.of_string_exn "W1(X,1)->ok C1 R2(X)->1 ret1:C" in
      match Du_opacity.check h with
      | Verdict.Sat s -> Fmt.pr "du-opaque via %a@." Serialization.pp s
      | Verdict.Unsat why -> Fmt.pr "not du-opaque: %s@." why
      | Verdict.Unknown _ -> assert false
    ]}

    See the [examples/] directory for larger tours: the paper's figures,
    STM monitoring, and the zombie-transaction demonstration. *)

(** {1 Histories (the paper's Section 2)} *)

module Event = Tm_history.Event
module Op = Tm_history.Op
module Txn = Tm_history.Txn
module History = Tm_history.History
module Dsl = Tm_history.Dsl
module Parse = Tm_history.Parse
module Pretty = Tm_history.Pretty
module Gen = Tm_history.Gen
module Stats = Tm_history.Stats

(** {1 Consistency checkers (Sections 3-4)} *)

module Verdict = Tm_checker.Verdict
module Serialization = Tm_checker.Serialization
module Semantics = Tm_checker.Semantics
module Completion = Tm_checker.Completion
module Search = Tm_checker.Search
module Du_opacity = Tm_checker.Du_opacity
module Last_use_opacity = Tm_checker.Last_use_opacity
module Opacity = Tm_checker.Opacity
module Final_state = Tm_checker.Final_state
module Tms2 = Tm_checker.Tms2
module Rco = Tm_checker.Rco
module Serializable = Tm_checker.Serializable
module Snapshot_isolation = Tm_checker.Snapshot_isolation
module Conflict_opacity = Tm_checker.Conflict_opacity
module Conflict_graph = Tm_checker.Conflict_graph
module Polygraph = Tm_checker.Polygraph
module Lemmas = Tm_checker.Lemmas
module Limit = Tm_checker.Limit
module Shrink = Tm_checker.Shrink
module Dot = Tm_checker.Dot
module Monitor = Tm_checker.Monitor
module Sharded_monitor = Tm_checker.Sharded_monitor
module Topo = Tm_checker.Topo

(** {1 The paper's example histories} *)

module Figures = Tm_figures.Figures

(** {1 STM algorithms and runners (Section 5's subjects)} *)

module Stm = struct
  module Intf = Tm_stm.Tm_intf
  module Mem = Tm_stm.Mem_intf
  module Atomic_mem = Tm_stm.Atomic_mem
  module Tl2 = Tm_stm.Tl2
  module Norec = Tm_stm.Norec
  module Mvcc = Tm_stm.Mvcc
  module Tml = Tm_stm.Tml
  module Twopl = Tm_stm.Twopl
  module Global_lock = Tm_stm.Global_lock
  module Pessimistic = Tm_stm.Pessimistic
  module Dirty = Tm_stm.Dirty
  module Eager = Tm_stm.Eager
  module Registry = Tm_stm.Registry
  module Workload = Tm_stm.Workload
  module Harness = Tm_stm.Harness
  module Parallel = Tm_stm.Parallel
  module Faults = Tm_stm.Faults
  module Clock = Tm_stm.Clock
end

module Sim = struct
  module Sched = Tm_sim.Sched
  module Mem = Tm_sim.Sim_mem
  module Runner = Tm_sim.Runner
  module Explore = Tm_sim.Explore

  module Faults = Tm_sim.Faults
  (** Fault plans and campaigns (re-exports {!Tm_stm.Faults} plus the
      campaign layer). *)
end

(** {1 Trace analysis and exhaustive verification ([tm verify], [tm lint])} *)

module Analysis = struct
  module Vclock = Tm_analysis.Vclock
  module Race = Tm_analysis.Race
  module Lint = Tm_analysis.Lint
  module Verify = Tm_analysis.Verify
end

(** {1 The differential soak oracle ([tm soak])} *)

module Oracle = Tm_oracle.Oracle

(** {1 Service chaos campaigns ([tm chaos --service])} *)

module Service_chaos = Tm_oracle.Service_chaos

(** {1 The streaming checking service ([tm serve])} *)

module Service = struct
  module Codec = Tm_service.Codec
  module Protocol = Tm_service.Protocol
  module Wire = Tm_service.Wire
  module Mailbox = Tm_service.Mailbox
  module Journal = Tm_service.Journal
  module Server = Tm_service.Server
  module Client = Tm_service.Client
  module Proxy = Tm_service.Proxy
end
