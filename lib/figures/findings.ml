(** Reproduction findings: artefacts this implementation surfaced that the
    paper's text does not anticipate.  Each is machine-checked by the test
    suite; EXPERIMENTS.md discusses them.

    {2 Finding 1: Lemma 1's construction fails under duplicate writes}

    Lemma 1 claims: for {e any} du-opaque serialization [S] of [H] and any
    prefix [H^i], some serialization [S^i] of [H^i] has [seq(S^i)] a
    subsequence of [seq(S)].  The proof argues that the transaction [T_m]
    serving a read in [S] must have invoked [tryC] before the read's
    response ("since read_k(X) is legal in the local serialization ... the
    prefix of H up to the response of read_k(X) must contain an invocation
    of tryC_m").  That inference is {e value-based-legality blind}: with
    duplicate writes, the read can be justified in the local serialization
    by an older retained writer of the same value while the S-latest writer
    has not started committing — the very flexibility the paper's own
    Figure 1 exercises.

    {!lemma1_gap} below is a concrete counterexample to the lemma's
    {e statement} (not merely its proof):

    {v
    T1: W(Z,1) C          (commits early)
    T3:        W(Z,3)   C (commits at event 10)
    T5:          R(Z)->1      tryC        ... C (commits last)
    T6:                        W(Z,1) C   (starts after the prefix)
    v}

    [S = T1,T3,T6,T5] is a valid du-opaque serialization of the full
    history: globally [T5] reads 1 from [T6]; in the local serialization
    (at the read's response only [T1] had invoked [tryC]) the value 1 is
    justified by [T1].  But in the prefix [H^10] (up to [C3]), [T6] has not
    appeared and [T3] is already {e committed} — so in the inherited order
    [T1,T3,T5] the read of 1 sits above [T3]'s committed 3 and no choice of
    decisions can fix it.  The prefix {e is} du-opaque ([T1,T5,T3] works) —
    only the subsequence claim fails.

    Consequences: the paper's proofs of Corollary 2 (prefix closure) and
    Theorem 5 (limit closure), which invoke Lemma 1, are incomplete as
    written for histories with duplicate writes; under the unique-writes
    assumption (the setting of Theorem 11) the proof step is valid and our
    property tests confirm the construction never fails there.  The
    checker-level property campaigns long suggested Corollary 2's
    {e statement} survived anyway — until the differential soak harness
    ([tm soak]) found {!corollary2_gap} below. *)

(** {2 Finding 2: the §4.2 rendering of TMS2 does not imply du-opacity}

    The paper conjectures TMS2 ⊆ du-opacity (for the I/O-automaton
    definition).  The informal rendering its §4.2 works with — "if
    [X ∈ Wset(T1) ∩ Rset(T2)] and [T1]'s [tryC] precedes [T2]'s, then
    [T1 <S T2] for some final-state serialization [S]" — is strictly
    weaker: the paper's own Figure 4 satisfies it vacuously ([T2] never
    invokes [tryC], so no constraint fires) while famously not being
    du-opaque.  The test suite pins both facts.  This does not bear on the
    original TMS2, only on the paraphrase. *)

(** {2 Finding 3: du-opacity is not prefix-closed under duplicate writes}

    Corollary 2 states that every prefix of a du-opaque history is
    du-opaque.  The differential soak harness found — and shrank to 23
    events — a du-opaque history with duplicate writes whose prefix is not:
    the statement itself fails once Lemma 1's unique-writes dependence
    (Finding 1) is removed, not just the projection construction.

    {!corollary2_gap} below, with the prefix boundary before [T7]'s [tryC]:

    {v
    T2: R(X)->0 W(Y,1) C
    T4:     W(Y,2)   W(X,1)        tryC   C
    T5:            W(X,3)  R(Y)->1   tryC   C
    T7:                                       W(Y,1)      | tryC
    T9:                                             R(X)->3
    v}

    In the full history [S = T2,T4,T7,T5,T9] with [T7] committed (its
    pending [tryC] resolved to [C]) works: [T5]'s read of [Y=1] is served
    {e globally} by [T7] (the latest committed writer) and {e locally} by
    [T2] (the only retained writer — neither [T4] nor [T7] had invoked
    [tryC] by the read's response).  Two different writers of the same
    value justify the two legality clauses.  In the prefix, [T7] is live
    and must abort — and then no order works: [R2(X)=0] forbids [T4]
    before [T2], [R5(Y)=1] then forces [T4] after [T5], while [R9(X)=3]
    forces [T4] before [T5].

    Consequences: du-opacity {e as defined} is not a safety property on
    duplicate-write histories (prefix-closure fails; Corollary 2 and with
    it Theorem 5's limit-closure argument need the unique-writes
    assumption).  Operationally, a sticky online monitor decides the
    safety {e closure} of du-opacity — "every prefix so far is du-opaque"
    — which is the right online property anyway: a client that observed a
    non-du-opaque prefix has already acted on an inconsistent snapshot,
    and no later commit can retract that.  The lockstep oracle
    ({!Tm_oracle.Oracle.lockstep}) therefore arbitrates batch-vs-monitor
    disagreements by re-judging the blamed prefix from scratch and calls
    the duplicate-write case a benign [closure_gap]. *)

open Dsl

(** The counterexample history, the du-opaque serialization whose
    projection fails, and the prefix length at which it fails. *)
let lemma1_gap : History.t * (Event.tx list * Event.tx list) * int =
  let h =
    history
      [
        w 1 z 1;
        c 1;
        w 3 z 3;
        r 5 z 1;
        c 3;
        (* --- prefix boundary: length 10 --- *)
        c_inv 5;
        w 6 z 1;
        c 6;
        committed 5;
      ]
  in
  (h, ([ 1; 3; 6; 5 ], [ 1; 3; 6; 5 ]), 10)

(** The serialization order Lemma 1's construction inherits for the prefix,
    with the (forced) decisions: [T1, T3] committed, [T5] aborted.  The
    test suite verifies this is NOT a serialization of the prefix, while
    [T1, T5, T3] is. *)
let lemma1_gap_projected_order = [ 1; 3; 5 ]

let lemma1_gap_working_order = [ 1; 5; 3 ]

(** Finding 3's counterexample: the full history is du-opaque, its prefix
    (dropping [T7]'s [tryC] invocation, the last event) is not.  The test
    suite verifies both verdicts, that {!corollary2_gap_witness} validates,
    and that the oracle classifies the pair as a closure gap. *)
let corollary2_gap : History.t * int =
  let h =
    history
      [
        r 2 x 0 (* 0-1 *);
        w 2 y 1 (* 2-3 *);
        w 4 y 2 (* 4-5 *);
        c 2 (* 6-7 *);
        w_inv 5 x 3 (* 8 *);
        w_inv 4 x 1 (* 9 *);
        w_ok 5 (* 10 *);
        r 5 y 1 (* 11-12 *);
        w_ok 4 (* 13 *);
        c_inv 4 (* 14 *);
        c_inv 5 (* 15 *);
        committed 4 (* 16 *);
        w_inv 7 y 1 (* 17 *);
        committed 5 (* 18 *);
        w_ok 7 (* 19 *);
        r 9 x 3 (* 20-21 *);
        (* --- prefix boundary: length 22; T7 is live there and must
           abort, killing every serialization --- *)
        c_inv 7 (* 22 *);
      ]
  in
  (h, 22)

(** A du-opaque serialization of the full history: [T7]'s pending [tryC]
    resolves to commit, slotted between [T4] and [T5] so that [T5]'s read
    of [Y=1] is served globally by [T7] and locally by [T2]. *)
let corollary2_gap_witness : Event.tx list * Event.tx list =
  ([ 2; 4; 7; 5; 9 ], [ 2; 4; 7; 5 ])
