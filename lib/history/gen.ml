type params = {
  n_txns : int;
  n_vars : int;
  n_threads : int;
  max_ops : int;
  read_ratio : float;
  mode : [ `Snapshot_values | `Random_values ];
  value_range : int;
  unique_writes : bool;
  commit_ratio : float;
  abort_ratio : float;
  pending_ratio : float;
}

let default =
  {
    n_txns = 8;
    n_vars = 3;
    n_threads = 3;
    max_ops = 4;
    read_ratio = 0.5;
    mode = `Snapshot_values;
    value_range = 3;
    unique_writes = false;
    commit_ratio = 0.85;
    abort_ratio = 0.1;
    pending_ratio = 0.1;
  }

type pending =
  | P_read of Event.tvar
  | P_write of Event.tvar * Event.value
  | P_tryc
  | P_trya

type txn_state = {
  id : Event.tx;
  mutable ops_left : int;
  mutable pending : pending option;
  buffer : (Event.tvar, Event.value) Hashtbl.t;
}

type thread = { mutable current : txn_state option }

let run params rng =
  let state = Array.make (max 1 params.n_vars) Event.init_value in
  let threads = Array.init (max 1 params.n_threads) (fun _ -> { current = None }) in
  let txns_left = ref params.n_txns in
  let next_id = ref 1 in
  let next_unique = ref 1 in
  let events = ref [] in
  let emit e = events := e :: !events in
  let flip p = Random.State.float rng 1.0 < p in
  let pick_var () = Random.State.int rng (max 1 params.n_vars) in
  let pick_value () =
    if params.unique_writes then begin
      let v = !next_unique in
      incr next_unique;
      v
    end
    else 1 + Random.State.int rng (max 1 params.value_range)
  in
  let has_work t = t.current <> None || !txns_left > 0 in
  let start_txn t =
    let id = !next_id in
    incr next_id;
    decr txns_left;
    let txn =
      {
        id;
        ops_left = 1 + Random.State.int rng (max 1 params.max_ops);
        pending = None;
        buffer = Hashtbl.create 4;
      }
    in
    t.current <- Some txn;
    txn
  in
  let invoke t txn inv =
    emit (Event.Inv (txn.id, inv));
    if flip params.pending_ratio then t.current <- None (* abandoned *)
    else
      txn.pending <-
        Some
          (match inv with
          | Event.Read var -> P_read var
          | Event.Write (var, value) -> P_write (var, value)
          | Event.Try_commit -> P_tryc
          | Event.Try_abort -> P_trya)
  in
  let respond t txn p =
    txn.pending <- None;
    match p with
    | P_read var ->
        if flip params.abort_ratio then begin
          emit (Event.Res (txn.id, Event.Aborted));
          t.current <- None
        end
        else
          let value =
            match Hashtbl.find_opt txn.buffer var with
            | Some v -> v (* internal read: own deferred write *)
            | None -> (
                match params.mode with
                | `Snapshot_values -> state.(var)
                | `Random_values ->
                    Random.State.int rng (max 1 params.value_range))
          in
          emit (Event.Res (txn.id, Event.Read_ok value))
    | P_write (var, value) ->
        if flip params.abort_ratio then begin
          emit (Event.Res (txn.id, Event.Aborted));
          t.current <- None
        end
        else begin
          Hashtbl.replace txn.buffer var value;
          emit (Event.Res (txn.id, Event.Write_ok))
        end
    | P_tryc ->
        if flip params.abort_ratio then emit (Event.Res (txn.id, Event.Aborted))
        else begin
          Hashtbl.iter (fun var value -> state.(var) <- value) txn.buffer;
          emit (Event.Res (txn.id, Event.Committed))
        end;
        t.current <- None
    | P_trya ->
        emit (Event.Res (txn.id, Event.Aborted));
        t.current <- None
  in
  let step t =
    match t.current with
    | None -> if !txns_left > 0 then ignore (start_txn t)
    | Some txn -> (
        match txn.pending with
        | Some p -> respond t txn p
        | None ->
            if txn.ops_left > 0 then begin
              txn.ops_left <- txn.ops_left - 1;
              let inv =
                if flip params.read_ratio then Event.Read (pick_var ())
                else Event.Write (pick_var (), pick_value ())
              in
              invoke t txn inv
            end
            else if flip params.pending_ratio then
              (* Complete but never t-complete: no tryC is ever invoked. *)
              t.current <- None
            else
              invoke t txn
                (if flip params.commit_ratio then Event.Try_commit
                 else Event.Try_abort))
  in
  (* Candidate selection into a preallocated array: the cons-built list
     this replaces was in reverse thread order and indexed with [List.nth],
     O(threads) per pick — so the index maps to [k - 1 - i] to keep seeded
     schedules bit-identical. *)
  if Array.length threads > 0 then begin
    let cand = Array.make (Array.length threads) threads.(0) in
    let rec loop () =
      let k = ref 0 in
      Array.iter
        (fun t ->
          if has_work t then begin
            cand.(!k) <- t;
            incr k
          end)
        threads;
      if !k > 0 then begin
        let i = Random.State.int rng !k in
        step cand.(!k - 1 - i);
        loop ()
      end
    in
    loop ()
  end;
  History.of_events_exn (List.rev !events)

let run_seed params seed = run params (Random.State.make [| seed |])
