module Int_map = Map.Make (Int)

(* Histories share their event storage: [buf.arr] only ever grows, and a
   snapshot of length [len] never reads beyond [len].  [buf.used] marks how
   far the buffer has been claimed, so [extend] can append in place exactly
   when called on the tip snapshot and must copy otherwise. *)
type buffer = { mutable arr : Event.t array; mutable used : int }

type summary = { tbl : Txn.t Int_map.t; rev_order : Event.tx list }

type t = { buf : buffer; len : int; mutable summary : summary option }

type error = { index : int; event : Event.t; reason : string }

let pp_error ppf e =
  Fmt.pf ppf "ill-formed history at event %d (%a): %s" e.index Event.pp
    e.event e.reason

let empty_summary = { tbl = Int_map.empty; rev_order = [] }

let status_of_ops (ops : Op.t array) : Txn.status =
  let n = Array.length ops in
  if n = 0 then Txn.Live
  else
    let last = ops.(n - 1) in
    match last.Op.res with
    | Some Event.Committed -> Txn.Committed
    | Some Event.Aborted -> Txn.Aborted
    | Some (Event.Read_ok _ | Event.Write_ok) -> Txn.Live
    | None -> (
        match last.Op.inv with
        | Event.Try_commit -> Txn.Commit_pending
        | Event.Try_abort -> Txn.Abort_pending
        | Event.Read _ | Event.Write _ -> Txn.Live)

let array_snoc a x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  Array.blit a 0 b 0 n;
  b

(* Incorporate event [ev] at position [i] into [s], or explain why the
   extended history is ill-formed. *)
let step (s : summary) i ev : (summary, error) result =
  let err reason = Error { index = i; event = ev; reason } in
  let k = Event.tx_of ev in
  if k <= 0 then err "transaction identifiers must be positive (0 is T0)"
  else
    match ev, Int_map.find_opt k s.tbl with
    | Event.Inv (_, inv), None ->
        let op =
          { Op.tx = k; inv; inv_index = i; res = None; res_index = None }
        in
        let txn =
          {
            Txn.id = k;
            ops = [| op |];
            first_index = i;
            last_index = i;
            status = status_of_ops [| op |];
          }
        in
        Ok { tbl = Int_map.add k txn s.tbl; rev_order = k :: s.rev_order }
    | Event.Inv (_, inv), Some txn -> (
        match txn.Txn.status with
        | Txn.Committed | Txn.Aborted ->
            err "event after the transaction committed or aborted"
        | Txn.Commit_pending | Txn.Abort_pending | Txn.Live ->
            let n = Array.length txn.Txn.ops in
            if n > 0 && not (Op.is_complete txn.Txn.ops.(n - 1)) then
              err "invocation while the previous operation is pending"
            else
              let op =
                { Op.tx = k; inv; inv_index = i; res = None; res_index = None }
              in
              let ops = array_snoc txn.Txn.ops op in
              let txn =
                {
                  txn with
                  Txn.ops;
                  last_index = i;
                  status = status_of_ops ops;
                }
              in
              Ok { s with tbl = Int_map.add k txn s.tbl })
    | Event.Res (_, _), None -> err "response without a participating transaction"
    | Event.Res (_, res), Some txn ->
        let n = Array.length txn.Txn.ops in
        if n = 0 || Op.is_complete txn.Txn.ops.(n - 1) then
          err "response without a pending invocation"
        else
          let op = txn.Txn.ops.(n - 1) in
          if not (Event.matches op.Op.inv res) then
            err "response does not match the pending invocation"
          else
            let op = { op with Op.res = Some res; res_index = Some i } in
            let ops = Array.copy txn.Txn.ops in
            ops.(n - 1) <- op;
            let txn =
              { txn with Txn.ops; last_index = i; status = status_of_ops ops }
            in
            Ok { s with tbl = Int_map.add k txn s.tbl }

let compute_summary arr len : (summary, error) result =
  let rec go s i =
    if i >= len then Ok s
    else match step s i arr.(i) with Ok s -> go s (i + 1) | Error _ as e -> e
  in
  go empty_summary 0

let summary h =
  match h.summary with
  | Some s -> s
  | None -> (
      match compute_summary h.buf.arr h.len with
      | Ok s ->
          h.summary <- Some s;
          s
      | Error e ->
          (* Construction validates, so stored histories are well-formed. *)
          Fmt.invalid_arg "History.summary: %a" pp_error e)

let of_events events =
  let arr = Array.of_list events in
  let len = Array.length arr in
  match compute_summary arr len with
  | Ok s ->
      Ok { buf = { arr; used = len }; len; summary = Some s }
  | Error e -> Error e

let of_events_exn events =
  match of_events events with
  | Ok h -> h
  | Error e -> Fmt.invalid_arg "History.of_events_exn: %a" pp_error e

let of_events_prefix events =
  let arr = Array.of_list events in
  let len = Array.length arr in
  match compute_summary arr len with
  | Ok s -> ({ buf = { arr; used = len }; len; summary = Some s }, [])
  | Error e ->
      (* Validation is a left-to-right fold of [step], so the first failure
         at index [i] certifies the prefix of length [i] well-formed; one
         truncation therefore always succeeds. *)
      let keep = e.index in
      let prefix = Array.sub arr 0 keep in
      let tail = Array.to_list (Array.sub arr keep (len - keep)) in
      (match compute_summary prefix keep with
      | Ok s -> ({ buf = { arr = prefix; used = keep }; len = keep; summary = Some s }, tail)
      | Error e ->
          Fmt.invalid_arg "History.of_events_prefix: prefix ill-formed: %a"
            pp_error e)

let empty = { buf = { arr = [||]; used = 0 }; len = 0; summary = Some empty_summary }

let length h = h.len
let is_empty h = h.len = 0

let get h i =
  if i < 0 || i >= h.len then invalid_arg "History.get: index out of bounds";
  h.buf.arr.(i)

let to_list h = Array.to_list (Array.sub h.buf.arr 0 h.len)

let txns h = List.rev (summary h).rev_order

let info h k =
  match Int_map.find_opt k (summary h).tbl with
  | Some txn -> txn
  | None -> raise Not_found

let infos h =
  let s = summary h in
  List.rev_map (fun k -> Int_map.find k s.tbl) s.rev_order

let filter_txns p h = List.filter_map
    (fun txn -> if p txn.Txn.status then Some txn.Txn.id else None)
    (infos h)

let committed h = filter_txns (function Txn.Committed -> true | _ -> false) h
let aborted h = filter_txns (function Txn.Aborted -> true | _ -> false) h

let commit_pending h =
  filter_txns (function Txn.Commit_pending -> true | _ -> false) h

let is_complete h = List.for_all Txn.is_complete (infos h)
let is_t_complete h = List.for_all Txn.is_t_complete (infos h)

let rt_precedes h k m =
  let ik = info h k and im = info h m in
  Txn.is_t_complete ik && ik.Txn.last_index < im.Txn.first_index

let overlap h k m = (not (rt_precedes h k m)) && not (rt_precedes h m k)

let live_set h k =
  let ik = info h k in
  List.filter_map
    (fun txn ->
      let disjoint =
        txn.Txn.last_index < ik.Txn.first_index
        || ik.Txn.last_index < txn.Txn.first_index
      in
      if disjoint then None else Some txn.Txn.id)
    (infos h)

let ls_precedes h k m =
  let im = info h m in
  List.for_all
    (fun id ->
      let txn = info h id in
      Txn.is_complete txn && txn.Txn.last_index < im.Txn.first_index)
    (live_set h k)

let is_t_sequential h =
  let ts = txns h in
  List.for_all
    (fun k ->
      List.for_all (fun m -> k = m || rt_precedes h k m || rt_precedes h m k) ts)
    ts

let is_sequential h =
  let ok = ref true in
  for i = 0 to h.len - 2 do
    match h.buf.arr.(i) with
    | Event.Inv (k, inv) -> (
        match h.buf.arr.(i + 1) with
        | Event.Res (k', res) when k = k' && Event.matches inv res -> ()
        | Event.Res _ | Event.Inv _ -> ok := false)
    | Event.Res _ -> ()
  done;
  !ok

let prefix h i =
  if i < 0 || i > h.len then invalid_arg "History.prefix: bad length";
  if i = h.len then h else { buf = h.buf; len = i; summary = None }

let is_prefix h ~of_:g =
  h.len <= g.len
  && (h.buf == g.buf
     ||
     let rec go i =
       i >= h.len || (Event.equal h.buf.arr.(i) g.buf.arr.(i) && go (i + 1))
     in
     go 0)

let extend h ev =
  match step (summary h) h.len ev with
  | Error _ as e -> e
  | Ok s ->
      let buf =
        if h.buf.used = h.len then h.buf
        else { arr = Array.sub h.buf.arr 0 h.len; used = h.len }
      in
      let cap = Array.length buf.arr in
      if h.len = cap then begin
        let arr = Array.make (max 8 (2 * cap)) ev in
        Array.blit buf.arr 0 arr 0 h.len;
        buf.arr <- arr
      end;
      buf.arr.(h.len) <- ev;
      buf.used <- h.len + 1;
      Ok { buf; len = h.len + 1; summary = Some s }

let project h ~keep =
  let events =
    List.filter (fun ev -> keep (Event.tx_of ev)) (to_list h)
  in
  of_events_exn events

(* Events of each transaction in history order, newest first — one pass over
   the events instead of one full filter per transaction (O(T·n)). *)
let group_by_tx h =
  let tbl = Hashtbl.create 16 in
  for i = 0 to h.len - 1 do
    let ev = h.buf.arr.(i) in
    let k = Event.tx_of ev in
    let prev = try Hashtbl.find tbl k with Not_found -> [] in
    Hashtbl.replace tbl k (ev :: prev)
  done;
  tbl

let equivalent h h' =
  let ts = List.sort Int.compare (txns h)
  and ts' = List.sort Int.compare (txns h') in
  List.equal Int.equal ts ts'
  && (let g = group_by_tx h and g' = group_by_tx h' in
      List.for_all
        (fun k ->
          (* Reversed on both sides, so comparing the rev-order groups
             directly decides equality of the forward sequences. *)
          List.equal Event.equal (Hashtbl.find g k) (Hashtbl.find g' k))
        ts)

let response_indices h =
  let acc = ref [] in
  for i = h.len downto 1 do
    if Event.is_res h.buf.arr.(i - 1) then acc := i :: !acc
  done;
  !acc

let pp ppf h =
  let pp_item ppf (i, ev) = Fmt.pf ppf "%3d  %a" i Event.pp ev in
  let items = List.mapi (fun i ev -> (i, ev)) (to_list h) in
  Fmt.(list ~sep:(any "@\n") pp_item) ppf items

let pp_inline ppf h = Fmt.(list ~sep:sp Event.pp) ppf (to_list h)
