(** Transactional-memory histories (the paper's Section 2).

    A history is a finite sequence of invocation and response events of
    t-operations.  All histories handled by this library are {e well-formed}:
    for every transaction [T_k], [H|k] is sequential (each invocation is
    followed by its matching response before the next invocation, except
    possibly the last) and has no events after [C_k] or [A_k].

    Values of type {!t} are immutable.  Prefixes and projections share the
    underlying event storage, so [prefix] is O(1) and iterating over all
    prefixes of a history is cheap — the checkers rely on this when deciding
    opacity (Definition 5) and when monitoring a history online. *)

type t

(** {1 Construction} *)

type error = {
  index : int;           (** position of the offending event *)
  event : Event.t;
  reason : string;
}

val pp_error : Format.formatter -> error -> unit

val of_events : Event.t list -> (t, error) result
(** Validates well-formedness:  transaction identifiers are positive; per
    transaction, events alternate invocation/response with matching kinds;
    no event follows [C_k] or [A_k]. *)

val of_events_exn : Event.t list -> t
(** @raise Invalid_argument on ill-formed input. *)

val of_events_prefix : Event.t list -> t * Event.t list
(** [of_events_prefix events] is the longest well-formed prefix of [events]
    together with the dropped tail (empty when the whole input is
    well-formed).  Recovery entry point for event streams whose recording
    was cut mid-operation — a crashed domain that died between appending an
    invocation and its response can leave a torn tail that would make
    {!of_events} fail outright. *)

val empty : t

(** {1 Accessors} *)

val length : t -> int
val get : t -> int -> Event.t
val to_list : t -> Event.t list
val is_empty : t -> bool

val txns : t -> Event.tx list
(** Transactions participating in the history, ordered by first event. *)

val info : t -> Event.tx -> Txn.t
(** Summary of [H|k].
    @raise Not_found if the transaction does not participate. *)

val infos : t -> Txn.t list
(** Summaries of all participating transactions, ordered by first event. *)

val committed : t -> Event.tx list
val aborted : t -> Event.tx list
val commit_pending : t -> Event.tx list

val is_complete : t -> bool
(** Every transaction is complete (all invoked operations have responses). *)

val is_t_complete : t -> bool
(** Every transaction ends with [C_k] or [A_k]. *)

val is_t_sequential : t -> bool
(** No two transactions overlap. *)

val is_sequential : t -> bool
(** Every invocation is immediately followed by its matching response (or is
    the last event). *)

(** {1 Orders} *)

val rt_precedes : t -> Event.tx -> Event.tx -> bool
(** [rt_precedes h k m] — the paper's [T_k ≺RT T_m]: [T_k] is t-complete and
    its last event precedes the first event of [T_m]. *)

val overlap : t -> Event.tx -> Event.tx -> bool
(** Neither transaction really-time-precedes the other. *)

val live_set : t -> Event.tx -> Event.tx list
(** [Lset_H(T)] — transactions (including [T]) whose event span intersects
    [T]'s: neither one's last event precedes the other's first event. *)

val ls_precedes : t -> Event.tx -> Event.tx -> bool
(** [T ≺LS T'] — every transaction in [Lset_H(T)] is complete and takes its
    last event before the first event of [T']. *)

(** {1 Derived histories} *)

val prefix : t -> int -> t
(** [prefix h i] is the history made of the first [i] events (the paper's
    [H^i]).  O(1); shares storage with [h]. *)

val extend : t -> Event.t -> (t, error) result
(** Append one event, revalidating incrementally.  Amortised O(1); used by
    the online monitor. *)

val is_prefix : t -> of_:t -> bool
(** [is_prefix h ~of_:g] — the events of [h] are the first [length h]
    events of [g].  O(1) when the two share storage (one was produced from
    the other by {!prefix} or {!extend}); a single traversal of [h]
    otherwise — never materialises event lists. *)

val project : t -> keep:(Event.tx -> bool) -> t
(** Subsequence of events of the kept transactions (used e.g. to restrict a
    history to its committed transactions for serializability checking). *)

val equivalent : t -> t -> bool
(** The paper's equivalence: same participating transactions and identical
    [H|k] for each. *)

val response_indices : t -> int list
(** Indices [i] such that event [i-1] is a response — together with [0] and
    [length], the prefix lengths at which final-state opacity of prefixes
    needs checking (extending a history by a lone invocation preserves
    final-state opacity). *)

val pp : Format.formatter -> t -> unit
(** One event per line, prefixed by its index. *)

val pp_inline : Format.formatter -> t -> unit
(** All events on one line. *)
