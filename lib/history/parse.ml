open Event

type position = { line : int; token : int }

exception Parse_error of position option * string

let pp_position ppf p = Fmt.pf ppf "line %d, token %d" p.line p.token

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error (None, s))) fmt

(* A tiny cursor over one token. *)
type cursor = { tok : string; mutable pos : int }

let peek c = if c.pos < String.length c.tok then Some c.tok.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "in %S: expected %c, found %c" c.tok ch x
  | None -> fail "in %S: expected %c, found end of token" c.tok ch

let expect_str c s = String.iter (expect c) s

let at_end c = c.pos >= String.length c.tok

let is_digit ch = ch >= '0' && ch <= '9'

let int_ c =
  let start = c.pos in
  (match peek c with Some '-' -> advance c | _ -> ());
  let rec go () =
    match peek c with
    | Some ch when is_digit ch ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  if c.pos = start || (c.pos = start + 1 && c.tok.[start] = '-') then
    fail "in %S: expected an integer at position %d" c.tok start;
  int_of_string (String.sub c.tok start (c.pos - start))

let tvar_ c =
  let named =
    match peek c with
    | Some 'X' -> Some 0
    | Some 'Y' -> Some 1
    | Some 'Z' -> Some 2
    | Some 'W' -> Some 3
    | Some 'V' -> Some 4
    | Some 'U' -> Some 5
    | _ -> None
  in
  match named with
  | None -> fail "in %S: expected a variable name" c.tok
  | Some 0 ->
      advance c;
      (* [X] alone is id 0; [X12] is id 12. *)
      (match peek c with Some ch when is_digit ch -> int_ c | _ -> 0)
  | Some id ->
      advance c;
      id

(* [->suffix] of a read: an integer or [A]. *)
let read_response c k =
  expect_str c "->";
  match peek c with
  | Some 'A' ->
      advance c;
      Res (k, Aborted)
  | _ -> Res (k, Read_ok (int_ c))

let write_response c k =
  expect_str c "->";
  match peek c with
  | Some 'A' ->
      advance c;
      Res (k, Aborted)
  | Some 'o' ->
      expect_str c "ok";
      Res (k, Write_ok)
  | _ -> fail "in %S: expected ok or A after ->" c.tok

let tryc_response c k =
  expect_str c "->";
  match peek c with
  | Some 'A' ->
      advance c;
      Res (k, Aborted)
  | Some 'C' ->
      advance c;
      Res (k, Committed)
  | _ -> fail "in %S: expected C or A after ->" c.tok

let parse_token tok : Event.t list =
  let c = { tok; pos = 0 } in
  let events =
    match peek c with
    | Some 'R' ->
        advance c;
        let k = int_ c in
        expect c '(';
        let var = tvar_ c in
        expect c ')';
        let inv = Inv (k, Read var) in
        if at_end c then [ inv ] else [ inv; read_response c k ]
    | Some 'W' ->
        advance c;
        let k = int_ c in
        expect c '(';
        let var = tvar_ c in
        expect c ',';
        let value = int_ c in
        expect c ')';
        let inv = Inv (k, Write (var, value)) in
        if at_end c then [ inv ] else [ inv; write_response c k ]
    | Some 'C' ->
        advance c;
        let k = int_ c in
        let inv = Inv (k, Try_commit) in
        if at_end c then [ inv ] else [ inv; tryc_response c k ]
    | Some 'A' ->
        advance c;
        let k = int_ c in
        let inv = Inv (k, Try_abort) in
        if at_end c then [ inv ]
        else begin
          expect_str c "->A";
          [ inv; Res (k, Aborted) ]
        end
    | Some 'r' ->
        expect_str c "ret";
        let k = int_ c in
        expect c ':';
        let res =
          match peek c with
          | Some 'o' ->
              expect_str c "ok";
              Write_ok
          | Some 'C' ->
              advance c;
              Committed
          | Some 'A' ->
              advance c;
              Aborted
          | _ -> Read_ok (int_ c)
        in
        [ Res (k, res) ]
    | Some ch -> fail "in %S: unexpected start %c" tok ch
    | None -> fail "empty token"
  in
  if not (at_end c) then
    fail "in %S: trailing characters at position %d" tok c.pos;
  events

let strip_comments line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

(* Tokens tagged with their source position: [line] is 1-based, [token] is
   the 1-based index of the token within its line.  The positions survive
   into {!Parse_error} so a reported failure points at the offending token
   rather than only quoting it. *)
let tokenize text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.concat_map (fun (lineno, line) ->
         strip_comments line
         |> String.split_on_char ' '
         |> List.concat_map (String.split_on_char '\t')
         |> List.concat_map (String.split_on_char '\r')
         |> List.filter (fun s -> s <> "")
         |> List.mapi (fun j tok -> ({ line = lineno; token = j + 1 }, tok)))

let parse_token_at (pos, tok) =
  try parse_token tok
  with Parse_error (_, msg) -> raise (Parse_error (Some pos, msg))

let of_string text =
  match List.concat_map parse_token_at (tokenize text) with
  | exception Parse_error (Some pos, msg) ->
      Error (Fmt.str "%a: %s" pp_position pos msg)
  | exception Parse_error (None, msg) -> Error msg
  | events -> (
      match History.of_events events with
      | Ok h -> Ok h
      | Error e -> Error (Fmt.str "%a" History.pp_error e))

let of_string_exn text =
  match of_string text with
  | Ok h -> h
  | Error msg -> invalid_arg ("Parse.of_string_exn: " ^ msg)

let tvar_name var =
  if var >= 0 && var <= 5 then String.make 1 "XYZWVU".[var]
  else "X" ^ string_of_int var

let inv_token k = function
  | Read var -> Fmt.str "R%d(%s)" k (tvar_name var)
  | Write (var, value) -> Fmt.str "W%d(%s,%d)" k (tvar_name var) value
  | Try_commit -> Fmt.str "C%d" k
  | Try_abort -> Fmt.str "A%d" k

let res_suffix = function
  | Read_ok v -> string_of_int v
  | Write_ok -> "ok"
  | Committed -> "C"
  | Aborted -> "A"

let to_text h =
  let n = History.length h in
  let buf = Buffer.create (n * 8) in
  let emit tok =
    if Buffer.length buf > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf tok
  in
  let adjacent_response i k =
    if i + 1 >= n then None
    else
      match History.get h (i + 1) with
      | Res (k', res) when k = k' -> Some res
      | Res _ | Inv _ -> None
  in
  let rec go i =
    if i < n then begin
      match History.get h i with
      | Inv (k, inv) -> (
          match adjacent_response i k with
          | Some res ->
              emit (inv_token k inv ^ "->" ^ res_suffix res);
              go (i + 2)
          | None ->
              emit (inv_token k inv);
              go (i + 1))
      | Res (k, res) ->
          emit (Fmt.str "ret%d:%s" k (res_suffix res));
          go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf
