(** Textual format for histories.

    Whitespace-separated tokens; [#] starts a comment that runs to the end of
    the line.  Operations:

    - [R1(X)->0] — complete read by [T1] of [X] returning [0];
      [R1(X)->A] — aborted read; [R1(X)] — invocation only.
    - [W1(X,5)->ok] — complete write; [W1(X,5)->A]; [W1(X,5)] — invocation.
    - [C1->C] — [tryC_1] committing; [C1->A]; [C1] — invocation only.
    - [A1->A] — [tryA_1] aborting; [A1] — invocation only.
    - [ret1:0], [ret1:ok], [ret1:C], [ret1:A] — a standalone response to the
      pending operation of [T1], for delayed responses.

    Variables are [X Y Z W V U] (ids 0-5) or [X<n>] for id [n].

    [to_text] inverts [of_string]: it prints an operation compactly when its
    two events are adjacent in the history and splits it otherwise. *)

type position = { line : int; token : int }
(** Source position of a token: 1-based line number and 1-based token index
    within that line. *)

exception Parse_error of position option * string
(** Raised by the internal token parsers; the position is attached at the
    tokenizer layer, so it is [Some] whenever the failing token came from
    {!of_string} input.  [of_string] catches this and formats the position
    into its error message ([line N, token M: ...]); the streaming
    service's [Error] frames carry the same message. *)

val pp_position : Format.formatter -> position -> unit

val of_string : string -> (History.t, string) result
(** Parse-level failures report [line N, token M: reason]; well-formedness
    failures report the offending event index (see {!History.of_events}). *)

val of_string_exn : string -> History.t
val to_text : History.t -> string
