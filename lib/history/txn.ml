type status =
  | Committed
  | Aborted
  | Commit_pending
  | Abort_pending
  | Live

type t = {
  id : Event.tx;
  ops : Op.t array;
  first_index : int;
  last_index : int;
  status : status;
}

let is_t_complete info =
  match info.status with
  | Committed | Aborted -> true
  | Commit_pending | Abort_pending | Live -> false

let is_complete info =
  Array.for_all Op.is_complete info.ops

let tryc_inv_index info =
  Array.fold_left
    (fun acc (op : Op.t) ->
      match acc, op.Op.inv with
      | None, Event.Try_commit -> Some op.Op.inv_index
      | acc, _ -> acc)
    None info.ops

type read = {
  var : Event.tvar;
  value : Event.value;
  res_index : int;
  kind : [ `Internal of Event.value | `External ];
}

let reads info =
  (* Walk ops in program order, tracking the latest own write per variable
     to classify each read as internal or external. *)
  let buffer : (Event.tvar, Event.value) Hashtbl.t = Hashtbl.create 8 in
  let acc =
    Array.fold_left
      (fun acc (op : Op.t) ->
        match Op.read_value op, Op.write op with
        | Some (var, value), _ ->
            let res_index =
              match op.Op.res_index with
              | Some i -> i
              | None -> assert false (* read_value implies a response *)
            in
            let kind =
              match Hashtbl.find_opt buffer var with
              | Some v -> `Internal v
              | None -> `External
            in
            { var; value; res_index; kind } :: acc
        | None, Some (var, value) ->
            Hashtbl.replace buffer var value;
            acc
        | None, None -> acc)
      [] info.ops
  in
  List.rev acc

let writes info =
  let acc =
    Array.fold_left
      (fun acc op ->
        match Op.write op with Some wr -> wr :: acc | None -> acc)
      [] info.ops
  in
  List.rev acc

let final_writes info =
  let buffer : (Event.tvar, Event.value) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun (x, v) -> Hashtbl.replace buffer x v) (writes info);
  Hashtbl.fold (fun x v acc -> (x, v) :: acc) buffer []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let closing_writes info =
  (* Response index of the last successful write per variable — the
     "closing write" of the last-use-opacity decoration. *)
  let buffer : (Event.tvar, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun (op : Op.t) ->
      match Op.write op, op.Op.res_index with
      | Some (x, _), Some i -> Hashtbl.replace buffer x i
      | _, _ -> ())
    info.ops;
  Hashtbl.fold (fun x i acc -> (x, i) :: acc) buffer []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let read_set info =
  List.map (fun r -> r.var) (reads info)
  |> List.sort_uniq Int.compare

let write_set info =
  List.map fst (writes info) |> List.sort_uniq Int.compare

let commit_choices info =
  match info.status with
  | Committed -> [ true ]
  | Commit_pending -> [ true; false ]
  | Aborted | Abort_pending | Live -> [ false ]

let pp_status ppf status =
  Fmt.string ppf
    (match status with
    | Committed -> "committed"
    | Aborted -> "aborted"
    | Commit_pending -> "commit-pending"
    | Abort_pending -> "abort-pending"
    | Live -> "live")

let pp ppf info =
  Fmt.pf ppf "T%d[%a] %a" info.id pp_status info.status
    Fmt.(array ~sep:sp Op.pp)
    info.ops
