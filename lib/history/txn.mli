(** Per-transaction summaries extracted from a history.

    For each transaction [T_k] participating in a history [H], this module
    captures [H|k] in a digested form: its t-operations in program order, its
    span within [H], its completion status, and the reads/writes that matter
    for legality checking.  Summaries are computed once by {!History.info}
    and shared by all checkers. *)

type status =
  | Committed       (** [H|k] ends with [C_k] *)
  | Aborted         (** [H|k] ends with [A_k] *)
  | Commit_pending  (** [tryC_k] invoked, response pending *)
  | Abort_pending   (** [tryA_k] invoked, response pending *)
  | Live            (** none of the above: running or between operations *)

type t = {
  id : Event.tx;
  ops : Op.t array;       (** program order; only the last may be incomplete *)
  first_index : int;      (** position in the history of the first event *)
  last_index : int;       (** position in the history of the last event *)
  status : status;
}

val is_t_complete : t -> bool
(** [H|k] ends with [C_k] or [A_k]. *)

val is_complete : t -> bool
(** Every invoked t-operation has a response (the paper's "complete
    transaction"); a t-complete transaction is complete. *)

val tryc_inv_index : t -> int option
(** Position in the history of the invocation of [tryC_k], if invoked. *)

(** {1 Data used by legality checking} *)

(** A completed read that returned a value (not [A_k]). *)
type read = {
  var : Event.tvar;
  value : Event.value;
  res_index : int;  (** position in the history of the read's response *)
  kind : [ `Internal of Event.value | `External ];
      (** [`Internal v]: the transaction wrote [v] to [var] before this read
          (legality then requires [value = v], independently of any
          serialization).  [`External]: no preceding own write; the read must
          return the latest committed value at the transaction's place in a
          serialization. *)
}

val reads : t -> read list
(** Completed value-returning reads, in program order. *)

val writes : t -> (Event.tvar * Event.value) list
(** Successful writes in program order (a variable may repeat). *)

val final_writes : t -> (Event.tvar * Event.value) list
(** Latest successful write per variable — the update the transaction
    installs if it commits.  Sorted by variable. *)

val closing_writes : t -> (Event.tvar * int) list
(** Response index (position in the history) of the {e closing write} per
    variable: the transaction's last successful write to that variable in
    this history.  This is the per-location last-use decoration of
    Siek–Wojciechowski's last-use opacity — once the closing write on [x]
    has responded, the transaction will never change [x] again, so an
    early-release TM may publish it.  Sorted by variable. *)

val read_set : t -> Event.tvar list
(** Variables read by completed value-returning reads (sorted, deduplicated):
    the paper's [Rset]. *)

val write_set : t -> Event.tvar list
(** Variables successfully written (sorted, deduplicated): the paper's
    [Wset]. *)

val commit_choices : t -> bool list
(** The commit decisions available to a completion of the history
    (Definition 2): a committed transaction must commit, a transaction with a
    pending [tryC] may commit or abort, every other non-committed transaction
    aborts. *)

val pp : Format.formatter -> t -> unit
val pp_status : Format.formatter -> status -> unit
