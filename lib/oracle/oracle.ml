module Du = Tm_checker.Du_opacity
module Lu = Tm_checker.Last_use_opacity
module Conflict_graph = Tm_checker.Conflict_graph
module Monitor = Tm_checker.Monitor
module Sharded = Tm_checker.Sharded_monitor
module Verdict = Tm_checker.Verdict
module Serialization = Tm_checker.Serialization
module Shrink = Tm_checker.Shrink
module Clock = Tm_stm.Clock

(* --- findings ----------------------------------------------------------- *)

type finding_kind =
  | Verdict_mismatch
  | Bad_certificate
  | Prefix_violation
  | Containment_violation
  | Crash

type finding = {
  f_kind : finding_kind;
  f_path_a : string;
  f_path_b : string;
  f_detail : string;
}

let kind_to_string = function
  | Verdict_mismatch -> "verdict-mismatch"
  | Bad_certificate -> "bad-certificate"
  | Prefix_violation -> "prefix-closure-violation"
  | Containment_violation -> "containment-violation"
  | Crash -> "crash"

let pp_finding ppf f =
  Fmt.pf ppf "%s [%s/%s]: %s" (kind_to_string f.f_kind) f.f_path_a f.f_path_b
    f.f_detail

type timing = { t_path : string; t_seconds : float; t_events : int }

type lockstep_result = {
  findings : finding list;
  timings : timing list;
  unknown : bool;
  closure_gap : bool;
}

(* Every verdict source reduces to three-valued agreement.  [Unk3] (a
   budget-bounded search gave up) never counts as a discrepancy: the paths
   search differently, so their budgets exhaust differently. *)
type v3 = Ok3 | Bad3 | Unk3

let v3_name = function Ok3 -> "ok" | Bad3 -> "violation" | Unk3 -> "unknown"

let v3_of_verdict = function
  | Verdict.Sat _ -> Ok3
  | Verdict.Unsat _ -> Bad3
  | Verdict.Unknown _ -> Unk3

let v3_of_outcome = function
  | `Ok -> Ok3
  | `Violation _ -> Bad3
  | `Budget _ -> Unk3

(* Prefix lengths at which a verdict can change: after every response, plus
   the full length (a trailing invocation still extends the history). *)
let boundaries h =
  let n = History.length h in
  if n = 0 then []
  else
    let bs = History.response_indices h in
    (* [bs] is ascending with one entry per response, so its last element
       is [n] iff the final event is a response — an O(1) test on the last
       event instead of an O(n) walk to the last cons cell *)
    if Event.is_res (History.get h (n - 1)) then bs
    else List.rev (n :: List.rev bs)

(* --- the lockstep oracle ------------------------------------------------- *)

let lockstep ?(max_nodes = 2_000_000) ?submit h =
  let n = History.length h in
  let findings = ref [] and timings = ref [] in
  let add kind a b detail =
    findings :=
      { f_kind = kind; f_path_a = a; f_path_b = b; f_detail = detail }
      :: !findings
  in
  (* Each path runs under its own clock and its own exception barrier: a
     raising checker is itself a classified divergence, not a soak crash. *)
  let timed path f =
    let t0 = Clock.now () in
    let r = try Ok (f ()) with e -> Error e in
    timings :=
      { t_path = path; t_seconds = Clock.now () -. t0; t_events = n }
      :: !timings;
    match r with
    | Ok v -> Some v
    | Error e ->
        add Crash path "-" (Printexc.to_string e);
        None
  in
  let validate_cert path hp cert =
    match Serialization.validate ~claim:Serialization.Du_opaque hp cert with
    | Ok () -> ()
    | Error why ->
        add Bad_certificate path "-"
          (Fmt.str "prefix %d: %s" (History.length hp) why)
  in
  (* Batch paths: the exact search and the conflict-order fast path, both on
     the full history. *)
  let batch =
    timed "batch" (fun () ->
        let v = Du.check ~max_nodes h in
        (match v with Verdict.Sat c -> validate_cert "batch" h c | _ -> ());
        v3_of_verdict v)
  in
  let fast =
    timed "fast" (fun () ->
        let v = Du.check_fast ~max_nodes h in
        (match v with Verdict.Sat c -> validate_cert "fast" h c | _ -> ());
        v3_of_verdict v)
  in
  (* Conflict-graph backend on the full history.  [Ambiguous] maps to
     [Unk3]: on duplicate-value histories the graph soundly declines rather
     than guessing, and [Unk3] never counts as a discrepancy. *)
  let graph =
    timed "graph" (fun () ->
        match Conflict_graph.check h with
        | Conflict_graph.Sat c ->
            validate_cert "graph" h c;
            Ok3
        | Conflict_graph.Unsat _ -> Bad3
        | Conflict_graph.Ambiguous _ -> Unk3)
  in
  (* Incremental path: one [check_inc] per response boundary over a
     persistent context, stopping at the first non-ok verdict (the
     prefix-closure re-checks below cover what follows). *)
  let bs = boundaries h in
  let validate_prefix_certs = n <= 160 in
  let inc_first_bad = ref None in
  let inc_verdicts = ref [] in
  let inc =
    timed "inc" (fun () ->
        let inc = Du.incremental () in
        let rec go last = function
          | [] -> last
          | b :: rest -> (
              let hp = History.prefix h b in
              let v, _stats = Du.check_inc ~max_nodes inc hp in
              (match v with
              | Verdict.Sat c when validate_prefix_certs ->
                  validate_cert "inc" hp c
              | _ -> ());
              let s = v3_of_verdict v in
              inc_verdicts := (b, s) :: !inc_verdicts;
              match s with
              | Ok3 -> go s rest
              | Bad3 ->
                  inc_first_bad := Some b;
                  s
              | Unk3 -> s)
        in
        go Ok3 bs)
  in
  (* Online monitor, event by event; its per-event outcomes line up with
     the incremental path's per-boundary verdicts. *)
  let mon_by_event = Array.make (max n 1) Unk3 in
  let mon_first_bad = ref None in
  let monitor =
    timed "monitor" (fun () ->
        let m = Monitor.create ~max_nodes () in
        List.iteri
          (fun i ev -> mon_by_event.(i) <- v3_of_outcome (Monitor.push m ev))
          (History.to_list h);
        (match Monitor.status m with
        | `Ok -> (
            match Monitor.certificate m with
            | Some c -> validate_cert "monitor" h c
            | None -> add Bad_certificate "monitor" "-" "ok without certificate")
        | `Violation _ | `Budget _ -> ());
        mon_first_bad := Monitor.violation_index m;
        v3_of_outcome (Monitor.status m))
  in
  (* Sharded monitor: the two-phase certify/stitch path, certified at a
     handful of intermediate boundaries and at the end — intermediate
     certifies exercise the frontier-incremental stitch validation, the
     final one settles the verdict.  Escalation adopts a monitor with the
     same budget wholesale, so the designed invariant is parity with the
     monitor leg: final verdict, and first violating prefix when both
     blame one. *)
  let shd_first_bad = ref None in
  let sharded =
    timed "sharded" (fun () ->
        let m = Sharded.create ~max_nodes ~nshards:4 () in
        let certify_at =
          let stride = max 1 (List.length bs / 6) in
          List.filteri (fun i _ -> i mod stride = stride - 1) bs
        in
        List.iteri
          (fun i ev ->
            ignore (Sharded.push m ev);
            (* lint: allow quadratic-hot-path — certify_at has ≤ 6 points *)
            if List.mem (i + 1) certify_at then ignore (Sharded.certify m))
          (History.to_list h);
        let v = Sharded.certify m in
        shd_first_bad := Sharded.violation_index m;
        v3_of_outcome v)
  in
  (* Last-use-opacity legs: the batch checker and the per-boundary
     incremental one.  The criterion is not prefix-closed, so the
     incremental path is exact per prefix (never sticky) and every
     boundary gets its own verdict; the verdict at the last boundary is
     the verdict on the full history, which must match the batch leg. *)
  let validate_lu_cert path hp cert =
    match Serialization.validate ~claim:Serialization.Last_use hp cert with
    | Ok () -> ()
    | Error why ->
        add Bad_certificate path "-"
          (Fmt.str "prefix %d: %s" (History.length hp) why)
  in
  let lu_v3 = function
    | Lu.Sat _ -> Ok3
    | Lu.Unsat _ -> Bad3
    | Lu.Ambiguous _ -> Unk3
  in
  let lu =
    timed "lu" (fun () ->
        let v = Lu.check ~max_nodes h in
        (match v with Lu.Sat c -> validate_lu_cert "lu" h c | _ -> ());
        lu_v3 v)
  in
  let lu_inc_verdicts = ref [] in
  let lu_inc =
    timed "lu-inc" (fun () ->
        let inc = Lu.incremental () in
        List.fold_left
          (fun _ b ->
            let hp = History.prefix h b in
            let v, _stats = Lu.check_inc ~max_nodes inc hp in
            (match v with
            | Lu.Sat c when validate_prefix_certs ->
                validate_lu_cert "lu-inc" hp c
            | _ -> ());
            let s = lu_v3 v in
            lu_inc_verdicts := (b, s) :: !lu_inc_verdicts;
            s)
          Ok3 bs)
  in
  (* Cross-checks.  Any two decided paths must agree. *)
  let cmp a b va vb ctx =
    match va, vb with
    | Some va, Some vb when va <> Unk3 && vb <> Unk3 && va <> vb ->
        add Verdict_mismatch a b
          (Fmt.str "%s%s=%s %s=%s" ctx a (v3_name va) b (v3_name vb))
    | _ -> ()
  in
  cmp "batch" "fast" batch fast "";
  cmp "batch" "graph" batch graph "";
  cmp "inc" "monitor" inc monitor "";
  cmp "monitor" "sharded" monitor sharded "";
  cmp "lu" "lu-inc" lu lu_inc "";
  (* Containment as an executable theorem: du-opaque ⇒ last-use-opaque
     (optional candidate visibility makes every du witness verbatim a
     last-use witness).  Checked on the full history and, against the du
     incremental path, per boundary — the sticky du path stops at its
     first violation, so missing boundaries are simply not compared. *)
  (match batch, lu with
  | Some Ok3, Some Bad3 ->
      add Containment_violation "batch" "lu"
        "du-opaque but not last-use-opaque"
  | _ -> ());
  List.iter
    (fun (b, vl) ->
      (* lint: allow quadratic-hot-path — one verdict per certify point, ≤ 6 *)
      match List.assoc_opt b !inc_verdicts with
      | Some Ok3 when vl = Bad3 ->
          add Containment_violation "inc" "lu-inc"
            (Fmt.str "prefix %d: du-opaque but not last-use-opaque" b)
      | _ -> ())
    !lu_inc_verdicts;
  (* Per-prefix agreement: the monitor's outcome after event [b-1] is its
     verdict on the prefix of length [b], which the incremental path judged
     independently. *)
  if monitor <> None then
    List.iter
      (fun (b, vi) ->
        let vm = mon_by_event.(b - 1) in
        if vi <> Unk3 && vm <> Unk3 && vi <> vm then
          add Verdict_mismatch "inc" "monitor"
            (Fmt.str "prefix %d: inc=%s monitor=%s" b (v3_name vi)
               (v3_name vm)))
      !inc_verdicts;
  (* Both violating: they must blame the same first prefix. *)
  (match !inc_first_bad, !mon_first_bad with
  | Some i, Some j when i <> j && inc = Some Bad3 && monitor = Some Bad3 ->
      add Verdict_mismatch "inc" "monitor"
        (Fmt.str "first violating prefix: inc=%d monitor=%d" i j)
  | _ -> ());
  (match !mon_first_bad, !shd_first_bad with
  | Some i, Some j when i <> j && monitor = Some Bad3 && sharded = Some Bad3
    ->
      add Verdict_mismatch "monitor" "sharded"
        (Fmt.str "first violating prefix: monitor=%d sharded=%d" i j)
  | _ -> ());
  (* The sticky paths decide {e prefix} du-opacity — du-opacity of every
     response-boundary prefix, i.e. the safety closure of du-opacity.  Under
     unique writes that coincides with the batch verdict (Corollary 2); with
     duplicate written values an extension can resurrect a dead prefix
     ({!Tm_figures.Findings.corollary2_gap}, found by this harness), so a
     sticky violation against a batch acceptance is arbitrated by re-judging
     the blamed prefix from scratch:
     - the fresh check accepts it: the incremental state was wrong — finding;
     - it confirms on a unique-writes history: Corollary 2 itself is
       violated — finding;
     - it confirms with duplicate writes: a benign closure gap, reported as
       a statistic, not a discrepancy. *)
  let gap = ref false in
  let arb_unknown = ref false in
  (match !inc_first_bad, !mon_first_bad with
  | None, None -> ()
  | (Some _ as fb), _ | None, (Some _ as fb) ->
      let i = Option.get fb in
      let later =
        List.filteri (fun idx _ -> idx < 2) (List.filter (fun b -> b > i) bs)
      in
      ignore
        (timed "closure" (fun () ->
             let unique = Tm_checker.Polygraph.unique_writes h in
             let resurrection b =
               if unique then
                 add Prefix_violation "batch" "-"
                   (Fmt.str
                      "prefix %d violates but extension %d is accepted on a \
                       unique-writes history (Corollary 2)"
                      i b)
               else gap := true
             in
             match Du.check ~max_nodes (History.prefix h i) with
             | Verdict.Sat _ ->
                 add Verdict_mismatch "closure"
                   (if !inc_first_bad <> None then "inc" else "monitor")
                   (Fmt.str
                      "prefix %d: a fresh check accepts the prefix the \
                       sticky paths blame"
                      i)
             | Verdict.Unknown _ -> arb_unknown := true
             | Verdict.Unsat _ ->
                 List.iter
                   (fun b ->
                     match Du.check ~max_nodes (History.prefix h b) with
                     | Verdict.Sat _ -> resurrection b
                     | Verdict.Unsat _ | Verdict.Unknown _ -> ())
                   later;
                 (* The batch acceptance of the full history is itself the
                    extension that outlives the dead prefix. *)
                 (match batch with
                 | Some Ok3 when i < n -> resurrection n
                 | _ -> ()))));
  (* Batch (du-opacity of the full history) against the sticky paths
     (its safety closure): a sticky acceptance with a batch violation is
     always wrong — the full history is the last prefix.  The converse
     was arbitrated above. *)
  List.iter
    (fun (name, v) ->
      match batch, v with
      | Some Bad3, Some Ok3 ->
          add Verdict_mismatch "batch" name
            (Fmt.str
               "batch=violation %s=ok (the full history is itself a prefix)"
               name)
      | _ -> ())
    [ ("inc", inc); ("monitor", monitor); ("sharded", sharded) ];
  (* Loopback service round-trip on the final verdict. *)
  (match submit with
  | None -> ()
  | Some f -> (
      match timed "serve" (fun () -> v3_of_outcome (f h)) with
      | Some vs -> cmp "monitor" "serve" monitor (Some vs) ""
      | None -> ()));
  let unknown =
    !arb_unknown
    || List.exists
         (fun v -> v = Some Unk3)
         [ batch; fast; inc; monitor; sharded; lu; lu_inc ]
    || List.exists (fun (_, v) -> v = Unk3) !inc_verdicts
    || List.exists (fun (_, v) -> v = Unk3) !lu_inc_verdicts
    || Array.exists (fun v -> v = Unk3) (Array.sub mon_by_event 0 n)
  in
  {
    findings = List.rev !findings;
    timings = !timings;
    unknown;
    closure_gap = !gap;
  }

(* --- history sources ----------------------------------------------------- *)

type source = [ `Gen | `Stm of string | `Faults of string ]

let default_sources =
  [
    `Gen; `Stm "tl2"; `Gen; `Stm "norec"; `Faults "tl2"; `Gen;
    `Stm "pessimistic"; `Faults "norec"; `Stm "early-release";
    `Stm "partial-abort"; `Faults "early-release";
  ]

let source_tag = function
  | `Gen -> "gen"
  | `Stm stm -> stm
  | `Faults stm -> "faults-" ^ stm

let source_of_tag t =
  let stm_of name =
    match Tm_stm.Registry.find name with
    | Some _ -> Ok name
    | None -> Error (Fmt.str "unknown STM algorithm %S" name)
  in
  if t = "gen" then Ok `Gen
  else
    match String.index_opt t '-' with
    | Some 6 when String.sub t 0 6 = "faults" ->
        Result.map
          (fun s -> `Faults s)
          (stm_of (String.sub t 7 (String.length t - 7)))
    | _ -> Result.map (fun s -> `Stm s) (stm_of t)

(* Shape parameters are themselves drawn from the seed, so a soak sweeps
   transaction counts, concurrency degrees, value modes, contention levels
   and fault plans without any extra configuration surface. *)
let gen_params ~seed =
  let st = Random.State.make [| seed; 0x9e37 |] in
  let pick a = a.(Random.State.int st (Array.length a)) in
  {
    Gen.default with
    Gen.n_txns = 4 + Random.State.int st 9;
    n_vars = 2 + Random.State.int st 3;
    n_threads = 2 + Random.State.int st 3;
    max_ops = 2 + Random.State.int st 4;
    mode =
      (if Random.State.int st 4 = 0 then `Random_values else `Snapshot_values);
    pending_ratio = pick [| 0.0; 0.1; 0.25 |];
  }

let stm_params ~seed =
  let st = Random.State.make [| seed; 0x85eb |] in
  {
    Tm_stm.Workload.default with
    Tm_stm.Workload.n_threads = 2 + Random.State.int st 3;
    txns_per_thread = 2 + Random.State.int st 3;
    ops_per_txn = 2 + Random.State.int st 3;
    n_vars = 2 + Random.State.int st 3;
    zipf_theta = (if Random.State.int st 2 = 0 then 0.0 else 0.9);
  }

let produce src ~seed =
  match src with
  | `Gen -> Gen.run_seed (gen_params ~seed) seed
  | `Stm stm ->
      (Tm_sim.Runner.run ~stm ~params:(stm_params ~seed) ~seed ())
        .Tm_sim.Runner.history
  | `Faults stm ->
      let params = stm_params ~seed in
      let spec =
        Tm_stm.Faults.sample ~kinds:Tm_stm.Faults.all_kinds
          ~n_threads:params.Tm_stm.Workload.n_threads
          ~horizon:
            (params.Tm_stm.Workload.txns_per_thread
            * (params.Tm_stm.Workload.ops_per_txn + 1))
          ~seed ()
      in
      (Tm_sim.Runner.run ~faults:spec ~stm ~params ~seed ())
        .Tm_sim.Runner.history

(* --- the soak runner ----------------------------------------------------- *)

type discrepancy = {
  d_iter : int;
  d_seed : int;
  d_source : string;
  d_findings : finding list;
  d_history : History.t;
  d_shrunk : History.t;
  d_shrink_checks : int;
}

type config = {
  base_seed : int;
  iters : int option;
  seconds : float option;
  jobs : int;
  max_nodes : int;
  sources : source list;
  serve : Tm_service.Wire.addr option;
  corpus_dir : string option;
  log : string -> unit;
}

let config ?(base_seed = 1) ?iters ?seconds ?(jobs = 1)
    ?(max_nodes = 2_000_000) ?(sources = default_sources) ?serve ?corpus_dir
    ?(log = ignore) () =
  if jobs <= 0 then invalid_arg "Oracle.config: jobs must be positive";
  if sources = [] then invalid_arg "Oracle.config: no sources";
  (* Unbounded soaks must be asked for explicitly with [seconds]. *)
  let iters =
    match iters, seconds with None, None -> Some 200 | _ -> iters
  in
  { base_seed; iters; seconds; jobs; max_nodes; sources; serve; corpus_dir; log }

type path_stat = { p_path : string; p_seconds : float; p_events : int }

type report = {
  r_iterations : int;
  r_events : int;
  r_wall_s : float;
  r_unknowns : int;
  r_closure_gaps : int;
  r_paths : path_stat list;
  r_discrepancies : discrepancy list;
  r_shrink_checks : int;
  r_corpus_written : string list;
}

type acc = {
  mutable a_iters : int;
  mutable a_events : int;
  mutable a_unknowns : int;
  mutable a_closure_gaps : int;
  mutable a_discrepancies : discrepancy list;
  mutable a_shrink_checks : int;
  a_paths : (string, float * int) Hashtbl.t;
}

let repro_text d =
  let base = d.d_seed - d.d_iter in
  let b = Buffer.create 512 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# tm soak discrepancy — deterministic repro";
  line "# source: %s  seed: %d  iter: %d" d.d_source d.d_seed d.d_iter;
  line "# kinds: %s"
    (String.concat ", "
       (List.sort_uniq String.compare
          (List.map (fun f -> kind_to_string f.f_kind) d.d_findings)));
  List.iter (fun f -> line "#   %s" (Fmt.str "%a" pp_finding f)) d.d_findings;
  line "# shrunk: %d events (from %d; %d lockstep checks)"
    (History.length d.d_shrunk)
    (History.length d.d_history)
    d.d_shrink_checks;
  line "# re-derive: tm soak --seed %d --iters %d" base (d.d_iter + 1);
  line "# the body below parses as a history; corpus/soak/ is replayed by `dune runtest`";
  Buffer.add_string b (Parse.to_text d.d_shrunk);
  Buffer.add_char b '\n';
  Buffer.contents b

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_corpus ~dir d =
  mkdir_p dir;
  let path = Filename.concat dir (Fmt.str "%s-s%d.repro" d.d_source d.d_seed) in
  let oc = open_out path in
  output_string oc (repro_text d);
  close_out oc;
  path

let run cfg =
  let t0 = Clock.now () in
  let deadline = Option.map (fun s -> t0 +. s) cfg.seconds in
  let next = Atomic.make 0 in
  let mu = Mutex.create () in
  let acc =
    {
      a_iters = 0;
      a_events = 0;
      a_unknowns = 0;
      a_closure_gaps = 0;
      a_discrepancies = [];
      a_shrink_checks = 0;
      a_paths = Hashtbl.create 8;
    }
  in
  let sources = Array.of_list cfg.sources in
  let n_sources = Array.length sources in
  let worker () =
    (* One loopback connection per worker: the client is not thread-safe,
       and per-worker sessions keep the server path genuinely concurrent. *)
    let client =
      match cfg.serve with
      | None -> None
      | Some addr -> (
          try Some (Tm_service.Client.connect addr)
          with e ->
            cfg.log
              (Fmt.str "soak: loopback connect failed (%s); serve path off"
                 (Printexc.to_string e));
            None)
    in
    let submit =
      Option.map
        (fun client ->
          let sid = ref 0 in
          fun h ->
            incr sid;
            match
              (Tm_service.Client.submit ~session:!sid client h)
                .Tm_service.Protocol.status
            with
            | Tm_service.Protocol.S_ok -> `Ok
            | Tm_service.Protocol.S_violation why -> `Violation why
            | Tm_service.Protocol.S_budget why -> `Budget why)
        client
    in
    let rec loop () =
      let expired =
        match deadline with Some d -> Clock.now () > d | None -> false
      in
      if not expired then begin
        let i = Atomic.fetch_and_add next 1 in
        let within = match cfg.iters with Some n -> i < n | None -> true in
        if within then begin
          let seed = cfg.base_seed + i in
          let src = sources.(i mod n_sources) in
          let tag = source_tag src in
          let h = produce src ~seed in
          let r = lockstep ~max_nodes:cfg.max_nodes ?submit h in
          let disc =
            if r.findings = [] then None
            else begin
              cfg.log
                (Fmt.str "soak: DISCREPANCY at iter %d (%s, seed %d): %s" i
                   tag seed
                   (String.concat "; "
                      (List.map (Fmt.str "%a" pp_finding) r.findings)));
              (* Minimise under "the paths still disagree" — any
                 disagreement, not necessarily the original one, so the
                 shrink can cross from a symptom to its root cause.  The
                 serve path is excluded: wire round-trips are slow and the
                 monitor path already covers the same verdict source. *)
              let checks = ref 0 in
              let bad h' =
                incr checks;
                (lockstep ~max_nodes:cfg.max_nodes h').findings <> []
              in
              let shrunk =
                match Shrink.minimal ~bad h with Some s -> s | None -> h
              in
              Some
                {
                  d_iter = i;
                  d_seed = seed;
                  d_source = tag;
                  d_findings = r.findings;
                  d_history = h;
                  d_shrunk = shrunk;
                  d_shrink_checks = !checks;
                }
            end
          in
          Mutex.lock mu;
          acc.a_iters <- acc.a_iters + 1;
          acc.a_events <- acc.a_events + History.length h;
          if r.unknown then acc.a_unknowns <- acc.a_unknowns + 1;
          if r.closure_gap then acc.a_closure_gaps <- acc.a_closure_gaps + 1;
          List.iter
            (fun t ->
              let s, e =
                try Hashtbl.find acc.a_paths t.t_path
                with Not_found -> (0., 0)
              in
              Hashtbl.replace acc.a_paths t.t_path
                (s +. t.t_seconds, e + t.t_events))
            r.timings;
          (match disc with
          | Some d ->
              acc.a_discrepancies <- d :: acc.a_discrepancies;
              acc.a_shrink_checks <- acc.a_shrink_checks + d.d_shrink_checks
          | None -> ());
          Mutex.unlock mu;
          loop ()
        end
      end
    in
    loop ();
    Option.iter Tm_service.Client.close client
  in
  if cfg.jobs = 1 then worker ()
  else
    Array.iter Domain.join (Array.init cfg.jobs (fun _ -> Domain.spawn worker));
  let discrepancies =
    List.sort (fun a b -> Int.compare a.d_iter b.d_iter) acc.a_discrepancies
  in
  let written =
    match cfg.corpus_dir with
    | None -> []
    | Some dir -> List.map (fun d -> write_corpus ~dir d) discrepancies
  in
  let paths =
    Hashtbl.fold
      (fun p (s, e) l -> { p_path = p; p_seconds = s; p_events = e } :: l)
      acc.a_paths []
    |> List.sort (fun a b -> String.compare a.p_path b.p_path)
  in
  {
    r_iterations = acc.a_iters;
    r_events = acc.a_events;
    r_wall_s = Clock.now () -. t0;
    r_unknowns = acc.a_unknowns;
    r_closure_gaps = acc.a_closure_gaps;
    r_paths = paths;
    r_discrepancies = discrepancies;
    r_shrink_checks = acc.a_shrink_checks;
    r_corpus_written = written;
  }

(* --- JSON report ---------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_json cfg r =
  let per_s seconds events =
    if seconds <= 0. then 0. else float_of_int events /. seconds
  in
  let path_json p =
    Fmt.str
      {|    {"path": %S, "seconds": %.6f, "events": %d, "events_per_s": %.1f}|}
      p.p_path p.p_seconds p.p_events
      (per_s p.p_seconds p.p_events)
  in
  let disc_json d =
    Fmt.str
      {|    {"iter": %d, "seed": %d, "source": %S, "kinds": [%s],
     "events": %d, "shrunk_events": %d, "shrink_checks": %d,
     "text": "%s"}|}
      d.d_iter d.d_seed d.d_source
      (String.concat ", "
         (List.sort_uniq String.compare
            (List.map
               (fun f -> Fmt.str "%S" (kind_to_string f.f_kind))
               d.d_findings)))
      (History.length d.d_history)
      (History.length d.d_shrunk)
      d.d_shrink_checks
      (json_escape (Parse.to_text d.d_shrunk))
  in
  let opt_int = function Some i -> string_of_int i | None -> "null" in
  let opt_float = function Some f -> Fmt.str "%.1f" f | None -> "null" in
  Fmt.str
    {|{"benchmark": "soak",
 "config": {"seed": %d, "iters": %s, "seconds": %s, "jobs": %d,
            "max_nodes": %d, "serve": %b,
            "sources": [%s]},
 "iterations": %d, "events": %d, "wall_seconds": %.3f, "unknowns": %d,
 "closure_gaps": %d,
 "paths": [
%s
 ],
 "discrepancies": [
%s
 ],
 "shrink_checks": %d,
 "corpus": [%s]}
|}
    cfg.base_seed (opt_int cfg.iters) (opt_float cfg.seconds) cfg.jobs
    cfg.max_nodes
    (cfg.serve <> None)
    (String.concat ", "
       (List.map (fun s -> Fmt.str "%S" (source_tag s)) cfg.sources))
    r.r_iterations r.r_events r.r_wall_s r.r_unknowns r.r_closure_gaps
    (String.concat ",\n" (List.map path_json r.r_paths))
    (String.concat ",\n" (List.map disc_json r.r_discrepancies))
    r.r_shrink_checks
    (String.concat ", "
       (List.map (fun p -> Fmt.str "%S" p) r.r_corpus_written))
