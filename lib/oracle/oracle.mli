(** Differential soak testing of the du-opacity checker paths ([tm soak]).

    The repo decides du-opacity in several independent ways — the batch
    {!Tm_checker.Du_opacity.check}, its conflict-order fast path
    [check_fast], the incremental [check_inc], the online
    {!Tm_checker.Monitor}, and the [tm serve] wire path.  The batch paths
    answer "is this history du-opaque?"; the incremental and monitor paths
    are sticky and answer "is {e every prefix} du-opaque?" — the safety
    closure of du-opacity.  Under the paper's unique-writes assumption the
    two questions coincide (Corollary 2) and every decided pair must agree;
    with duplicate written values an extension can resurrect a dead prefix
    ({!Tm_figures.Findings.corollary2_gap} — found by this very harness),
    which the oracle verifies from scratch and reports as a benign
    [closure_gap], not a discrepancy.  This module is the lockstep oracle
    that hunts for disagreements at scale: it drives seed-deterministic
    history sources (random generation, recorded STM executions,
    fault-injected campaigns) through all paths, classifies any divergence,
    auto-minimises it with {!Tm_checker.Shrink.minimal} under the predicate
    "the paths still disagree", and persists a deterministic repro into the
    regression corpus replayed by [dune runtest].

    Every verdict source is reduced to three-valued agreement: [ok],
    [violation], or [unknown] (a budget-bounded search gave up).  [unknown]
    is never a discrepancy — paths search differently, so their budgets
    exhaust differently — but any decided pair that differs is. *)

(** {1 Lockstep checking} *)

type finding_kind =
  | Verdict_mismatch  (** two decided paths disagree (possibly mid-stream) *)
  | Bad_certificate  (** a positive verdict's certificate fails validation *)
  | Prefix_violation
      (** prefix-closure broken where Corollary 2 applies: on a
          unique-writes history, a later prefix is accepted after an
          independently confirmed violating prefix *)
  | Containment_violation
      (** the criterion lattice broken: a history (or boundary prefix)
          judged du-opaque but not last-use-opaque — du-opaque ⇒
          last-use-opaque is a theorem of the optional-visibility
          rendering, so this always convicts a checker *)
  | Crash  (** a checker path raised *)

type finding = {
  f_kind : finding_kind;
  f_path_a : string;
  f_path_b : string;  (** ["-"] when the finding involves a single path *)
  f_detail : string;
}

val kind_to_string : finding_kind -> string
val pp_finding : Format.formatter -> finding -> unit

type timing = { t_path : string; t_seconds : float; t_events : int }

type lockstep_result = {
  findings : finding list;  (** empty = all paths agree everywhere *)
  timings : timing list;
  unknown : bool;  (** some path exhausted its search budget *)
  closure_gap : bool;
      (** a confirmed non-du-opaque prefix of an accepted duplicate-writes
          history — legitimate non-prefix-closure, not a discrepancy *)
}

val boundaries : History.t -> int list
(** Ascending prefix lengths at which a verdict can change: one per
    response, plus the full length when the history ends mid-operation
    (a trailing invocation still extends the history).  O(n) and shares
    {!History.response_indices}'s list when the final event is a
    response — the lockstep driver walks it per history, and the test
    suite timing-guards it at ≥2000 responses. *)

val lockstep :
  ?max_nodes:int ->
  ?submit:(History.t -> [ `Ok | `Violation of string | `Budget of string ]) ->
  History.t ->
  lockstep_result
(** Run every checker path over [h] in lockstep and cross-check:

    - batch [Du_opacity.check] and [Du_opacity.check_fast] on the full
      history (certificates validated);
    - the conflict-graph backend ({!Tm_checker.Conflict_graph.check}) on
      the full history, certificate validated and verdict compared
      against the batch search — [Ambiguous] counts as undecided, never
      as a discrepancy;
    - [Du_opacity.check_inc] over a fresh incremental context, one call per
      response boundary (certificates validated on small histories);
    - a fresh {!Tm_checker.Monitor} fed event by event, compared against
      the incremental path {e at every boundary} and on the index of the
      first violating prefix;
    - a location-sharded {!Tm_checker.Sharded_monitor} (4 shards),
      certified at a handful of intermediate boundaries — exercising the
      frontier-incremental stitch validation — and at the end, compared
      against the monitor on the final verdict and, when both blame a
      violating prefix, on its index;
    - prefix-closure as an executable invariant: the first violating prefix
      is re-judged from scratch (a refutation convicts the incremental
      state), and boundaries after it are re-checked — a later acceptance
      is a [Prefix_violation] on unique-writes histories and a benign
      [closure_gap] otherwise;
    - optionally [submit] — a loopback [tm serve] round-trip — on the final
      verdict;
    - the last-use-opacity legs: batch {!Tm_checker.Last_use_opacity.check}
      (certificate validated under claim [Last_use]) against its
      per-boundary incremental twin — exact per prefix, never sticky,
      since the criterion is not prefix-closed — plus the containment
      theorem du-opaque ⇒ last-use-opaque as an executable cross-criterion
      invariant, on the full history and per decided boundary
      ([Containment_violation] when it fails).

    The empty finding list means all paths agree everywhere.  [submit]
    exceptions are classified as [Crash] on the [serve] path. *)

(** {1 History sources} *)

type source = [ `Gen | `Stm of string | `Faults of string ]

val default_sources : source list
(** [`Gen], recorded tl2/norec/pessimistic/early-release/partial-abort
    executions, and fault-injected tl2/norec/early-release campaigns.
    The early-release runs routinely separate the criteria (du-violation,
    last-use-opaque), exercising the containment cross-check on the
    interesting side. *)

val source_tag : source -> string
val source_of_tag : string -> (source, string) result

val produce : source -> seed:int -> History.t
(** The history this source yields for this seed — deterministic: same
    source and seed, same history, byte for byte.  Generation parameters
    (transaction counts, variable counts, value modes, fault plans) are
    themselves drawn deterministically from the seed. *)

(** {1 The soak runner} *)

type discrepancy = {
  d_iter : int;
  d_seed : int;
  d_source : string;
  d_findings : finding list;
  d_history : History.t;
  d_shrunk : History.t;  (** still-disagreeing minimised core *)
  d_shrink_checks : int;  (** lockstep evaluations spent shrinking *)
}

type config = {
  base_seed : int;
  iters : int option;  (** stop after this many iterations *)
  seconds : float option;  (** stop after this much wall-clock time *)
  jobs : int;  (** domain-pool width *)
  max_nodes : int;  (** per-search budget for every path *)
  sources : source list;  (** iteration [i] uses [sources.(i mod len)] *)
  serve : Tm_service.Wire.addr option;
      (** when set, every history additionally round-trips through a
          loopback [tm serve] session at this address *)
  corpus_dir : string option;  (** persist shrunk repros here *)
  log : string -> unit;
}

val config :
  ?base_seed:int ->
  ?iters:int ->
  ?seconds:float ->
  ?jobs:int ->
  ?max_nodes:int ->
  ?sources:source list ->
  ?serve:Tm_service.Wire.addr ->
  ?corpus_dir:string ->
  ?log:(string -> unit) ->
  unit ->
  config
(** Defaults: seed 1, 200 iterations (when no [seconds] bound is given
    either), 1 job, 2M-node budget, {!default_sources}, no loopback, no
    corpus persistence. *)

type path_stat = { p_path : string; p_seconds : float; p_events : int }

type report = {
  r_iterations : int;
  r_events : int;  (** total events across all histories checked *)
  r_wall_s : float;
  r_unknowns : int;  (** iterations where some path ran out of budget *)
  r_closure_gaps : int;
      (** iterations whose history legitimately escapes prefix-closure
          (duplicate writes; see {!lockstep_result.closure_gap}) *)
  r_paths : path_stat list;
  r_discrepancies : discrepancy list;
  r_shrink_checks : int;
  r_corpus_written : string list;
}

val run : config -> report
(** Iteration [i] checks [produce sources.(i mod len) ~seed:(base_seed + i)]
    — each iteration's outcome depends only on its index, so a soak is
    replayable from its seed line regardless of [jobs].  Discrepancies are
    shrunk under "the paths still disagree" and, when [corpus_dir] is set,
    persisted as [.repro] files whose body parses as a history ([#] lines
    are comments carrying seed, source, and classification). *)

val repro_text : discrepancy -> string
(** The corpus entry: comment header plus the shrunk history in DSL text. *)

val write_corpus : dir:string -> discrepancy -> string
(** Write {!repro_text} under [dir] (created if missing); returns the path. *)

val report_json : config -> report -> string
(** The JSON report uploaded by CI: configuration, histories and events
    checked, per-path events/s, discrepancies (with shrunk cores), shrink
    stats, corpus paths. *)
