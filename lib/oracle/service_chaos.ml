module Monitor = Tm_checker.Monitor
module Client = Tm_service.Client
module Server = Tm_service.Server
module Proxy = Tm_service.Proxy
module Protocol = Tm_service.Protocol
module Wire = Tm_service.Wire

type outcome =
  | Recovered
  | Degraded of int
  | Clean_error of string
  | Wrong of string
  | Hung

let outcome_to_string = function
  | Recovered -> "recovered"
  | Degraded n -> Fmt.str "degraded(prefix=%d)" n
  | Clean_error msg -> Fmt.str "clean-error(%s)" msg
  | Wrong msg -> Fmt.str "WRONG(%s)" msg
  | Hung -> "HUNG"

type round = {
  c_seed : int;
  c_source : string;
  c_plan : string;
  c_events : int;
  c_applied : int;
  c_reconnects : int;
  c_retries : int;
  c_killed : bool;
  c_outcome : outcome;
  c_seconds : float;
}

type report = {
  rounds : round list;
  recovered : int;
  degraded : int;
  clean_errors : int;
  wrong : int;
  hangs : int;
}

type config = {
  source : Oracle.source;
  seeds : int list;
  kinds : Proxy.kind list;
  points : int;
  kill_every : int;  (* 0 = never; else every k-th round kills the server *)
  max_nodes : int;
  deadline : float;  (* per-round hang watchdog, seconds *)
  scratch : string option;
  log : string -> unit;
}

let config ?(source = `Faults "tl2") ?(seeds = List.init 10 (fun i -> i + 1))
    ?(kinds = Proxy.all_kinds) ?(points = 2) ?(kill_every = 3)
    ?(max_nodes = 2_000_000) ?(deadline = 30.) ?scratch ?(log = ignore) () =
  {
    source;
    seeds;
    kinds;
    points;
    kill_every;
    max_nodes;
    deadline;
    scratch;
    log;
  }

(* --- scratch directories --------------------------------------------------- *)

let rec mkdirs dir =
  if dir <> Filename.dirname dir && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (try Sys.readdir path with Sys_error _ -> [||]);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* --- arbitration ----------------------------------------------------------- *)

let status_agrees (st : Protocol.status) (o : Monitor.outcome) =
  match (st, o) with
  | Protocol.S_ok, `Ok -> true
  | Protocol.S_violation _, `Violation _ -> true
  | Protocol.S_budget _, `Budget _ -> true
  | _ -> false

let pp_status_outcome ppf ((st : Protocol.status), (o : Monitor.outcome)) =
  Fmt.pf ppf "service=%a offline=%s" Protocol.pp_status st
    (match o with
    | `Ok -> "ok"
    | `Violation w -> Fmt.str "violation(%s)" w
    | `Budget w -> Fmt.str "budget(%s)" w)

let offline_verdict ~max_nodes events =
  let m = Monitor.create ~max_nodes () in
  ignore (Monitor.push_all m events);
  Monitor.status m

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

(* Judge a completed submission against the offline monitor.  The contract
   under chaos: a full run must carry the exact offline verdict; a shed run
   must carry the offline verdict of exactly the prefix it claims
   ([applied]); anything else is a wrong verdict — the one outcome the
   service must never produce. *)
let arbitrate ~max_nodes ~events (r : Client.durable_report) =
  let v = r.Client.verdict in
  match r.Client.shed_reason with
  | None ->
      let expected = offline_verdict ~max_nodes events in
      if v.Protocol.applied <> List.length events then
        Wrong
          (Fmt.str "full run applied %d of %d events" v.Protocol.applied
             (List.length events))
      else if status_agrees v.Protocol.status expected then Recovered
      else
        Wrong
          (Fmt.str "verdict mismatch: %a"
             pp_status_outcome
             (v.Protocol.status, expected))
  | Some _ ->
      let prefix = take v.Protocol.applied events in
      let expected = offline_verdict ~max_nodes prefix in
      if status_agrees v.Protocol.status expected then
        Degraded v.Protocol.applied
      else
        Wrong
          (Fmt.str "shed verdict wrong for its %d-event prefix: %a"
             v.Protocol.applied pp_status_outcome
             (v.Protocol.status, expected))

(* --- one chaos round ------------------------------------------------------- *)

let run_round cfg ~seed =
  let t0 = Unix.gettimeofday () in
  let events = History.to_list (Oracle.produce cfg.source ~seed) in
  let n = List.length events in
  let base =
    match cfg.scratch with
    | Some d -> d
    | None -> Filename.get_temp_dir_name ()
  in
  let dir =
    Filename.concat base (Fmt.str "tm-chaos-%d-s%d" (Unix.getpid ()) seed)
  in
  rm_rf dir;
  mkdirs dir;
  let sock_server = `Unix (Filename.concat dir "server.sock") in
  let sock_proxy = `Unix (Filename.concat dir "proxy.sock") in
  let journal_dir = Filename.concat dir "journal" in
  let scfg =
    Server.config ~domains:2 ~max_nodes:cfg.max_nodes ~journal_dir
      ~session_timeout:10. ~log:cfg.log sock_server
  in
  let srv = ref (Server.start scfg) in
  let srv_mutex = Mutex.create () in
  let plan = Proxy.sample ~kinds:cfg.kinds ~points:cfg.points ~seed () in
  let px =
    Proxy.start ~plan ~log:cfg.log ~listen:sock_proxy ~upstream:sock_server ()
  in
  let kill_round = cfg.kill_every > 0 && seed mod cfg.kill_every = 0 in
  let killed = ref false in
  let finished = ref false in
  (* The killer waits until the server has durably applied some real work,
     then crashes it (dropping everything queued but not journalled) and
     starts a fresh server on the same journal directory and address —
     the client must resume through snapshot-load + journal-replay. *)
  let killer =
    if not kill_round then None
    else
      Some
        (Thread.create
           (fun () ->
             let threshold = max 1 (n / 4) in
             let rec wait () =
               if !finished then ()
               else begin
                 let applied =
                   List.fold_left
                     (fun acc (d : Protocol.domain_stats) ->
                       acc + d.Protocol.events)
                     0
                     (Server.stats !srv)
                 in
                 if applied >= threshold then begin
                   Mutex.lock srv_mutex;
                   Server.crash !srv;
                   srv := Server.start scfg;
                   Mutex.unlock srv_mutex;
                   killed := true;
                   cfg.log
                     (Fmt.str "seed %d: server killed at >=%d events and \
                               restarted"
                        seed threshold)
                 end
                 else begin
                   Thread.delay 0.001;
                   wait ()
                 end
               end
             in
             wait ())
           ())
  in
  let backoff =
    { Client.attempts = 14; base_ms = 5; max_ms = 200; jitter = 0.5 }
  in
  let result = ref None in
  let worker =
    Thread.create
      (fun () ->
        let r =
          match
            Client.submit_durable ~session:1 ~chunk:32 ~checkpoint_every:2
              ~backoff ~seed
              ~connect:(fun () ->
                Client.connect_retry ~backoff ~seed sock_proxy)
              events
          with
          | report ->
              ( arbitrate ~max_nodes:cfg.max_nodes ~events report,
                report.Client.reconnects,
                report.Client.retries )
          | exception Client.Server_error msg -> (Clean_error msg, 0, 0)
          | exception Unix.Unix_error (e, _, _) ->
              (Clean_error (Unix.error_message e), 0, 0)
          | exception Wire.Closed -> (Clean_error "connection closed", 0, 0)
          | exception Wire.Desync msg ->
              (Clean_error (Fmt.str "desync: %s" msg), 0, 0)
        in
        result := Some r)
      ()
  in
  (* Hang watchdog: polling join with a deadline.  OCaml's Condition has no
     timed wait; 10 ms polling is plenty for a 30 s deadline. *)
  let deadline = Unix.gettimeofday () +. cfg.deadline in
  let rec wait_worker () =
    if !result <> None then Thread.join worker
    else if Unix.gettimeofday () > deadline then ()
    else begin
      Thread.delay 0.01;
      wait_worker ()
    end
  in
  wait_worker ();
  finished := true;
  (match killer with Some t -> Thread.join t | None -> ());
  let outcome, reconnects, retries =
    match !result with Some r -> r | None -> (Hung, 0, 0)
  in
  Proxy.stop px;
  Mutex.lock srv_mutex;
  Server.stop !srv;
  Mutex.unlock srv_mutex;
  (* A hung worker thread is itself the finding; the teardown above wakes
     it (sockets die), and the round reports [Hung] regardless. *)
  if outcome = Hung then (try Thread.join worker with Sys_error _ -> ());
  rm_rf dir;
  {
    c_seed = seed;
    c_source = Oracle.source_tag cfg.source;
    c_plan = Fmt.str "%a" Proxy.pp_plan plan;
    c_events = n;
    c_applied = (match outcome with Degraded a -> a | _ -> n);
    c_reconnects = reconnects;
    c_retries = retries;
    c_killed = !killed;
    c_outcome = outcome;
    c_seconds = Unix.gettimeofday () -. t0;
  }

let run cfg =
  let rounds = List.map (fun seed -> run_round cfg ~seed) cfg.seeds in
  let count p = List.length (List.filter p rounds) in
  {
    rounds;
    recovered = count (fun r -> r.c_outcome = Recovered);
    degraded =
      count (fun r -> match r.c_outcome with Degraded _ -> true | _ -> false);
    clean_errors =
      count (fun r ->
          match r.c_outcome with Clean_error _ -> true | _ -> false);
    wrong =
      count (fun r -> match r.c_outcome with Wrong _ -> true | _ -> false);
    hangs = count (fun r -> r.c_outcome = Hung);
  }

let pp_round ppf r =
  Fmt.pf ppf "%4d  %-36s %6d %6d %4s  %s" r.c_seed r.c_plan r.c_events
    r.c_applied
    (if r.c_killed then "kill" else "-")
    (outcome_to_string r.c_outcome)

let pp_report ppf rep =
  Fmt.pf ppf "%4s  %-36s %6s %6s %4s  %s@." "seed" "plan" "events" "applied"
    "kill" "outcome";
  List.iter (fun r -> Fmt.pf ppf "%a@." pp_round r) rep.rounds;
  Fmt.pf ppf
    "# %d rounds: %d recovered, %d degraded, %d clean errors, %d WRONG, %d \
     HUNG"
    (List.length rep.rounds)
    rep.recovered rep.degraded rep.clean_errors rep.wrong rep.hangs
