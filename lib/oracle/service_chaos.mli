(** Network-layer chaos campaigns against the [tm serve] service
    ([tm chaos --service]).

    Each round: produce a deterministic history (an {!Oracle.source}, so
    fault-injected STM streams are first-class inputs), start a durable
    server and a fault-injecting {!Tm_service.Proxy} between it and the
    client, then drive the whole stream through
    {!Tm_service.Client.submit_durable} while the proxy tears, drops,
    duplicates, delays and reorders frames and cuts connections — and, on
    kill rounds, while the server itself is crashed mid-stream and
    restarted on the same journal directory.

    Arbitration (the robustness contract): every round must end in

    - [Recovered] — the final verdict covers the whole stream and equals
      the offline monitor's verdict;
    - [Degraded n] — the session was shed under load; the verdict covers
      exactly the [n]-event prefix it claims, and equals the offline
      verdict of that prefix;
    - [Clean_error] — a documented failure (retry budget exhausted,
      admission refused) surfaced as an error, not a verdict.

    [Wrong] (a verdict that disagrees with the offline monitor) and [Hung]
    (the round outlived its watchdog) are findings: the service must never
    produce a wrong verdict and never hang, whatever the network does. *)

type outcome =
  | Recovered
  | Degraded of int  (** shed; verdict covers this many events *)
  | Clean_error of string
  | Wrong of string  (** finding: verdict disagrees with the offline monitor *)
  | Hung  (** finding: the round did not finish before the deadline *)

val outcome_to_string : outcome -> string

type round = {
  c_seed : int;
  c_source : string;
  c_plan : string;  (** the sampled fault plan, pretty-printed *)
  c_events : int;
  c_applied : int;  (** events the final verdict covers *)
  c_reconnects : int;
  c_retries : int;
  c_killed : bool;  (** the server was crashed and restarted mid-stream *)
  c_outcome : outcome;
  c_seconds : float;
}

type report = {
  rounds : round list;
  recovered : int;
  degraded : int;
  clean_errors : int;
  wrong : int;
  hangs : int;
}

type config = {
  source : Oracle.source;
  seeds : int list;
  kinds : Tm_service.Proxy.kind list;
  points : int;  (** fault points per sampled plan *)
  kill_every : int;  (** crash+restart the server every k-th seed; 0 = never *)
  max_nodes : int;
  deadline : float;  (** per-round hang watchdog, seconds *)
  scratch : string option;  (** scratch dir (sockets, journals); default tmp *)
  log : string -> unit;
}

val config :
  ?source:Oracle.source ->
  ?seeds:int list ->
  ?kinds:Tm_service.Proxy.kind list ->
  ?points:int ->
  ?kill_every:int ->
  ?max_nodes:int ->
  ?deadline:float ->
  ?scratch:string ->
  ?log:(string -> unit) ->
  unit ->
  config
(** Defaults: fault-injected tl2 histories, seeds 1..10, all fault kinds,
    2 points per plan, kill every 3rd seed, 2M-node budget, 30 s
    watchdog. *)

val run_round : config -> seed:int -> round
val run : config -> report

val pp_round : Format.formatter -> round -> unit
val pp_report : Format.formatter -> report -> unit
