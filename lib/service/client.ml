exception Server_error of string

let error_of = function
  | Protocol.Err { code; message } ->
      Server_error (Fmt.str "%a: %s" Protocol.pp_error_code code message)
  | f -> Server_error (Fmt.str "unexpected frame %a" Protocol.pp_frame f)

type t = {
  fd : Unix.file_descr;
  mutable version : int;  (* negotiated; 1 until the Hello reply lands *)
  mutable keepalive : bool;  (* heartbeat while waiting for a reply? *)
  mutable next_token : int;
  mutable closed : bool;
  mutable throttled : int;  (* Throttle frames seen on this connection *)
  mutable shed : string option;  (* Shed reason, once received *)
}

(* Waiting for a verdict can legitimately take a while — the server's
   monitor is chewing a large backlog — but the server's read deadline
   (its slow-loris defense) reaps any connection that stays *silent* that
   long.  So every client wait heartbeats: block in [recv] for at most the
   heartbeat interval, and on each expiry send a [Heartbeat] to prove
   liveness.  The server echoes it, and every wait loop absorbs echoes.
   A server that stays mute through [keepalive_patience] heartbeats is
   declared unresponsive rather than hanging the client forever.

   Durable-session connections run with [keepalive = false]: if the
   request frame itself was lost in transit (network faults), heartbeats
   would hold the dead-ended connection open forever — the server sees a
   live, chatty client with nothing to answer.  Staying silent instead
   lets the server's idle deadline close the connection, and the client's
   reconnect + [Resume] repairs the session. *)
let keepalive_patience = 120

let recv_frame t =
  if t.version < 2 || not t.keepalive then
    (* v1 peers don't speak Heartbeat; block as the caller configured. *)
    match Wire.recv t.fd with
    | Wire.Frame f -> f
    | Wire.Malformed msg ->
        raise (Server_error (Fmt.str "malformed server frame: %s" msg))
  else begin
    Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO Protocol.default_heartbeat;
    let rec go beats =
      match Wire.recv t.fd with
      | Wire.Frame f -> f
      | Wire.Malformed msg ->
          raise (Server_error (Fmt.str "malformed server frame: %s" msg))
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          if beats >= keepalive_patience then
            raise
              (Server_error
                 (Fmt.str "server unresponsive for %.0f s"
                    (float_of_int keepalive_patience
                    *. Protocol.default_heartbeat)));
          Wire.send t.fd Protocol.Heartbeat;
          go (beats + 1)
    in
    go 0
  end

(* --- bounded exponential backoff with deterministic jitter ---------------- *)

type backoff = {
  attempts : int;  (* give up after this many consecutive failures *)
  base_ms : int;
  max_ms : int;
  jitter : float;  (* fraction of the delay that is randomised, [0,1] *)
}

let default_backoff = { attempts = 8; base_ms = 25; max_ms = 2000; jitter = 0.5 }

(* splitmix64 finalizer: seed-deterministic jitter, so retry schedules are
   reproducible in tests yet de-synchronised between clients. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let backoff_delay_ms b ~seed ~attempt =
  let cap = min b.max_ms (b.base_ms * (1 lsl min attempt 16)) in
  let h =
    Int64.to_int (mix64 (Int64.of_int ((seed * 1_000_003) + attempt)))
    land 0xffff
  in
  let frac = float_of_int h /. 65536. in
  let lo = float_of_int cap *. (1. -. b.jitter) in
  int_of_float (lo +. ((float_of_int cap -. lo) *. frac))

(* --- connection ------------------------------------------------------------ *)

let connect ?(version = Protocol.version) addr =
  let fd = Wire.connect addr in
  let t =
    { fd; version = 1; keepalive = true; next_token = 1; closed = false;
      throttled = 0; shed = None }
  in
  Wire.send fd (Protocol.Hello { version });
  (match recv_frame t with
  | Protocol.Hello { version = v } when v >= 1 -> t.version <- min version v
  | f ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise (error_of f));
  t

let connect_retry ?(backoff = default_backoff) ?(seed = 0) ?version addr =
  let rec go attempt =
    match connect ?version addr with
    | t -> t
    | exception ((Unix.Unix_error _ | Wire.Closed | Sys_error _) as e) ->
        if attempt >= backoff.attempts then raise e;
        Thread.delay
          (float_of_int (backoff_delay_ms backoff ~seed ~attempt) /. 1000.);
        go (attempt + 1)
  in
  go 0

let version t = t.version
let throttled t = t.throttled
let shed t = t.shed

let open_session t session =
  Wire.send t.fd (Protocol.Open_session { session })

let rec split n acc rest =
  match rest with
  | [] -> (List.rev acc, [])
  | _ when n = 0 -> (List.rev acc, rest)
  | ev :: rest -> split (n - 1) (ev :: acc) rest

let send_events ?(chunk = 512) t session events =
  let rec go = function
    | [] -> ()
    | events ->
        let batch, rest = split chunk [] events in
        Wire.send t.fd (Protocol.Events { session; events = batch });
        go rest
  in
  go events

let send_events_at ?(chunk = 512) t session ~from events =
  let rec go from = function
    | [] -> ()
    | events ->
        let batch, rest = split chunk [] events in
        Wire.send t.fd (Protocol.Events_at { session; from; events = batch });
        go (from + List.length batch) rest
  in
  go from events

(* Requests and replies are strictly alternating from this client, so the
   next Verdict frame is ours; asynchronous control frames (Throttle,
   Shed, Heartbeat echoes) are absorbed into the connection's counters on
   the way; Error frames raise. *)
let rec await_verdict t session token =
  match recv_frame t with
  | Protocol.Verdict v
    when v.Protocol.session = session && v.Protocol.token = token ->
      v
  | Protocol.Verdict _ ->
      (* a stale reply (e.g. a final verdict racing a reap): skip *)
      await_verdict t session token
  | Protocol.Throttle _ ->
      t.throttled <- t.throttled + 1;
      await_verdict t session token
  | Protocol.Shed { reason; _ } ->
      if t.shed = None then t.shed <- Some reason;
      await_verdict t session token
  | Protocol.Heartbeat | Protocol.Resumed _ -> await_verdict t session token
  | f -> raise (error_of f)

let checkpoint t session =
  let token = t.next_token in
  t.next_token <- token + 1;
  Wire.send t.fd (Protocol.Checkpoint { session; token });
  await_verdict t session token

let close_session t session =
  Wire.send t.fd (Protocol.Close_session { session });
  await_verdict t session 0

let resume t session ~from =
  Wire.send t.fd (Protocol.Resume { session; from });
  let rec wait () =
    match recv_frame t with
    | Protocol.Resumed { session = s; applied; mode; status } when s = session
      ->
        Ok (applied, mode, status)
    | Protocol.Err { code; message } -> Error (code, message)
    | Protocol.Throttle _ ->
        t.throttled <- t.throttled + 1;
        wait ()
    | Protocol.Shed { reason; _ } ->
        if t.shed = None then t.shed <- Some reason;
        wait ()
    | Protocol.Heartbeat | Protocol.Verdict _ | Protocol.Resumed _ -> wait ()
    | f -> raise (error_of f)
  in
  wait ()

let ping t =
  Wire.send t.fd Protocol.Heartbeat;
  let rec wait () =
    match recv_frame t with
    | Protocol.Heartbeat -> ()
    | Protocol.Throttle _ ->
        t.throttled <- t.throttled + 1;
        wait ()
    | Protocol.Shed { reason; _ } ->
        if t.shed = None then t.shed <- Some reason;
        wait ()
    | Protocol.Verdict _ | Protocol.Resumed _ -> wait ()
    | f -> raise (error_of f)
  in
  wait ()

let stats t =
  Wire.send t.fd Protocol.Stats_req;
  let rec wait () =
    match recv_frame t with
    | Protocol.Stats ds -> ds
    | Protocol.Throttle _ ->
        t.throttled <- t.throttled + 1;
        wait ()
    | Protocol.Heartbeat | Protocol.Verdict _ -> wait ()
    | f -> raise (error_of f)
  in
  wait ()

let shard_stats t session =
  Wire.send t.fd (Protocol.Shards_req { session });
  let rec wait () =
    match recv_frame t with
    | Protocol.Shards { session = s; stats } when s = session -> stats
    | Protocol.Throttle _ ->
        t.throttled <- t.throttled + 1;
        wait ()
    | Protocol.Heartbeat | Protocol.Verdict _ | Protocol.Shards _ -> wait ()
    | f -> raise (error_of f)
  in
  wait ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Wire.send t.fd Protocol.Goodbye
     with Unix.Unix_error _ | Sys_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let fd t = t.fd

(* One-shot convenience used by [tm submit]: stream a whole history into a
   fresh session and return the final verdict. *)
let submit ?(session = 1) ?chunk t h =
  open_session t session;
  send_events ?chunk t session (History.to_list h);
  close_session t session

(* --- durable submission ---------------------------------------------------- *)

type durable_report = {
  verdict : Protocol.verdict;
  reconnects : int;
  retries : int;  (* throttle-induced re-send rounds *)
  shed_reason : string option;
}

let submit_durable ?(session = 1) ?(chunk = 256) ?(checkpoint_every = 4)
    ?(backoff = default_backoff) ?(seed = 0) ~connect:connect_fn events =
  let arr = Array.of_list events in
  let n = Array.length arr in
  let reconnects = ref 0 in
  let retries = ref 0 in
  let shed_reason = ref None in
  let attempt = ref 0 in
  let best = ref 0 in  (* highest server-acknowledged applied index *)
  let last_err = ref None in
  let exception Exhausted in
  let sleep () =
    if !attempt >= backoff.attempts then raise Exhausted;
    Thread.delay
      (float_of_int (backoff_delay_ms backoff ~seed ~attempt:!attempt)
      /. 1000.);
    incr attempt
  in
  (* Connect (or reconnect) and find out where the server stands: [Resume]
     answers with the durably-applied index, the authoritative re-send
     point.  A session the server never heard of (or a v1/non-durable
     server) starts fresh from 0 — correct because a fresh session means a
     fresh monitor, so the whole stream must flow again. *)
  let connect_sess () =
    let c = connect_fn () in
    (* Silent waits: let the server's idle deadline break a dead-ended
       connection; reconnect + Resume is this path's recovery story. *)
    c.keepalive <- false;
    if version c >= 2 then
      match resume c session ~from:!best with
      | Ok (applied, mode, _status) ->
          if mode = Protocol.M_shed && !shed_reason = None then
            shed_reason := Some "resumed into a shed session";
          best := applied;
          (c, applied)
      | Error ((Protocol.Unknown_session | Protocol.Bad_frame), _) ->
          open_session c session;
          best := 0;
          (c, 0)
      | Error (code, msg) ->
          close c;
          raise
            (Server_error (Fmt.str "%a: %s" Protocol.pp_error_code code msg))
    else begin
      open_session c session;
      best := 0;
      (c, 0)
    end
  in
  (* One round: stream a checkpoint window of events, then ask for a
     verdict and adopt the server's applied index — anything it discarded
     under load is simply re-sent next round, idempotently. *)
  let round c cursor =
    let upto = min n (cursor + (chunk * checkpoint_every)) in
    let rec send i =
      if i < upto then begin
        let k = min chunk (upto - i) in
        let batch = Array.to_list (Array.sub arr i k) in
        if version c >= 2 then send_events_at c session ~from:i batch
        else send_events c session batch;
        send (i + k)
      end
    in
    send cursor;
    let v = checkpoint c session in
    (match shed c with
    | Some r when !shed_reason = None -> shed_reason := Some r
    | _ -> ());
    if v.Protocol.mode = Protocol.M_shed && !shed_reason = None then
      shed_reason := Some "session shed by server";
    let applied =
      if version c >= 2 then v.Protocol.applied else upto
    in
    best := max !best applied;
    if applied <= cursor && upto > cursor && !shed_reason = None then begin
      incr retries;
      sleep ()  (* the whole window was throttled away: back off *)
    end
    else attempt := 0;
    max cursor applied
  in
  let rec drive c cursor =
    if !shed_reason <> None || cursor >= n then begin
      let v = close_session c session in
      close c;
      {
        verdict = v;
        reconnects = !reconnects;
        retries = !retries;
        shed_reason = !shed_reason;
      }
    end
    else drive c (round c cursor)
  in
  (* Retryable failures: transport errors, and [Server_error] — a
     network-duplicated or dropped frame can poison one connection's
     request/response pairing, which a fresh connection repairs.  Genuinely
     persistent errors simply exhaust the bounded budget and surface in
     the give-up diagnostic. *)
  let cur = ref None in
  let drop_conn () =
    (match !cur with Some c -> close c | None -> ());
    cur := None
  in
  let rec session_loop () =
    match
      let c, applied = connect_sess () in
      cur := Some c;
      drive c applied
    with
    | report ->
        cur := None;
        report
    | exception (Wire.Closed | Wire.Desync _ | Unix.Unix_error _ | Sys_error _)
      ->
        drop_conn ();
        incr reconnects;
        sleep ();
        session_loop ()
    | exception Server_error msg ->
        drop_conn ();
        last_err := Some msg;
        incr reconnects;
        sleep ();
        session_loop ()
  in
  try session_loop ()
  with Exhausted ->
    raise
      (Server_error
         (Fmt.str "giving up after %d retries (%d/%d events applied)%s"
            backoff.attempts !best n
            (match !last_err with
            | Some m -> Fmt.str "; last error: %s" m
            | None -> "")))
