exception Server_error of string

let error_of = function
  | Protocol.Err { code; message } ->
      Server_error (Fmt.str "%a: %s" Protocol.pp_error_code code message)
  | f -> Server_error (Fmt.str "unexpected frame %a" Protocol.pp_frame f)

type t = {
  fd : Unix.file_descr;
  mutable next_token : int;
  mutable closed : bool;
}

let recv_frame t =
  match Wire.recv t.fd with
  | Wire.Frame f -> f
  | Wire.Malformed msg ->
      raise (Server_error (Fmt.str "malformed server frame: %s" msg))

let connect addr =
  let fd = Wire.connect addr in
  let t = { fd; next_token = 1; closed = false } in
  Wire.send fd (Protocol.Hello { version = Protocol.version });
  (match recv_frame t with
  | Protocol.Hello { version } when version >= 1 -> ()
  | f ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise (error_of f));
  t

let open_session t session =
  Wire.send t.fd (Protocol.Open_session { session })

let send_events ?(chunk = 512) t session events =
  let rec go = function
    | [] -> ()
    | events ->
        let rec split n acc rest =
          match rest with
          | [] -> (List.rev acc, [])
          | _ when n = 0 -> (List.rev acc, rest)
          | ev :: rest -> split (n - 1) (ev :: acc) rest
        in
        let batch, rest = split chunk [] events in
        Wire.send t.fd (Protocol.Events { session; events = batch });
        go rest
  in
  go events

(* Requests and replies are strictly alternating from this client, so the
   next Verdict frame is ours; Error frames raise. *)
let rec await_verdict t session token =
  match recv_frame t with
  | Protocol.Verdict v
    when v.Protocol.session = session && v.Protocol.token = token ->
      v
  | Protocol.Verdict _ ->
      (* a stale reply (e.g. a final verdict racing a reap): skip *)
      await_verdict t session token
  | f -> raise (error_of f)

let checkpoint t session =
  let token = t.next_token in
  t.next_token <- token + 1;
  Wire.send t.fd (Protocol.Checkpoint { session; token });
  await_verdict t session token

let close_session t session =
  Wire.send t.fd (Protocol.Close_session { session });
  await_verdict t session 0

let stats t =
  Wire.send t.fd Protocol.Stats_req;
  match recv_frame t with
  | Protocol.Stats ds -> ds
  | f -> raise (error_of f)

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Wire.send t.fd Protocol.Goodbye
     with Unix.Unix_error _ | Sys_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let fd t = t.fd

(* One-shot convenience used by [tm submit]: stream a whole history into a
   fresh session and return the final verdict. *)
let submit ?(session = 1) ?chunk t h =
  open_session t session;
  send_events ?chunk t session (History.to_list h);
  close_session t session
