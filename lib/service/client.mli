(** Client side of the {!Protocol} conversation, used by [tm submit] and
    the load generator ([bench service]).

    One value of type {!t} is one connection; it is not thread-safe —
    concurrent load comes from many connections (see [bench/main.ml]).
    Calls that expect a reply ([checkpoint], [close_session], [stats],
    [resume], [ping]) block until it arrives; asynchronous [Throttle] and
    [Shed] frames arriving in between are absorbed into the connection's
    {!throttled}/{!shed} counters rather than raised.

    {!submit_durable} is the fault-tolerant path: it resumes a durable
    session across disconnects and server restarts, re-sends unacknowledged
    events idempotently ([Events_at]), and backs off (bounded exponential
    with deterministic jitter) when the server throttles — the client half
    of the recovery and overload story in [protocol.mli]. *)

exception Server_error of string
(** An [Error] frame, an unexpected frame, or a malformed server frame. *)

type t

(** {1 Retry policy} *)

type backoff = {
  attempts : int;  (** give up after this many consecutive failures *)
  base_ms : int;
  max_ms : int;
  jitter : float;  (** randomised fraction of each delay, [0,1] *)
}

val default_backoff : backoff
(** 8 attempts, 25 ms doubling to a 2 s cap, 50% jitter. *)

val backoff_delay_ms : backoff -> seed:int -> attempt:int -> int
(** The (deterministic, seed-jittered) delay before retry [attempt]. *)

(** {1 Connections} *)

val connect : ?version:int -> Wire.addr -> t
(** Connect and run the [Hello] handshake, offering [version] (default
    {!Protocol.version}); the negotiated minimum is {!version}.
    @raise Server_error if the server refuses.
    @raise Unix.Unix_error if the endpoint is unreachable. *)

val connect_retry : ?backoff:backoff -> ?seed:int -> ?version:int ->
  Wire.addr -> t
(** {!connect} with bounded backoff on connection failure — rides out a
    server restart.  Re-raises the last failure when the budget runs dry. *)

val version : t -> int
(** The negotiated protocol version (1, 2 or 3). *)

val open_session : t -> int -> unit
(** Session identifiers are client-chosen, scoped to this connection — or
    global on a durable server; reuse of a live identifier is answered
    with a [duplicate-session] error on the next reply-expecting call. *)

val resume : t -> int -> from:int ->
  (int * Protocol.mode * Protocol.status,
   Protocol.error_code * string) result
(** Attach to a durable session (v2): [Ok (applied, mode, status)] is the
    server's durably-applied index — re-send from there with
    {!send_events_at}.  [Error (code, msg)] is the server's refusal
    ([unknown-session]: nothing to resume; open fresh instead). *)

val send_events : ?chunk:int -> t -> int -> Event.t list -> unit
(** Stream events into a session, [chunk] (default 512) per [Events]
    frame.  Fire-and-forget: verdicts are pulled by {!checkpoint} and
    {!close_session}. *)

val send_events_at : ?chunk:int -> t -> int -> from:int -> Event.t list -> unit
(** Like {!send_events} but idempotent (v2): each frame carries the stream
    index of its first event, so re-sent or duplicated frames are
    deduplicated server-side and can never double-apply. *)

val checkpoint : t -> int -> Protocol.verdict
(** Round-trip: ask for the session's current verdict.  The verdict covers
    every event acknowledged so far — status [S_ok] means every prefix of
    the stream is du-opaque; [v.applied] is the durable re-send point on a
    v2 connection. *)

val close_session : t -> int -> Protocol.verdict
(** Final verdict; the server forgets the session (a durable session's
    files are deleted — closing means done). *)

val ping : t -> unit
(** [Heartbeat] round-trip — keeps an idle connection inside the server's
    read deadline. *)

val throttled : t -> int
(** [Throttle] frames seen on this connection so far. *)

val shed : t -> string option
(** The first [Shed] reason received, if the server shed a session. *)

val submit : ?session:int -> ?chunk:int -> t -> History.t -> Protocol.verdict
(** [open_session], stream the whole history, [close_session]. *)

type durable_report = {
  verdict : Protocol.verdict;
  reconnects : int;  (** connections re-established mid-stream *)
  retries : int;  (** rounds re-sent after being throttled away *)
  shed_reason : string option;  (** the stream ended shed, covering a prefix *)
}

val submit_durable :
  ?session:int ->
  ?chunk:int ->
  ?checkpoint_every:int ->
  ?backoff:backoff ->
  ?seed:int ->
  connect:(unit -> t) ->
  Event.t list ->
  durable_report
(** Fault-tolerant submission: streams [events] in checkpoint windows of
    [chunk * checkpoint_every] events, adopting the server's applied index
    after every checkpoint.  On disconnect, desync, or connection refusal
    it backs off and calls [connect] again (the thunk may reach a restarted
    server or a recovering proxy), resumes the session, and re-sends from
    the acknowledged index — idempotently, so duplicates on the wire are
    harmless.  Throttled windows are re-sent after backoff; a shed session
    stops sending and returns the prefix verdict with [shed_reason] set.
    @raise Server_error when the retry budget is exhausted or the server
    answers with a non-retryable error. *)

val stats : t -> Protocol.domain_stats list

val shard_stats : t -> int -> Protocol.shard_stats
(** Round-trip: the session's two-phase certify/stitch counters on a
    sharded server (v3) — shard count, certifications run, how many took
    the incremental versus the full validation path, and the escalation
    reason if the session was handed to the sequential monitor.
    @raise Server_error on a pre-v3 connection. *)

val close : t -> unit
(** Send [Goodbye] (best-effort) and close the socket.  Idempotent. *)

val fd : t -> Unix.file_descr
(** The raw descriptor — the fault-injection tests close it abruptly to
    simulate a client dying mid-stream. *)
