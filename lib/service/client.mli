(** Client side of the {!Protocol} conversation, used by [tm submit] and
    the load generator ([bench service]).

    One value of type {!t} is one connection; it is not thread-safe —
    concurrent load comes from many connections (see [bench/main.ml]).
    Calls that expect a reply ([checkpoint], [close_session], [stats])
    block until it arrives. *)

exception Server_error of string
(** An [Error] frame, an unexpected frame, or a malformed server frame. *)

type t

val connect : Wire.addr -> t
(** Connect and run the [Hello] handshake.
    @raise Server_error if the server refuses.
    @raise Unix.Unix_error if the endpoint is unreachable. *)

val open_session : t -> int -> unit
(** Session identifiers are client-chosen, scoped to this connection;
    reuse of a live identifier is answered with a [duplicate-session]
    error on the next reply-expecting call. *)

val send_events : ?chunk:int -> t -> int -> Event.t list -> unit
(** Stream events into a session, [chunk] (default 512) per [Events]
    frame.  Fire-and-forget: verdicts are pulled by {!checkpoint} and
    {!close_session}. *)

val checkpoint : t -> int -> Protocol.verdict
(** Round-trip: ask for the session's current verdict.  The verdict covers
    every event acknowledged so far — status [S_ok] means every prefix of
    the stream is du-opaque. *)

val close_session : t -> int -> Protocol.verdict
(** Final verdict; the server forgets the session. *)

val submit : ?session:int -> ?chunk:int -> t -> History.t -> Protocol.verdict
(** [open_session], stream the whole history, [close_session]. *)

val stats : t -> Protocol.domain_stats list

val close : t -> unit
(** Send [Goodbye] (best-effort) and close the socket.  Idempotent. *)

val fd : t -> Unix.file_descr
(** The raw descriptor — the fault-injection tests close it abruptly to
    simulate a client dying mid-stream. *)
