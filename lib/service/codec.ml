exception Error of string

let fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type reader = { data : string; mutable pos : int; limit : int }

let reader ?(pos = 0) ?len data =
  let limit =
    match len with Some n -> pos + n | None -> String.length data
  in
  if pos < 0 || limit > String.length data || pos > limit then
    invalid_arg "Codec.reader: bounds";
  { data; pos; limit }

let remaining r = r.limit - r.pos
let at_end r = r.pos >= r.limit

let get_byte r =
  if r.pos >= r.limit then fail "truncated input at byte %d" r.pos
  else begin
    let b = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    b
  end

let get_bytes r n =
  if n < 0 then fail "negative byte count"
  else if remaining r < n then
    fail "truncated input: need %d bytes at %d, have %d" n r.pos (remaining r)
  else begin
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s
  end

(* --- varints ----------------------------------------------------------- *)

(* Unsigned LEB128.  OCaml ints are 63-bit here; ten 7-bit groups overflow,
   so the decoder bounds the shift and rejects the overflowing continuation
   rather than wrapping silently. *)

let put_uvarint b n =
  if n < 0 then invalid_arg "Codec.put_uvarint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let get_uvarint r =
  let rec go shift acc =
    if shift > 56 then fail "varint too long at byte %d" r.pos
    else
      let byte = get_byte r in
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 = 0 then
        if shift = 56 && byte > 0x3f then fail "varint overflows 63 bits"
        else acc
      else go (shift + 7) acc
  in
  go 0 0

(* Signed values zigzag through the unsigned encoding. *)

let put_int b n =
  let z = if n >= 0 then n lsl 1 else (lnot n lsl 1) lor 1 in
  put_uvarint b z

let get_int r =
  let z = get_uvarint r in
  if z land 1 = 0 then z lsr 1 else lnot (z lsr 1)

let put_string b s =
  put_uvarint b (String.length s);
  Buffer.add_string b s

let get_string r =
  let n = get_uvarint r in
  get_bytes r n

(* --- events ------------------------------------------------------------ *)

(* One tag byte selects the event shape; operands follow as varints.
   Transaction identifiers are positive, variables non-negative — the
   decoder enforces both so undecodable bytes surface here as [Error]
   rather than as a well-formedness failure three layers up. *)

let tag_inv_read = 0
let tag_inv_write = 1
let tag_inv_tryc = 2
let tag_inv_trya = 3
let tag_res_read = 4
let tag_res_write = 5
let tag_res_committed = 6
let tag_res_aborted = 7

let put_event b ev =
  let tag t k =
    Buffer.add_char b (Char.chr t);
    put_uvarint b k
  in
  match ev with
  | Event.Inv (k, Event.Read var) ->
      tag tag_inv_read k;
      put_uvarint b var
  | Event.Inv (k, Event.Write (var, v)) ->
      tag tag_inv_write k;
      put_uvarint b var;
      put_int b v
  | Event.Inv (k, Event.Try_commit) -> tag tag_inv_tryc k
  | Event.Inv (k, Event.Try_abort) -> tag tag_inv_trya k
  | Event.Res (k, Event.Read_ok v) ->
      tag tag_res_read k;
      put_int b v
  | Event.Res (k, Event.Write_ok) -> tag tag_res_write k
  | Event.Res (k, Event.Committed) -> tag tag_res_committed k
  | Event.Res (k, Event.Aborted) -> tag tag_res_aborted k

let get_event r =
  let tag = get_byte r in
  let tx () =
    let k = get_uvarint r in
    if k <= 0 then fail "transaction identifier must be positive, got %d" k;
    k
  in
  if tag = tag_inv_read then
    let k = tx () in
    Event.Inv (k, Event.Read (get_uvarint r))
  else if tag = tag_inv_write then begin
    let k = tx () in
    let var = get_uvarint r in
    Event.Inv (k, Event.Write (var, get_int r))
  end
  else if tag = tag_inv_tryc then Event.Inv (tx (), Event.Try_commit)
  else if tag = tag_inv_trya then Event.Inv (tx (), Event.Try_abort)
  else if tag = tag_res_read then
    let k = tx () in
    Event.Res (k, Event.Read_ok (get_int r))
  else if tag = tag_res_write then Event.Res (tx (), Event.Write_ok)
  else if tag = tag_res_committed then Event.Res (tx (), Event.Committed)
  else if tag = tag_res_aborted then Event.Res (tx (), Event.Aborted)
  else fail "unknown event tag %d" tag

(* A whole frame's batch encodes in a single pass, mirroring the batch
   decode below: events serialize into a scratch block with unchecked
   byte writes, flushed to the buffer in runs — one slack test per event
   instead of a bounds check per byte ([max_event_bytes] caps any
   event's encoding).  [put_event] stays as the per-event reference; the
   fuzz suite holds the two paths to byte-identical output, including
   the partial bytes and exception of a failed encode. *)

let put_events b events =
  put_uvarint b (List.length events);
  let scratch = Bytes.create 8192 in
  let pos = ref 0 in
  let flush () =
    Buffer.add_subbytes b scratch 0 !pos;
    pos := 0
  in
  let byte v =
    Bytes.unsafe_set scratch !pos (Char.unsafe_chr v);
    incr pos
  in
  (* [put_uvarint] with the per-byte buffer pushes elided; the negative
     guard flushes first so the buffer holds exactly the bytes the
     reference encoder would have written before raising *)
  let uvarint n =
    if n < 0 then begin
      flush ();
      invalid_arg "Codec.put_uvarint: negative"
    end;
    let n = ref n in
    while !n >= 0x80 do
      byte (0x80 lor (!n land 0x7f));
      n := !n lsr 7
    done;
    byte !n
  in
  let zint n = uvarint (if n >= 0 then n lsl 1 else (lnot n lsl 1) lor 1) in
  List.iter
    (fun ev ->
      if Bytes.length scratch - !pos < 1 + (3 * 9) then flush ();
      match ev with
      | Event.Inv (k, Event.Read var) ->
          byte tag_inv_read;
          uvarint k;
          uvarint var
      | Event.Inv (k, Event.Write (var, v)) ->
          byte tag_inv_write;
          uvarint k;
          uvarint var;
          zint v
      | Event.Inv (k, Event.Try_commit) ->
          byte tag_inv_tryc;
          uvarint k
      | Event.Inv (k, Event.Try_abort) ->
          byte tag_inv_trya;
          uvarint k
      | Event.Res (k, Event.Read_ok v) ->
          byte tag_res_read;
          uvarint k;
          zint v
      | Event.Res (k, Event.Write_ok) ->
          byte tag_res_write;
          uvarint k
      | Event.Res (k, Event.Committed) ->
          byte tag_res_committed;
          uvarint k
      | Event.Res (k, Event.Aborted) ->
          byte tag_res_aborted;
          uvarint k)
    events;
  flush ()

(* A whole frame's batch decodes in a single pass: the hot loop reads
   through [r.pos] with the per-byte limit checks hoisted into one slack
   test per event — no event encodes to more than [max_event_bytes] (a
   tag plus three maximal varints), so inside that window every byte
   access is in bounds by construction.  Events near the frame boundary,
   and only those, fall back to the per-event reference decoder
   [get_event]; the fuzz suite holds the two paths to byte-identical
   results, failure messages included. *)

let max_event_bytes = 1 + (3 * 9)

let get_events r =
  let n = get_uvarint r in
  if n > remaining r then
    (* each event takes >= 2 bytes; an inflated count cannot be honest *)
    fail "event count %d exceeds remaining payload" n;
  let data = r.data in
  (* [get_uvarint] with the bounds checks elided; failure positions and
     messages mirror the checked decoder exactly *)
  let uvarint () =
    let b0 = Char.code (String.unsafe_get data r.pos) in
    r.pos <- r.pos + 1;
    if b0 < 0x80 then b0
    else begin
      let acc = ref (b0 land 0x7f) and shift = ref 7 and cont = ref true in
      while !cont do
        if !shift > 56 then fail "varint too long at byte %d" r.pos;
        let byte = Char.code (String.unsafe_get data r.pos) in
        r.pos <- r.pos + 1;
        acc := !acc lor ((byte land 0x7f) lsl !shift);
        if byte land 0x80 = 0 then begin
          if !shift = 56 && byte > 0x3f then fail "varint overflows 63 bits";
          cont := false
        end
        else shift := !shift + 7
      done;
      !acc
    end
  in
  let zint () =
    let z = uvarint () in
    if z land 1 = 0 then z lsr 1 else lnot (z lsr 1)
  in
  let tx () =
    let k = uvarint () in
    if k <= 0 then fail "transaction identifier must be positive, got %d" k;
    k
  in
  let fast_event () =
    let tag = Char.code (String.unsafe_get data r.pos) in
    r.pos <- r.pos + 1;
    if tag = tag_inv_read then
      let k = tx () in
      Event.Inv (k, Event.Read (uvarint ()))
    else if tag = tag_inv_write then begin
      let k = tx () in
      let var = uvarint () in
      Event.Inv (k, Event.Write (var, zint ()))
    end
    else if tag = tag_inv_tryc then Event.Inv (tx (), Event.Try_commit)
    else if tag = tag_inv_trya then Event.Inv (tx (), Event.Try_abort)
    else if tag = tag_res_read then
      let k = tx () in
      Event.Res (k, Event.Read_ok (zint ()))
    else if tag = tag_res_write then Event.Res (tx (), Event.Write_ok)
    else if tag = tag_res_committed then Event.Res (tx (), Event.Committed)
    else if tag = tag_res_aborted then Event.Res (tx (), Event.Aborted)
    else fail "unknown event tag %d" tag
  in
  let rec build i acc =
    if i >= n then List.rev acc
    else
      let ev =
        if r.limit - r.pos >= max_event_bytes then fast_event ()
        else get_event r
      in
      build (i + 1) (ev :: acc)
  in
  build 0 []

(* --- standalone history files ------------------------------------------ *)

let history_magic = "TMH1"

let put_history b h =
  Buffer.add_string b history_magic;
  put_events b (History.to_list h)

let history_to_string h =
  let b = Buffer.create (16 + (4 * History.length h)) in
  put_history b h;
  Buffer.contents b

let get_history r =
  let magic = get_bytes r 4 in
  if magic <> history_magic then fail "bad history magic %S" magic;
  let events = get_events r in
  match History.of_events events with
  | Ok h -> h
  | Error e -> fail "decoded events are ill-formed: %a" History.pp_error e

let history_of_string s =
  match
    let r = reader s in
    let h = get_history r in
    if not (at_end r) then fail "trailing bytes after history";
    h
  with
  | h -> Ok h
  | exception Error msg -> Result.Error msg
  (* lint: allow swallowed-exception — total-decoder backstop: any crash
     on adversarial bytes must become a decode error, never a raise *)
  | exception _ -> Result.Error "undecodable history"

let looks_binary s = String.length s >= 4 && String.sub s 0 4 = history_magic
