(** Compact binary codec for events and histories.

    The wire protocol ({!Protocol}) and the standalone binary history file
    format are both built from these primitives: unsigned LEB128 varints,
    zigzag-coded signed integers, length-prefixed strings, and a one-byte
    tag per event.  Everything round-trips with the text format — a
    history printed by {!Parse.to_text} and one encoded by
    {!history_to_string} decode to equivalent values.

    Encoders write into a caller-supplied [Buffer]; decoders read from a
    bounds-checked {!reader} and {b never} raise anything but {!Error} on
    adversarial input — random byte mutations yield [Error _], not a crash
    (property-tested in [test/test_codec.ml]). *)

exception Error of string
(** Decoding failure: truncated input, overflowing varint, unknown tag,
    ill-formed decoded history.  The only exception the [get_*] family
    raises. *)

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Error} with a formatted message; for decoders
    layered on top of these primitives (see {!Protocol}). *)

(** {1 Readers} *)

type reader = { data : string; mutable pos : int; limit : int }

val reader : ?pos:int -> ?len:int -> string -> reader
val remaining : reader -> int
val at_end : reader -> bool

(** {1 Primitives} *)

val put_uvarint : Buffer.t -> int -> unit
(** Unsigned LEB128.  @raise Invalid_argument on negative input. *)

val get_uvarint : reader -> int

val put_int : Buffer.t -> int -> unit
(** Zigzag-coded signed integer. *)

val get_int : reader -> int

val put_string : Buffer.t -> string -> unit
val get_string : reader -> string
val get_byte : reader -> int
val get_bytes : reader -> int -> string

(** {1 Events} *)

val put_event : Buffer.t -> Event.t -> unit
(** Per-event reference encoder; {!put_events} is the batch fast path
    and must stay byte-identical to iterating this. *)

val get_event : reader -> Event.t

val put_events : Buffer.t -> Event.t list -> unit
(** Count-prefixed event sequence.  Encodes the whole batch in one pass
    through a scratch block (one bounds test per event rather than one
    per byte); output is byte-identical to [iter put_event], including
    the bytes written before a failed encode raises. *)

val get_events : reader -> Event.t list
(** Batch decode; one slack test per event in the interior, per-event
    reference decode near the frame boundary.  Byte- and
    failure-identical to iterating {!get_event}. *)

(** {1 Standalone binary histories}

    [TMH1] magic followed by a count-prefixed event sequence.  [tm submit]
    and [tm check] auto-detect this format by the magic. *)

val history_magic : string

val put_history : Buffer.t -> History.t -> unit
val history_to_string : History.t -> string

val get_history : reader -> History.t
(** Decodes and validates well-formedness. *)

val history_of_string : string -> (History.t, string) result

val looks_binary : string -> bool
(** The string starts with {!history_magic}. *)
