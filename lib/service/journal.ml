module Monitor = Tm_checker.Monitor

let journal_magic = "TMJ1"
let snap_magic = "TMS1"
let record_tag = 1
let verdict_tag = 2

let journal_path ~dir ~session =
  Filename.concat dir (Fmt.str "s%d.journal" session)

let snap_path ~dir ~session = Filename.concat dir (Fmt.str "s%d.snap" session)

type t = {
  dir : string;
  session : int;
  sync : bool;
  mutable fd : Unix.file_descr option;
  mutable base : int;  (* applied index at which the journal file begins *)
  mutable count : int;  (* events recorded in the journal file *)
}

let applied t = t.base + t.count
let since_snapshot t = t.count

let rec mkdirs dir =
  if dir <> Filename.dirname dir && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec write_all fd bytes pos len =
  if len > 0 then begin
    match Unix.write fd bytes pos len with
    | n -> write_all fd bytes (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd bytes pos len
  end

let write_string fd s = write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)

(* Write [content] to [path] atomically: temporary file + rename. *)
let write_file_atomic path content =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (try
     write_string fd content;
     Unix.fsync fd
   with e ->
     Unix.close fd;
     raise e);
  Unix.close fd;
  Unix.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let journal_header base =
  let b = Buffer.create 16 in
  Buffer.add_string b journal_magic;
  Codec.put_uvarint b base;
  Buffer.contents b

let unlink_quiet path = try Unix.unlink path with Unix.Unix_error _ -> ()

let delete ~dir ~session =
  unlink_quiet (journal_path ~dir ~session);
  unlink_quiet (snap_path ~dir ~session);
  unlink_quiet (journal_path ~dir ~session ^ ".tmp");
  unlink_quiet (snap_path ~dir ~session ^ ".tmp")

let exists ~dir ~session =
  Sys.file_exists (journal_path ~dir ~session)
  || Sys.file_exists (snap_path ~dir ~session)

let open_append path = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644

let create ?(sync = false) ~dir ~session () =
  mkdirs dir;
  delete ~dir ~session;
  let path = journal_path ~dir ~session in
  write_file_atomic path (journal_header 0);
  let fd = open_append path in
  { dir; session; sync; fd = Some fd; base = 0; count = 0 }

let append t events =
  match t.fd with
  | None -> invalid_arg "Journal.append: closed"
  | Some fd ->
      let b = Buffer.create 64 in
      Buffer.add_char b (Char.chr record_tag);
      Codec.put_events b events;
      write_string fd (Buffer.contents b);
      if t.sync then Unix.fsync fd;
      t.count <- t.count + List.length events;
      applied t

(* --- monitor capsules ---------------------------------------------------- *)

let put_outcome b : Monitor.outcome -> unit = function
  | `Ok -> Codec.put_uvarint b 0
  | `Violation why ->
      Codec.put_uvarint b 1;
      Codec.put_string b why
  | `Budget why ->
      Codec.put_uvarint b 2;
      Codec.put_string b why

let get_outcome r : Monitor.outcome =
  match Codec.get_uvarint r with
  | 0 -> `Ok
  | 1 -> `Violation (Codec.get_string r)
  | 2 -> `Budget (Codec.get_string r)
  | n -> Codec.fail "unknown monitor outcome %d" n

let put_opt_index b = function
  | None -> Codec.put_uvarint b 0
  | Some i -> Codec.put_uvarint b (i + 1)

let get_opt_index r =
  match Codec.get_uvarint r with 0 -> None | n -> Some (n - 1)

(* A sticky-verdict record: the live monitor's outcome at the moment it
   flipped, durably in the journal stream.  Event replay alone cannot be
   trusted to re-derive it — a violation found by the backtracking search
   under the pre-crash node budget degrades to [`Budget] when the restarted
   server replays under a smaller one — so the verdict itself is data. *)
let record_verdict t status violation_index =
  match t.fd with
  | None -> invalid_arg "Journal.record_verdict: closed"
  | Some fd ->
      let b = Buffer.create 32 in
      Buffer.add_char b (Char.chr verdict_tag);
      put_outcome b status;
      put_opt_index b violation_index;
      write_string fd (Buffer.contents b);
      if t.sync then Unix.fsync fd

let put_capsule b (p : Monitor.persisted) =
  put_opt_index b p.Monitor.p_max_nodes;
  Codec.put_events b p.Monitor.p_events;
  put_outcome b p.Monitor.p_status;
  put_opt_index b p.Monitor.p_violation_index;
  let c = p.Monitor.p_counters in
  Codec.put_uvarint b c.Monitor.events;
  Codec.put_uvarint b c.Monitor.responses;
  Codec.put_uvarint b c.Monitor.fastpath_hits;
  Codec.put_uvarint b c.Monitor.searches;
  Codec.put_uvarint b c.Monitor.nodes;
  Codec.put_uvarint b c.Monitor.pending

let get_capsule r : Monitor.persisted =
  let p_max_nodes = get_opt_index r in
  let p_events = Codec.get_events r in
  let p_status = get_outcome r in
  let p_violation_index = get_opt_index r in
  let events = Codec.get_uvarint r in
  let responses = Codec.get_uvarint r in
  let fastpath_hits = Codec.get_uvarint r in
  let searches = Codec.get_uvarint r in
  let nodes = Codec.get_uvarint r in
  let pending = Codec.get_uvarint r in
  {
    Monitor.p_max_nodes;
    p_events;
    p_status;
    p_violation_index;
    p_counters =
      { Monitor.events; responses; fastpath_hits; searches; nodes; pending };
  }

let snapshot t p =
  let b = Buffer.create 1024 in
  Buffer.add_string b snap_magic;
  Codec.put_uvarint b (applied t);
  put_capsule b p;
  write_file_atomic (snap_path ~dir:t.dir ~session:t.session) (Buffer.contents b);
  (* Reset the journal: its new base is the applied index the snapshot
     covers.  The reset is itself atomic (tmp + rename); a crash landing
     between the two renames leaves the old journal in place, whose
     smaller header [base] makes recovery skip the doubly-covered events
     rather than replay them twice. *)
  let path = journal_path ~dir:t.dir ~session:t.session in
  write_file_atomic path (journal_header (applied t));
  (match t.fd with Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ()) | None -> ());
  t.fd <- Some (open_append path);
  t.base <- applied t;
  t.count <- 0

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

(* --- recovery ------------------------------------------------------------ *)

let load_snapshot ~dir ~session =
  let path = snap_path ~dir ~session in
  if not (Sys.file_exists path) then Ok None
  else
    match
      let r = Codec.reader (read_file path) in
      let magic = Codec.get_bytes r 4 in
      if magic <> snap_magic then Codec.fail "bad snapshot magic %S" magic;
      let applied = Codec.get_uvarint r in
      let capsule = get_capsule r in
      if not (Codec.at_end r) then Codec.fail "trailing bytes after snapshot";
      (applied, capsule)
    with
    | v -> Ok (Some v)
    | exception Codec.Error msg ->
        Error (Fmt.str "snapshot %s is corrupt: %s" path msg)
    | exception Sys_error msg -> Error msg

(* Parse the journal greedily, tolerating a torn tail: returns the header
   base (None when the file is empty or headerless — a crash window during
   reset), the whole records' events, the last sticky-verdict record if
   any, and the byte length of the valid prefix the file should be
   truncated to. *)
let parse_journal data =
  let len = String.length data in
  if len = 0 then (None, [], None, 0)
  else
    match
      let r = Codec.reader data in
      let magic = Codec.get_bytes r 4 in
      if magic <> journal_magic then Codec.fail "bad journal magic %S" magic;
      let base = Codec.get_uvarint r in
      (base, r)
    with
    | exception Codec.Error _ -> (None, [], None, 0)
    | base, r ->
        let events = ref [] in
        let verdict = ref None in
        let valid = ref r.Codec.pos in
        (try
           while not (Codec.at_end r) do
             let tag = Codec.get_byte r in
             if tag = record_tag then begin
               let batch = Codec.get_events r in
               events := List.rev_append batch !events
             end
             else if tag = verdict_tag then begin
               let status = get_outcome r in
               let vidx = get_opt_index r in
               verdict := Some (status, vidx)
             end
             else Codec.fail "unknown record tag %d" tag;
             valid := r.Codec.pos
           done
         with Codec.Error _ -> ());
        (Some base, List.rev !events, !verdict, !valid)

(* Everything recovery needs that does not depend on which monitor will
   be rebuilt: the snapshot capsule (if any), the journal events to
   replay on top of it, the last journalled sticky verdict, and the
   reopened (torn-tail-sheared) journal handle. *)
let recover_parts ~sync ~dir ~session =
  match load_snapshot ~dir ~session with
  | Error _ as e -> e
  | Ok snap ->
      let snap_applied = match snap with None -> 0 | Some (a, _) -> a in
      let capsule = Option.map snd snap in
      let path = journal_path ~dir ~session in
      let base, events, verdict, valid_len =
        if Sys.file_exists path then parse_journal (read_file path)
        else (None, [], None, -1)
      in
      let base = Option.value base ~default:snap_applied in
      (* Events at indices [base, snap_applied) are already inside the
         snapshot (the crash landed mid-reset); replay only the rest. *)
      let skip = max 0 (snap_applied - base) in
      let rec drop n = function
        | rest when n <= 0 -> rest
        | [] -> []
        | _ :: rest -> drop (n - 1) rest
      in
      let replay = drop skip events in
      let count = List.length events in
      let t = { dir; session; sync; fd = None; base; count } in
      (if valid_len >= String.length journal_magic then begin
         (* Reopen the surviving journal, shearing any torn tail. *)
         let fd = open_append path in
         (try Unix.ftruncate fd valid_len with Unix.Unix_error _ -> ());
         t.fd <- Some fd
       end
       else begin
         (* Missing or headerless journal: start a fresh file whose
            base is everything applied so far. *)
         mkdirs dir;
         write_file_atomic path (journal_header (applied t));
         t.base <- applied t;
         t.count <- 0;
         t.fd <- Some (open_append path)
       end);
      Ok (capsule, replay, verdict, t)

(* A journalled sticky verdict is authoritative: the pre-crash server
   observed it live.  Replay may fail to re-derive it (e.g. a
   search-found violation degrades to [`Budget] under a smaller
   [max_nodes]), so adopt it the way a snapshot capsule would. *)
let adopt_verdict ~persist ~status = function
  | Some (((`Violation _ | `Budget _) as st), vidx) when status <> st ->
      Some { (persist ()) with Monitor.p_status = st; p_violation_index = vidx }
  | _ -> None

let recover ?(sync = false) ?max_nodes ~dir ~session () =
  match recover_parts ~sync ~dir ~session with
  | Error _ as e -> e
  | Ok (capsule, replay, verdict, t) -> (
      let monitor_r =
        match capsule with
        | None -> Ok (Monitor.create ?max_nodes ())
        | Some capsule -> Monitor.of_persisted capsule
      in
      match monitor_r with
      | Error _ as e ->
          close t;
          e
      | Ok monitor ->
          List.iter (fun ev -> ignore (Monitor.push monitor ev)) replay;
          let monitor =
            match
              adopt_verdict
                ~persist:(fun () -> Monitor.persist monitor)
                ~status:(Monitor.status monitor) verdict
            with
            | Some patched -> (
                match Monitor.of_persisted patched with
                | Ok m -> m
                | Error _ -> monitor)
            | None -> monitor
          in
          Ok (monitor, applied t, t))

(* The sharded twin: rebuild a {!Tm_checker.Sharded_monitor} from the
   same capsule format.  The final certify inside [persist]/[of_persisted]
   settles the replayed stream's verdict, so the caller's [Resumed] frame
   never reports a provisional [`Ok] over an uncertified suffix. *)
let recover_sharded ?(sync = false) ?max_nodes ?nshards ?run ~dir ~session ()
    =
  match recover_parts ~sync ~dir ~session with
  | Error _ as e -> e
  | Ok (capsule, replay, verdict, t) -> (
      let module Sharded = Tm_checker.Sharded_monitor in
      let monitor_r =
        match capsule with
        | None -> Ok (Sharded.create ?max_nodes ?nshards ?run ())
        | Some capsule -> Sharded.of_persisted ?nshards ?run capsule
      in
      match monitor_r with
      | Error _ as e ->
          close t;
          e
      | Ok monitor ->
          List.iter (fun ev -> ignore (Sharded.push monitor ev)) replay;
          let monitor =
            match
              adopt_verdict
                ~persist:(fun () -> Sharded.persist monitor)
                ~status:(Sharded.status monitor) verdict
            with
            | Some patched -> (
                match Sharded.of_persisted ?nshards ?run patched with
                | Ok m -> m
                | Error _ -> monitor)
            | None -> monitor
          in
          ignore (Sharded.certify monitor);
          Ok (monitor, applied t, t))

let sessions_on_disk ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             match Filename.chop_suffix_opt ~suffix:".journal" name with
             | Some stem when String.length stem > 1 && stem.[0] = 's' ->
                 int_of_string_opt
                   (String.sub stem 1 (String.length stem - 1))
             | _ -> (
                 match Filename.chop_suffix_opt ~suffix:".snap" name with
                 | Some stem when String.length stem > 1 && stem.[0] = 's' ->
                     int_of_string_opt
                       (String.sub stem 1 (String.length stem - 1))
                 | _ -> None))
      |> List.sort_uniq Int.compare
