(** Per-session durable storage: an append-only event journal plus atomic
    monitor-snapshot checkpoints, built from the {!Codec} primitives.

    A durable session owns two files under its journal directory:

    - [s<id>.journal] — [TMJ1] magic, then [base:uv] (the session's
      applied-event index when this journal file began), then a sequence
      of records: [1:u8] followed by a count-prefixed event batch
      ({!Codec.put_events}), or [2:u8] followed by a sticky-verdict
      record ({!record_verdict}).  Appends are single [write(2)] calls of whole
      records, so an in-process crash never interleaves partial records
      from the writer's own buffers; a record torn by the kernel or a
      power cut is detected on load and the file is truncated back to the
      last whole record — a documented clean loss of the torn tail, never
      a parse error or a wrong replay.
    - [s<id>.snap] — [TMS1] magic, [applied:uv], then a serialized
      {!Tm_checker.Monitor.persisted} capsule; always written to a
      temporary file and [rename(2)]d into place, so the snapshot is
      either the old one or the new one, never a torn hybrid.

    Recovery is snapshot-load + journal-replay: restore the monitor from
    the capsule, skip the journal events the snapshot already covers (the
    journal header's [base] makes this exact even if a crash landed
    between the snapshot rename and the journal truncation), and push the
    rest.  Determinism of monitor replay makes the recovered session
    verdict-identical to an uninterrupted one.

    Writes happen only from the session's owning shard worker, so no
    locking; [load]/[recover] run before a session goes live. *)

type t

val create : ?sync:bool -> dir:string -> session:int -> unit -> t
(** Start a fresh journal for [session] under [dir] (created if missing),
    deleting any previous files for that session id.  [sync] (default
    [false]) additionally [fsync]s after every append — in-process crash
    durability needs no fsync because appends are unbuffered writes.
    @raise Unix.Unix_error on filesystem failure. *)

val exists : dir:string -> session:int -> bool
(** A journal or snapshot file for this session id is on disk. *)

val applied : t -> int
(** Events durably applied: the snapshot's base plus journalled events. *)

val since_snapshot : t -> int
(** Events appended since the last {!snapshot} (the replay cost of a crash
    right now) — the server auto-checkpoints when this passes a bound. *)

val append : t -> Event.t list -> int
(** Append one record; returns the new {!applied} index.
    @raise Unix.Unix_error on write failure (the caller sheds the
    session rather than lying about durability). *)

val record_verdict :
  t -> Tm_checker.Monitor.outcome -> int option -> unit
(** Append a sticky-verdict record ([2:u8], outcome, violation index):
    the monitor's live outcome at the moment it flipped.  Replay alone
    cannot be trusted to re-derive it — a violation the backtracking
    search found under the pre-crash node budget degrades to [`Budget]
    when the restarted server replays under a smaller one — so {!recover}
    adopts the journalled verdict whenever replay disagrees.  Subsumed by
    the next {!snapshot} (whose capsule carries the sticky status).
    @raise Unix.Unix_error on write failure. *)

val snapshot : t -> Tm_checker.Monitor.persisted -> unit
(** Atomically persist the capsule at the current applied index and reset
    the journal file (its new [base] is the current applied index). *)

val recover :
  ?sync:bool ->
  ?max_nodes:int ->
  dir:string ->
  session:int ->
  unit ->
  (Tm_checker.Monitor.t * int * t, string) result
(** Rebuild the session: restore the monitor from the snapshot (or a
    fresh one under [max_nodes] when no snapshot exists), replay the
    journal suffix, truncate any torn tail, and reopen the journal for
    appending.  Returns the monitor, the applied index, and the journal
    handle.  [Error _] on a corrupt snapshot or an unreadable directory —
    never an exception on torn or truncated journal bytes. *)

val recover_sharded :
  ?sync:bool ->
  ?max_nodes:int ->
  ?nshards:int ->
  ?run:((unit -> unit) array -> unit) ->
  dir:string ->
  session:int ->
  unit ->
  (Tm_checker.Sharded_monitor.t * int * t, string) result
(** {!recover} for sharded sessions: the two monitors share the capsule
    format ({!Tm_checker.Sharded_monitor.persist} emits a
    {!Tm_checker.Monitor.persisted}), so either can rebuild from either's
    files — a server restarted with a different [--shards] still recovers
    every durable session.  The rebuilt stream is certified before
    returning, so the caller's [Resumed] status is never a provisional
    [`Ok] over an uncertified suffix. *)

val close : t -> unit
(** Close the journal fd; the files stay on disk (the session remains
    recoverable).  Idempotent. *)

val delete : dir:string -> session:int -> unit
(** Remove the session's files (expiry, or explicit close of a durable
    session).  Best-effort. *)

val sessions_on_disk : dir:string -> int list
(** Session ids with durable state under [dir] (for sweeping). *)
