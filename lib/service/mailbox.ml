type 'a t = {
  buf : 'a Queue.t;
  capacity : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Mailbox.create: capacity must be positive";
  {
    buf = Queue.create ();
    capacity;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    nonfull = Condition.create ();
  }

let put mb x =
  Mutex.lock mb.mutex;
  while Queue.length mb.buf >= mb.capacity do
    Condition.wait mb.nonfull mb.mutex
  done;
  Queue.push x mb.buf;
  Condition.signal mb.nonempty;
  Mutex.unlock mb.mutex

let try_put mb x =
  Mutex.lock mb.mutex;
  let ok = Queue.length mb.buf < mb.capacity in
  if ok then begin
    Queue.push x mb.buf;
    Condition.signal mb.nonempty
  end;
  Mutex.unlock mb.mutex;
  ok

let take mb =
  Mutex.lock mb.mutex;
  while Queue.is_empty mb.buf do
    Condition.wait mb.nonempty mb.mutex
  done;
  let x = Queue.pop mb.buf in
  Condition.signal mb.nonfull;
  Mutex.unlock mb.mutex;
  x

let length mb =
  Mutex.lock mb.mutex;
  let n = Queue.length mb.buf in
  Mutex.unlock mb.mutex;
  n
