(** Bounded blocking queue (mutex + condition variables), the work-queue
    between connection reader threads and domain-shard workers.

    The bound is the server's backpressure: a reader that cannot enqueue
    blocks, stops draining its socket, and the kernel's flow control
    propagates the stall to the client — no unbounded buffering anywhere
    on the path.  Safe across OCaml 5 domains. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument unless [capacity > 0]. *)

val put : 'a t -> 'a -> unit
(** Blocks while the queue holds [capacity] items. *)

val take : 'a t -> 'a
(** Blocks while the queue is empty. *)

val length : 'a t -> int
