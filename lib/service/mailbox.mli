(** Bounded blocking queue (mutex + condition variables), the work-queue
    between connection reader threads and domain-shard workers.

    The bound is the server's backpressure: a reader that cannot enqueue
    blocks, stops draining its socket, and the kernel's flow control
    propagates the stall to the client — no unbounded buffering anywhere
    on the path.  Safe across OCaml 5 domains. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument unless [capacity > 0]. *)

val put : 'a t -> 'a -> unit
(** Blocks while the queue holds [capacity] items. *)

val try_put : 'a t -> 'a -> bool
(** Non-blocking [put]: [false] when the queue is full — the caller's cue
    to shed or throttle instead of queueing without bound (the server's
    overload ladder). *)

val take : 'a t -> 'a
(** Blocks while the queue is empty. *)

val length : 'a t -> int
