let version = 1
let hello_magic = "TMSV"
let max_frame = 16 * 1024 * 1024

type error_code =
  | Bad_frame
  | Bad_magic
  | Unsupported_version
  | Unknown_session
  | Duplicate_session
  | Server_error

let error_code_to_int = function
  | Bad_frame -> 1
  | Bad_magic -> 2
  | Unsupported_version -> 3
  | Unknown_session -> 4
  | Duplicate_session -> 5
  | Server_error -> 6

let error_code_of_int = function
  | 1 -> Some Bad_frame
  | 2 -> Some Bad_magic
  | 3 -> Some Unsupported_version
  | 4 -> Some Unknown_session
  | 5 -> Some Duplicate_session
  | 6 -> Some Server_error
  | _ -> None

let pp_error_code ppf c =
  Fmt.string ppf
    (match c with
    | Bad_frame -> "bad-frame"
    | Bad_magic -> "bad-magic"
    | Unsupported_version -> "unsupported-version"
    | Unknown_session -> "unknown-session"
    | Duplicate_session -> "duplicate-session"
    | Server_error -> "server-error")

type status = S_ok | S_violation of string | S_budget of string

type verdict = { session : int; token : int; events : int; status : status }

type domain_stats = {
  live_sessions : int;
  closed_sessions : int;
  events : int;
  responses : int;
  fastpath_hits : int;
  searches : int;
  nodes : int;
}

type frame =
  | Hello of { version : int }
  | Open_session of { session : int }
  | Events of { session : int; events : Event.t list }
  | Checkpoint of { session : int; token : int }
  | Close_session of { session : int }
  | Verdict of verdict
  | Stats_req
  | Stats of domain_stats list
  | Err of { code : error_code; message : string }
  | Goodbye

let tag_of_frame = function
  | Hello _ -> 1
  | Open_session _ -> 2
  | Events _ -> 3
  | Checkpoint _ -> 4
  | Close_session _ -> 5
  | Verdict _ -> 6
  | Stats_req -> 7
  | Stats _ -> 8
  | Err _ -> 9
  | Goodbye -> 10

let encode b frame =
  Buffer.add_char b (Char.chr (tag_of_frame frame));
  match frame with
  | Hello { version } ->
      Buffer.add_string b hello_magic;
      Codec.put_uvarint b version
  | Open_session { session } -> Codec.put_uvarint b session
  | Events { session; events } ->
      Codec.put_uvarint b session;
      Codec.put_events b events
  | Checkpoint { session; token } ->
      Codec.put_uvarint b session;
      Codec.put_uvarint b token
  | Close_session { session } -> Codec.put_uvarint b session
  | Verdict { session; token; events; status } ->
      Codec.put_uvarint b session;
      Codec.put_uvarint b token;
      Codec.put_uvarint b events;
      (match status with
      | S_ok -> Codec.put_uvarint b 0
      | S_violation why ->
          Codec.put_uvarint b 1;
          Codec.put_string b why
      | S_budget why ->
          Codec.put_uvarint b 2;
          Codec.put_string b why)
  | Stats_req -> ()
  | Stats domains ->
      Codec.put_uvarint b (List.length domains);
      List.iter
        (fun d ->
          Codec.put_uvarint b d.live_sessions;
          Codec.put_uvarint b d.closed_sessions;
          Codec.put_uvarint b d.events;
          Codec.put_uvarint b d.responses;
          Codec.put_uvarint b d.fastpath_hits;
          Codec.put_uvarint b d.searches;
          Codec.put_uvarint b d.nodes)
        domains
  | Err { code; message } ->
      Codec.put_uvarint b (error_code_to_int code);
      Codec.put_string b message
  | Goodbye -> ()

let to_string frame =
  let b = Buffer.create 64 in
  encode b frame;
  Buffer.contents b

let decode_reader r =
  let tag = Codec.get_byte r in
  match tag with
  | 1 ->
      let magic = Codec.get_bytes r 4 in
      if magic <> hello_magic then Codec.fail "bad hello magic %S" magic;
      Hello { version = Codec.get_uvarint r }
  | 2 -> Open_session { session = Codec.get_uvarint r }
  | 3 ->
      let session = Codec.get_uvarint r in
      Events { session; events = Codec.get_events r }
  | 4 ->
      let session = Codec.get_uvarint r in
      Checkpoint { session; token = Codec.get_uvarint r }
  | 5 -> Close_session { session = Codec.get_uvarint r }
  | 6 ->
      let session = Codec.get_uvarint r in
      let token = Codec.get_uvarint r in
      let events = Codec.get_uvarint r in
      let status =
        match Codec.get_uvarint r with
        | 0 -> S_ok
        | 1 -> S_violation (Codec.get_string r)
        | 2 -> S_budget (Codec.get_string r)
        | n -> Codec.fail "unknown verdict status %d" n
      in
      Verdict { session; token; events; status }
  | 7 -> Stats_req
  | 8 ->
      let n = Codec.get_uvarint r in
      if n > Codec.remaining r then
        Codec.fail "domain count %d exceeds remaining payload" n;
      Stats
        (List.init n (fun _ ->
             let live_sessions = Codec.get_uvarint r in
             let closed_sessions = Codec.get_uvarint r in
             let events = Codec.get_uvarint r in
             let responses = Codec.get_uvarint r in
             let fastpath_hits = Codec.get_uvarint r in
             let searches = Codec.get_uvarint r in
             let nodes = Codec.get_uvarint r in
             {
               live_sessions;
               closed_sessions;
               events;
               responses;
               fastpath_hits;
               searches;
               nodes;
             }))
  | 9 ->
      let code = Codec.get_uvarint r in
      let message = Codec.get_string r in
      let code =
        match error_code_of_int code with
        | Some c -> c
        | None -> Codec.fail "unknown error code %d" code
      in
      Err { code; message }
  | 10 -> Goodbye
  | t -> Codec.fail "unknown frame tag %d" t

let decode body =
  match
    let r = Codec.reader body in
    let frame = decode_reader r in
    if not (Codec.at_end r) then
      Codec.fail "%d trailing bytes after frame" (Codec.remaining r);
    frame
  with
  | frame -> Ok frame
  | exception Codec.Error msg -> Error msg
  | exception _ -> Error "undecodable frame"

let pp_status ppf = function
  | S_ok -> Fmt.string ppf "ok"
  | S_violation why -> Fmt.pf ppf "VIOLATION (%s)" why
  | S_budget why -> Fmt.pf ppf "unknown (%s)" why

let pp_frame ppf = function
  | Hello { version } -> Fmt.pf ppf "Hello v%d" version
  | Open_session { session } -> Fmt.pf ppf "Open_session %d" session
  | Events { session; events } ->
      Fmt.pf ppf "Events %d (%d events)" session (List.length events)
  | Checkpoint { session; token } ->
      Fmt.pf ppf "Checkpoint %d token %d" session token
  | Close_session { session } -> Fmt.pf ppf "Close_session %d" session
  | Verdict { session; token; events; status } ->
      Fmt.pf ppf "Verdict %d token %d events %d: %a" session token events
        pp_status status
  | Stats_req -> Fmt.string ppf "Stats_req"
  | Stats ds -> Fmt.pf ppf "Stats (%d domains)" (List.length ds)
  | Err { code; message } ->
      Fmt.pf ppf "Error %a: %s" pp_error_code code message
  | Goodbye -> Fmt.string ppf "Goodbye"
