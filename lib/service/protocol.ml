let version = 3
let hello_magic = "TMSV"
let max_frame = 16 * 1024 * 1024
let default_session_timeout = 30.0
let default_heartbeat = 5.0

type error_code =
  | Bad_frame
  | Bad_magic
  | Unsupported_version
  | Unknown_session
  | Duplicate_session
  | Server_error
  | Overloaded

let error_code_to_int = function
  | Bad_frame -> 1
  | Bad_magic -> 2
  | Unsupported_version -> 3
  | Unknown_session -> 4
  | Duplicate_session -> 5
  | Server_error -> 6
  | Overloaded -> 7

let error_code_of_int = function
  | 1 -> Some Bad_frame
  | 2 -> Some Bad_magic
  | 3 -> Some Unsupported_version
  | 4 -> Some Unknown_session
  | 5 -> Some Duplicate_session
  | 6 -> Some Server_error
  | 7 -> Some Overloaded
  | _ -> None

let pp_error_code ppf c =
  Fmt.string ppf
    (match c with
    | Bad_frame -> "bad-frame"
    | Bad_magic -> "bad-magic"
    | Unsupported_version -> "unsupported-version"
    | Unknown_session -> "unknown-session"
    | Duplicate_session -> "duplicate-session"
    | Server_error -> "server-error"
    | Overloaded -> "overloaded")

type status = S_ok | S_violation of string | S_budget of string

type mode = M_full | M_sampling | M_shed

let mode_to_int = function M_full -> 0 | M_sampling -> 1 | M_shed -> 2

let mode_of_int = function
  | 0 -> Some M_full
  | 1 -> Some M_sampling
  | 2 -> Some M_shed
  | _ -> None

let pp_mode ppf m =
  Fmt.string ppf
    (match m with
    | M_full -> "full"
    | M_sampling -> "sampling"
    | M_shed -> "shed")

type verdict = {
  session : int;
  token : int;
  events : int;
  status : status;
  mode : mode;
  applied : int;
}

type domain_stats = {
  live_sessions : int;
  closed_sessions : int;
  events : int;
  responses : int;
  fastpath_hits : int;
  searches : int;
  nodes : int;
}

type shard_stats = {
  shards : int;
  certifies : int;
  incremental : int;
  full : int;
  escalated : string option;
}

type frame =
  | Hello of { version : int }
  | Open_session of { session : int }
  | Events of { session : int; events : Event.t list }
  | Checkpoint of { session : int; token : int }
  | Close_session of { session : int }
  | Verdict of verdict
  | Stats_req
  | Stats of domain_stats list
  | Err of { code : error_code; message : string }
  | Goodbye
  | Resume of { session : int; from : int }
  | Resumed of { session : int; applied : int; mode : mode; status : status }
  | Throttle of { session : int; retry_after_ms : int }
  | Heartbeat
  | Events_at of { session : int; from : int; events : Event.t list }
  | Shed of { session : int; reason : string }
  | Shards_req of { session : int }
  | Shards of { session : int; stats : shard_stats }

let verdict ?(mode = M_full) ?applied ~session ~token ~events status =
  let applied = Option.value applied ~default:events in
  Verdict { session; token; events; status; mode; applied }

let tag_of_frame = function
  | Hello _ -> 1
  | Open_session _ -> 2
  | Events _ -> 3
  | Checkpoint _ -> 4
  | Close_session _ -> 5
  | Verdict _ -> 6
  | Stats_req -> 7
  | Stats _ -> 8
  | Err _ -> 9
  | Goodbye -> 10
  | Resume _ -> 11
  | Resumed _ -> 12
  | Throttle _ -> 13
  | Heartbeat -> 14
  | Events_at _ -> 15
  | Shed _ -> 16
  | Shards_req _ -> 17
  | Shards _ -> 18

let put_status b = function
  | S_ok -> Codec.put_uvarint b 0
  | S_violation why ->
      Codec.put_uvarint b 1;
      Codec.put_string b why
  | S_budget why ->
      Codec.put_uvarint b 2;
      Codec.put_string b why

let encode b frame =
  Buffer.add_char b (Char.chr (tag_of_frame frame));
  match frame with
  | Hello { version } ->
      Buffer.add_string b hello_magic;
      Codec.put_uvarint b version
  | Open_session { session } -> Codec.put_uvarint b session
  | Events { session; events } ->
      Codec.put_uvarint b session;
      Codec.put_events b events
  | Checkpoint { session; token } ->
      Codec.put_uvarint b session;
      Codec.put_uvarint b token
  | Close_session { session } -> Codec.put_uvarint b session
  | Verdict { session; token; events; status; mode; applied } ->
      Codec.put_uvarint b session;
      Codec.put_uvarint b token;
      Codec.put_uvarint b events;
      put_status b status;
      (* The degraded tail is only emitted when it says something a v1
         peer would lose: an absent tail decodes as full checking with
         [applied = events], so v1 sessions (which are never degraded)
         still receive byte-identical v1 frames. *)
      if mode <> M_full || applied <> events then begin
        Buffer.add_char b (Char.chr (mode_to_int mode));
        Codec.put_uvarint b applied
      end
  | Stats_req -> ()
  | Stats domains ->
      Codec.put_uvarint b (List.length domains);
      List.iter
        (fun d ->
          Codec.put_uvarint b d.live_sessions;
          Codec.put_uvarint b d.closed_sessions;
          Codec.put_uvarint b d.events;
          Codec.put_uvarint b d.responses;
          Codec.put_uvarint b d.fastpath_hits;
          Codec.put_uvarint b d.searches;
          Codec.put_uvarint b d.nodes)
        domains
  | Err { code; message } ->
      Codec.put_uvarint b (error_code_to_int code);
      Codec.put_string b message
  | Goodbye -> ()
  | Resume { session; from } ->
      Codec.put_uvarint b session;
      Codec.put_uvarint b from
  | Resumed { session; applied; mode; status } ->
      Codec.put_uvarint b session;
      Codec.put_uvarint b applied;
      Buffer.add_char b (Char.chr (mode_to_int mode));
      put_status b status
  | Throttle { session; retry_after_ms } ->
      Codec.put_uvarint b session;
      Codec.put_uvarint b retry_after_ms
  | Heartbeat -> ()
  | Events_at { session; from; events } ->
      Codec.put_uvarint b session;
      Codec.put_uvarint b from;
      Codec.put_events b events
  | Shed { session; reason } ->
      Codec.put_uvarint b session;
      Codec.put_string b reason
  | Shards_req { session } -> Codec.put_uvarint b session
  | Shards { session; stats } ->
      Codec.put_uvarint b session;
      Codec.put_uvarint b stats.shards;
      Codec.put_uvarint b stats.certifies;
      Codec.put_uvarint b stats.incremental;
      Codec.put_uvarint b stats.full;
      (match stats.escalated with
      | None -> Codec.put_uvarint b 0
      | Some why ->
          Codec.put_uvarint b 1;
          Codec.put_string b why)

let to_string frame =
  let b = Buffer.create 64 in
  encode b frame;
  Buffer.contents b

let get_status r =
  match Codec.get_uvarint r with
  | 0 -> S_ok
  | 1 -> S_violation (Codec.get_string r)
  | 2 -> S_budget (Codec.get_string r)
  | n -> Codec.fail "unknown verdict status %d" n

let get_mode r =
  let m = Codec.get_byte r in
  match mode_of_int m with
  | Some m -> m
  | None -> Codec.fail "unknown degradation mode %d" m

let decode_reader r =
  let tag = Codec.get_byte r in
  match tag with
  | 1 ->
      let magic = Codec.get_bytes r 4 in
      if magic <> hello_magic then Codec.fail "bad hello magic %S" magic;
      Hello { version = Codec.get_uvarint r }
  | 2 -> Open_session { session = Codec.get_uvarint r }
  | 3 ->
      let session = Codec.get_uvarint r in
      Events { session; events = Codec.get_events r }
  | 4 ->
      let session = Codec.get_uvarint r in
      Checkpoint { session; token = Codec.get_uvarint r }
  | 5 -> Close_session { session = Codec.get_uvarint r }
  | 6 ->
      let session = Codec.get_uvarint r in
      let token = Codec.get_uvarint r in
      let events = Codec.get_uvarint r in
      let status = get_status r in
      let mode, applied =
        if Codec.at_end r then (M_full, events)
        else
          let mode = get_mode r in
          (mode, Codec.get_uvarint r)
      in
      Verdict { session; token; events; status; mode; applied }
  | 7 -> Stats_req
  | 8 ->
      let n = Codec.get_uvarint r in
      if n > Codec.remaining r then
        Codec.fail "domain count %d exceeds remaining payload" n;
      Stats
        (List.init n (fun _ ->
             let live_sessions = Codec.get_uvarint r in
             let closed_sessions = Codec.get_uvarint r in
             let events = Codec.get_uvarint r in
             let responses = Codec.get_uvarint r in
             let fastpath_hits = Codec.get_uvarint r in
             let searches = Codec.get_uvarint r in
             let nodes = Codec.get_uvarint r in
             {
               live_sessions;
               closed_sessions;
               events;
               responses;
               fastpath_hits;
               searches;
               nodes;
             }))
  | 9 ->
      let code = Codec.get_uvarint r in
      let message = Codec.get_string r in
      let code =
        match error_code_of_int code with
        | Some c -> c
        | None -> Codec.fail "unknown error code %d" code
      in
      Err { code; message }
  | 10 -> Goodbye
  | 11 ->
      let session = Codec.get_uvarint r in
      Resume { session; from = Codec.get_uvarint r }
  | 12 ->
      let session = Codec.get_uvarint r in
      let applied = Codec.get_uvarint r in
      let mode = get_mode r in
      let status = get_status r in
      Resumed { session; applied; mode; status }
  | 13 ->
      let session = Codec.get_uvarint r in
      Throttle { session; retry_after_ms = Codec.get_uvarint r }
  | 14 -> Heartbeat
  | 15 ->
      let session = Codec.get_uvarint r in
      let from = Codec.get_uvarint r in
      Events_at { session; from; events = Codec.get_events r }
  | 16 ->
      let session = Codec.get_uvarint r in
      Shed { session; reason = Codec.get_string r }
  | 17 -> Shards_req { session = Codec.get_uvarint r }
  | 18 ->
      let session = Codec.get_uvarint r in
      let shards = Codec.get_uvarint r in
      let certifies = Codec.get_uvarint r in
      let incremental = Codec.get_uvarint r in
      let full = Codec.get_uvarint r in
      let escalated =
        match Codec.get_uvarint r with
        | 0 -> None
        | 1 -> Some (Codec.get_string r)
        | n -> Codec.fail "unknown escalation flag %d" n
      in
      Shards
        { session; stats = { shards; certifies; incremental; full; escalated } }
  | t -> Codec.fail "unknown frame tag %d" t

let decode body =
  match
    let r = Codec.reader body in
    let frame = decode_reader r in
    if not (Codec.at_end r) then
      Codec.fail "%d trailing bytes after frame" (Codec.remaining r);
    frame
  with
  | frame -> Ok frame
  | exception Codec.Error msg -> Error msg
  (* lint: allow swallowed-exception — total-decoder backstop: any crash
     on adversarial bytes must become a decode error, never a raise *)
  | exception _ -> Error "undecodable frame"

let pp_status ppf = function
  | S_ok -> Fmt.string ppf "ok"
  | S_violation why -> Fmt.pf ppf "VIOLATION (%s)" why
  | S_budget why -> Fmt.pf ppf "unknown (%s)" why

let pp_frame ppf = function
  | Hello { version } -> Fmt.pf ppf "Hello v%d" version
  | Open_session { session } -> Fmt.pf ppf "Open_session %d" session
  | Events { session; events } ->
      Fmt.pf ppf "Events %d (%d events)" session (List.length events)
  | Checkpoint { session; token } ->
      Fmt.pf ppf "Checkpoint %d token %d" session token
  | Close_session { session } -> Fmt.pf ppf "Close_session %d" session
  | Verdict { session; token; events; status; mode; applied } ->
      Fmt.pf ppf "Verdict %d token %d events %d: %a" session token events
        pp_status status;
      if mode <> M_full || applied <> events then
        Fmt.pf ppf " [%a, applied %d]" pp_mode mode applied
  | Stats_req -> Fmt.string ppf "Stats_req"
  | Stats ds -> Fmt.pf ppf "Stats (%d domains)" (List.length ds)
  | Err { code; message } ->
      Fmt.pf ppf "Error %a: %s" pp_error_code code message
  | Goodbye -> Fmt.string ppf "Goodbye"
  | Resume { session; from } -> Fmt.pf ppf "Resume %d from %d" session from
  | Resumed { session; applied; mode; status } ->
      Fmt.pf ppf "Resumed %d applied %d [%a]: %a" session applied pp_mode
        mode pp_status status
  | Throttle { session; retry_after_ms } ->
      Fmt.pf ppf "Throttle %d retry-after %dms" session retry_after_ms
  | Heartbeat -> Fmt.string ppf "Heartbeat"
  | Events_at { session; from; events } ->
      Fmt.pf ppf "Events_at %d from %d (%d events)" session from
        (List.length events)
  | Shed { session; reason } -> Fmt.pf ppf "Shed %d: %s" session reason
  | Shards_req { session } -> Fmt.pf ppf "Shards_req %d" session
  | Shards { session; stats } ->
      Fmt.pf ppf "Shards %d: %d shards, %d certifies (%d incr, %d full)%a"
        session stats.shards stats.certifies stats.incremental stats.full
        Fmt.(option (any ", escalated: " ++ string))
        stats.escalated
