(** The [tm serve] wire protocol: framed, versioned, binary.

    {1 Wire grammar}

    Every message on the socket is a {e frame}:

    {v
frame   := length:u32be body
body    := tag:u8 payload            (* |body| = length, 1 <= length <= max_frame *)

payload by tag:
  1  Hello          "TMSV" version:uv
  2  Open_session   session:uv
  3  Events         session:uv count:uv event*
  4  Checkpoint     session:uv token:uv
  5  Close_session  session:uv
  6  Verdict        session:uv token:uv events:uv status tail?
  7  Stats_req      (empty)
  8  Stats          ndomains:uv domain*
  9  Error          code:uv message:str
  10 Goodbye        (empty)
  11 Resume         session:uv from:uv                 (since v2)
  12 Resumed        session:uv applied:uv mode:u8 status
  13 Throttle       session:uv retry_after_ms:uv       (since v2)
  14 Heartbeat      (empty)                            (since v2)
  15 Events_at      session:uv from:uv count:uv event* (since v2)
  16 Shed           session:uv reason:str              (since v2)
  17 Shards_req     session:uv                         (since v3)
  18 Shards         session:uv shards:uv certifies:uv
                    incremental:uv full:uv esc         (since v3)

esc     := 0                         (* never escalated                 *)
         | 1 why:str                 (* handed to the sequential
                                        monitor; why explains the
                                        shard-merge failure             *)

event   := 0 tx:uv var:uv            (* read invocation  R_tx(var)      *)
         | 1 tx:uv var:uv value:sv   (* write invocation W_tx(var,v)    *)
         | 2 tx:uv                   (* tryCommit invocation            *)
         | 3 tx:uv                   (* tryAbort invocation             *)
         | 4 tx:uv value:sv          (* read response -> value          *)
         | 5 tx:uv                   (* write response -> ok            *)
         | 6 tx:uv                   (* tryCommit response -> C         *)
         | 7 tx:uv                   (* any response -> A               *)

status  := 0                         (* every prefix du-opaque          *)
         | 1 why:str                 (* violation, sticky               *)
         | 2 why:str                 (* search budget exhausted, sticky *)

tail    := mode:u8 applied:uv        (* present iff mode <> 0 or
                                        applied <> events; absent tail
                                        means full checking, applied =
                                        events — a v1 frame             *)

mode    := 0                         (* full checking                   *)
         | 1                         (* sampling (see ladder below)     *)
         | 2                         (* shed: events past [applied]
                                        were discarded                  *)

domain  := live:uv closed:uv events:uv responses:uv hits:uv
           searches:uv nodes:uv

uv      := unsigned LEB128 varint (63-bit)
sv      := zigzag-coded signed varint
str     := len:uv byte*
    v}

    {1 Conversation}

    The client speaks first: [Hello] (magic + highest supported version);
    the server answers [Hello] with the negotiated version — the minimum
    of the two.  After the handshake the client opens any number of
    sessions (its own identifier namespace, per connection), streams
    [Events] frames into them, and collects [Verdict] frames: a
    [Checkpoint] is answered with the current verdict carrying the
    checkpoint's token, a [Close_session] with the final verdict (token
    [0]).  [Stats_req] is answered with per-domain shard counters.
    Protocol-level problems come back as [Error] frames: an undecodable
    body ([bad-frame]) or a semantic error ([unknown-session],
    [duplicate-session], ...) is reported and the connection keeps serving
    its other sessions; only a desynchronised stream (unparseable length
    prefix) closes the connection.

    Verdicts are the online monitor's outcomes, so a [Verdict] with status
    [0] certifies that {e every prefix} of the session's stream so far is
    du-opaque — the same judgement [tm monitor] makes offline.

    {1 Durable sessions and resume (v2)}

    A server started with a journal directory makes sessions {e durable}:
    every applied event is appended to a per-session journal before it
    reaches the monitor, and checkpoints additionally persist a
    serialized monitor snapshot, so a session survives both its
    connection and the server process.  On a durable server the session
    identifier namespace is {e global} (shared by every connection), not
    per-connection.

    [Resume session from] attaches the connection to durable session
    [session]: to a live orphaned session (its previous connection died)
    in memory, or — after a server crash — to one rebuilt from
    snapshot-load + journal-replay.  The server answers [Resumed] with
    [applied], the number of events it has {e durably applied}; the
    client re-sends everything from that index.  Re-sending is idempotent
    through [Events_at]: a frame whose [from] lies at or before [applied]
    has its first [applied - from] events dropped, and a frame that would
    open a gap ([from > applied]) is answered with a zero-delay
    [Throttle] and not applied — so duplicated, re-sent, or reordered
    frames can never double-apply or skip events, and the session's
    applied stream is always a contiguous prefix of what the client sent.

    {1 Overload: the degradation ladder (v2)}

    A server under pressure degrades {e predictably} instead of queueing
    without bound or wedging:

    - {e full}: normal operation; every event is checked.
    - {e throttle}: a session whose shard mailbox is over its
      high-watermark gets its [Events]/[Events_at] frame {e discarded}
      and answered with [Throttle retry_after_ms]; the client backs off
      and re-sends from its last acknowledged index.
    - {e sampling}: after repeated throttles the session admits only
      every other frame (the rest are throttled proactively), giving the
      shard room to drain; nothing is lost — throttled frames are
      re-sent.
    - {e shed}: a session that stays overloaded is shed: the server
      answers [Shed], discards every later event for that session, and
      all subsequent verdicts carry [mode = 2] with [applied] marking the
      contiguous prefix the verdict actually covers.  A shed verdict is
      still sound — for the prefix — and never silently masquerades as a
      full one.

    The current rung travels in the verdict [tail]; its absence means
    full checking.  Open/accept admission is controlled separately:
    beyond [max_sessions] live sessions (or [max_conns] connections) the
    server answers [Error overloaded] rather than accepting work it
    cannot serve.

    {1 Heartbeats and deadlines (v2)}

    Either peer may send [Heartbeat]; the server echoes it.  A server
    enforces a read deadline of {!default_session_timeout} seconds
    (configurable via [tm serve --session-timeout]): a connection that
    stays completely silent longer than that is presumed dead and
    reaped — durable sessions become orphaned-resumable, and an orphan
    older than the same timeout is expired for good.  Clients that idle
    should heartbeat every {!default_heartbeat} seconds (configurable via
    [tm serve --heartbeat], exported to clients for symmetric use) so a
    slow but live peer is never mistaken for a dead one; conversely a
    slow-loris peer cannot hold a connection (or its reader thread)
    hostage for longer than the session timeout. *)

val version : int
(** Current protocol version: 3.  Version 1 and 2 peers are fully
    supported: every later frame is new-tagged or backward-compatibly
    extended, and the server only relies on v2 behaviour (resume,
    throttling) or v3 behaviour (shard-merge introspection) on
    connections that negotiated it.

    {1 Sharded sessions (v3)}

    A server started with [--shards n > 1] checks each session with a
    location-sharded monitor ({!Tm_checker.Sharded_monitor}): events are
    partitioned by variable across [n] incremental conflict graphs
    running on a domain pool, and the per-shard certificates are stitched
    into a global one at every batch, checkpoint, close and resume
    boundary — so [Verdict] frames mean exactly what they mean on an
    unsharded server.  A stream the shards cannot certify is silently
    handed to the sequential monitor (same verdicts, no longer parallel).
    [Shards_req] asks for a session's shard-merge counters and is
    answered with [Shards]: the shard count, how many two-phase
    certifications ran, how many validated on the incremental
    (frontier-extension) fast path versus a full revalidation, and — if
    the session escalated — why. *)

val hello_magic : string

val max_frame : int
(** Upper bound on [length]; larger prefixes mean a desynchronised or
    hostile peer. *)

val default_session_timeout : float
(** Seconds of complete silence after which a peer is presumed dead, and
    seconds an orphaned durable session stays resumable: 30.0. *)

val default_heartbeat : float
(** Suggested heartbeat interval for idle clients: 5.0 seconds — well
    under {!default_session_timeout}. *)

type error_code =
  | Bad_frame  (** body did not decode; stream still framed *)
  | Bad_magic  (** first frame was not a well-formed [Hello] *)
  | Unsupported_version
  | Unknown_session  (** frame targets a session never opened (or closed) *)
  | Duplicate_session  (** [Open_session] with a live identifier *)
  | Server_error
  | Overloaded
      (** admission refused: session or connection limit reached (v2) *)

val pp_error_code : Format.formatter -> error_code -> unit

type status =
  | S_ok
  | S_violation of string
  | S_budget of string  (** mirrors {!Tm_checker.Monitor.outcome} *)

type mode =
  | M_full  (** every event checked *)
  | M_sampling  (** overloaded: frames admitted alternately, none lost *)
  | M_shed  (** events past [applied] discarded; verdict covers the prefix *)

val mode_to_int : mode -> int
val mode_of_int : int -> mode option
val pp_mode : Format.formatter -> mode -> unit

type verdict = {
  session : int;
  token : int;  (** checkpoint token; [0] for the final verdict *)
  events : int;  (** events the monitor accepted so far *)
  status : status;
  mode : mode;  (** degradation rung; [M_full] when the tail is absent *)
  applied : int;
      (** events durably applied (journalled and fed to the monitor,
          counting post-violation events the sticky monitor ignores);
          equals [events] when the tail is absent *)
}

type domain_stats = {
  live_sessions : int;
  closed_sessions : int;
  events : int;
  responses : int;
  fastpath_hits : int;  (** monitor fast-path hits across the shard *)
  searches : int;
  nodes : int;
}

type shard_stats = {
  shards : int;  (** shard count of the session's monitor *)
  certifies : int;  (** two-phase certifications run so far *)
  incremental : int;  (** certifies validated on the frontier fast path *)
  full : int;  (** certifies that revalidated the whole stitched order *)
  escalated : string option;
      (** why the session was handed to the sequential monitor, if it was *)
}

type frame =
  | Hello of { version : int }
  | Open_session of { session : int }
  | Events of { session : int; events : Event.t list }
  | Checkpoint of { session : int; token : int }
  | Close_session of { session : int }
  | Verdict of verdict
  | Stats_req
  | Stats of domain_stats list
  | Err of { code : error_code; message : string }  (** the [Error] frame *)
  | Goodbye
  | Resume of { session : int; from : int }
      (** attach to a durable session; [from] is the index the client can
          re-send from (v2) *)
  | Resumed of { session : int; applied : int; mode : mode; status : status }
      (** reply: [applied] events are durable; re-send from there (v2) *)
  | Throttle of { session : int; retry_after_ms : int }
      (** the last [Events]/[Events_at] frame was discarded, not applied;
          back off and re-send (v2) *)
  | Heartbeat  (** liveness probe; the server echoes it (v2) *)
  | Events_at of { session : int; from : int; events : Event.t list }
      (** idempotent events: the first event carries index [from] (v2) *)
  | Shed of { session : int; reason : string }
      (** the session was shed; later events are discarded (v2) *)
  | Shards_req of { session : int }
      (** ask for the session's shard-merge counters (v3) *)
  | Shards of { session : int; stats : shard_stats }
      (** reply: how the two-phase certify/stitch protocol is doing (v3) *)

val verdict :
  ?mode:mode -> ?applied:int -> session:int -> token:int -> events:int ->
  status -> frame
(** Build a [Verdict]; [mode] defaults to [M_full] and [applied] to
    [events]. *)

val encode : Buffer.t -> frame -> unit
(** Body only; the length prefix belongs to {!Wire}. *)

val to_string : frame -> string

val decode : string -> (frame, string) result
(** Total: adversarial bodies yield [Error _], never an exception. *)

val pp_status : Format.formatter -> status -> unit
val pp_frame : Format.formatter -> frame -> unit
