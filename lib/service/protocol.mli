(** The [tm serve] wire protocol: framed, versioned, binary.

    {1 Wire grammar}

    Every message on the socket is a {e frame}:

    {v
frame   := length:u32be body
body    := tag:u8 payload            (* |body| = length, 1 <= length <= max_frame *)

payload by tag:
  1  Hello          "TMSV" version:uv
  2  Open_session   session:uv
  3  Events         session:uv count:uv event*
  4  Checkpoint     session:uv token:uv
  5  Close_session  session:uv
  6  Verdict        session:uv token:uv events:uv status
  7  Stats_req      (empty)
  8  Stats          ndomains:uv domain*
  9  Error          code:uv message:str
  10 Goodbye        (empty)

event   := 0 tx:uv var:uv            (* read invocation  R_tx(var)      *)
         | 1 tx:uv var:uv value:sv   (* write invocation W_tx(var,v)    *)
         | 2 tx:uv                   (* tryCommit invocation            *)
         | 3 tx:uv                   (* tryAbort invocation             *)
         | 4 tx:uv value:sv          (* read response -> value          *)
         | 5 tx:uv                   (* write response -> ok            *)
         | 6 tx:uv                   (* tryCommit response -> C         *)
         | 7 tx:uv                   (* any response -> A               *)

status  := 0                         (* every prefix du-opaque          *)
         | 1 why:str                 (* violation, sticky               *)
         | 2 why:str                 (* search budget exhausted, sticky *)

domain  := live:uv closed:uv events:uv responses:uv hits:uv
           searches:uv nodes:uv

uv      := unsigned LEB128 varint (63-bit)
sv      := zigzag-coded signed varint
str     := len:uv byte*
    v}

    {1 Conversation}

    The client speaks first: [Hello] (magic + highest supported version);
    the server answers [Hello] with the negotiated version.  After the
    handshake the client opens any number of sessions (its own identifier
    namespace, per connection), streams [Events] frames into them, and
    collects [Verdict] frames: a [Checkpoint] is answered with the current
    verdict carrying the checkpoint's token, a [Close_session] with the
    final verdict (token [0]).  [Stats_req] is answered with per-domain
    shard counters.  Protocol-level problems come back as [Error] frames:
    an undecodable body ([bad-frame]) or a semantic error
    ([unknown-session], [duplicate-session], ...) is reported and the
    connection keeps serving its other sessions; only a desynchronised
    stream (unparseable length prefix) closes the connection.

    Verdicts are the online monitor's outcomes, so a [Verdict] with status
    [0] certifies that {e every prefix} of the session's stream so far is
    du-opaque — the same judgement [tm monitor] makes offline. *)

val version : int
val hello_magic : string

val max_frame : int
(** Upper bound on [length]; larger prefixes mean a desynchronised or
    hostile peer. *)

type error_code =
  | Bad_frame  (** body did not decode; stream still framed *)
  | Bad_magic  (** first frame was not a well-formed [Hello] *)
  | Unsupported_version
  | Unknown_session  (** frame targets a session never opened (or closed) *)
  | Duplicate_session  (** [Open_session] with a live identifier *)
  | Server_error

val pp_error_code : Format.formatter -> error_code -> unit

type status =
  | S_ok
  | S_violation of string
  | S_budget of string  (** mirrors {!Tm_checker.Monitor.outcome} *)

type verdict = {
  session : int;
  token : int;  (** checkpoint token; [0] for the final verdict *)
  events : int;  (** events the monitor accepted so far *)
  status : status;
}

type domain_stats = {
  live_sessions : int;
  closed_sessions : int;
  events : int;
  responses : int;
  fastpath_hits : int;  (** monitor fast-path hits across the shard *)
  searches : int;
  nodes : int;
}

type frame =
  | Hello of { version : int }
  | Open_session of { session : int }
  | Events of { session : int; events : Event.t list }
  | Checkpoint of { session : int; token : int }
  | Close_session of { session : int }
  | Verdict of verdict
  | Stats_req
  | Stats of domain_stats list
  | Err of { code : error_code; message : string }  (** the [Error] frame *)
  | Goodbye

val encode : Buffer.t -> frame -> unit
(** Body only; the length prefix belongs to {!Wire}. *)

val to_string : frame -> string

val decode : string -> (frame, string) result
(** Total: adversarial bodies yield [Error _], never an exception. *)

val pp_status : Format.formatter -> status -> unit
val pp_frame : Format.formatter -> frame -> unit
