type kind = K_torn | K_drop | K_dup | K_delay | K_reorder | K_disconnect

let all_kinds = [ K_torn; K_drop; K_dup; K_delay; K_reorder; K_disconnect ]

let kind_to_string = function
  | K_torn -> "torn"
  | K_drop -> "drop"
  | K_dup -> "dup"
  | K_delay -> "delay"
  | K_reorder -> "reorder"
  | K_disconnect -> "disconnect"

type fault =
  | Torn of int  (* forward only the first N wire bytes, then cut the link *)
  | Drop  (* swallow the frame *)
  | Dup  (* forward the frame twice *)
  | Delay of float  (* hold the frame for this many seconds *)
  | Reorder  (* swap the frame with the next one in the same direction *)
  | Disconnect  (* cut the link instead of forwarding *)

type dir = [ `C2s | `S2c ]

type point = { at : int; dir : dir; fault : fault }
type plan = point list

let pp_dir ppf = function
  | `C2s -> Fmt.string ppf ">"
  | `S2c -> Fmt.string ppf "<"

let pp_fault ppf = function
  | Torn n -> Fmt.pf ppf "torn(%dB)" n
  | Drop -> Fmt.string ppf "drop"
  | Dup -> Fmt.string ppf "dup"
  | Delay s -> Fmt.pf ppf "delay(%.0fms)" (s *. 1000.)
  | Reorder -> Fmt.string ppf "reorder"
  | Disconnect -> Fmt.string ppf "disconnect"

let pp_point ppf p = Fmt.pf ppf "%a%d:%a" pp_dir p.dir p.at pp_fault p.fault

let pp_plan ppf = function
  | [] -> Fmt.string ppf "none"
  | plan -> Fmt.(list ~sep:comma pp_point) ppf plan

(* --- deterministic plan sampling ------------------------------------------ *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let sample ?(kinds = all_kinds) ?(points = 2) ?(horizon = 48) ~seed () =
  if kinds = [] then []
  else begin
    let ctr = ref 0 in
    let draw bound =
      incr ctr;
      let h =
        Int64.to_int (mix64 (Int64.of_int ((seed * 2_654_435) + !ctr)))
        land max_int
      in
      h mod bound
    in
    let karr = Array.of_list kinds in
    let taken = Hashtbl.create 8 in
    let rec fresh_at dir tries =
      let at = draw horizon in
      if Hashtbl.mem taken (dir, at) && tries < 16 then fresh_at dir (tries - 1)
      else begin
        Hashtbl.replace taken (dir, at) ();
        at
      end
    in
    List.init points (fun _ ->
        let dir = if draw 10 < 7 then `C2s else `S2c in
        let at = fresh_at dir 16 in
        let fault =
          match karr.(draw (Array.length karr)) with
          | K_torn -> Torn (1 + draw 10)
          | K_drop -> Drop
          | K_dup -> Dup
          | K_delay -> Delay (0.005 +. (float_of_int (draw 50) /. 1000.))
          | K_reorder -> Reorder
          | K_disconnect -> Disconnect
        in
        { at; dir; fault })
  end

(* --- the proxy ------------------------------------------------------------- *)

type t = {
  listen_fd : Unix.file_descr;
  bound : Wire.addr;
  upstream : Wire.addr;
  plan : plan ref;  (* points still waiting to fire; guarded by plan_mutex *)
  fired : point list ref;
  plan_mutex : Mutex.t;
  c2s_seen : int Atomic.t;  (* frames, cumulative across all connections *)
  s2c_seen : int Atomic.t;
  mutable stopping : bool;
  conns : (int, Unix.file_descr * Unix.file_descr) Hashtbl.t;
  conns_mutex : Mutex.t;
  mutable pumps : Thread.t list;  (* guarded by conns_mutex *)
  mutable accept_thread : Thread.t option;
  next_id : int Atomic.t;
  log : string -> unit;
}

let bound_addr px = px.bound
let fired px =
  Mutex.lock px.plan_mutex;
  let l = List.rev !(px.fired) in
  Mutex.unlock px.plan_mutex;
  l

exception Cut  (* this proxied connection is over *)

let shutdown_quiet fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Read up to [len] bytes; returns how many arrived before EOF. *)
let read_upto fd b pos len =
  let rec go pos len got =
    if len = 0 then got
    else
      match Unix.read fd b pos len with
      | 0 -> got
      | n -> go (pos + n) (len - n) (got + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos len got
  in
  go pos len 0

type rf = Eof | Tail of bytes  (** stream died mid-frame; forward and cut *)
        | Whole of bytes  (** one whole wire frame: header + body *)

let read_frame fd =
  let hdr = Bytes.create 4 in
  match read_upto fd hdr 0 4 with
  | 0 -> Eof
  | n when n < 4 -> Tail (Bytes.sub hdr 0 n)
  | _ ->
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len <= 0 || len > Protocol.max_frame then
        (* Not a boundary we understand (the peers will treat it as a
           desync); forward verbatim and stop pretending to be frame-aware. *)
        Tail hdr
      else begin
        let b = Bytes.create (4 + len) in
        Bytes.blit hdr 0 b 0 4;
        let got = read_upto fd b 4 len in
        if got = len then Whole b else Tail (Bytes.sub b 0 (4 + got))
      end

let rec write_all fd b pos len =
  if len > 0 then begin
    match Unix.write fd b pos len with
    | n -> write_all fd b (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b pos len
  end

let take_fault px dir idx =
  Mutex.lock px.plan_mutex;
  let rec pick acc = function
    | [] -> (None, List.rev acc)
    | p :: rest when p.dir = dir && p.at = idx ->
        (Some p, List.rev_append acc rest)
    | p :: rest -> pick (p :: acc) rest
  in
  let hit, rest = pick [] !(px.plan) in
  px.plan := rest;
  (match hit with Some p -> px.fired := p :: !(px.fired) | None -> ());
  Mutex.unlock px.plan_mutex;
  Option.map (fun p -> p.fault) hit

(* One direction of one proxied connection.  Frame-aware: faults land on
   frame boundaries (except [Torn], whose whole point is that they don't). *)
let pump px dir src dst () =
  let counter = match dir with `C2s -> px.c2s_seen | `S2c -> px.s2c_seen in
  let held = ref None in
  let write b = try write_all dst b 0 (Bytes.length b) with
    | Unix.Unix_error _ | Sys_error _ -> raise Cut
  in
  let flush_held () =
    match !held with
    | Some b ->
        held := None;
        write b
    | None -> ()
  in
  (try
     let continue = ref true in
     while !continue do
       match read_frame src with
       | Eof ->
           flush_held ();
           continue := false
       | Tail b ->
           if Bytes.length b > 0 then write b;
           continue := false
       | Whole b -> (
           let idx = Atomic.fetch_and_add counter 1 in
           match take_fault px dir idx with
           | None ->
               write b;
               flush_held ()
           | Some Drop -> ()
           | Some Dup ->
               write b;
               write b;
               flush_held ()
           | Some (Delay s) ->
               Thread.delay s;
               write b;
               flush_held ()
           | Some Reorder ->
               (* hold it; the next frame overtakes it *)
               flush_held ();
               held := Some b
           | Some (Torn n) ->
               px.log
                 (Fmt.str "proxy: tearing frame %a%d after %d bytes" pp_dir
                    dir idx n);
               write (Bytes.sub b 0 (min n (Bytes.length b)));
               raise Cut
           | Some Disconnect ->
               px.log (Fmt.str "proxy: disconnect at frame %a%d" pp_dir dir idx);
               raise Cut)
     done
   with
  | Cut | Unix.Unix_error _ | Sys_error _ -> ());
  (* Either side ending ends both: half-open proxied links help nobody. *)
  shutdown_quiet src;
  shutdown_quiet dst

let accept_loop px () =
  while not px.stopping do
    match Unix.accept px.listen_fd with
    | cfd, _ -> (
        match Wire.connect px.upstream with
        | ufd ->
            let id = Atomic.fetch_and_add px.next_id 1 in
            Mutex.lock px.conns_mutex;
            Hashtbl.replace px.conns id (cfd, ufd);
            px.pumps <-
              Thread.create (pump px `C2s cfd ufd) ()
              :: Thread.create (pump px `S2c ufd cfd) ()
              :: px.pumps;
            Mutex.unlock px.conns_mutex
        | exception (Unix.Unix_error _ | Sys_error _) ->
            (* Upstream refused (server down, restarting): the client sees
               an immediate EOF and retries with backoff. *)
            close_quiet cfd)
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let start ?(plan = []) ?(log = ignore) ~listen ~upstream () =
  let listen_fd = Wire.listen listen in
  let bound =
    match listen with
    | `Tcp (host, 0) -> (
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, port) -> `Tcp (host, port)
        | _ -> listen)
    | a -> a
  in
  let px =
    {
      listen_fd;
      bound;
      upstream;
      plan = ref plan;
      fired = ref [];
      plan_mutex = Mutex.create ();
      c2s_seen = Atomic.make 0;
      s2c_seen = Atomic.make 0;
      stopping = false;
      conns = Hashtbl.create 8;
      conns_mutex = Mutex.create ();
      pumps = [];
      accept_thread = None;
      next_id = Atomic.make 1;
      log;
    }
  in
  px.accept_thread <- Some (Thread.create (accept_loop px) ());
  px

let sever px =
  Mutex.lock px.conns_mutex;
  (* lint: allow ordering-nondeterminism — every conn is shut down;
     order is immaterial *)
  Hashtbl.iter
    (fun _ (cfd, ufd) ->
      shutdown_quiet cfd;
      shutdown_quiet ufd)
    px.conns;
  Mutex.unlock px.conns_mutex

let stop px =
  if not px.stopping then begin
    px.stopping <- true;
    (try Unix.shutdown px.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close (Wire.connect px.bound) with
    | Unix.Unix_error _ | Sys_error _ | Wire.Closed -> ());
    (match px.accept_thread with Some t -> Thread.join t | None -> ());
    close_quiet px.listen_fd;
    sever px;
    Mutex.lock px.conns_mutex;
    let pumps = px.pumps in
    px.pumps <- [];
    Mutex.unlock px.conns_mutex;
    List.iter Thread.join pumps;
    Mutex.lock px.conns_mutex;
    Hashtbl.iter
      (fun _ (cfd, ufd) ->
        close_quiet cfd;
        close_quiet ufd)
      px.conns;
    Hashtbl.reset px.conns;
    Mutex.unlock px.conns_mutex;
    match px.bound with
    | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | `Tcp _ -> ()
  end
