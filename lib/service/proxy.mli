(** A fault-injecting, frame-aware proxy for network-layer chaos testing
    of the [tm serve] protocol ([tm chaos --service]).

    The proxy sits between a client and a server, forwards whole wire
    frames (4-byte length prefix + body), and injects faults from a
    {e plan}: a set of once-firing points, each naming a direction, a
    cumulative frame index in that direction, and a fault — a frame torn
    mid-byte (then the link is cut, as a real peer reset would), dropped,
    duplicated, delayed, reordered with its successor, or a hard
    disconnect.  Frame indices count across all proxied connections, so a
    plan keeps firing into the connections a recovering client opens.

    Plans are sampled deterministically from a seed ({!sample}), so every
    chaos run is replayable.  The arbitration the campaign applies on top
    (see [Tm_oracle.Service_chaos]): every fault must end in
    recovery-with-correct-verdict or a clean documented error — never a
    wrong verdict and never a hang. *)

type kind = K_torn | K_drop | K_dup | K_delay | K_reorder | K_disconnect

val all_kinds : kind list
val kind_to_string : kind -> string

type fault =
  | Torn of int
      (** forward only the first N wire bytes of the frame, then cut *)
  | Drop  (** swallow the frame *)
  | Dup  (** forward the frame twice (the idempotence test) *)
  | Delay of float  (** hold the frame for this many seconds *)
  | Reorder  (** swap the frame with its successor in the same direction *)
  | Disconnect  (** cut the link instead of forwarding *)

type dir = [ `C2s  (** client-to-server *) | `S2c  (** server-to-client *) ]

type point = { at : int; dir : dir; fault : fault }
type plan = point list

val pp_point : Format.formatter -> point -> unit
val pp_plan : Format.formatter -> plan -> unit

val sample : ?kinds:kind list -> ?points:int -> ?horizon:int -> seed:int ->
  unit -> plan
(** A deterministic plan: [points] (default 2) fault points over the first
    [horizon] (default 48) frames per direction, kinds drawn from [kinds]
    (default all).  Same seed, same plan. *)

type t

val start :
  ?plan:plan -> ?log:(string -> unit) -> listen:Wire.addr ->
  upstream:Wire.addr -> unit -> t
(** Listen on [listen] and forward every accepted connection to a fresh
    connection to [upstream].  When the upstream refuses (server down or
    restarting), the client connection is closed immediately — the client
    sees a clean EOF and retries with backoff. *)

val bound_addr : t -> Wire.addr
(** With the actual port when [`Tcp (_, 0)] asked the kernel to pick. *)

val fired : t -> point list
(** Fault points that have fired so far, in firing order. *)

val sever : t -> unit
(** Cut every currently-proxied connection (a network blip); the listener
    keeps accepting, so clients can reconnect through. *)

val stop : t -> unit
(** Stop accepting, cut and join everything, unlink a Unix path.
    Idempotent. *)
