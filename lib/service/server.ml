module Monitor = Tm_checker.Monitor

type config = {
  addr : Wire.addr;
  domains : int;
  max_nodes : int option;
  queue_capacity : int;
  log : string -> unit;
}

let config ?(domains = 4) ?max_nodes ?(queue_capacity = 64) ?(log = ignore)
    addr =
  if domains <= 0 then invalid_arg "Server.config: domains must be positive";
  { addr; domains; max_nodes; queue_capacity; log }

(* Per-shard counters, written by the owning worker domain (and the reader
   threads for the live-session gauge), read by any reader thread serving a
   [Stats_req].  Atomics make the cross-domain reads well-defined; the
   counters are monotone so slight skew between fields is harmless. *)
type dstat = {
  live : int Atomic.t;
  closed : int Atomic.t;
  d_events : int Atomic.t;
  d_responses : int Atomic.t;
  d_hits : int Atomic.t;
  d_searches : int Atomic.t;
  d_nodes : int Atomic.t;
}

let dstat () =
  {
    live = Atomic.make 0;
    closed = Atomic.make 0;
    d_events = Atomic.make 0;
    d_responses = Atomic.make 0;
    d_hits = Atomic.make 0;
    d_searches = Atomic.make 0;
    d_nodes = Atomic.make 0;
  }

type conn = {
  fd : Unix.file_descr;
  conn_id : int;
  wmutex : Mutex.t;  (* one frame = one write; workers and reader share *)
  mutable alive : bool;  (* cleared on write failure or disconnect *)
  sessions : (int, session) Hashtbl.t;
      (* client session id -> session; touched only by the reader thread *)
}

and session = {
  client_sid : int;
  sconn : conn;
  monitor : Monitor.t;
  shard : int;
  mutable last : Monitor.snapshot;  (* last snapshot folded into dstats *)
}

(* Work items flowing reader -> shard worker.  A session is pinned to one
   shard, so its items are processed in FIFO order by a single domain and
   the monitor needs no locking. *)
type work =
  | W_events of session * Event.t list
  | W_checkpoint of session * int
  | W_close of session
  | W_reap of session
  | W_quit

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound : Wire.addr;
  mailboxes : work Mailbox.t array;
  dstats : dstat array;
  mutable stopping : bool;
  conns : (int, conn) Hashtbl.t;
  conns_mutex : Mutex.t;
  mutable readers : Thread.t list;  (* guarded by conns_mutex *)
  mutable accept_thread : Thread.t option;
  mutable workers : unit Domain.t array;
  next_conn : int Atomic.t;
  next_session : int Atomic.t;
}

let bound_addr srv = srv.bound

(* --- writing to clients -------------------------------------------------- *)

let send_frame conn frame =
  if conn.alive then
    try Wire.send ~mutex:conn.wmutex conn.fd frame
    with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false

let status_of_outcome : Monitor.outcome -> Protocol.status = function
  | `Ok -> Protocol.S_ok
  | `Violation why -> Protocol.S_violation why
  | `Budget why -> Protocol.S_budget why

let verdict_frame s ~token =
  Protocol.Verdict
    {
      Protocol.session = s.client_sid;
      token;
      events = Monitor.events_seen s.monitor;
      status = status_of_outcome (Monitor.status s.monitor);
    }

(* --- shard workers -------------------------------------------------------- *)

(* Fold the session's monitor counters into its shard's atomics.  Called on
   every batch, so it leans on [Monitor.snapshot] being O(1) — including the
   pending gauge, which used to recount [History.infos] per call and made
   accounting quadratic over a session's stream. *)
let account d s =
  let snap = Monitor.snapshot s.monitor in
  let add a n = if n <> 0 then ignore (Atomic.fetch_and_add a n) in
  add d.d_events (snap.Monitor.events - s.last.Monitor.events);
  add d.d_responses (snap.Monitor.responses - s.last.Monitor.responses);
  add d.d_hits (snap.Monitor.fastpath_hits - s.last.Monitor.fastpath_hits);
  add d.d_searches (snap.Monitor.searches - s.last.Monitor.searches);
  add d.d_nodes (snap.Monitor.nodes - s.last.Monitor.nodes);
  s.last <- snap

let worker mailbox d () =
  let rec loop () =
    match Mailbox.take mailbox with
    | W_quit -> ()
    | W_events (s, events) ->
        List.iter (fun ev -> ignore (Monitor.push s.monitor ev)) events;
        account d s;
        loop ()
    | W_checkpoint (s, token) ->
        account d s;
        send_frame s.sconn (verdict_frame s ~token);
        loop ()
    | W_close s ->
        account d s;
        (* Counters settle before the final verdict: a client holding its
           close verdict must not observe the session still live. *)
        ignore (Atomic.fetch_and_add d.live (-1));
        Atomic.incr d.closed;
        send_frame s.sconn (verdict_frame s ~token:0);
        loop ()
    | W_reap s ->
        account d s;
        ignore (Atomic.fetch_and_add d.live (-1));
        Atomic.incr d.closed;
        loop ()
  in
  loop ()

(* --- per-connection reader threads ---------------------------------------- *)

let stats_frame srv =
  Protocol.Stats
    (Array.to_list
       (Array.map
          (fun d ->
            {
              Protocol.live_sessions = Atomic.get d.live;
              closed_sessions = Atomic.get d.closed;
              events = Atomic.get d.d_events;
              responses = Atomic.get d.d_responses;
              fastpath_hits = Atomic.get d.d_hits;
              searches = Atomic.get d.d_searches;
              nodes = Atomic.get d.d_nodes;
            })
          srv.dstats))

let err conn code message = send_frame conn (Protocol.Err { code; message })

let handshake conn =
  match Wire.recv conn.fd with
  | Wire.Frame (Protocol.Hello { version }) ->
      if version < 1 then begin
        err conn Protocol.Unsupported_version
          (Fmt.str "client version %d unsupported" version);
        false
      end
      else begin
        send_frame conn
          (Protocol.Hello { version = min version Protocol.version });
        true
      end
  | Wire.Frame f ->
      err conn Protocol.Bad_magic
        (Fmt.str "first frame must be Hello, got %a" Protocol.pp_frame f);
      false
  | Wire.Malformed msg ->
      err conn Protocol.Bad_magic (Fmt.str "undecodable Hello: %s" msg);
      false

let open_session srv conn sid =
  if Hashtbl.mem conn.sessions sid then
    err conn Protocol.Duplicate_session
      (Fmt.str "session %d is already open on this connection" sid)
  else begin
    let key = Atomic.fetch_and_add srv.next_session 1 in
    let shard = key mod srv.cfg.domains in
    let monitor = Monitor.create ?max_nodes:srv.cfg.max_nodes () in
    let s =
      {
        client_sid = sid;
        sconn = conn;
        monitor;
        shard;
        last = Monitor.snapshot monitor;
      }
    in
    Hashtbl.replace conn.sessions sid s;
    Atomic.incr srv.dstats.(shard).live
  end

let with_session srv conn sid k =
  match Hashtbl.find_opt conn.sessions sid with
  | Some s -> Mailbox.put srv.mailboxes.(s.shard) (k s)
  | None ->
      err conn Protocol.Unknown_session
        (Fmt.str "no open session %d on this connection" sid)

let serve_frames srv conn =
  let continue = ref true in
  while !continue && conn.alive do
    match Wire.recv conn.fd with
    | Wire.Frame frame -> (
        match frame with
        | Protocol.Open_session { session } -> open_session srv conn session
        | Protocol.Events { session; events } ->
            with_session srv conn session (fun s -> W_events (s, events))
        | Protocol.Checkpoint { session; token } ->
            with_session srv conn session (fun s -> W_checkpoint (s, token))
        | Protocol.Close_session { session } -> (
            match Hashtbl.find_opt conn.sessions session with
            | Some s ->
                Hashtbl.remove conn.sessions session;
                Mailbox.put srv.mailboxes.(s.shard) (W_close s)
            | None ->
                err conn Protocol.Unknown_session
                  (Fmt.str "no open session %d on this connection" session))
        | Protocol.Stats_req -> send_frame conn (stats_frame srv)
        | Protocol.Goodbye -> continue := false
        | Protocol.Hello _ | Protocol.Verdict _ | Protocol.Stats _
        | Protocol.Err _ ->
            err conn Protocol.Bad_frame
              (Fmt.str "unexpected frame %a" Protocol.pp_frame frame))
    | Wire.Malformed msg ->
        (* The stream is still framed: report and keep serving, so one bad
           frame never takes down the connection's other sessions. *)
        srv.cfg.log
          (Fmt.str "conn %d: malformed frame (%s)" conn.conn_id msg);
        err conn Protocol.Bad_frame msg
  done

let serve_conn srv conn () =
  (try
     if handshake conn then serve_frames srv conn
   with
  | Wire.Closed -> ()
  | Wire.Desync msg ->
      srv.cfg.log (Fmt.str "conn %d: desync (%s), closing" conn.conn_id msg);
      err conn Protocol.Bad_frame msg
  | Unix.Unix_error (e, _, _) ->
      srv.cfg.log
        (Fmt.str "conn %d: %s, closing" conn.conn_id (Unix.error_message e)));
  (* Reap: a dead client never wedges a shard — surviving sessions are
     retired through the same mailboxes as regular closes, after any work
     already enqueued for them. *)
  conn.alive <- false;
  Hashtbl.iter
    (fun _ s -> Mailbox.put srv.mailboxes.(s.shard) (W_reap s))
    conn.sessions;
  Hashtbl.reset conn.sessions;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.lock srv.conns_mutex;
  Hashtbl.remove srv.conns conn.conn_id;
  Mutex.unlock srv.conns_mutex

(* --- accept loop ----------------------------------------------------------- *)

let accept_loop srv () =
  while not srv.stopping do
    match Unix.accept srv.listen_fd with
    | fd, _ ->
        let conn =
          {
            fd;
            conn_id = Atomic.fetch_and_add srv.next_conn 1;
            wmutex = Mutex.create ();
            alive = true;
            sessions = Hashtbl.create 8;
          }
        in
        Mutex.lock srv.conns_mutex;
        Hashtbl.replace srv.conns conn.conn_id conn;
        srv.readers <- Thread.create (serve_conn srv conn) () :: srv.readers;
        Mutex.unlock srv.conns_mutex
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* --- lifecycle -------------------------------------------------------------- *)

let start cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listen_fd = Wire.listen cfg.addr in
  let bound =
    match cfg.addr with
    | `Tcp (host, 0) -> (
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, port) -> `Tcp (host, port)
        | _ -> cfg.addr)
    | addr -> addr
  in
  let mailboxes =
    Array.init cfg.domains (fun _ ->
        Mailbox.create ~capacity:cfg.queue_capacity)
  in
  let dstats = Array.init cfg.domains (fun _ -> dstat ()) in
  let srv =
    {
      cfg;
      listen_fd;
      bound;
      mailboxes;
      dstats;
      stopping = false;
      conns = Hashtbl.create 16;
      conns_mutex = Mutex.create ();
      readers = [];
      accept_thread = None;
      workers = [||];
      next_conn = Atomic.make 1;
      next_session = Atomic.make 1;
    }
  in
  srv.workers <-
    Array.init cfg.domains (fun i ->
        Domain.spawn (worker mailboxes.(i) dstats.(i)));
  srv.accept_thread <- Some (Thread.create (accept_loop srv) ());
  srv

let stop srv =
  if not srv.stopping then begin
    srv.stopping <- true;
    (* Wake the blocked accept: closing the fd does NOT interrupt an
       in-flight accept(2), but shutdown(2) on the listening socket does
       (EINVAL on Linux).  Where shutdown is refused the listener is still
       live, so a self-connect pokes it instead; the stray connection's
       reader sees immediate EOF and cleans itself up below. *)
    (try Unix.shutdown srv.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close (Wire.connect srv.bound) with
    | Unix.Unix_error _ | Wire.Closed -> ());
    (match srv.accept_thread with Some t -> Thread.join t | None -> ());
    (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
    (* Wake every reader blocked in a read; their reaps then drain through
       the still-running workers, so no mailbox deadlock. *)
    Mutex.lock srv.conns_mutex;
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) srv.conns [] in
    let readers = srv.readers in
    Mutex.unlock srv.conns_mutex;
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter Thread.join readers;
    Array.iter (fun mb -> Mailbox.put mb W_quit) srv.mailboxes;
    Array.iter Domain.join srv.workers;
    match srv.cfg.addr with
    | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | `Tcp _ -> ()
  end

let stats srv =
  match stats_frame srv with Protocol.Stats ds -> ds | _ -> assert false
