module Monitor = Tm_checker.Monitor
module Sharded = Tm_checker.Sharded_monitor

type config = {
  addr : Wire.addr;
  domains : int;
  shards : int;  (* per-session monitor shards; 1 = single conflict graph *)
  max_nodes : int option;
  queue_capacity : int;
  journal_dir : string option;
  journal_sync : bool;
  session_timeout : float;
  heartbeat : float;
  max_conns : int;
  max_sessions : int;
  hwm : int;
  throttle_sample : int;
  throttle_shed : int;
  retry_after_ms : int;
  snapshot_every : int;
  log : string -> unit;
}

let config ?(domains = 4) ?(shards = 1) ?max_nodes ?(queue_capacity = 64)
    ?journal_dir
    ?(journal_sync = false)
    ?(session_timeout = Protocol.default_session_timeout)
    ?(heartbeat = Protocol.default_heartbeat) ?(max_conns = 1024)
    ?(max_sessions = 8192) ?hwm ?(throttle_sample = 4) ?(throttle_shed = 16)
    ?(retry_after_ms = 50) ?(snapshot_every = 50_000) ?(log = ignore) addr =
  if domains <= 0 then invalid_arg "Server.config: domains must be positive";
  if shards < 1 || shards > 62 then
    invalid_arg "Server.config: shards must be within [1, 62]";
  if session_timeout <= 0.0 then
    invalid_arg "Server.config: session_timeout must be positive";
  let hwm =
    match hwm with Some h -> h | None -> max 1 (queue_capacity / 2)
  in
  {
    addr;
    domains;
    shards;
    max_nodes;
    queue_capacity;
    journal_dir;
    journal_sync;
    session_timeout;
    heartbeat;
    max_conns;
    max_sessions;
    hwm;
    throttle_sample;
    throttle_shed;
    retry_after_ms;
    snapshot_every;
    log;
  }

(* Per-shard counters, written by the owning worker domain (and the reader
   threads for the live-session gauge), read by any reader thread serving a
   [Stats_req].  Atomics make the cross-domain reads well-defined; the
   counters are monotone so slight skew between fields is harmless. *)
type dstat = {
  live : int Atomic.t;
  closed : int Atomic.t;
  d_events : int Atomic.t;
  d_responses : int Atomic.t;
  d_hits : int Atomic.t;
  d_searches : int Atomic.t;
  d_nodes : int Atomic.t;
}

let dstat () =
  {
    live = Atomic.make 0;
    closed = Atomic.make 0;
    d_events = Atomic.make 0;
    d_responses = Atomic.make 0;
    d_hits = Atomic.make 0;
    d_searches = Atomic.make 0;
    d_nodes = Atomic.make 0;
  }

type conn = {
  fd : Unix.file_descr;
  conn_id : int;
  wmutex : Mutex.t;  (* one frame = one write; workers and reader share *)
  mutable version : int;  (* negotiated at handshake; 1 until then *)
  mutable alive : bool;  (* cleared on write failure or disconnect *)
  sessions : (int, session) Hashtbl.t;
      (* client session id -> session; touched only by the reader thread *)
}

(* Field ownership.  [monitor]/[last]/[applied]/[journal] belong to the
   session's shard worker once the session is live (mailbox FIFO is the
   synchronisation).  [dmode]/[throttles]/[admit_flip] belong to the
   serving reader thread; the worker's reads of [dmode] for verdict tails
   are ordered behind the reader's writes by the mailbox mutex.
   [sconn]/[orphaned_at]/[expiring] are guarded by the server's registry
   mutex on a durable server (reattach races reader cleanup). *)
and session = {
  client_sid : int;
  mutable sconn : conn;
  mutable monitor : Sharded.t;  (* replaced once, on crash recovery *)
  shard : int;
  mutable last : Monitor.snapshot;  (* last snapshot folded into dstats *)
  mutable applied : int;  (* events durably applied (journalled + pushed) *)
  mutable journal : Journal.t option;
  mutable dmode : Protocol.mode;  (* degradation-ladder rung *)
  mutable throttles : int;  (* consecutive throttles; 0 resets the ladder *)
  mutable admit_flip : bool;  (* M_sampling: admit every other frame *)
  mutable orphaned_at : float;  (* wall-clock; [nan] while attached *)
  mutable expiring : bool;  (* sweeper claimed it; no reattach *)
  mutable retired : bool;  (* gauges settled; never retire twice *)
}

(* Work items flowing reader -> shard worker.  A session is pinned to one
   shard, so its items are processed in FIFO order by a single domain and
   the monitor (and journal) need no locking. *)
type work =
  | W_open of session  (* create the journal of a fresh durable session *)
  | W_events of session * int option * Event.t list
      (* [Some from]: idempotent re-send; dedup against [applied] here, in
         the worker, so in-flight batches can never double-apply *)
  | W_checkpoint of session * int
  | W_close of session
  | W_reap of session
  | W_attach of session  (* answer [Resumed] after a reattach *)
  | W_recover of session  (* rebuild from disk, then answer [Resumed] *)
  | W_expire of session  (* orphan timed out: delete and retire *)
  | W_shards of session  (* answer [Shards] with stitch counters (v3) *)
  | W_quit

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound : Wire.addr;
  mailboxes : work Mailbox.t array;
  dstats : dstat array;
  mutable stopping : bool;
  mutable crashing : bool;  (* drop queued work instead of draining it *)
  conns : (int, conn) Hashtbl.t;
  conns_mutex : Mutex.t;
  mutable readers : Thread.t list;  (* guarded by conns_mutex *)
  mutable accept_thread : Thread.t option;
  mutable sweeper : Thread.t option;  (* orphan expiry, durable mode only *)
  mutable workers : unit Domain.t array;
  pool : Shard_pool.t option;  (* certify executor when [shards > 1] *)
  next_conn : int Atomic.t;
  next_session : int Atomic.t;
  durables : (int, session) Hashtbl.t;  (* durable mode: global registry *)
  reg_mutex : Mutex.t;
}

let bound_addr srv = srv.bound
let live_total srv =
  Array.fold_left (fun acc d -> acc + Atomic.get d.live) 0 srv.dstats

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

(* --- writing to clients -------------------------------------------------- *)

let send_frame conn frame =
  if conn.alive then
    try Wire.send ~mutex:conn.wmutex conn.fd frame
    with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false

let status_of_outcome : Monitor.outcome -> Protocol.status = function
  | `Ok -> Protocol.S_ok
  | `Violation why -> Protocol.S_violation why
  | `Budget why -> Protocol.S_budget why

let verdict_frame s ~token =
  let events = Sharded.events_seen s.monitor in
  let status = status_of_outcome (Sharded.status s.monitor) in
  if s.sconn.version >= 2 then
    Protocol.verdict ~mode:s.dmode ~applied:s.applied ~session:s.client_sid
      ~token ~events status
  else
    (* v1 peers must see byte-identical verdicts: no tail, ever.  A v1
       session is never degraded, so the normalisation loses nothing. *)
    Protocol.verdict ~session:s.client_sid ~token ~events status

let resumed_frame s =
  Protocol.Resumed
    {
      session = s.client_sid;
      applied = s.applied;
      mode = s.dmode;
      status = status_of_outcome (Sharded.status s.monitor);
    }

(* --- shard workers -------------------------------------------------------- *)

(* Fold the session's monitor counters into its shard's atomics.  Called on
   every batch, so it leans on [Monitor.snapshot] being O(1) — including the
   pending gauge, which used to recount [History.infos] per call and made
   accounting quadratic over a session's stream. *)
let account d s =
  let snap = Sharded.snapshot s.monitor in
  let add a n = if n <> 0 then ignore (Atomic.fetch_and_add a n) in
  add d.d_events (snap.Monitor.events - s.last.Monitor.events);
  add d.d_responses (snap.Monitor.responses - s.last.Monitor.responses);
  add d.d_hits (snap.Monitor.fastpath_hits - s.last.Monitor.fastpath_hits);
  add d.d_searches (snap.Monitor.searches - s.last.Monitor.searches);
  add d.d_nodes (snap.Monitor.nodes - s.last.Monitor.nodes);
  s.last <- snap

(* Settle a session's gauges and durable state exactly once.  Files are
   deleted (close, expiry) before the registry entry goes away, so a
   concurrent [Resume] can never find the id unregistered yet its stale
   files still on disk and resurrect a half-deleted session. *)
let retire ?(delete = false) srv d s =
  if not s.retired then begin
    s.retired <- true;
    (match s.journal with Some j -> Journal.close j | None -> ());
    (match srv.cfg.journal_dir with
    | Some dir ->
        if delete then Journal.delete ~dir ~session:s.client_sid;
        Mutex.lock srv.reg_mutex;
        (match Hashtbl.find_opt srv.durables s.client_sid with
        | Some s' when s' == s -> Hashtbl.remove srv.durables s.client_sid
        | _ -> ());
        Mutex.unlock srv.reg_mutex
    | None -> ());
    ignore (Atomic.fetch_and_add srv.dstats.(s.shard).live (-1));
    Atomic.incr d.closed
  end

let snapshot_quiet srv s j =
  try Journal.snapshot j (Sharded.persist s.monitor)
  with Unix.Unix_error (e, _, _) ->
    srv.cfg.log
      (Fmt.str "session %d: snapshot failed (%s)" s.client_sid
         (Unix.error_message e))

(* The batch that flips a session's sticky verdict journals the verdict
   itself: replay on recovery cannot be trusted to re-derive it (a
   search-found violation degrades to [`Budget] under a smaller node
   budget), and silently downgrading a pre-crash violation would defeat
   the whole point of monitoring. *)
let record_verdict_quiet srv s j =
  try
    Journal.record_verdict j (Sharded.status s.monitor)
      (Sharded.violation_index s.monitor)
  with Unix.Unix_error (e, _, _) ->
    srv.cfg.log
      (Fmt.str "session %d: verdict record failed (%s)" s.client_sid
         (Unix.error_message e))

(* Durable sessions certify at every admitted batch, so the batch that
   flips the sticky verdict journals it exactly as the sequential
   monitor's push used to — kill-at-violation recovery depends on that.
   Non-durable sessions skip the per-batch stitch: nothing reads their
   status between batches, and checkpoint, close and resume certify
   before building a verdict frame, so a verdict is always backed by a
   stitched (or escalated) certificate either way. *)
let certify_record srv s ~was_ok =
  match s.journal with
  | Some j ->
      ignore (Sharded.certify s.monitor);
      if was_ok && Sharded.status s.monitor <> `Ok then
        record_verdict_quiet srv s j
  | None -> ()

let worker srv i () =
  let mailbox = srv.mailboxes.(i) in
  let d = srv.dstats.(i) in
  let rec loop () =
    let item = Mailbox.take mailbox in
    if srv.crashing then (match item with W_quit -> () | _ -> loop ())
    else
      match item with
      | W_quit -> ()
      | W_open s ->
          (match srv.cfg.journal_dir with
          | Some dir -> (
              match
                Journal.create ~sync:srv.cfg.journal_sync ~dir
                  ~session:s.client_sid ()
              with
              | j -> s.journal <- Some j
              | exception Unix.Unix_error (e, _, _) ->
                  srv.cfg.log
                    (Fmt.str "session %d: journal create failed (%s); shedding"
                       s.client_sid (Unix.error_message e));
                  s.dmode <- Protocol.M_shed;
                  send_frame s.sconn
                    (Protocol.Err
                       {
                         code = Protocol.Server_error;
                         message =
                           Fmt.str "session %d: cannot create journal"
                             s.client_sid;
                       }))
          | None -> ());
          loop ()
      | W_events (s, from, events) ->
          (match from with
          | Some f when f > s.applied ->
              (* A gap: applying would skip events.  Zero-delay throttle =
                 "not applied, re-send from your acknowledged index". *)
              send_frame s.sconn
                (Protocol.Throttle
                   { session = s.client_sid; retry_after_ms = 0 })
          | _ ->
              let events =
                match from with
                | Some f -> drop (s.applied - f) events  (* dedup re-sends *)
                | None -> events
              in
              if events <> [] then begin
                let admitted =
                  match s.journal with
                  | None ->
                      s.applied <- s.applied + List.length events;
                      true
                  | Some j -> (
                      match Journal.append j events with
                      | n ->
                          s.applied <- n;
                          true
                      | exception Unix.Unix_error (e, _, _) ->
                          (* Never apply what we could not persist: the
                             resume contract says [applied] events are on
                             disk. *)
                          srv.cfg.log
                            (Fmt.str
                               "session %d: journal append failed (%s); \
                                shedding"
                               s.client_sid (Unix.error_message e));
                          s.dmode <- Protocol.M_shed;
                          send_frame s.sconn
                            (Protocol.Shed
                               {
                                 session = s.client_sid;
                                 reason = "journal write failed";
                               });
                          false)
                in
                if admitted then begin
                  let was_ok = Sharded.status s.monitor = `Ok in
                  List.iter
                    (fun ev -> ignore (Sharded.push s.monitor ev))
                    events;
                  certify_record srv s ~was_ok;
                  account d s;
                  match s.journal with
                  | Some j
                    when Journal.since_snapshot j >= srv.cfg.snapshot_every
                    ->
                      snapshot_quiet srv s j
                  | _ -> ()
                end
              end);
          loop ()
      | W_checkpoint (s, token) ->
          account d s;
          ignore (Sharded.certify s.monitor);
          (match s.journal with
          | Some j -> snapshot_quiet srv s j
          | None -> ());
          send_frame s.sconn (verdict_frame s ~token);
          loop ()
      | W_close s ->
          account d s;
          ignore (Sharded.certify s.monitor);
          let final = verdict_frame s ~token:0 in
          (* Counters and durable state settle before the final verdict: a
             client holding its close verdict must not observe the session
             still live (or resumable). *)
          retire ~delete:true srv d s;
          send_frame s.sconn final;
          loop ()
      | W_reap s ->
          account d s;
          retire srv d s;
          loop ()
      | W_expire s ->
          account d s;
          retire ~delete:true srv d s;
          loop ()
      | W_attach s ->
          (* FIFO behind any in-flight work from the dead connection, so
             [applied] has settled by the time we acknowledge it. *)
          send_frame s.sconn (resumed_frame s);
          loop ()
      | W_shards s ->
          let st = Sharded.stitch_stats s.monitor in
          send_frame s.sconn
            (Protocol.Shards
               {
                 session = s.client_sid;
                 stats =
                   {
                     Protocol.shards = st.Sharded.shards;
                     certifies = st.Sharded.certifies;
                     incremental = st.Sharded.incremental;
                     full = st.Sharded.full;
                     escalated = st.Sharded.escalated;
                   };
               });
          loop ()
      | W_recover s ->
          (match srv.cfg.journal_dir with
          | None -> ()
          | Some dir -> (
              match
                Journal.recover_sharded ~sync:srv.cfg.journal_sync
                  ?max_nodes:srv.cfg.max_nodes ~nshards:srv.cfg.shards
                  ?run:(Option.map Shard_pool.run srv.pool)
                  ~dir ~session:s.client_sid ()
              with
              | Ok (m, applied, j) ->
                  s.monitor <- m;
                  (* Pre-crash monitor work stays accounted to the process
                     that did it; only post-recovery deltas hit dstats. *)
                  s.last <- Sharded.snapshot m;
                  s.applied <- applied;
                  s.journal <- Some j;
                  send_frame s.sconn (resumed_frame s)
              | Error msg ->
                  srv.cfg.log
                    (Fmt.str "session %d: recovery failed: %s" s.client_sid
                       msg);
                  s.dmode <- Protocol.M_shed;
                  send_frame s.sconn
                    (Protocol.Err
                       {
                         code = Protocol.Server_error;
                         message =
                           Fmt.str "session %d recovery failed: %s"
                             s.client_sid msg;
                       })));
          loop ()
  in
  loop ()

(* --- per-connection reader threads ---------------------------------------- *)

let stats_frame srv =
  Protocol.Stats
    (Array.to_list
       (Array.map
          (fun d ->
            {
              Protocol.live_sessions = Atomic.get d.live;
              closed_sessions = Atomic.get d.closed;
              events = Atomic.get d.d_events;
              responses = Atomic.get d.d_responses;
              fastpath_hits = Atomic.get d.d_hits;
              searches = Atomic.get d.d_searches;
              nodes = Atomic.get d.d_nodes;
            })
          srv.dstats))

let err conn code message = send_frame conn (Protocol.Err { code; message })

let handshake conn =
  match Wire.recv conn.fd with
  | Wire.Frame (Protocol.Hello { version }) ->
      if version < 1 then begin
        err conn Protocol.Unsupported_version
          (Fmt.str "client version %d unsupported" version);
        false
      end
      else begin
        conn.version <- min version Protocol.version;
        send_frame conn (Protocol.Hello { version = conn.version });
        true
      end
  | Wire.Frame f ->
      err conn Protocol.Bad_magic
        (Fmt.str "first frame must be Hello, got %a" Protocol.pp_frame f);
      false
  | Wire.Malformed msg ->
      err conn Protocol.Bad_magic (Fmt.str "undecodable Hello: %s" msg);
      false

let new_session srv conn sid =
  let key = Atomic.fetch_and_add srv.next_session 1 in
  let shard = key mod srv.cfg.domains in
  let monitor =
    Sharded.create ?max_nodes:srv.cfg.max_nodes ~nshards:srv.cfg.shards
      ?run:(Option.map Shard_pool.run srv.pool) ()
  in
  {
    client_sid = sid;
    sconn = conn;
    monitor;
    shard;
    last = Sharded.snapshot monitor;
    applied = 0;
    journal = None;
    dmode = Protocol.M_full;
    throttles = 0;
    admit_flip = false;
    orphaned_at = Float.nan;
    expiring = false;
    retired = false;
  }

let open_session srv conn sid =
  if Hashtbl.mem conn.sessions sid then
    err conn Protocol.Duplicate_session
      (Fmt.str "session %d is already open on this connection" sid)
  else if live_total srv >= srv.cfg.max_sessions then
    err conn Protocol.Overloaded
      (Fmt.str "session limit %d reached; try again later"
         srv.cfg.max_sessions)
  else
    match srv.cfg.journal_dir with
    | None ->
        let s = new_session srv conn sid in
        Hashtbl.replace conn.sessions sid s;
        Atomic.incr srv.dstats.(s.shard).live
    | Some _ -> (
        (* Durable servers have one global session-id namespace. *)
        Mutex.lock srv.reg_mutex;
        match Hashtbl.find_opt srv.durables sid with
        | Some s' ->
            Mutex.unlock srv.reg_mutex;
            err conn Protocol.Duplicate_session
              (if s'.expiring then
                 Fmt.str "durable session %d is being expired; retry" sid
               else if Float.is_nan s'.orphaned_at then
                 Fmt.str "durable session %d exists" sid
               else
                 Fmt.str
                   "durable session %d exists (orphaned; Resume it or wait \
                    for expiry)"
                   sid)
        | None ->
            let s = new_session srv conn sid in
            Hashtbl.replace srv.durables sid s;
            Mutex.unlock srv.reg_mutex;
            Hashtbl.replace conn.sessions sid s;
            Atomic.incr srv.dstats.(s.shard).live;
            Mailbox.put srv.mailboxes.(s.shard) (W_open s))

let handle_resume srv conn sid =
  if conn.version < 2 then
    err conn Protocol.Bad_frame "Resume requires protocol v2"
  else
    match srv.cfg.journal_dir with
    | None -> err conn Protocol.Bad_frame "server is not durable (no journal)"
    | Some dir -> (
        match Hashtbl.find_opt conn.sessions sid with
        | Some s ->
            (* Resuming a session already attached here: idempotent ack. *)
            Mailbox.put srv.mailboxes.(s.shard) (W_attach s)
        | None -> (
            Mutex.lock srv.reg_mutex;
            let decision =
              match Hashtbl.find_opt srv.durables sid with
              | Some s when s.expiring ->
                  `Err
                    ( Protocol.Unknown_session,
                      Fmt.str "durable session %d expired" sid )
              | Some s
                when Float.is_nan s.orphaned_at
                     && s.sconn != conn && s.sconn.alive ->
                  `Err
                    ( Protocol.Duplicate_session,
                      Fmt.str "session %d is attached to a live connection"
                        sid )
              | Some s ->
                  (* Reattach: claim it before the old reader's cleanup can
                     orphan it (cleanup checks [sconn == conn] under this
                     mutex). *)
                  s.orphaned_at <- Float.nan;
                  s.sconn <- conn;
                  `Attach s
              | None ->
                  if Journal.exists ~dir ~session:sid then
                    if live_total srv >= srv.cfg.max_sessions then
                      `Err
                        ( Protocol.Overloaded,
                          Fmt.str "session limit %d reached; try again later"
                            srv.cfg.max_sessions )
                    else begin
                      let s = new_session srv conn sid in
                      Hashtbl.replace srv.durables sid s;
                      `Recover s
                    end
                  else
                    `Err
                      ( Protocol.Unknown_session,
                        Fmt.str "no durable session %d" sid )
            in
            Mutex.unlock srv.reg_mutex;
            match decision with
            | `Err (code, msg) -> err conn code msg
            | `Attach s ->
                Hashtbl.replace conn.sessions sid s;
                Mailbox.put srv.mailboxes.(s.shard) (W_attach s)
            | `Recover s ->
                Hashtbl.replace conn.sessions sid s;
                Atomic.incr srv.dstats.(s.shard).live;
                Mailbox.put srv.mailboxes.(s.shard) (W_recover s)))

(* The admission path: the degradation ladder lives here, in the reader,
   because the reader is what sees mailbox pressure.  v1 connections keep
   the legacy backpressure (block the reader, stall the socket); v2
   connections are never blocked — over the high-watermark their frame is
   discarded and answered with [Throttle]/[Shed] so the client can back
   off and re-send idempotently. *)
let handle_events srv conn sid from events =
  match Hashtbl.find_opt conn.sessions sid with
  | None ->
      err conn Protocol.Unknown_session
        (Fmt.str "no open session %d on this connection" sid)
  | Some s ->
      if s.dmode = Protocol.M_shed then
        send_frame conn
          (Protocol.Shed { session = sid; reason = "session is shed" })
      else if conn.version < 2 then
        Mailbox.put srv.mailboxes.(s.shard) (W_events (s, from, events))
      else begin
        let mb = srv.mailboxes.(s.shard) in
        let throttle () =
          s.throttles <- s.throttles + 1;
          if s.throttles >= srv.cfg.throttle_shed then begin
            s.dmode <- Protocol.M_shed;
            srv.cfg.log
              (Fmt.str "session %d: shed after %d consecutive throttles" sid
                 s.throttles);
            send_frame conn
              (Protocol.Shed
                 {
                   session = sid;
                   reason =
                     Fmt.str "overloaded: %d consecutive throttles"
                       s.throttles;
                 })
          end
          else begin
            if
              s.throttles >= srv.cfg.throttle_sample
              && s.dmode = Protocol.M_full
            then begin
              s.dmode <- Protocol.M_sampling;
              srv.cfg.log
                (Fmt.str "session %d: sampling after %d throttles" sid
                   s.throttles)
            end;
            send_frame conn
              (Protocol.Throttle
                 { session = sid; retry_after_ms = srv.cfg.retry_after_ms })
          end
        in
        let admit =
          if s.dmode = Protocol.M_sampling then begin
            s.admit_flip <- not s.admit_flip;
            s.admit_flip
          end
          else true
        in
        if not admit then throttle ()
        else if Mailbox.length mb >= srv.cfg.hwm then throttle ()
        else if not (Mailbox.try_put mb (W_events (s, from, events))) then
          throttle ()
        else if Mailbox.length mb * 2 < srv.cfg.hwm then begin
          s.throttles <- 0;
          if s.dmode = Protocol.M_sampling then s.dmode <- Protocol.M_full
        end
      end

let with_session srv conn sid k =
  match Hashtbl.find_opt conn.sessions sid with
  | Some s -> Mailbox.put srv.mailboxes.(s.shard) (k s)
  | None ->
      err conn Protocol.Unknown_session
        (Fmt.str "no open session %d on this connection" sid)

let serve_frames srv conn =
  let continue = ref true in
  while !continue && conn.alive do
    match Wire.recv conn.fd with
    | Wire.Frame frame -> (
        match frame with
        | Protocol.Open_session { session } -> open_session srv conn session
        | Protocol.Events { session; events } ->
            handle_events srv conn session None events
        | Protocol.Events_at { session; from; events } ->
            if conn.version < 2 then
              err conn Protocol.Bad_frame "Events_at requires protocol v2"
            else handle_events srv conn session (Some from) events
        | Protocol.Resume { session; from = _ } ->
            handle_resume srv conn session
        | Protocol.Heartbeat -> send_frame conn Protocol.Heartbeat
        | Protocol.Checkpoint { session; token } ->
            with_session srv conn session (fun s -> W_checkpoint (s, token))
        | Protocol.Close_session { session } -> (
            match Hashtbl.find_opt conn.sessions session with
            | Some s ->
                Hashtbl.remove conn.sessions session;
                Mailbox.put srv.mailboxes.(s.shard) (W_close s)
            | None ->
                err conn Protocol.Unknown_session
                  (Fmt.str "no open session %d on this connection" session))
        | Protocol.Stats_req -> send_frame conn (stats_frame srv)
        | Protocol.Shards_req { session } ->
            if conn.version < 3 then
              err conn Protocol.Bad_frame "Shards_req requires protocol v3"
            else with_session srv conn session (fun s -> W_shards s)
        | Protocol.Goodbye -> continue := false
        | Protocol.Hello _ | Protocol.Verdict _ | Protocol.Stats _
        | Protocol.Err _ | Protocol.Resumed _ | Protocol.Throttle _
        | Protocol.Shed _ | Protocol.Shards _ ->
            err conn Protocol.Bad_frame
              (Fmt.str "unexpected frame %a" Protocol.pp_frame frame))
    | Wire.Malformed msg ->
        (* The stream is still framed: report and keep serving, so one bad
           frame never takes down the connection's other sessions. *)
        srv.cfg.log
          (Fmt.str "conn %d: malformed frame (%s)" conn.conn_id msg);
        err conn Protocol.Bad_frame msg
  done

let serve_conn srv conn () =
  (try
     if handshake conn then serve_frames srv conn
   with
  | Wire.Closed -> ()
  | Wire.Desync msg ->
      srv.cfg.log (Fmt.str "conn %d: desync (%s), closing" conn.conn_id msg);
      err conn Protocol.Bad_frame msg
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* The read deadline fired: the peer was silent (or dripping nothing)
         past the session timeout. *)
      srv.cfg.log
        (Fmt.str "conn %d: idle past session timeout, closing" conn.conn_id)
  | Unix.Unix_error (e, _, _) ->
      srv.cfg.log
        (Fmt.str "conn %d: %s, closing" conn.conn_id (Unix.error_message e)));
  (* A dead client never wedges a shard.  Non-durable sessions are reaped
     through the same mailboxes as regular closes, after any work already
     enqueued for them; durable sessions become orphans — resumable until
     the sweeper expires them. *)
  conn.alive <- false;
  let durable = srv.cfg.journal_dir <> None in
  Hashtbl.iter
    (fun _ s ->
      if durable then begin
        Mutex.lock srv.reg_mutex;
        if s.sconn == conn && Float.is_nan s.orphaned_at && not s.retired
        then begin
          s.orphaned_at <- Unix.gettimeofday ();
          srv.cfg.log
            (Fmt.str "conn %d: session %d orphaned (resumable)" conn.conn_id
               s.client_sid)
        end;
        Mutex.unlock srv.reg_mutex
      end
      else Mailbox.put srv.mailboxes.(s.shard) (W_reap s))
    conn.sessions;
  Hashtbl.reset conn.sessions;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.lock srv.conns_mutex;
  Hashtbl.remove srv.conns conn.conn_id;
  Mutex.unlock srv.conns_mutex

(* --- orphan expiry ---------------------------------------------------------- *)

let sweeper srv () =
  (* Tick fast enough that [stop] never waits long, slow enough to cost
     nothing: expiry precision well under a second is meaningless for a
     30-second default timeout anyway. *)
  let tick = Float.max 0.01 (Float.min 0.25 (srv.cfg.session_timeout /. 4.)) in
  while not srv.stopping do
    Thread.delay tick;
    if not srv.stopping then begin
      let now = Unix.gettimeofday () in
      let expired = ref [] in
      Mutex.lock srv.reg_mutex;
      (* lint: allow ordering-nondeterminism — expiry is per-session;
         the collection order of the expired list is immaterial *)
      Hashtbl.iter
        (fun _ s ->
          if
            (not s.expiring)
            && (not (Float.is_nan s.orphaned_at))
            && now -. s.orphaned_at > srv.cfg.session_timeout
          then begin
            s.expiring <- true;
            expired := s :: !expired
          end)
        srv.durables;
      Mutex.unlock srv.reg_mutex;
      List.iter
        (fun s ->
          srv.cfg.log
            (Fmt.str "session %d: orphan expired after %.1fs" s.client_sid
               srv.cfg.session_timeout);
          Mailbox.put srv.mailboxes.(s.shard) (W_expire s))
        !expired
    end
  done

(* --- accept loop ----------------------------------------------------------- *)

let accept_loop srv () =
  while not srv.stopping do
    match Unix.accept srv.listen_fd with
    | fd, _ ->
        Mutex.lock srv.conns_mutex;
        let nconns = Hashtbl.length srv.conns in
        Mutex.unlock srv.conns_mutex;
        if nconns >= srv.cfg.max_conns then begin
          (* Admission control: refuse loudly rather than accept work the
             pool cannot serve. *)
          (try
             Wire.send fd
               (Protocol.Err
                  {
                    code = Protocol.Overloaded;
                    message =
                      Fmt.str "connection limit %d reached" srv.cfg.max_conns;
                  })
           with Unix.Unix_error _ | Sys_error _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else begin
          (* Read/write deadlines: a peer that is completely silent — or
             one that never drains its replies — cannot hold the reader
             (or a worker's send) hostage past the session timeout. *)
          (try
             Unix.setsockopt_float fd Unix.SO_RCVTIMEO srv.cfg.session_timeout;
             Unix.setsockopt_float fd Unix.SO_SNDTIMEO srv.cfg.session_timeout
           with Unix.Unix_error _ | Invalid_argument _ -> ());
          let conn =
            {
              fd;
              conn_id = Atomic.fetch_and_add srv.next_conn 1;
              wmutex = Mutex.create ();
              version = 1;
              alive = true;
              sessions = Hashtbl.create 8;
            }
          in
          Mutex.lock srv.conns_mutex;
          Hashtbl.replace srv.conns conn.conn_id conn;
          srv.readers <- Thread.create (serve_conn srv conn) () :: srv.readers;
          Mutex.unlock srv.conns_mutex
        end
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* --- lifecycle -------------------------------------------------------------- *)

let start cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listen_fd = Wire.listen cfg.addr in
  let bound =
    match cfg.addr with
    | `Tcp (host, 0) -> (
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, port) -> `Tcp (host, port)
        | _ -> cfg.addr)
    | addr -> addr
  in
  let mailboxes =
    Array.init cfg.domains (fun _ ->
        Mailbox.create ~capacity:cfg.queue_capacity)
  in
  let dstats = Array.init cfg.domains (fun _ -> dstat ()) in
  let srv =
    {
      cfg;
      listen_fd;
      bound;
      mailboxes;
      dstats;
      stopping = false;
      crashing = false;
      conns = Hashtbl.create 16;
      conns_mutex = Mutex.create ();
      readers = [];
      accept_thread = None;
      sweeper = None;
      workers = [||];
      pool =
        (* Each worker domain contributes itself to its session's certify,
           so the pool only needs [shards - 1] extra domains. *)
        (if cfg.shards > 1 then
           Some (Shard_pool.create ~domains:(cfg.shards - 1))
         else None);
      next_conn = Atomic.make 1;
      next_session = Atomic.make 1;
      durables = Hashtbl.create 16;
      reg_mutex = Mutex.create ();
    }
  in
  srv.workers <- Array.init cfg.domains (fun i -> Domain.spawn (worker srv i));
  srv.accept_thread <- Some (Thread.create (accept_loop srv) ());
  if cfg.journal_dir <> None then
    srv.sweeper <- Some (Thread.create (sweeper srv) ());
  srv

let stop ?(drain = true) srv =
  if not srv.stopping then begin
    if not drain then srv.crashing <- true;
    srv.stopping <- true;
    (* Wake the blocked accept: closing the fd does NOT interrupt an
       in-flight accept(2), but shutdown(2) on the listening socket does
       (EINVAL on Linux).  Where shutdown is refused the listener is still
       live, so a self-connect pokes it instead; the stray connection's
       reader sees immediate EOF and cleans itself up below. *)
    (try Unix.shutdown srv.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close (Wire.connect srv.bound) with
    | Unix.Unix_error _ | Wire.Closed -> ());
    (match srv.accept_thread with Some t -> Thread.join t | None -> ());
    (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
    (* Wake every reader blocked in a read; their reaps then drain through
       the still-running workers, so no mailbox deadlock. *)
    Mutex.lock srv.conns_mutex;
    (* lint: allow ordering-nondeterminism — every conn gets shut down;
       order is immaterial *)
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) srv.conns [] in
    let readers = srv.readers in
    Mutex.unlock srv.conns_mutex;
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter Thread.join readers;
    (match srv.sweeper with Some t -> Thread.join t | None -> ());
    Array.iter (fun mb -> Mailbox.put mb W_quit) srv.mailboxes;
    Array.iter Domain.join srv.workers;
    (match srv.pool with Some p -> Shard_pool.stop p | None -> ());
    (* Close surviving durable journals (fds) — the files stay on disk, so
       every orphaned or still-open session remains recoverable by the
       next server on the same journal directory. *)
    Mutex.lock srv.reg_mutex;
    Hashtbl.iter
      (fun _ s ->
        match s.journal with Some j -> Journal.close j | None -> ())
      srv.durables;
    Hashtbl.reset srv.durables;
    Mutex.unlock srv.reg_mutex;
    match srv.cfg.addr with
    | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | `Tcp _ -> ()
  end

let crash srv = stop ~drain:false srv

let stats srv =
  match stats_frame srv with Protocol.Stats ds -> ds | _ -> assert false
