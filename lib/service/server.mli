(** The [tm serve] server: a streaming du-opacity checking service.

    One listening socket (Unix or TCP), many concurrent connections, many
    sessions per connection.  Each session owns one online
    {!Tm_checker.Monitor} and is pinned to one shard of a fixed pool of
    OCaml 5 domains; connection reader threads decode frames and hand the
    per-session work to the shard's bounded mailbox ({!Mailbox}), whose
    bound is the backpressure that stalls over-eager clients instead of
    buffering without limit.

    Robustness invariants (exercised by the loopback tests):
    - a malformed frame body is answered with an [Error] frame and the
      connection keeps serving — other sessions never notice;
    - an unparseable length prefix (desync) closes only that connection;
    - a client that disconnects mid-stream has its sessions reaped through
      the regular work queues — a dead client never wedges a domain. *)

type config = {
  addr : Wire.addr;
  domains : int;  (** shard pool size (OCaml domains) *)
  max_nodes : int option;  (** per-response search budget, per monitor *)
  queue_capacity : int;  (** mailbox bound per shard (work items) *)
  log : string -> unit;  (** server-side event log (malformed frames, ...) *)
}

val config :
  ?domains:int ->
  ?max_nodes:int ->
  ?queue_capacity:int ->
  ?log:(string -> unit) ->
  Wire.addr ->
  config
(** Defaults: 4 domains, no search budget, 64-item queues, silent log. *)

type t

val start : config -> t
(** Binds, spawns the shard pool and the accept thread, returns.  Ignores
    [SIGPIPE] process-wide (a dead client must surface as a write error,
    not a signal). *)

val stop : t -> unit
(** Graceful: stops accepting, wakes and joins every connection, drains
    and joins the shard pool, unlinks a Unix-socket path.  Idempotent. *)

val bound_addr : t -> Wire.addr
(** The bound address — with the actual port when [`Tcp (_, 0)] asked the
    kernel to choose. *)

val stats : t -> Protocol.domain_stats list
(** Same counters a [Stats_req] frame returns. *)
