(** The [tm serve] server: a streaming du-opacity checking service.

    One listening socket (Unix or TCP), many concurrent connections, many
    sessions per connection.  Each session owns one online
    {!Tm_checker.Monitor} and is pinned to one shard of a fixed pool of
    OCaml 5 domains; connection reader threads decode frames and hand the
    per-session work to the shard's bounded mailbox ({!Mailbox}), whose
    bound is the backpressure that stalls over-eager clients instead of
    buffering without limit.

    {2 Robustness invariants} (exercised by the loopback and chaos tests):
    - a malformed frame body is answered with an [Error] frame and the
      connection keeps serving — other sessions never notice;
    - an unparseable length prefix (desync) closes only that connection;
    - a client that disconnects mid-stream has its sessions reaped through
      the regular work queues — a dead client never wedges a domain.

    {2 Durable sessions} ([journal_dir]): every applied event is journalled
    ({!Journal}) before it reaches the monitor, checkpoints persist monitor
    snapshots, and the session-id namespace becomes global.  A session then
    survives its connection (orphaned, resumable via [Resume] until
    [session_timeout] expires it) and the server process itself: a new
    server on the same directory rebuilds the session from snapshot-load +
    journal-replay, verdict-identical to an uninterrupted run.  [Resume]
    answers with the durably-applied index; [Events_at] re-sends are
    deduplicated in the session's shard worker — the only writer of its
    applied counter — so duplicated or re-sent frames never double-apply,
    and a frame that would open a gap is refused with a zero-delay
    [Throttle].

    {2 Overload}: admission control refuses connections over [max_conns]
    and sessions over [max_sessions] with [Error overloaded].  A v2
    session whose shard mailbox is at the high-watermark walks the
    degradation ladder — throttle (frame discarded, [Throttle] reply),
    sampling (alternate frames admitted) after [throttle_sample]
    consecutive throttles, shed (sticky; later events discarded, verdicts
    carry [mode = shed] and the covered prefix) after [throttle_shed] —
    instead of blocking; v1 connections keep the legacy blocking
    backpressure.  Reads and writes both carry [session_timeout]-second
    socket deadlines (slow-loris: a silent or never-draining peer is cut
    loose, its durable sessions orphaned-resumable); idle clients
    heartbeat to stay attached, and the server echoes [Heartbeat]. *)

type config = {
  addr : Wire.addr;
  domains : int;  (** session worker pool size (OCaml domains) *)
  shards : int;
      (** monitor shards per session ({!Tm_checker.Sharded_monitor});
          [1] = a single sequential conflict graph.  A server with
          [shards > 1] keeps a dedicated certify pool of [shards - 1]
          extra domains that every session's two-phase certify fans
          out over (the session's own worker domain runs the first
          shard job). *)
  max_nodes : int option;  (** per-response search budget, per monitor *)
  queue_capacity : int;  (** mailbox bound per shard (work items) *)
  journal_dir : string option;
      (** durable sessions under this directory; [None] = in-memory only *)
  journal_sync : bool;  (** fsync every journal append (power-cut grade) *)
  session_timeout : float;
      (** socket read/write deadline, and how long an orphaned durable
          session stays resumable *)
  heartbeat : float;  (** advertised idle-client heartbeat interval *)
  max_conns : int;  (** admission: concurrent connections *)
  max_sessions : int;  (** admission: live sessions *)
  hwm : int;  (** mailbox high-watermark that starts throttling (v2) *)
  throttle_sample : int;  (** consecutive throttles before sampling *)
  throttle_shed : int;  (** consecutive throttles before shedding *)
  retry_after_ms : int;  (** backoff hint carried in [Throttle] frames *)
  snapshot_every : int;
      (** auto-checkpoint a durable session every N journalled events —
          bounds crash-recovery replay *)
  log : string -> unit;  (** server-side event log (malformed frames, ...) *)
}

val config :
  ?domains:int ->
  ?shards:int ->
  ?max_nodes:int ->
  ?queue_capacity:int ->
  ?journal_dir:string ->
  ?journal_sync:bool ->
  ?session_timeout:float ->
  ?heartbeat:float ->
  ?max_conns:int ->
  ?max_sessions:int ->
  ?hwm:int ->
  ?throttle_sample:int ->
  ?throttle_shed:int ->
  ?retry_after_ms:int ->
  ?snapshot_every:int ->
  ?log:(string -> unit) ->
  Wire.addr ->
  config
(** Defaults: 4 domains, 1 shard per session, no search budget, 64-item
    queues, not durable,
    no fsync, {!Protocol.default_session_timeout} /
    {!Protocol.default_heartbeat}, 1024 connections, 8192 sessions,
    [hwm = queue_capacity / 2], sampling after 4 and shedding after 16
    consecutive throttles, 50 ms retry hint, snapshot every 50k events,
    silent log. *)

type t

val start : config -> t
(** Binds, spawns the shard pool, the accept thread and (durable mode) the
    orphan sweeper, returns.  Ignores [SIGPIPE] process-wide (a dead
    client must surface as a write error, not a signal). *)

val stop : ?drain:bool -> t -> unit
(** Graceful: stops accepting, wakes and joins every connection, drains
    and joins the shard pool, closes surviving journal fds (files stay on
    disk — durable sessions remain recoverable), unlinks a Unix-socket
    path.  [~drain:false] discards queued work instead of applying it.
    Idempotent. *)

val crash : t -> unit
(** [stop ~drain:false] — the crash-recovery test hook: everything not yet
    journalled is lost, exactly as in a process kill, and a new {!start}
    on the same journal directory must rebuild sessions from disk. *)

val bound_addr : t -> Wire.addr
(** The bound address — with the actual port when [`Tcp (_, 0)] asked the
    kernel to choose. *)

val stats : t -> Protocol.domain_stats list
(** Same counters a [Stats_req] frame returns. *)
