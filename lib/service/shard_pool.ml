(* A fixed pool of OCaml 5 domains running batches of independent jobs —
   the executor behind sharded sessions' certify phase.  Jobs touch
   disjoint shard state and never block on the pool, so a bounded pool
   cannot deadlock: workers always drain the queue, and a zero-width pool
   runs every batch inline in the caller. *)

type t = {
  mutex : Mutex.t;
  cond : Condition.t;  (* wakes idle workers *)
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t array;
}

let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.cond t.mutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex (* stopping *)
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      job ();
      loop ()
    end
  in
  loop ()

let create ~domains =
  if domains < 0 then invalid_arg "Shard_pool.create: negative domains";
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      domains = [||];
    }
  in
  t.domains <- Array.init domains (fun _ -> Domain.spawn (worker t));
  t

let width t = Array.length t.domains

(* Run every job exactly once and return when all have finished.  The
   caller contributes its own domain (job 0), so a pool of [w] domains
   gives a batch up to [w + 1]-way parallelism; exceptions propagate to
   the caller once the whole batch has finished (first one wins). *)
let run t jobs =
  let n = Array.length jobs in
  if n = 1 then jobs.(0) ()
  else if n > 1 then
    if Array.length t.domains = 0 then Array.iter (fun job -> job ()) jobs
    else begin
      let bm = Mutex.create () in
      let bc = Condition.create () in
      let left = ref n in
      let first_exn = ref None in
      let execute job () =
        (try job ()
         with e ->
           Mutex.lock bm;
           if !first_exn = None then first_exn := Some e;
           Mutex.unlock bm);
        Mutex.lock bm;
        decr left;
        if !left = 0 then Condition.broadcast bc;
        Mutex.unlock bm
      in
      Mutex.lock t.mutex;
      for i = 1 to n - 1 do
        Queue.push (execute jobs.(i)) t.queue
      done;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      execute jobs.(0) ();
      Mutex.lock bm;
      while !left > 0 do
        Condition.wait bc bm
      done;
      let e = !first_exn in
      Mutex.unlock bm;
      match e with Some e -> raise e | None -> ()
    end

let stop t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.domains;
  t.domains <- [||]
