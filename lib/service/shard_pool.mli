(** A fixed pool of OCaml 5 domains executing batches of independent
    jobs: the executor behind sharded sessions
    ({!Tm_checker.Sharded_monitor}'s [run] parameter).

    Jobs in a batch operate on disjoint state and never block on the
    pool, so progress is unconditional: workers always drain the queue,
    concurrent batches from different sessions simply interleave, and a
    zero-width pool degrades to inline execution in the caller. *)

type t

val create : domains:int -> t
(** Spawn a pool of [domains] worker domains ([0] is legal: every batch
    then runs inline in its caller). *)

val width : t -> int

val run : t -> (unit -> unit) array -> unit
(** Execute every job exactly once and return when all have finished.
    The caller runs one job on its own domain, so a batch enjoys up to
    [width + 1]-way parallelism.  If jobs raise, the first exception is
    re-raised here — after the whole batch has settled, so no job is
    still touching shard state when the caller unwinds. *)

val stop : t -> unit
(** Drain outstanding work and join the worker domains.  Do not call
    {!run} concurrently with, or after, [stop]. *)
