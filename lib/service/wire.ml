type addr = [ `Unix of string | `Tcp of string * int ]

let pp_addr ppf = function
  | `Unix path -> Fmt.pf ppf "unix:%s" path
  | `Tcp (host, port) -> Fmt.pf ppf "tcp:%s:%d" host port

exception Closed
exception Desync of string

let sockaddr_of = function
  | `Unix path -> Unix.ADDR_UNIX path
  | `Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ -> Fmt.failwith "Wire: cannot resolve host %S" host)
      in
      Unix.ADDR_INET (ip, port)

let socket_of = function
  | `Unix _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
  | `Tcp _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0

let connect addr =
  (* A server dying mid-write must surface as EPIPE (a retryable
     transport error), not kill the client process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let fd = socket_of addr in
  (try Unix.connect fd (sockaddr_of addr)
   with e ->
     Unix.close fd;
     raise e);
  (match addr with
  | `Tcp _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
  | `Unix _ -> ());
  fd

let listen ?(backlog = 64) addr =
  let fd = socket_of addr in
  (try
     (match addr with
     | `Unix path -> if Sys.file_exists path then Unix.unlink path
     | `Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
     Unix.bind fd (sockaddr_of addr);
     Unix.listen fd backlog
   with e ->
     Unix.close fd;
     raise e);
  fd

let rec write_all fd bytes pos len =
  if len > 0 then begin
    match Unix.write fd bytes pos len with
    | n -> write_all fd bytes (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        write_all fd bytes pos len
  end

(* Read exactly [len] bytes into [bytes] at [pos].  EOF before the first
   byte of a frame is a clean close ([Closed]); EOF once any byte of the
   frame has been consumed — inside this read, or with [mid_frame] set by a
   caller that already consumed the frame's header — tears the frame and
   raises [Desync], so a connection dying mid-frame is never misreported as
   a clean close that silently drops the partial frame.  EINTR retries. *)
let read_exact ?(mid_frame = false) fd bytes pos len =
  let rec go consumed pos len =
    if len > 0 then begin
      match Unix.read fd bytes pos len with
      | 0 ->
          if consumed then
            raise
              (Desync
                 (Fmt.str "connection closed inside a frame (%d bytes short)"
                    len))
          else raise Closed
      | n -> go true (pos + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go consumed pos len
    end
  in
  go mid_frame pos len

(* Frames serialise into one contiguous byte string so a send is a single
   [write] loop under the caller's mutex — concurrent writers (one reader
   thread, several shard workers) interleave whole frames only. *)
let frame_bytes frames =
  let out = Buffer.create 256 in
  List.iter
    (fun frame ->
      let body = Protocol.to_string frame in
      let len = String.length body in
      if len > Protocol.max_frame then
        Fmt.invalid_arg "Wire.send: frame of %d bytes exceeds max_frame" len;
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 (Int32.of_int len);
      Buffer.add_bytes out hdr;
      Buffer.add_string out body)
    frames;
  Buffer.to_bytes out

let send_many ?mutex fd frames =
  let bytes = frame_bytes frames in
  match mutex with
  | None -> write_all fd bytes 0 (Bytes.length bytes)
  | Some m ->
      Mutex.lock m;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock m)
        (fun () -> write_all fd bytes 0 (Bytes.length bytes))

let send ?mutex fd frame = send_many ?mutex fd [ frame ]

type input = Frame of Protocol.frame | Malformed of string

let recv fd =
  let header = Bytes.create 4 in
  read_exact fd header 0 4;
  let len = Int32.to_int (Bytes.get_int32_be header 0) in
  if len <= 0 || len > Protocol.max_frame then
    raise (Desync (Fmt.str "frame length %d out of bounds" len));
  let body = Bytes.create len in
  read_exact ~mid_frame:true fd body 0 len;
  match Protocol.decode (Bytes.unsafe_to_string body) with
  | Ok frame -> Frame frame
  | Error msg -> Malformed msg
