(** Framed I/O over Unix file descriptors.

    A frame on the wire is a 4-byte big-endian body length followed by the
    body ({!Protocol.encode}); see {!Protocol} for the grammar.  Reads are
    blocking and exact; writes serialise each batch of frames into one
    contiguous buffer so concurrent writers holding the same mutex
    interleave whole frames only. *)

type addr = [ `Unix of string | `Tcp of string * int ]

val pp_addr : Format.formatter -> addr -> unit

exception Closed
(** Peer closed the connection cleanly: EOF on a frame boundary. *)

exception Desync of string
(** The stream cannot be re-synchronised: the length prefix is unusable
    (zero, negative, or beyond {!Protocol.max_frame}), or the connection
    was torn {e inside} a frame — EOF after part of a frame's header or
    body was consumed, which must not be mistaken for a clean close. *)

val connect : addr -> Unix.file_descr
(** Client side: connect (with [TCP_NODELAY] for TCP).  Ignores
    [SIGPIPE] process-wide, so a peer dying mid-write surfaces as
    [EPIPE] rather than killing the process. *)

val listen : ?backlog:int -> addr -> Unix.file_descr
(** Server side: bind + listen; an existing Unix-socket path is unlinked
    first, TCP sockets get [SO_REUSEADDR]. *)

val send : ?mutex:Mutex.t -> Unix.file_descr -> Protocol.frame -> unit
val send_many : ?mutex:Mutex.t -> Unix.file_descr -> Protocol.frame list -> unit

type input =
  | Frame of Protocol.frame
  | Malformed of string
      (** the body did not decode; the stream is still framed and the
          caller may keep reading after reporting the error *)

val recv : Unix.file_descr -> input
(** Reads retry [EINTR] rather than aborting a frame.
    @raise Closed on EOF at a frame boundary.
    @raise Desync on an unusable length prefix or EOF mid-frame.
    @raise Unix.Unix_error as usual. *)
