type outcome = { runs : int; exhaustive : bool }

(* Execute one schedule: follow [prefix], then always pick fiber 0; record
   the number of runnable fibers at every scheduling point. *)
let execute ~make prefix =
  let fibers, extract = make () in
  let factors = ref [] in
  let step = ref 0 in
  let choose n =
    factors := n :: !factors;
    let i = if !step < Array.length prefix then prefix.(!step) else 0 in
    incr step;
    i
  in
  Sched.run ~choose fibers;
  (Array.of_list (List.rev !factors), extract ())

let run ?(max_runs = 10_000) ~make ~on_result () =
  let stack = ref [ [||] ] in
  let runs = ref 0 in
  let cut = ref false in
  let rec loop () =
    match !stack with
    | [] -> ()
    | prefix :: rest ->
        stack := rest;
        if !runs >= max_runs then cut := true
        else begin
          incr runs;
          let factors, result = execute ~make prefix in
          on_result result;
          (* Branch at every scheduling point at or after the prefix end,
             pushing deeper branch points first (DFS order). *)
          for pos = Array.length factors - 1 downto Array.length prefix do
            for choice = factors.(pos) - 1 downto 1 do
              let child = Array.make (pos + 1) 0 in
              Array.blit prefix 0 child 0 (Array.length prefix)
              (* positions [length prefix .. pos-1] stay 0 *);
              child.(pos) <- choice;
              stack := child :: !stack
            done
          done;
          loop ()
        end
  in
  loop ();
  { runs = !runs; exhaustive = not !cut }

let explore_stm ?max_runs ?max_retries ?retry ?faults ~stm ~params ~seed
    ~on_history () =
  let make () =
    Runner.setup ?max_retries ?retry ?faults ~stm ~params ~seed ()
  in
  run ?max_runs ~make
    ~on_result:(fun (r : Runner.result) -> on_history r.Runner.history)
    ()
