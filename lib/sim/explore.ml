type outcome = {
  runs : int;
  exhaustive : bool;
  schedules_pruned : int;
  reduction_factor : float;
}

type algo = [ `Dpor | `Naive ]

let dependent a b =
  match a, b with
  | Sched.Access a1, Sched.Access a2 ->
      a1.loc = a2.loc
      && (Tm_stm.Trace.is_write a1.kind || Tm_stm.Trace.is_write a2.kind)
  | _, _ -> false

let is_write_annot = function
  | Sched.Access { kind; _ } -> Tm_stm.Trace.is_write kind
  | Sched.Start | Sched.Pause -> false

(* Abandon the current execution from inside the chooser.  The dropped
   continuations are simply discarded; simulated programs hold no external
   resources. *)
exception Abandon of [ `Sleep_blocked | `Steps ]

(* --- the execution engine ------------------------------------------------

   Both explorers enumerate schedules of the same transition system: the
   annotated scheduler with {e pause parking}.  A fiber that yields through
   [pause] (a spin-wait / backoff hint, {!Tm_stm.Mem_intf.MEM.pause}) is
   parked — removed from the choice set — until some fiber performs a
   shared-memory write, the only thing that can change what the spin loop
   observes.  Spin bodies are pure between accesses (each access is its own
   transition, {!Sim_mem} yields before it), so parking only collapses
   stuttering; it is what keeps the schedule space finite in the presence
   of unbounded spin loops (global-lock acquisition, NOrec's [wait_even],
   ...), which branch-everywhere enumeration cannot even terminate on.
   When every runnable fiber is parked the parking is dropped for one step,
   so progress is never lost. *)

(* Run one schedule.  [script step enabled] returns the {e fiber id} to run
   at [step], chosen among [enabled] (queue order, parked fibers already
   filtered out).  Returns [Some result] when every fiber finished, [None]
   when the script abandoned the execution with {!Abandon} [`Steps]. *)
let execute_schedule ~make ~script =
  let fibers, extract = make () in
  let parked : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let prev = ref None in
  let step = ref 0 in
  let choose (infos : Sched.fiber_info array) =
    (match !prev with
    | Some (id, annot) ->
        (* A write wakes every parked spinner; a fiber that just yielded
           through [pause] parks.  In this order: the waking write precedes
           the pause in program order when both are the same fiber's. *)
        if is_write_annot annot then Hashtbl.reset parked;
        Array.iter
          (fun (fi : Sched.fiber_info) ->
            if fi.Sched.id = id && fi.Sched.annot = Sched.Pause then
              Hashtbl.replace parked id ())
          infos
    | None -> ());
    let enabled =
      let live =
        Array.to_list infos
        |> List.filter (fun (fi : Sched.fiber_info) ->
               not (Hashtbl.mem parked fi.Sched.id))
      in
      if live = [] then begin
        (* Everyone is spinning: drop the parking for one step. *)
        Hashtbl.reset parked;
        infos
      end
      else Array.of_list live
    in
    let id = script !step enabled in
    let fi =
      match
        Array.to_list enabled
        |> List.find_opt (fun (fi : Sched.fiber_info) -> fi.Sched.id = id)
      with
      | Some fi -> fi
      | None -> invalid_arg "Explore: script chose a non-enabled fiber"
    in
    prev := Some (fi.Sched.id, fi.Sched.annot);
    incr step;
    (* Map the fiber id back to its index in the full runnable queue. *)
    let rec find i =
      if i >= Array.length infos then
        invalid_arg "Explore: chosen fiber is not runnable"
      else if infos.(i).Sched.id = id then i
      else find (i + 1)
    in
    find 0
  in
  match Sched.run_info ~choose fibers with
  | () -> Some (extract ())
  | exception Abandon `Steps -> None

let default_max_steps = 200_000

(* --- naive DFS -----------------------------------------------------------

   Branch at every scheduling point, one child per alternative enabled
   fiber: every schedule of the (parked) transition system, exactly once.
   Kept as the ground truth the DPOR explorer is differentially tested
   against, and as the baseline its reduction factor is measured from. *)

let run_naive ?(max_runs = 10_000) ?(max_steps = default_max_steps) ~make
    ~on_result () =
  (* Stable location ids across re-executions (see {!Tm_stm.Trace.loc_reset}):
     recorded traces of different schedules name the same cell the same
     way. *)
  let mark = Tm_stm.Trace.loc_mark () in
  let make () =
    Tm_stm.Trace.loc_reset mark;
    make ()
  in
  let stack = ref [ [||] ] in
  let runs = ref 0 in
  let cut = ref false in
  let rec loop () =
    match !stack with
    | [] -> ()
    | _ when !cut -> ()
    | prefix :: rest ->
        stack := rest;
        if !runs >= max_runs then cut := true
        else begin
          let factors = ref [] in
          let script s (enabled : Sched.fiber_info array) =
            if s >= max_steps then raise (Abandon `Steps);
            let n = Array.length enabled in
            factors := n :: !factors;
            let i =
              if s < Array.length prefix then begin
                let i = prefix.(s) in
                if i < 0 || i >= n then
                  invalid_arg
                    (Printf.sprintf
                       "Explore: schedule step %d chooses enabled fiber \
                        #%d but only %d fiber%s enabled"
                       s i n
                       (if n = 1 then " is" else "s are"));
                i
              end
              else 0
            in
            enabled.(i).Sched.id
          in
          (match execute_schedule ~make ~script with
          | Some result ->
              incr runs;
              on_result result;
              (* Branch at every scheduling point at or after the prefix
                 end, pushing deeper branch points first (DFS order). *)
              let factors = Array.of_list (List.rev !factors) in
              for pos = Array.length factors - 1 downto Array.length prefix
              do
                for choice = factors.(pos) - 1 downto 1 do
                  let child = Array.make (pos + 1) 0 in
                  Array.blit prefix 0 child 0 (Array.length prefix)
                  (* positions [length prefix .. pos-1] stay 0 *);
                  child.(pos) <- choice;
                  stack := child :: !stack
                done
              done
          | None ->
              (* Livelocked schedule (crashed lock holder, ...): the bound
                 cut it short, so the enumeration is not exhaustive and
                 continuing would branch from a truncated run. *)
              cut := true);
          loop ()
        end
  in
  loop ();
  {
    runs = !runs;
    exhaustive = not !cut;
    schedules_pruned = 0;
    reduction_factor = 1.0;
  }

(* --- DPOR ----------------------------------------------------------------

   Dynamic partial-order reduction (Flanagan–Godefroid 2005) with sleep
   sets.  One execution per explored schedule; as each transition executes,
   the dependency relation between shared-memory accesses (same location,
   at least one write) decides which earlier scheduling points must be
   revisited with a different fiber — backtrack sets, computed with
   per-fiber vector clocks — and sleep sets prune schedules that only
   reorder independent steps of an already-explored one.  Because
   {!Sim_mem} announces each access {e at the yield before it}, every
   runnable fiber's next transition is known without executing it, which
   is what makes the sleep-set independence checks exact.

   State is re-executed, not checkpointed: to branch, the retained stack of
   frames is replayed from the start (the program is deterministic, which
   replay asserts by comparing enabled sets). *)

module Iset = Set.Make (Int)

type frame = {
  f_enabled : Sched.fiber_info array;  (* choice set at this state *)
  mutable f_chosen : int;  (* fiber id executed from this state *)
  mutable f_annot : Sched.annot;  (* its transition *)
  mutable f_clock : int array;  (* vector clock of that transition *)
  mutable f_backtrack : Iset.t;  (* fiber ids that must also be tried *)
  mutable f_done : Iset.t;  (* fiber ids already tried (or slept over) *)
  mutable f_sleep : (int * Sched.annot) list;  (* sleeping on entry *)
}

(* Per-location access memory for one execution: the last write and the
   reads since, each with the clock of the transition that performed it. *)
type loc_state = {
  mutable l_write : (int * int * int array) option;  (* step, fiber, clock *)
  mutable l_reads : (int * int * int array) list;
}

let enabled_ids (e : Sched.fiber_info array) =
  Array.to_list e |> List.map (fun (fi : Sched.fiber_info) -> fi.Sched.id)

let annot_of (e : Sched.fiber_info array) id =
  let rec go i =
    if i >= Array.length e then Sched.Start
    else if e.(i).Sched.id = id then e.(i).Sched.annot
    else go (i + 1)
  in
  go 0

(* [clock c ≤ clock c'] restricted to [owner]'s component — the standard
   happens-before test when [c] is the clock of a transition [owner]
   performed. *)
let vc_leq_at c c' owner = c.(owner) <= c'.(owner)

let run ?(max_runs = 10_000) ?(max_steps = default_max_steps) ~make
    ~on_result () =
  (* Stable location ids across re-executions: a cell created by the k-th
     allocation gets the same id in every execution, which is what lets
     sleep-set annotations and backtrack bookkeeping recorded in one
     execution apply to the next (see {!Tm_stm.Trace.loc_reset}). *)
  let mark = Tm_stm.Trace.loc_mark () in
  let make () =
    Tm_stm.Trace.loc_reset mark;
    make ()
  in
  let frames : frame array ref = ref [||] in
  let n_frames = ref 0 in
  let runs = ref 0 in
  let cut = ref false in
  let pruned = ref 0 in
  let push_frame f =
    if !n_frames = Array.length !frames then begin
      let a = Array.make (max 64 (2 * Array.length !frames)) f in
      Array.blit !frames 0 a 0 !n_frames;
      frames := a
    end;
    !frames.(!n_frames) <- f;
    incr n_frames
  in
  (* One execution: replay the retained frames' choices, then follow the
     default policy (first enabled fiber not asleep), updating clocks and
     backtrack sets as every transition is appended. *)
  let execute_once () =
    let n_fibers = ref 0 in
    let vcs = ref [||] in
    let locs : (int, loc_state) Hashtbl.t = Hashtbl.create 64 in
    let sleep_now = ref [] in
    let script s (enabled : Sched.fiber_info array) =
      if s >= max_steps then raise (Abandon `Steps);
      let frame =
        if s < !n_frames then begin
          let f = !frames.(s) in
          if enabled_ids f.f_enabled <> enabled_ids enabled then
            invalid_arg
              (Printf.sprintf
                 "Explore: non-deterministic program (step %d enabled \
                  set changed between executions)"
                 s);
          sleep_now := f.f_sleep;
          f
        end
        else begin
          (* Fresh state.  If every enabled fiber is asleep, any completion
             of this schedule only reorders independent steps of an
             already-explored one: abandon. *)
          let sleeping id = List.mem_assoc id !sleep_now in
          let chosen =
            let rec go i =
              if i >= Array.length enabled then
                raise (Abandon `Sleep_blocked)
              else
                let id = enabled.(i).Sched.id in
                if sleeping id then go (i + 1) else id
            in
            go 0
          in
          let f =
            {
              f_enabled = Array.copy enabled;
              f_chosen = chosen;
              f_annot = annot_of enabled chosen;
              f_clock = [||];
              f_backtrack = Iset.empty;
              f_done = Iset.singleton chosen;
              f_sleep = !sleep_now;
            }
          in
          push_frame f;
          f
        end
      in
      let p = frame.f_chosen in
      let annot = annot_of enabled p in
      frame.f_annot <- annot;
      (* Grow the clock matrix on first sight of a fiber id. *)
      if p >= !n_fibers then begin
        let n = p + 1 in
        let grown =
          Array.init n (fun i ->
              if i >= !n_fibers then Array.make n 0
              else begin
                let c = !vcs.(i) in
                if Array.length c >= n then c
                else begin
                  let c' = Array.make n 0 in
                  Array.blit c 0 c' 0 (Array.length c);
                  c'
                end
              end)
        in
        vcs := grown;
        n_fibers := n
      end;
      let cp = !vcs.(p) in
      let clock =
        match annot with
        | Sched.Start | Sched.Pause ->
            (* Local-only transition: no dependencies. *)
            let c = Array.copy cp in
            c.(p) <- c.(p) + 1;
            c
        | Sched.Access { loc; kind } ->
            let st =
              match Hashtbl.find_opt locs loc with
              | Some st -> st
              | None ->
                  let st = { l_write = None; l_reads = [] } in
                  Hashtbl.add locs loc st;
                  st
            in
            (* Transitions racing with this one: the most recent dependent
               accesses not already ordered before [p]'s current clock
               (checked before the join below makes them ordered). *)
            let candidates =
              let w = match st.l_write with Some c -> [ c ] | None -> [] in
              if Tm_stm.Trace.is_write kind then w @ st.l_reads else w
            in
            let races =
              List.filter
                (fun (_, f, c) -> f <> p && not (vc_leq_at c cp f))
                candidates
            in
            let clock =
              let c = Array.copy cp in
              let join o =
                Array.iteri (fun i v -> c.(i) <- max c.(i) v) o
              in
              (match st.l_write with
              | Some (_, _, wc) -> join wc
              | None -> ());
              if Tm_stm.Trace.is_write kind then
                List.iter (fun (_, _, rc) -> join rc) st.l_reads;
              c.(p) <- c.(p) + 1;
              c
            in
            (* Backtrack (Flanagan–Godefroid): for each race at state [i],
               request [p] there if enabled, otherwise a fiber whose
               explored transition happens-before this one (it stands
               proxy for [p]), otherwise conservatively everything
               enabled. *)
            List.iter
              (fun (i, _, _) ->
                let fi = !frames.(i) in
                let en = enabled_ids fi.f_enabled in
                let considered = Iset.union fi.f_backtrack fi.f_done in
                let add q =
                  if not (Iset.mem q considered) then
                    fi.f_backtrack <- Iset.add q fi.f_backtrack
                in
                if List.mem p en then add p
                else begin
                  let rec proxy j =
                    if j >= s then None
                    else
                      let fj = !frames.(j) in
                      if
                        List.mem fj.f_chosen en
                        && vc_leq_at fj.f_clock clock fj.f_chosen
                      then Some fj.f_chosen
                      else proxy (j + 1)
                  in
                  match proxy (i + 1) with
                  | Some q -> add q
                  | None -> List.iter add en
                end)
              races;
            if Tm_stm.Trace.is_write kind then begin
              st.l_write <- Some (s, p, clock);
              st.l_reads <- []
            end
            else st.l_reads <- (s, p, clock) :: st.l_reads;
            clock
      in
      !vcs.(p) <- clock;
      frame.f_clock <- clock;
      (* The child state's sleep set: survivors independent of [annot]. *)
      sleep_now :=
        List.filter (fun (_, a) -> not (dependent a annot)) frame.f_sleep;
      p
    in
    execute_schedule ~make ~script
  in
  let rec explore () =
    if !runs >= max_runs then cut := true
    else begin
      (match execute_once () with
      | Some result ->
          incr runs;
          on_result result
      | None -> cut := true
      | exception Abandon `Sleep_blocked -> incr pruned);
      (* Backtrack to the deepest state with an unserved request; the
         branch we leave goes to sleep there (its subtree is covered). *)
      let rec backtrack () =
        if !n_frames = 0 then false
        else begin
          let f = !frames.(!n_frames - 1) in
          let rec pick () =
            match Iset.min_elt_opt (Iset.diff f.f_backtrack f.f_done) with
            | None -> None
            | Some q ->
                f.f_done <- Iset.add q f.f_done;
                if List.mem_assoc q f.f_sleep then begin
                  (* Already covered by a sibling's subtree. *)
                  incr pruned;
                  pick ()
                end
                else Some q
          in
          match pick () with
          | Some q ->
              f.f_sleep <- (f.f_chosen, f.f_annot) :: f.f_sleep;
              f.f_chosen <- q;
              f.f_annot <- annot_of f.f_enabled q;
              true
          | None ->
              pruned :=
                !pruned
                + max 0 (Array.length f.f_enabled - Iset.cardinal f.f_done);
              decr n_frames;
              backtrack ()
        end
      in
      if (not !cut) && backtrack () then explore ()
    end
  in
  explore ();
  let runs' = max 1 !runs in
  {
    runs = !runs;
    exhaustive = not !cut;
    schedules_pruned = !pruned;
    reduction_factor = float_of_int (runs' + !pruned) /. float_of_int runs';
  }

(* --- STM workload front ends --------------------------------------------- *)

let run_algo = function `Dpor -> run | `Naive -> run_naive

let explore_stm_results ?(algo = `Dpor) ?max_runs ?max_steps ?max_retries
    ?retry ?faults ?trace ~stm ~params ~seed ~on_result () =
  let make () =
    Runner.setup ?max_retries ?retry ?faults ?trace ~stm ~params ~seed ()
  in
  let outcome = run_algo algo ?max_runs ?max_steps ~make ~on_result () in
  (* Abandoned executions never reach the extractor, which is what
     uninstalls the per-execution recorder. *)
  if trace = Some true then Tm_stm.Trace.uninstall ();
  outcome

let explore_stm ?algo ?max_runs ?max_steps ?max_retries ?retry ?faults ~stm
    ~params ~seed ~on_history () =
  explore_stm_results ?algo ?max_runs ?max_steps ?max_retries ?retry ?faults
    ~stm ~params ~seed
    ~on_result:(fun (r : Runner.result) -> on_history r.Runner.history)
    ()
