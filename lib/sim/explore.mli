(** Systematic schedule enumeration (stateless model checking).

    Re-executes a deterministic program once per explored schedule.  Two
    enumeration strategies share one transition system — the annotated
    scheduler with {e pause parking} (a fiber spinning through
    {!Tm_stm.Mem_intf.MEM.pause} leaves the choice set until the next
    shared write, which collapses pure spin stuttering and keeps the space
    finite even for unbounded spin locks):

    - {!run} — dynamic partial-order reduction (Flanagan–Godefroid
      persistent sets with sleep sets and vector clocks): one execution
      per Mazurkiewicz trace, up to orders of magnitude fewer runs on
      workloads whose transactions touch disjoint or read-shared data.
    - {!run_naive} — branch-everywhere DFS, every schedule exactly once.
      The ground truth DPOR is differentially tested against, and the
      baseline its reduction factor is measured from.

    This is how the small-configuration STM theorems are checked: {e every}
    interleaving of a small TL2 workload yields a du-opaque history — not
    just the sampled ones. *)

type outcome = {
  runs : int;  (** schedules executed to completion *)
  exhaustive : bool;
      (** false if [max_runs] or [max_steps] cut the enumeration short *)
  schedules_pruned : int;
      (** schedule classes DPOR proved redundant without executing them
          (sleep-set hits and unexplored alternatives at popped states);
          0 for the naive DFS *)
  reduction_factor : float;
      (** [(runs + schedules_pruned) / runs] — a {e lower bound} on the
          reduction over the naive enumeration, whose true run count can
          only be measured by running it ([tm verify] does, when
          feasible); 1.0 for the naive DFS *)
}

type algo = [ `Dpor | `Naive ]

val dependent : Sched.annot -> Sched.annot -> bool
(** Two pending transitions do not commute: both access the same location
    and at least one writes ([Cas] counts as a write even when it would
    fail).  [Start] and [Pause] transitions are independent of
    everything. *)

val run :
  ?max_runs:int ->
  ?max_steps:int ->
  make:(unit -> (unit -> unit) list * (unit -> 'a)) ->
  on_result:('a -> unit) ->
  unit ->
  outcome
(** DPOR enumeration.  [make] must return a {e fresh} program (fibers
    sharing fresh state) plus a result extractor; [on_result] is called
    once per completed schedule.  [max_runs] (default 10_000) bounds
    completed executions, [max_steps] (default 200_000) bounds the length
    of any single execution (a schedule livelocked by an injected crash is
    abandoned and the outcome marked non-exhaustive).
    @raise Invalid_argument if re-execution diverges (the program is not
    deterministic), naming the first step whose enabled set changed. *)

val run_naive :
  ?max_runs:int ->
  ?max_steps:int ->
  make:(unit -> (unit -> unit) list * (unit -> 'a)) ->
  on_result:('a -> unit) ->
  unit ->
  outcome
(** Branch-everywhere DFS over the same transition system.
    @raise Invalid_argument if a schedule prefix chooses an out-of-range
    fiber, naming the offending step and how many fibers were enabled. *)

val explore_stm :
  ?algo:algo ->
  ?max_runs:int ->
  ?max_steps:int ->
  ?max_retries:int ->
  ?retry:Tm_stm.Faults.retry ->
  ?faults:Tm_stm.Faults.spec ->
  stm:string ->
  params:Tm_stm.Workload.params ->
  seed:int ->
  on_history:(History.t -> unit) ->
  unit ->
  outcome
(** Enumerate schedules of a simulated STM workload ({!Runner.setup});
    [algo] defaults to [`Dpor].  With a [faults] plan, enumerates every
    schedule of the {e faulted} program — the injector is re-created per
    schedule, so per-thread fault points fire identically in each. *)

val explore_stm_results :
  ?algo:algo ->
  ?max_runs:int ->
  ?max_steps:int ->
  ?max_retries:int ->
  ?retry:Tm_stm.Faults.retry ->
  ?faults:Tm_stm.Faults.spec ->
  ?trace:bool ->
  stm:string ->
  params:Tm_stm.Workload.params ->
  seed:int ->
  on_result:(Runner.result -> unit) ->
  unit ->
  outcome
(** Like {!explore_stm} but delivers the full {!Runner.result} — with
    [~trace:true], each completed schedule carries its shared-memory
    access trace, which is what [tm verify] feeds the race analyzer. *)
