(** Systematic schedule enumeration (stateless model checking, DFS).

    Re-executes a deterministic program once per schedule: a schedule is the
    sequence of chooser decisions, a child schedule branches at one
    scheduling point to a different runnable fiber.  Exhaustive for
    terminating programs when [max_runs] is large enough; the return value
    says whether the bound cut the exploration short.

    This is how the small-configuration STM theorems are checked: {e every}
    interleaving of a 2×2 TL2 workload yields a du-opaque history — not
    just the sampled ones. *)

type outcome = {
  runs : int;  (** schedules executed *)
  exhaustive : bool;  (** false if [max_runs] stopped the enumeration *)
}

val run :
  ?max_runs:int ->
  make:(unit -> (unit -> unit) list * (unit -> 'a)) ->
  on_result:('a -> unit) ->
  unit ->
  outcome
(** [make] must return a {e fresh} program (fibers sharing fresh state) plus
    a result extractor; [on_result] is called once per completed schedule. *)

val explore_stm :
  ?max_runs:int ->
  ?max_retries:int ->
  ?retry:Tm_stm.Faults.retry ->
  ?faults:Tm_stm.Faults.spec ->
  stm:string ->
  params:Tm_stm.Workload.params ->
  seed:int ->
  on_history:(History.t -> unit) ->
  unit ->
  outcome
(** Enumerate schedules of a simulated STM workload ({!Runner.setup}).
    With a [faults] plan, enumerates every schedule of the {e faulted}
    program — the injector is re-created per schedule, so per-thread fault
    points fire identically in each. *)
