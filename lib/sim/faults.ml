include Tm_stm.Faults

type outcome = [ `Ok | `Violation of string | `Budget of string ]

type monitor_stats = {
  responses : int;
  fastpath_hits : int;
  searches : int;
  nodes : int;
}

type report = {
  seed : int;
  spec : Tm_stm.Faults.spec;
  history : History.t;
  stats : Tm_stm.Harness.stats;
  outcome : outcome option;
  monitor : monitor_stats option;
  commit_pending : int;
  incomplete : int;
}

let horizon (params : Tm_stm.Workload.params) =
  params.Tm_stm.Workload.txns_per_thread
  * (params.Tm_stm.Workload.ops_per_txn + 1)

let run_one ?(max_nodes = 2_000_000) ?(check = true) ?retry ~stm ~params ~spec
    ~seed () =
  let r = Runner.run ?retry ~faults:spec ~stm ~params ~seed () in
  let h = r.Runner.history in
  let outcome, monitor =
    if not check then (None, None)
    else if List.mem stm Tm_stm.Registry.lastuse_safe then begin
      (* An early-release STM is judged by its own criterion: every prefix
         must be last-use-opaque.  The criterion is not prefix-closed in
         general, but each prefix of a recorded history is itself a
         history the STM could have produced, so per-prefix [Sat] is the
         campaign invariant — judged standalone by the incremental
         checker rather than a sticky monitor. *)
      let ctx = Tm_checker.Last_use_opacity.incremental () in
      let n = History.length h in
      let rec judge i =
        if i > n then `Ok
        else
          let p = History.prefix h i in
          match Tm_checker.Last_use_opacity.check_inc ~max_nodes ctx p with
          | Tm_checker.Last_use_opacity.Sat _, _ -> judge (i + 1)
          | Tm_checker.Last_use_opacity.Unsat why, _ ->
              `Violation (Fmt.str "prefix %d: %s (last-use)" i why)
          | Tm_checker.Last_use_opacity.Ambiguous why, _ -> `Budget why
      in
      (Some (judge 0), None)
    end
    else
      (* The monitor replays the history event by event, so an [`Ok] is a
         du-opacity verdict for the history AND every one of its prefixes —
         exactly the prefix-closure obligation (Corollary 2) restated as a
         campaign invariant. *)
      let m = Tm_checker.Monitor.create ~max_nodes () in
      let o = Tm_checker.Monitor.push_all m (History.to_list h) in
      ( Some o,
        Some
          {
            responses = Tm_checker.Monitor.responses_seen m;
            fastpath_hits = Tm_checker.Monitor.fastpath_hits m;
            searches = Tm_checker.Monitor.searches_run m;
            nodes = Tm_checker.Monitor.nodes_total m;
          } )
  in
  let infos = History.infos h in
  {
    seed;
    spec;
    history = h;
    stats = r.Runner.stats;
    outcome;
    monitor;
    commit_pending = List.length (History.commit_pending h);
    incomplete =
      List.length (List.filter (fun t -> not (Txn.is_t_complete t)) infos);
  }

let campaign ?max_nodes ?check ?retry ?kinds ~stm ~params ~seeds () =
  List.map
    (fun seed ->
      let spec =
        sample ?kinds
          ~n_threads:params.Tm_stm.Workload.n_threads
          ~horizon:(horizon params) ~seed ()
      in
      run_one ?max_nodes ?check ?retry ~stm ~params ~spec ~seed ())
    seeds
