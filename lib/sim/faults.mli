(** Fault campaigns: seeded fault plans driven through the deterministic
    simulator, with every produced history — and all of its prefixes —
    checked for du-opacity.

    This is the chaos-engineering face of {!Tm_stm.Faults} (whose plan
    types and injector are re-exported here): a campaign runs one seeded
    simulation per seed, each under a plan sampled from that same seed, so
    a reported failure replays from its seed alone.  Crash and stall plans
    produce {e genuinely incomplete} histories — invocations pending
    forever, commit-pending zombies — which is the input class the paper's
    completion machinery (Definition 2) and closure theorems are about and
    which a fault-free runner never emits. *)

include module type of struct
  include Tm_stm.Faults
end

type outcome = [ `Ok | `Violation of string | `Budget of string ]
(** {!Tm_checker.Monitor} outcome over the full event stream: [`Ok] means
    the history and every prefix is du-opaque; [`Budget] means a search
    exhausted [max_nodes] (never a hang, never a false verdict). *)

type monitor_stats = {
  responses : int;  (** response events the monitor handled *)
  fastpath_hits : int;
      (** responses absorbed by certificate revalidation, no search *)
  searches : int;  (** backtracking searches run *)
  nodes : int;  (** total search nodes across the stream *)
}
(** How the online monitor spent its time over one recorded history —
    [fastpath_hits / responses] is the revalidation hit rate reported by
    [tm chaos]. *)

type report = {
  seed : int;
  spec : Tm_stm.Faults.spec;  (** the plan that was injected *)
  history : History.t;  (** the recorded (possibly incomplete) history *)
  stats : Tm_stm.Harness.stats;
  outcome : outcome option;  (** [None] when checking was disabled *)
  monitor : monitor_stats option;  (** [None] when checking was disabled *)
  commit_pending : int;  (** transactions left with a pending [tryC] *)
  incomplete : int;  (** transactions that never became t-complete *)
}

val horizon : Tm_stm.Workload.params -> int
(** Per-thread boundary budget implied by a workload shape —
    [txns_per_thread * (ops_per_txn + 1)] — the right [~horizon] for
    {!sample}. *)

val run_one :
  ?max_nodes:int ->
  ?check:bool ->
  ?retry:Tm_stm.Faults.retry ->
  stm:string ->
  params:Tm_stm.Workload.params ->
  spec:Tm_stm.Faults.spec ->
  seed:int ->
  unit ->
  report
(** One simulator run under [spec].  With [check] (default [true]) the
    recorded history is streamed through the online monitor under a
    [max_nodes] budget (default 2M nodes per response).  Deterministic:
    same [stm], [params], [spec], [seed] — same report. *)

val campaign :
  ?max_nodes:int ->
  ?check:bool ->
  ?retry:Tm_stm.Faults.retry ->
  ?kinds:Tm_stm.Faults.kind list ->
  stm:string ->
  params:Tm_stm.Workload.params ->
  seeds:int list ->
  unit ->
  report list
(** One {!run_one} per seed, each under [sample ?kinds ~seed]. *)
