type result = { history : History.t; stats : Tm_stm.Harness.stats }

let setup ?max_retries ?retry ?(faults = Tm_stm.Faults.none) ~stm ~params
    ~seed () =
  let retry =
    match retry, max_retries with
    | Some r, _ -> r
    | None, Some n -> Tm_stm.Faults.retry_fixed n
    | None, None -> Tm_stm.Faults.retry_fixed 50
  in
  let (module A : Tm_stm.Tm_intf.ALGORITHM) = Tm_stm.Registry.find_exn stm in
  let module T = A (Sim_mem) in
  let instance =
    Tm_stm.Tm_intf.instantiate
      (module T)
      ~n_vars:params.Tm_stm.Workload.n_vars
  in
  let programs =
    Tm_stm.Workload.generate params (Random.State.make [| seed |])
  in
  let injector =
    Tm_stm.Faults.injector ~n_threads:params.Tm_stm.Workload.n_threads faults
  in
  let pause n =
    for _ = 1 to n do
      Sched.yield ()
    done
  in
  let log = ref [] in
  let emit ev = log := ev :: !log in
  let ids = ref 1 in
  let next_id () =
    let id = !ids in
    incr ids;
    id
  in
  let stats = Tm_stm.Harness.empty_stats () in
  let fibers =
    List.mapi
      (fun thread thread_prog () ->
        Tm_stm.Harness.run_thread instance ~emit ~next_id ~stats
          ~faults:injector ~pause ~retry ~thread thread_prog)
      programs
  in
  let extract () =
    let events = Tm_stm.Faults.truncate faults (List.rev !log) in
    { history = History.of_events_exn events; stats }
  in
  (fibers, extract)

let run ?max_retries ?retry ?faults ~stm ~params ~seed () =
  let fibers, extract =
    setup ?max_retries ?retry ?faults ~stm ~params ~seed ()
  in
  Sched.run_seeded ~seed:(seed + 0x5eed) fibers;
  extract ()
