type result = {
  history : History.t;
  stats : Tm_stm.Harness.stats;
  trace : Tm_stm.Trace.t option;
}

let setup ?max_retries ?retry ?(faults = Tm_stm.Faults.none)
    ?(trace = false) ~stm ~params ~seed () =
  let retry =
    match retry, max_retries with
    | Some r, _ -> r
    | None, Some n -> Tm_stm.Faults.retry_fixed n
    | None, None -> Tm_stm.Faults.retry_fixed 50
  in
  let sink =
    if trace then begin
      let s = Tm_stm.Trace.sink () in
      Tm_stm.Trace.install s;
      Some s
    end
    else None
  in
  let (module A : Tm_stm.Tm_intf.ALGORITHM) = Tm_stm.Registry.find_exn stm in
  let module T = A (Sim_mem) in
  let instance =
    Tm_stm.Tm_intf.instantiate
      (module T)
      ~n_vars:params.Tm_stm.Workload.n_vars
  in
  let programs =
    Tm_stm.Workload.generate params (Random.State.make [| seed |])
  in
  let injector =
    Tm_stm.Faults.injector ~n_threads:params.Tm_stm.Workload.n_threads faults
  in
  let pause n =
    for _ = 1 to n do
      Sched.yield ()
    done
  in
  let log = ref [] in
  let emit ev = log := ev :: !log in
  (* With a recorder installed, mirror transaction-attempt boundaries into
     the trace so analyzers can attribute each access to the attempt that
     performed it: [Began] at the attempt's first invocation (the accesses
     of [begin_txn] precede it and are attributed to the same attempt),
     [Committed]/[Aborted] at the response that ends the attempt. *)
  let emit_marked thread =
    match sink with
    | None -> emit
    | Some _ ->
        let live = ref (-1) in
        fun ev ->
          (match ev with
          | Event.Inv (id, _) ->
              if !live <> id then begin
                live := id;
                Tm_stm.Trace.record_mark ~fiber:thread ~txn:id
                  Tm_stm.Trace.Began
              end
          | Event.Res (id, Event.Committed) ->
              live := -1;
              Tm_stm.Trace.record_mark ~fiber:thread ~txn:id
                Tm_stm.Trace.Committed
          | Event.Res (id, Event.Aborted) ->
              live := -1;
              Tm_stm.Trace.record_mark ~fiber:thread ~txn:id
                Tm_stm.Trace.Aborted
          | Event.Res (_, _) -> ());
          emit ev
  in
  let ids = ref 1 in
  let next_id () =
    let id = !ids in
    incr ids;
    id
  in
  let stats = Tm_stm.Harness.empty_stats () in
  let fibers =
    List.mapi
      (fun thread thread_prog () ->
        Tm_stm.Harness.run_thread instance ~emit:(emit_marked thread)
          ~next_id ~stats ~faults:injector ~pause ~retry ~thread thread_prog)
      programs
  in
  let extract () =
    let events = Tm_stm.Faults.truncate faults (List.rev !log) in
    let trace =
      Option.map
        (fun s ->
          Tm_stm.Trace.uninstall ();
          Tm_stm.Trace.entries s)
        sink
    in
    { history = History.of_events_exn events; stats; trace }
  in
  (fibers, extract)

let run ?max_retries ?retry ?faults ?trace ~stm ~params ~seed () =
  let fibers, extract =
    setup ?max_retries ?retry ?faults ?trace ~stm ~params ~seed ()
  in
  Sched.run_seeded ~seed:(seed + 0x5eed) fibers;
  extract ()
