(** Run STM workloads under the deterministic scheduler and record the
    resulting history.

    Each simulated thread is a fiber driving its share of the workload
    through the chosen algorithm ({!Tm_stm.Registry}) instantiated over
    {!Sim_mem}; the scheduler interleaves them at memory-access granularity.
    Same [seed] (and same chooser) — same history, byte for byte: the
    safety experiments and their failures are replayable.  The same holds
    with a fault plan: same [seed] and same [faults] — same (possibly
    incomplete) history. *)

type result = {
  history : History.t;
  stats : Tm_stm.Harness.stats;
  trace : Tm_stm.Trace.t option;
      (** the recorded shared-memory access trace, when [setup] was given
          [~trace:true] *)
}

val setup :
  ?max_retries:int ->
  ?retry:Tm_stm.Faults.retry ->
  ?faults:Tm_stm.Faults.spec ->
  ?trace:bool ->
  stm:string ->
  params:Tm_stm.Workload.params ->
  seed:int ->
  unit ->
  (unit -> unit) list * (unit -> result)
(** Fresh shared state, fibers, and a result extractor — the building block
    {!Explore} re-invokes once per schedule.  [retry] overrides
    [max_retries] (which is kept as the historical shorthand for
    [Faults.retry_fixed], default 50 attempts); [faults] defaults to
    {!Tm_stm.Faults.none}.  [trace] (default false) installs a
    {!Tm_stm.Trace} recorder for the run: every shared-memory access and
    transaction-attempt boundary lands in [result.trace].  Recording adds
    no scheduling points, so the schedule is identical either way. *)

val run :
  ?max_retries:int ->
  ?retry:Tm_stm.Faults.retry ->
  ?faults:Tm_stm.Faults.spec ->
  ?trace:bool ->
  stm:string ->
  params:Tm_stm.Workload.params ->
  seed:int ->
  unit ->
  result
(** [setup] + {!Sched.run_seeded} (schedule seed derived from [seed]). *)
