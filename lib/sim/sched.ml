type annot =
  | Start
  | Pause
  | Access of { loc : int; kind : Tm_stm.Trace.kind }

type _ Effect.t += Yield : annot -> unit Effect.t

let yield_annot a =
  try Effect.perform (Yield a)
  with Effect.Unhandled _ ->
    failwith "Sched.yield: no scheduler is running"

let yield () = yield_annot Pause
let yield_access ~loc kind = yield_annot (Access { loc; kind })

(* The fiber whose slice is currently executing; [-1] outside [run].
   Everything is single-domain, so a plain ref suffices. *)
let current_id = ref (-1)
let current_fiber () = if !current_id < 0 then None else Some !current_id

type fiber_info = { id : int; annot : annot }

(* The runnable set, indexed exactly like the FIFO list it replaces: slot 0
   is the oldest enqueued fiber, [push] appends after the newest, and
   [remove i] closes the gap while preserving the relative order of the
   survivors.  [choose] therefore sees the same [n] and the same meaning of
   every index as before, so seeded schedules are bit-for-bit unchanged —
   but enqueue is O(1) amortised and removal one [Array.blit] instead of
   the former O(n) append + O(n) nth + O(n) filteri per slice. *)
module Dynarray = struct
  type 'a t = { mutable arr : 'a option array; mutable len : int }

  let create () = { arr = Array.make 8 None; len = 0 }

  let push q x =
    let cap = Array.length q.arr in
    if q.len = cap then begin
      let arr = Array.make (2 * cap) None in
      Array.blit q.arr 0 arr 0 q.len;
      q.arr <- arr
    end;
    q.arr.(q.len) <- Some x;
    q.len <- q.len + 1

  let length q = q.len

  let get q i =
    match q.arr.(i) with
    | Some x -> x
    | None -> invalid_arg "Sched: empty runnable slot"

  let remove q i =
    Array.blit q.arr (i + 1) q.arr i (q.len - i - 1);
    q.len <- q.len - 1;
    q.arr.(q.len) <- None
end

let run_info ~choose fibers =
  (* Runnable fibers: id, pending annotation (what the fiber will do when
     resumed), and the thunk advancing it one slice. *)
  let runnable : (fiber_info * (unit -> unit)) Dynarray.t =
    Dynarray.create ()
  in
  let enqueue info t = Dynarray.push runnable (info, t) in
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield annot ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  let id = !current_id in
                  enqueue { id; annot } (fun () ->
                      Effect.Deep.continue k ()))
          | _ -> None);
    }
  in
  List.iteri
    (fun id fiber ->
      enqueue { id; annot = Start } (fun () ->
          Effect.Deep.match_with fiber () handler))
    fibers;
  let rec loop () =
    let n = Dynarray.length runnable in
    if n > 0 then begin
      let infos = Array.init n (fun i -> fst (Dynarray.get runnable i)) in
      let i = choose infos in
      if i < 0 || i >= n then invalid_arg "Sched.run: chooser out of range";
      let info, fiber = Dynarray.get runnable i in
      Dynarray.remove runnable i;
      current_id := info.id;
      fiber ();
      current_id := -1;
      loop ()
    end
  in
  (try loop ()
   with e ->
     current_id := -1;
     raise e);
  current_id := -1

let run ~choose fibers =
  run_info ~choose:(fun infos -> choose (Array.length infos)) fibers

let run_random rng fibers =
  run ~choose:(fun n -> Random.State.int rng n) fibers

let run_seeded ~seed fibers = run_random (Random.State.make [| seed |]) fibers
