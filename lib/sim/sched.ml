type _ Effect.t += Yield : unit Effect.t

let yield () =
  try Effect.perform Yield
  with Effect.Unhandled _ ->
    failwith "Sched.yield: no scheduler is running"

(* The runnable set, indexed exactly like the FIFO list it replaces: slot 0
   is the oldest enqueued fiber, [push] appends after the newest, and
   [remove i] closes the gap while preserving the relative order of the
   survivors.  [choose] therefore sees the same [n] and the same meaning of
   every index as before, so seeded schedules are bit-for-bit unchanged —
   but enqueue is O(1) amortised and removal one [Array.blit] instead of
   the former O(n) append + O(n) nth + O(n) filteri per slice. *)
module Dynarray = struct
  type 'a t = { mutable arr : 'a option array; mutable len : int }

  let create () = { arr = Array.make 8 None; len = 0 }

  let push q x =
    let cap = Array.length q.arr in
    if q.len = cap then begin
      let arr = Array.make (2 * cap) None in
      Array.blit q.arr 0 arr 0 q.len;
      q.arr <- arr
    end;
    q.arr.(q.len) <- Some x;
    q.len <- q.len + 1

  let length q = q.len

  let get q i =
    match q.arr.(i) with
    | Some x -> x
    | None -> invalid_arg "Sched: empty runnable slot"

  let remove q i =
    Array.blit q.arr (i + 1) q.arr i (q.len - i - 1);
    q.len <- q.len - 1;
    q.arr.(q.len) <- None
end

let run ~choose fibers =
  (* Runnable fibers, each a thunk that advances one slice when called. *)
  let runnable : (unit -> unit) Dynarray.t = Dynarray.create () in
  let enqueue t = Dynarray.push runnable t in
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  enqueue (fun () -> Effect.Deep.continue k ()))
          | _ -> None);
    }
  in
  List.iter
    (fun fiber -> enqueue (fun () -> Effect.Deep.match_with fiber () handler))
    fibers;
  let rec loop () =
    let n = Dynarray.length runnable in
    if n > 0 then begin
      let i = choose n in
      if i < 0 || i >= n then invalid_arg "Sched.run: chooser out of range";
      let fiber = Dynarray.get runnable i in
      Dynarray.remove runnable i;
      fiber ();
      loop ()
    end
  in
  loop ()

let run_random rng fibers =
  run ~choose:(fun n -> Random.State.int rng n) fibers

let run_seeded ~seed fibers = run_random (Random.State.make [| seed |]) fibers
