(** Deterministic cooperative scheduler over OCaml 5 effects.

    Fibers yield at every simulated memory access ({!Sim_mem}), so the
    scheduler's choice sequence fully determines the interleaving: a seeded
    random chooser gives reproducible stress runs, an explicit chooser
    supports systematic schedule enumeration ({!Explore}).  Everything runs
    on one domain — data races in simulated code are impossible by
    construction, which is what makes recorded histories exact.

    Every yield carries an {e annotation} describing what the fiber will do
    when next resumed: the shared-memory access it is parked in front of
    ({!Sim_mem} yields {e before} each access), or [Pause] for a pure
    spin-wait / backoff hint.  Annotations are what make dependency-aware
    exploration (DPOR) possible: the explorer can tell whether two runnable
    fibers' next steps commute without executing them.  The annotations are
    invisible to the index-based choosers, so seeded schedules are
    bit-for-bit identical to the unannotated scheduler's. *)

type annot =
  | Start  (** fiber not started yet; its first slice performs no access *)
  | Pause  (** spin-wait or backoff hint ({!Mem_intf.MEM.pause}) *)
  | Access of { loc : int; kind : Tm_stm.Trace.kind }
      (** parked immediately before this shared-memory access *)

val yield : unit -> unit
(** Cooperative scheduling point, annotated [Pause].  Must be called from
    inside {!run}.
    @raise Failure when no scheduler is running. *)

val yield_access : loc:int -> Tm_stm.Trace.kind -> unit
(** Scheduling point announcing the access the caller performs next. *)

val yield_annot : annot -> unit

val current_fiber : unit -> int option
(** The fiber whose slice is currently executing (its index in the list
    passed to {!run}), or [None] outside a scheduler. *)

type fiber_info = { id : int; annot : annot }
(** A runnable fiber: its identity (index in the original fiber list,
    stable across yields) and pending annotation. *)

val run : choose:(int -> int) -> (unit -> unit) list -> unit
(** [run ~choose fibers] runs the fibers to completion.  At every scheduling
    point, [choose n] must return an index in [0 .. n-1] selecting which of
    the [n] currently runnable fibers advances.  Runs until every fiber has
    returned. *)

val run_info : choose:(fiber_info array -> int) -> (unit -> unit) list -> unit
(** Like {!run}, but the chooser sees each runnable fiber's identity and
    pending annotation (in the same queue order {!run} indexes).  The
    return value is still an {e index} into the array. *)

val run_seeded : seed:int -> (unit -> unit) list -> unit
(** [run] with a uniformly random chooser. *)

val run_random : Random.State.t -> (unit -> unit) list -> unit
