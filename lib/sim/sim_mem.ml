(** {!Tm_stm.Mem_intf.MEM} for the simulator: plain storage behind a
    scheduling point.  Yielding {e before} each access makes every memory
    operation a potential context switch, so the scheduler can produce any
    interleaving a sequentially-consistent machine could — at exactly the
    granularity the STM algorithms synchronise at.  Single-domain, hence
    race-free and deterministic.

    Every cell carries a {!Tm_stm.Trace} location id; yields announce the
    upcoming access ({!Sched.yield_access}), which is what the DPOR
    explorer's dependency relation is computed from, and an installed
    {!Tm_stm.Trace} recorder logs the access as it executes.  Neither adds
    a scheduling point, so seeded schedules are unperturbed. *)

type 'a cell = { mutable v : 'a; id : int }

let make v = { v; id = Tm_stm.Trace.fresh_loc () }

let note c kind =
  if Tm_stm.Trace.installed () then
    match Sched.current_fiber () with
    | Some fiber -> Tm_stm.Trace.record ~fiber ~loc:c.id kind
    | None -> ()

let get c =
  Sched.yield_access ~loc:c.id Tm_stm.Trace.Read;
  note c Tm_stm.Trace.Read;
  c.v

let set c v =
  Sched.yield_access ~loc:c.id Tm_stm.Trace.Write;
  note c Tm_stm.Trace.Write;
  c.v <- v

let cas c expected desired =
  Sched.yield_access ~loc:c.id Tm_stm.Trace.Cas;
  note c Tm_stm.Trace.Cas;
  if c.v = expected then begin
    c.v <- desired;
    true
  end
  else false

let fetch_add c n =
  Sched.yield_access ~loc:c.id Tm_stm.Trace.Fetch_add;
  note c Tm_stm.Trace.Fetch_add;
  let v = c.v in
  c.v <- v + n;
  v

let pause = Sched.yield
