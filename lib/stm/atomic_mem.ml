(** {!Mem_intf.MEM} over OCaml 5 [Atomic] cells — the real-memory world used
    when running STMs on domains.

    Each cell carries a {!Trace} location id so an installed recorder can
    log every access (tagged with the executing domain); without a
    recorder the per-access overhead is one load and one branch. *)

type 'a cell = { a : 'a Atomic.t; id : int }

let note c kind =
  if Trace.installed () then
    Trace.record ~fiber:(Domain.self () :> int) ~loc:c.id kind

let make v = { a = Atomic.make v; id = Trace.fresh_loc () }

let get c =
  note c Trace.Read;
  Atomic.get c.a

let set c v =
  note c Trace.Write;
  Atomic.set c.a v

let cas c expected desired =
  note c Trace.Cas;
  Atomic.compare_and_set c.a expected desired

let fetch_add c n =
  note c Trace.Fetch_add;
  Atomic.fetch_and_add c.a n

let pause = Domain.cpu_relax
