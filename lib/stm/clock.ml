(** Monotonic time for benchmark intervals.

    [Unix.gettimeofday] follows the wall clock, so an NTP step or manual
    adjustment mid-benchmark yields garbage (even negative) elapsed times.
    This reads [CLOCK_MONOTONIC] through a tiny C stub instead; only
    differences are meaningful. *)

external monotonic_ns : unit -> int64 = "tm_clock_monotonic_ns"

let now () = Int64.to_float (monotonic_ns ()) /. 1e9
(** Seconds from an arbitrary fixed origin; strictly non-decreasing. *)
