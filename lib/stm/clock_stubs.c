/* Monotonic clock for benchmark timing: immune to wall-clock (NTP,
   manual) adjustments, unlike gettimeofday.  CLOCK_MONOTONIC is POSIX. */

#include <time.h>
#include <stdint.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

CAMLprim value tm_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
