(** Negative control: TL2 with the read-side validation deleted.

    Writers are full TL2 (locked, versioned, deferred commit), but reads
    return whatever is in memory — ignoring lock bits and versions.  A
    transaction can thus observe half of a concurrent commit (a torn
    snapshot): the classic zombie anomaly opacity was invented to exclude.
    Every dirty value comes from a transaction that {e has} invoked [tryC],
    so violations here are global-legality violations rather than
    deferred-update ones — the complementary failure mode to {!Eager}. *)

module Make (M : Mem_intf.MEM) : Tm_intf.TM = struct
  module Base = Tl2.Make (M)

  type t = Base.t
  type txn = Base.txn

  let name = "dirty-read"
  let create = Base.create
  let begin_txn = Base.begin_txn

  let read (txn : txn) x =
    match Hashtbl.find_opt txn.Base.wset x with
    | Some v -> v
    | None -> M.get txn.Base.tm.Base.data.(x) (* no validation at all *)

  let write = Base.write
  let release = Base.release
  let commit = Base.commit
  let abort = Base.abort
end
