(** Negative control: eager in-place writes with no isolation whatsoever.

    Writes hit memory immediately (undo-logged for [tryA]), reads are plain
    loads, commit always succeeds.  Readers routinely return values written
    by transactions that have not invoked [tryC] — the precise behaviour
    Definition 3's local-serialization clause outlaws — so this control
    produces deferred-update violations even on schedules where the final
    state happens to look serial. *)

module Make (M : Mem_intf.MEM) : Tm_intf.TM = struct
  type t = { data : int M.cell array }

  type txn = { tm : t; mutable undo : (int * int) list }

  let name = "eager"

  let create ~n_vars =
    { data = Array.init n_vars (fun _ -> M.make Event.init_value) }

  let begin_txn tm = { tm; undo = [] }
  let read txn x = M.get txn.tm.data.(x)

  let write txn x v =
    txn.undo <- (x, M.get txn.tm.data.(x)) :: txn.undo;
    M.set txn.tm.data.(x) v

  let release _txn _x = ()
  let commit _txn = true

  let abort txn =
    List.iter (fun (x, v) -> M.set txn.tm.data.(x) v) txn.undo
end
