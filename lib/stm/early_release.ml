(** NOrec with early release: a deferred-update STM that deliberately
    publishes a buffered write {e before} commit, once the program declares
    the write is its last to that variable ({!Tm_intf.TM.release}).

    The base protocol is {!Norec}: one global sequence lock, value-based
    revalidation.  On top of it, [release t x] acquires the sequence lock
    and stores the buffered value into [data.(x)] while the transaction is
    still live, flagging [rel.(x)].  Other transactions can now read the
    value with a plain NOrec read; the variable stays owned until the
    releasing transaction resolves — commit clears the flag and keeps the
    value, abort restores the saved undo value — both under the sequence
    lock, so a snapshot check never observes a half-done transition.

    At most one transaction holds live released variables at a time (the
    [reltoken]; a release attempt while another holder is live just keeps
    the write buffered).  This is not an optimisation but a safety
    requirement of the criterion itself: two live transactions reading
    {e each other's} released values admit no serialization — whichever
    comes first must still precede its own supplier — and retried
    incarnations of the partner rebuild one side of that cycle under
    real-time constraints that rule every candidate writer out.  With a
    single live releaser, a released value always flows from the token
    holder to transactions serialized after it, and the holder's own reads
    come from committed state, so supplier-before-reader edges can never
    close a cycle.  (The failing trace is kept as a fixture in the
    last-use test suite.)

    Safety obligations, and how each is met:

    - {b no lost updates}: while [rel.(x)] is set, no other transaction
      may commit a write to [x] (commit checks the flag under the lock and
      aborts itself) and no other transaction may release [x] — so the
      undo-restore on abort can never clobber a foreign write.
    - {b no committed dirty reads}: committing requires every read-set
      variable to be unreleased {e and} value-valid at one instant — for
      writers inside the commit critical section, for read-only
      transactions in a revalidate-then-recheck-the-lock window.  A
      transaction whose releaser is still live aborts (the harness
      retries it); one whose releaser aborted fails revalidation (the
      rollback changed the value back), cascading the abort.  Committed
      transactions therefore only ever read from committed ones.
    - {b no self-invalidation}: revalidation and the commit-time checks
      skip variables this transaction released itself (it changed them on
      purpose, and the flag keeps everyone else from committing to them).

    The reader side enforces the matching {e epoch discipline}: a released
    value may be adopted only into an empty read set, after which the
    reader is pinned to the holder's epoch — further reads must come from
    that same epoch (or wait for the holder to resolve) or the attempt
    aborts.  Mixing a released value with clean reads in either order is
    refused because the holder's not-yet-published write set can commit
    over the clean value, which again yields a history no serialization
    explains.  Apart from that one flag probe, the read path is NOrec's,
    and reads track no other dependency state — the schedule space stays
    small enough for exhaustive DPOR enumeration ([tm verify]).

    The histories this produces are the whole point: a reader may return a
    value whose writer had executed its closing write but not yet
    committed.  Such a history is {e not} du-opaque — the writer had not
    invoked [tryC] when the read responded, so Definition 3's
    local-serialization clause has nothing to justify the value — but it
    {e is} last-use-opaque, the read being covered by the closed-writer
    clause.  See {!Tm_checker.Last_use_opacity} and the [stm-safety]
    experiment's criterion-separation table. *)

module Make (M : Mem_intf.MEM) : Tm_intf.TM = struct
  type t = {
    glock : int M.cell;
    data : int M.cell array;
    rel : int M.cell array;  (* 1 = released by a live transaction *)
    reltoken : int M.cell;  (* 1 = some live transaction holds releases *)
  }

  type txn = {
    tm : t;
    mutable snapshot : int;
    mutable rset : (int * int) list;  (* variable, value seen *)
    wset : (int, int) Hashtbl.t;
    released : (int, int) Hashtbl.t;  (* variable -> undo value *)
    mutable tainted : int option;
        (* a released variable this transaction read while its releaser
           may still be live — pins the reader to that epoch *)
    mutable doomed : bool;
  }

  let name = "early-release"

  let create ~n_vars =
    {
      glock = M.make 0;
      data = Array.init n_vars (fun _ -> M.make Event.init_value);
      rel = Array.init n_vars (fun _ -> M.make 0);
      reltoken = M.make 0;
    }

  let rec wait_even tm =
    let l = M.get tm.glock in
    if l land 1 = 0 then l
    else begin
      M.pause ();
      wait_even tm
    end

  let begin_txn tm =
    {
      tm;
      snapshot = wait_even tm;
      rset = [];
      wset = Hashtbl.create 8;
      released = Hashtbl.create 4;
      tainted = None;
      doomed = false;
    }

  (* Value-based revalidation, as NOrec — except entries for variables this
     transaction released are skipped: it rewrote those itself, and the
     release flag keeps everyone else from committing to them. *)
  let rec validate txn =
    let time = wait_even txn.tm in
    let unchanged =
      List.for_all
        (fun (x, v) ->
          Hashtbl.mem txn.released x || M.get txn.tm.data.(x) = v)
        txn.rset
    in
    if not unchanged then raise Tm_intf.Abort
    else if M.get txn.tm.glock <> time then begin
      M.pause ();
      validate txn
    end
    else time

  (* Epoch discipline for released values (the single live releaser's
     variables, [rel] set).  A released value may be adopted only with an
     empty read set, and once adopted the reader is pinned to that epoch:
     it may keep reading the holder's other released variables, but a
     clean variable while the holder is still live means mixing epochs —
     the holder's unpublished write set could commit over it — so the
     reader aborts instead.  Conversely a reader that already holds clean
     values refuses a released one: the holder may later commit a write
     over something already read.  Both refusals kill exactly the
     histories last-use opacity has no serialization for. *)
  let rec read txn x =
    match Hashtbl.find_opt txn.wset x with
    | Some v -> v
    | None ->
        let tm = txn.tm in
        let v = M.get tm.data.(x) in
        if M.get tm.glock <> txn.snapshot then begin
          txn.snapshot <- validate txn;
          read txn x
        end
        else begin
          (* Load every flag the decision depends on, then re-check the
             sequence lock: release, commit and rollback all bump it from
             inside their critical sections, so an unmoved lock proves the
             value and flag loads saw one consistent state.  Without the
             re-check a commit can slip wholly between the first lock check
             and the flag loads — the flags then say "holder resolved"
             while [v] predates the holder's writes, and value-based
             revalidation cannot tell (the released value and the committed
             value are the same number). *)
          let r = M.get tm.rel.(x) in
          let pinned_live =
            match txn.tainted with
            | Some x0 -> M.get tm.rel.(x0) = 1
            | None -> false
          in
          if M.get tm.glock <> txn.snapshot then begin
            txn.snapshot <- validate txn;
            read txn x
          end
          else if r = 1 then
            if txn.tainted <> None || txn.rset = [] then begin
              if txn.tainted = None then txn.tainted <- Some x;
              txn.rset <- (x, v) :: txn.rset;
              v
            end
            else raise Tm_intf.Abort
          else begin
            if pinned_live then raise Tm_intf.Abort
            else
              (* the epoch's holder resolved (an abort would have failed
                 revalidation by now) — unpin *)
              txn.tainted <- None;
            txn.rset <- (x, v) :: txn.rset;
            v
          end
        end

  let write txn x v =
    (* The harness only releases after a variable's statically-last write,
       so a write after [release] signals a broken caller: doom the
       transaction rather than publish conflicting values. *)
    if Hashtbl.mem txn.released x then txn.doomed <- true
    else Hashtbl.replace txn.wset x v

  let release txn x =
    match Hashtbl.find_opt txn.wset x with
    | None -> ()
    | Some _ when txn.doomed || Hashtbl.mem txn.released x -> ()
    | Some v -> (
        let tm = txn.tm in
        match
          let rec lock () =
            if M.cas tm.glock txn.snapshot (txn.snapshot + 1) then ()
            else begin
              txn.snapshot <- validate txn;
              lock ()
            end
          in
          lock ()
        with
        | exception Tm_intf.Abort -> txn.doomed <- true
        | () ->
            (* Publish only when this transaction is (or can become) the
               single live releaser; otherwise drop the hint — releasing is
               optional, the write just stays buffered until commit. *)
            let holder = Hashtbl.length txn.released > 0 in
            if (holder || M.get tm.reltoken = 0) && M.get tm.rel.(x) = 0
            then begin
              if not holder then M.set tm.reltoken 1;
              Hashtbl.replace txn.released x (M.get tm.data.(x));
              M.set tm.data.(x) v;
              ignore (M.cas tm.rel.(x) 0 1 : bool)
            end;
            M.set tm.glock (txn.snapshot + 2);
            txn.snapshot <- txn.snapshot + 2)

  (* A read-set variable is admissible at commit iff it is ours or not
     currently released: a set flag means the writer is still live (its
     value is not yet committed), so the reader must step aside. *)
  let unreleased txn (x, _) =
    Hashtbl.mem txn.released x || M.get txn.tm.rel.(x) = 0

  (* Restore every released variable's undo value and surrender the flags,
     under a fresh critical section.  Used on any abort path. *)
  let rollback txn =
    if Hashtbl.length txn.released > 0 then begin
      let tm = txn.tm in
      let rec lock () =
        let l = wait_even tm in
        if M.cas tm.glock l (l + 1) then l
        else begin
          M.pause ();
          lock ()
        end
      in
      let l = lock () in
      Hashtbl.iter
        (fun x undo ->
          M.set tm.data.(x) undo;
          ignore (M.cas tm.rel.(x) 1 0 : bool))
        txn.released;
      M.set tm.reltoken 0;
      M.set tm.glock (l + 2);
      Hashtbl.reset txn.released
    end

  let commit txn =
    let tm = txn.tm in
    if txn.doomed then begin
      rollback txn;
      false
    end
    else if Hashtbl.length txn.wset = 0 then begin
      if txn.rset = [] then true
      else begin
        (* Read-only: unlike NOrec we must revalidate — a released value
           passes the snapshot checks but may never commit.  Values and
           release flags are checked at one instant: revalidate to a
           stable time, read the flags, and confirm the sequence lock has
           not moved (every release, commit or rollback bumps it). *)
        match
          let rec settle () =
            let time = validate txn in
            if not (List.for_all (unreleased txn) txn.rset) then
              raise Tm_intf.Abort
            else if M.get tm.glock <> time then begin
              M.pause ();
              settle ()
            end
          in
          settle ()
        with
        | () -> true
        | exception Tm_intf.Abort -> false
      end
    end
    else begin
      match
        let rec lock () =
          if M.cas tm.glock txn.snapshot (txn.snapshot + 1) then ()
          else begin
            txn.snapshot <- validate txn;
            lock ()
          end
        in
        lock ()
      with
      | exception Tm_intf.Abort ->
          rollback txn;
          false
      | () ->
          let owned x =
            Hashtbl.mem txn.released x || M.get tm.rel.(x) = 0
          in
          if
            Hashtbl.fold (fun x _ ok -> ok && owned x) txn.wset true
            && List.for_all
                 (fun (x, _ as r) -> Hashtbl.mem txn.wset x || unreleased txn r)
                 txn.rset
          then begin
            Hashtbl.iter (fun x v -> M.set tm.data.(x) v) txn.wset;
            if Hashtbl.length txn.released > 0 then begin
              Hashtbl.iter
                (fun x _ -> ignore (M.cas tm.rel.(x) 1 0 : bool))
                txn.released;
              M.set tm.reltoken 0;
              Hashtbl.reset txn.released
            end;
            M.set tm.glock (txn.snapshot + 2);
            true
          end
          else begin
            (* A variable we read or want to write is released by a live
               transaction: its abort would invalidate us, so step aside
               (restoring our own released variables under this same
               critical section). *)
            if Hashtbl.length txn.released > 0 then begin
              Hashtbl.iter
                (fun x undo ->
                  M.set tm.data.(x) undo;
                  ignore (M.cas tm.rel.(x) 1 0 : bool))
                txn.released;
              M.set tm.reltoken 0;
              Hashtbl.reset txn.released
            end;
            M.set tm.glock (txn.snapshot + 2);
            false
          end
    end

  let abort txn = rollback txn
end
