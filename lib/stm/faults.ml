type point = { thread : int; step : int }

type kind = [ `Crash | `Stall | `Spurious | `Omission ]

let all_kinds : kind list = [ `Crash; `Stall; `Spurious; `Omission ]

let kind_to_string = function
  | `Crash -> "crash"
  | `Stall -> "stall"
  | `Spurious -> "abort"
  | `Omission -> "omission"

let kind_of_string = function
  | "crash" -> Ok `Crash
  | "stall" -> Ok `Stall
  | "abort" | "spurious" -> Ok `Spurious
  | "omission" | "omit" -> Ok `Omission
  | s ->
      Error
        (Fmt.str "unknown fault kind %S (expected %s)" s
           (String.concat "|" (List.map kind_to_string all_kinds)))

type spec = {
  crash : point option;
  stall : point option;
  spurious : point list;
  omission : int option;
}

let none = { crash = None; stall = None; spurious = []; omission = None }

let is_none s = s = none

let pp_point ppf p = Fmt.pf ppf "t%d.%d" p.thread p.step

let pp_spec ppf s =
  if is_none s then Fmt.string ppf "-"
  else begin
    let parts =
      List.concat
        [
          (match s.crash with
          | Some p -> [ Fmt.str "crash@%a" pp_point p ]
          | None -> []);
          (match s.stall with
          | Some p -> [ Fmt.str "stall@%a" pp_point p ]
          | None -> []);
          (match s.spurious with
          | [] -> []
          | ps ->
              [
                Fmt.str "abort@%s"
                  (String.concat "," (List.map (Fmt.str "%a" pp_point) ps));
              ]);
          (match s.omission with
          | Some k -> [ Fmt.str "omit@%d" k ]
          | None -> []);
        ]
    in
    Fmt.string ppf (String.concat " " parts)
  end

let sample ?(kinds = ([ `Crash; `Stall; `Spurious ] : kind list)) ~n_threads
    ~horizon ~seed () =
  let rng = Random.State.make [| 0xfa17; seed |] in
  let n_threads = max 1 n_threads and horizon = max 1 horizon in
  let point () =
    {
      thread = Random.State.int rng n_threads;
      step = Random.State.int rng horizon;
    }
  in
  let has k = List.mem k kinds in
  (* Draw every component unconditionally so the plan for a given seed only
     depends on the seed, not on which kinds are enabled. *)
  let crash_p = point () and crash_on = Random.State.int rng 2 = 0 in
  let stall_p = point () and stall_on = Random.State.int rng 2 = 0 in
  let spurious_ps =
    let n = Random.State.int rng 3 in
    List.init 2 (fun _ -> point ()) |> List.filteri (fun i _ -> i < n)
  in
  let omit =
    max 1 (Random.State.int rng (max 2 (3 * n_threads * horizon)))
  and omit_on = Random.State.int rng 2 = 0 in
  {
    crash = (if has `Crash && crash_on then Some crash_p else None);
    stall = (if has `Stall && stall_on then Some stall_p else None);
    spurious = (if has `Spurious then spurious_ps else []);
    omission = (if has `Omission && omit_on then Some omit else None);
  }

let truncate spec events =
  match spec.omission with
  | None -> events
  | Some k -> List.filteri (fun i _ -> i < k) events

(* --- injection ---------------------------------------------------------- *)

type action = Proceed | Crash | Stall | Spurious

type t = {
  spec : spec;
  trivial : bool;  (* no boundary fault can ever fire: skip the counters *)
  cursor : int array;  (* next boundary index, one slot per thread *)
  mutable stall_fired : bool;
}

let injector ~n_threads spec =
  {
    spec;
    trivial = spec.crash = None && spec.stall = None && spec.spurious = [];
    cursor = Array.make (max 1 n_threads) 0;
    stall_fired = false;
  }

let decide t ~thread ~tryc =
  if t.trivial || thread < 0 || thread >= Array.length t.cursor then Proceed
  else begin
    let step = t.cursor.(thread) in
    t.cursor.(thread) <- step + 1;
    let at p = p.thread = thread && p.step = step in
    match t.spec.crash with
    | Some p when at p -> Crash
    | _ -> (
        match t.spec.stall with
        | Some p
          when tryc && (not t.stall_fired) && p.thread = thread
               && step >= p.step ->
            (* [stall_fired] is only ever written by the plan's target
               thread, so this is race-free even on real domains. *)
            t.stall_fired <- true;
            Stall
        | _ -> if List.exists at t.spec.spurious then Spurious else Proceed)
  end

(* --- retry policies ----------------------------------------------------- *)

type retry = { max_attempts : int; backoff : int -> int }

let retry_fixed max_attempts = { max_attempts; backoff = (fun _ -> 0) }

let retry_backoff ?(base = 1) ?(cap = 64) max_attempts =
  {
    max_attempts;
    backoff =
      (fun failures ->
        let e = min (max 0 (failures - 1)) 16 in
        min cap (base * (1 lsl e)));
  }
