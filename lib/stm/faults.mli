(** Deterministic fault plans for the STM runners.

    The paper's safety notions are stated over {e incomplete} histories —
    pending [tryCommit]s, transactions that never respond, truncated traces
    are exactly what Definition 2 (completions) and the prefix/limit-closure
    theorems quantify over — yet a fault-free runner only ever emits
    complete, well-matched histories.  A {!spec} makes failure a scheduled,
    seed-reproducible part of a run: the harness consults the plan at every
    t-operation boundary (via {!decide}) and the recorder applies
    {!truncate} at extraction.

    Boundaries are numbered per thread, starting at 0, one per t-operation
    the thread is about to invoke (including retried attempts), so a
    {!point} addresses "the [step]-th operation thread [thread] attempts" —
    a coordinate that is stable under any scheduler interleaving.

    Fault kinds:
    - {e crash}: the thread dies between invoking the operation and
      executing it.  The invocation is recorded and never answered; the
      thread executes nothing further.
    - {e stall}: the next [tryCommit] at or after the chosen point is
      invoked and {e executed} — its effects may be visible to other
      transactions — but the response is withheld forever
      (a commit-pending zombie).
    - {e spurious abort}: the operation at the chosen point is answered
      [A_k] by the TM instead of being executed.
    - {e omission}: the recorder drops every event past a chosen index,
      modelling a truncated trace. *)

type point = { thread : int; step : int }
(** A t-operation boundary: the [step]-th boundary of thread [thread]. *)

type kind = [ `Crash | `Stall | `Spurious | `Omission ]

val all_kinds : kind list
val kind_to_string : kind -> string
val kind_of_string : string -> (kind, string) result

type spec = {
  crash : point option;  (** kill the thread at this boundary *)
  stall : point option;
      (** withhold the response of the first [tryC] at or after this
          boundary *)
  spurious : point list;  (** force [A_k] at these boundaries *)
  omission : int option;  (** record only the first [k] events *)
}

val none : spec
(** The empty plan: no fault ever fires; behaviour is identical to a
    fault-free run. *)

val is_none : spec -> bool
val pp_spec : Format.formatter -> spec -> unit

val sample :
  ?kinds:kind list -> n_threads:int -> horizon:int -> seed:int -> unit -> spec
(** A random plan, deterministic in [seed].  [horizon] bounds the per-thread
    boundary index targeted (use roughly [txns_per_thread * (ops_per_txn +
    1)]); [kinds] restricts which fault kinds may appear (default: crash,
    stall, spurious — omission opt-in).  A given seed draws the same
    underlying plan regardless of [kinds]; disabled kinds are masked out. *)

val truncate : spec -> 'a list -> 'a list
(** Apply the plan's omission (if any) to a recorded event list. *)

(** {1 Injection} *)

type action = Proceed | Crash | Stall | Spurious

type t
(** A stateful injector: per-thread boundary counters over a {!spec}.
    Create one per run; threads may consult it concurrently as long as each
    thread passes its own index. *)

val injector : n_threads:int -> spec -> t

val decide : t -> thread:int -> tryc:bool -> action
(** Consult the plan at the calling thread's next boundary (the counter
    advances on every call).  [tryc] says the boundary is a [tryCommit]
    invocation — the only place a stall can fire.  Never returns [Stall]
    when [tryc] is false. *)

(** {1 Retry policies}

    Replaces the fixed retry counter: a failed attempt is retried at most
    [max_attempts] times in total, and before the [n]-th re-attempt the
    runner pauses [backoff n] scheduler yields (simulator) or spin pauses
    (domains) — deterministic under the simulator, and a pressure valve
    against retry storms under contention. *)

type retry = { max_attempts : int; backoff : int -> int }

val retry_fixed : int -> retry
(** [max_attempts] attempts, no backoff — the historical behaviour. *)

val retry_backoff : ?base:int -> ?cap:int -> int -> retry
(** Exponential backoff: before re-attempt [n], pause
    [min cap (base * 2{^ n-1})] units (defaults [base = 1], [cap = 64]). *)
