(** The serial baseline: one global spin lock around every transaction.

    Trivially du-opaque (executions are literally t-sequential) and
    trivially abort-free; its flat throughput curve is the yardstick the
    scalable STMs are measured against in the benchmark tables. *)

module Make (M : Mem_intf.MEM) : Tm_intf.TM = struct
  type t = { big_lock : int M.cell; data : int M.cell array }

  type txn = { tm : t; mutable undo : (int * int) list }

  let name = "global-lock"

  let create ~n_vars =
    {
      big_lock = M.make 0;
      data = Array.init n_vars (fun _ -> M.make Event.init_value);
    }

  let rec lock tm =
    if M.cas tm.big_lock 0 1 then ()
    else begin
      M.pause ();
      lock tm
    end

  let begin_txn tm =
    lock tm;
    { tm; undo = [] }

  let read txn x = M.get txn.tm.data.(x)

  let write txn x v =
    txn.undo <- (x, M.get txn.tm.data.(x)) :: txn.undo;
    M.set txn.tm.data.(x) v

  let release _txn _x = ()

  let commit txn =
    M.set txn.tm.big_lock 0;
    true

  let abort txn =
    List.iter (fun (x, v) -> M.set txn.tm.data.(x) v) txn.undo;
    M.set txn.tm.big_lock 0
end
