(** Drives workloads through an STM instance, recording the history.

    Each transaction attempt gets a fresh transaction identifier (the TM
    model treats a retry as a new transaction), and each t-operation is
    bracketed by its invocation and response events sent to the [sink] —
    so the recorded sequence is by construction a well-formed history of
    the run.  Shared by the deterministic simulator ([Tm_sim.Runner]) and
    the domain-parallel runner ({!Parallel}).

    Every t-operation boundary consults a {!Faults} plan, so runs can be
    made to crash threads mid-transaction, withhold [tryC] responses, or
    abort spuriously — producing the incomplete histories the paper's
    completion and closure machinery is about.  The default plan never
    fires. *)

type stats = {
  mutable commits : int;
  mutable commit_aborts : int;  (** [tryC] returned [A_k] *)
  mutable op_aborts : int;  (** a read or write raised [Abort] *)
  mutable gave_up : int;  (** retry budget exhausted; program skipped *)
  mutable crashes : int;  (** fault plan killed the thread mid-transaction *)
  mutable stalls : int;  (** fault plan withheld a [tryC] response *)
  mutable spurious_aborts : int;  (** fault plan forced an [A_k] *)
}

let empty_stats () =
  {
    commits = 0;
    commit_aborts = 0;
    op_aborts = 0;
    gave_up = 0;
    crashes = 0;
    stalls = 0;
    spurious_aborts = 0;
  }

let add_stats a b =
  {
    commits = a.commits + b.commits;
    commit_aborts = a.commit_aborts + b.commit_aborts;
    op_aborts = a.op_aborts + b.op_aborts;
    gave_up = a.gave_up + b.gave_up;
    crashes = a.crashes + b.crashes;
    stalls = a.stalls + b.stalls;
    spurious_aborts = a.spurious_aborts + b.spurious_aborts;
  }

let attempts s = s.commits + s.commit_aborts + s.op_aborts

(* A crash or stall consumed the thread: unwind to [run_thread]. *)
exception Halted

(* One attempt; true = committed. *)
let run_attempt (module I : Tm_intf.INSTANCE) ~emit ~stats ~faults ~thread ~id
    prog =
  (* Statically-last write of each variable in the program: after its
     response, the variable's closing write has happened, so the TM may be
     told it will not be written again ({!Tm_intf.TM.release}).  Most TMs
     ignore the hint; the early-release TM publishes the value. *)
  let last_write =
    let tbl = Hashtbl.create 4 in
    List.iteri
      (fun i op ->
        match op with
        | Workload.Write (x, _) -> Hashtbl.replace tbl x i
        | Workload.Read _ -> ())
      prog;
    tbl
  in
  let txn = I.begin_txn () in
  (* Release the instance's resources without recording anything.  [abort]
     never raises per the interface, but the controls are deliberately
     sloppy — stay safe. *)
  let reclaim () = try I.abort txn with Tm_intf.Abort -> () in
  let crash inv =
    (* The thread dies between invoking the operation and executing it: the
       invocation is recorded and will never be answered.  The transaction's
       resources are reclaimed (as a crash-recovering runtime would) so
       surviving threads cannot wedge on a dead transaction's locks; its
       deferred updates are never published. *)
    emit (Event.Inv (id, inv));
    reclaim ();
    stats.crashes <- stats.crashes + 1;
    raise Halted
  in
  let spurious inv =
    emit (Event.Inv (id, inv));
    reclaim ();
    emit (Event.Res (id, Event.Aborted));
    stats.spurious_aborts <- stats.spurious_aborts + 1
  in
  match
    List.iteri
      (fun op_index op ->
        let inv =
          match op with
          | Workload.Read x -> Event.Read x
          | Workload.Write (x, v) -> Event.Write (x, v)
        in
        (match Faults.decide faults ~thread ~tryc:false with
        | Faults.Proceed -> ()
        | Faults.Crash -> crash inv
        | Faults.Spurious ->
            spurious inv;
            raise Tm_intf.Abort
        | Faults.Stall -> assert false (* stalls only fire at tryC *));
        match op with
        | Workload.Read x -> (
            emit (Event.Inv (id, Event.Read x));
            match I.read txn x with
            | v -> emit (Event.Res (id, Event.Read_ok v))
            | exception Tm_intf.Abort ->
                emit (Event.Res (id, Event.Aborted));
                raise Tm_intf.Abort)
        | Workload.Write (x, v) -> (
            emit (Event.Inv (id, Event.Write (x, v)));
            match I.write txn x v with
            | () ->
                emit (Event.Res (id, Event.Write_ok));
                (* The hint comes after the response: the closing write has
                   responded before anything released can be read.  Not a
                   t-operation — nothing is recorded. *)
                if Hashtbl.find_opt last_write x = Some op_index then
                  I.release txn x
            | exception Tm_intf.Abort ->
                emit (Event.Res (id, Event.Aborted));
                raise Tm_intf.Abort))
      prog
  with
  | exception Tm_intf.Abort ->
      (* The operation aborted the transaction: release its resources.  A
         no-op for most algorithms, but an early-release holder must
         restore its published variables or every later transaction
         touching them wedges. *)
      reclaim ();
      stats.op_aborts <- stats.op_aborts + 1;
      false
  | () -> (
      match Faults.decide faults ~thread ~tryc:true with
      | Faults.Crash -> crash Event.Try_commit
      | Faults.Stall ->
          (* The tryCommit is invoked and executes — its effects may well be
             visible to other transactions — but the response is withheld
             forever: a commit-pending zombie. *)
          emit (Event.Inv (id, Event.Try_commit));
          ignore (I.commit txn : bool);
          stats.stalls <- stats.stalls + 1;
          raise Halted
      | Faults.Spurious ->
          spurious Event.Try_commit;
          stats.commit_aborts <- stats.commit_aborts + 1;
          false
      | Faults.Proceed ->
          emit (Event.Inv (id, Event.Try_commit));
          if I.commit txn then begin
            emit (Event.Res (id, Event.Committed));
            stats.commits <- stats.commits + 1;
            true
          end
          else begin
            emit (Event.Res (id, Event.Aborted));
            stats.commit_aborts <- stats.commit_aborts + 1;
            false
          end)

let run_thread instance ~emit ~next_id ~stats
    ?(faults = Faults.injector ~n_threads:1 Faults.none)
    ?(pause = fun _ -> ()) ?(retry = Faults.retry_fixed 50) ?(thread = 0)
    (programs : Workload.thread_prog) =
  try
    List.iter
      (fun prog ->
        let rec attempt failures =
          if failures >= retry.Faults.max_attempts then
            stats.gave_up <- stats.gave_up + 1
          else begin
            if failures > 0 then pause (retry.Faults.backoff failures);
            if
              not
                (run_attempt instance ~emit ~stats ~faults ~thread
                   ~id:(next_id ()) prog)
            then attempt (failures + 1)
          end
        in
        attempt 0)
      programs
  with Halted -> ()
