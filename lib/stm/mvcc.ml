(** A multi-version STM (JVSTM/LSA-style), from scratch.

    Every variable keeps a list of committed versions stamped by a global
    clock.  A transaction reads the newest version no newer than its start
    timestamp — a consistent snapshot by construction — so {e read-only
    transactions never abort} and never validate.  Update transactions
    serialise on a commit lock and abort if any variable they touched was
    committed past their snapshot (first-committer-wins on both reads and
    writes, which is conservative but simple and clearly opaque).

    Deferred update throughout: new versions are published only inside the
    committer's critical section, after its [tryC] — so every history is
    du-opaque, adding a third distinct deferred-update design (alongside
    TL2's per-location versioned locks and NOrec's value validation) to the
    safety experiments. *)

module Make (M : Mem_intf.MEM) : Tm_intf.TM = struct
  type versions = (int * int) list
  (** newest first: (commit timestamp, value); never empty *)

  type t = {
    clock : int M.cell;
    commit_lock : int M.cell;
    store : versions M.cell array;
  }

  type txn = {
    tm : t;
    start : int;
    wset : (int, int) Hashtbl.t;
    mutable rset : int list;
  }

  let name = "mvcc"

  let create ~n_vars =
    {
      clock = M.make 0;
      commit_lock = M.make 0;
      store = Array.init n_vars (fun _ -> M.make [ (0, Event.init_value) ]);
    }

  let begin_txn tm =
    { tm; start = M.get tm.clock; wset = Hashtbl.create 8; rset = [] }

  let read txn x =
    match Hashtbl.find_opt txn.wset x with
    | Some v -> v
    | None ->
        let versions = M.get txn.tm.store.(x) in
        let rec visible = function
          | [] -> Event.init_value (* unreachable: version 0 always present *)
          | (ts, v) :: older ->
              if ts <= txn.start then v else visible older
        in
        txn.rset <- x :: txn.rset;
        visible versions

  let write txn x v = Hashtbl.replace txn.wset x v
  let release _txn _x = ()

  let newest_ts versions =
    match versions with (ts, _) :: _ -> ts | [] -> 0

  let commit txn =
    if Hashtbl.length txn.wset = 0 then true (* read-only: never aborts *)
    else begin
      let tm = txn.tm in
      let rec lock () =
        if M.cas tm.commit_lock 0 1 then ()
        else begin
          M.pause ();
          lock ()
        end
      in
      lock ();
      (* First-committer-wins: anything we read or will overwrite must not
         have advanced past our snapshot. *)
      let touched =
        List.sort_uniq Int.compare
          (txn.rset @ Hashtbl.fold (fun x _ acc -> x :: acc) txn.wset [])
      in
      let stale =
        List.exists
          (fun x -> newest_ts (M.get tm.store.(x)) > txn.start)
          touched
      in
      if stale then begin
        M.set tm.commit_lock 0;
        false
      end
      else begin
        (* Publish the versions before advancing the clock: a transaction
           beginning at timestamp [ts] must find every [ts]-stamped version
           already in place, and readers at [ts - 1] skip them. *)
        let ts = M.get tm.clock + 1 in
        Hashtbl.iter
          (fun x v -> M.set tm.store.(x) ((ts, v) :: M.get tm.store.(x)))
          txn.wset;
        M.set tm.clock ts;
        M.set tm.commit_lock 0;
        true
      end
    end

  let abort _txn = () (* fully deferred *)
end
