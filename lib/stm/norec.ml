(** NOrec (Dalessandro, Spear, Scott — PPoPP 2010), from scratch.

    No ownership records: a single global sequence lock orders writers, and
    readers detect concurrent commits by value-based revalidation of their
    entire read set.  Deferred update throughout — a write buffer is applied
    in place only while holding the sequence lock inside [commit].  Like
    TL2, every history NOrec produces should be du-opaque; unlike TL2, two
    writers never commit concurrently, which is why it shines at low thread
    counts and struggles at scale — the shape the throughput benchmark
    reproduces. *)

module Make (M : Mem_intf.MEM) : Tm_intf.TM = struct
  type t = { glock : int M.cell; data : int M.cell array }

  type txn = {
    tm : t;
    mutable snapshot : int;
    mutable rset : (int * int) list;  (* variable, value seen *)
    wset : (int, int) Hashtbl.t;
  }

  let name = "norec"

  let create ~n_vars =
    {
      glock = M.make 0;
      data = Array.init n_vars (fun _ -> M.make Event.init_value);
    }

  let rec wait_even tm =
    let l = M.get tm.glock in
    if l land 1 = 0 then l
    else begin
      M.pause ();
      wait_even tm
    end

  let begin_txn tm =
    { tm; snapshot = wait_even tm; rset = []; wset = Hashtbl.create 8 }

  (* Value-based revalidation: succeed with a fresh stable snapshot, or
     abort if any previously read location changed. *)
  let rec validate txn =
    let time = wait_even txn.tm in
    let unchanged =
      List.for_all (fun (x, v) -> M.get txn.tm.data.(x) = v) txn.rset
    in
    if not unchanged then raise Tm_intf.Abort
    else if M.get txn.tm.glock <> time then begin
      M.pause ();
      validate txn
    end
    else time

  let rec read txn x =
    match Hashtbl.find_opt txn.wset x with
    | Some v -> v
    | None ->
        let v = M.get txn.tm.data.(x) in
        if M.get txn.tm.glock = txn.snapshot then begin
          txn.rset <- (x, v) :: txn.rset;
          v
        end
        else begin
          txn.snapshot <- validate txn;
          read txn x
        end

  let write txn x v = Hashtbl.replace txn.wset x v
  let release _txn _x = ()

  let commit txn =
    if Hashtbl.length txn.wset = 0 then true
    else begin
      let tm = txn.tm in
      match
        let rec lock () =
          if M.cas tm.glock txn.snapshot (txn.snapshot + 1) then ()
          else begin
            txn.snapshot <- validate txn;
            lock ()
          end
        in
        lock ()
      with
      | () ->
          Hashtbl.iter (fun x v -> M.set tm.data.(x) v) txn.wset;
          M.set tm.glock (txn.snapshot + 2);
          true
      | exception Tm_intf.Abort -> false
    end

  let abort _txn = ()
end
