(** Domain-parallel execution over real atomic memory.

    Used two ways: with [record = true] for safety experiments (every event
    goes through a mutex-serialised log whose append order is a valid
    real-time order of the run) and with [record = false] for the
    throughput benchmarks (no shared log on the hot path).

    A {!Faults} plan can crash domains mid-transaction, stall a [tryC], or
    truncate the recorded log — per-thread boundary counters make the plan
    meaningful even though real domains interleave nondeterministically. *)

type result = {
  history : History.t option;
  stats : Harness.stats;
  elapsed_s : float;
  torn_tail : int;
      (** Events dropped from the end of the recorded log because a fault
          plan cut a domain mid-append and left a half-recorded operation;
          [0] on fault-free runs. *)
}

let throughput r =
  float_of_int r.stats.Harness.commits /. r.elapsed_s

let run ?(record = false) ?(max_retries = 100) ?retry ?(faults = Faults.none)
    ~algorithm ~params ~seed () =
  let retry =
    match retry with Some r -> r | None -> Faults.retry_fixed max_retries
  in
  let (module A : Tm_intf.ALGORITHM) = algorithm in
  let module T = A (Atomic_mem) in
  let instance = Tm_intf.instantiate (module T) ~n_vars:params.Workload.n_vars in
  let programs = Workload.generate params (Random.State.make [| seed |]) in
  let injector =
    Faults.injector ~n_threads:params.Workload.n_threads faults
  in
  let pause n =
    for _ = 1 to n do
      Domain.cpu_relax ()
    done
  in
  let log = ref [] in
  let log_mutex = Mutex.create () in
  let emit =
    if record then fun ev ->
      Mutex.lock log_mutex;
      log := ev :: !log;
      Mutex.unlock log_mutex
    else fun _ -> ()
  in
  let ids = Atomic.make 1 in
  let next_id () = Atomic.fetch_and_add ids 1 in
  let t0 = Clock.now () in
  let domains =
    List.mapi
      (fun thread thread_prog ->
        let stats = Harness.empty_stats () in
        let d =
          Domain.spawn (fun () ->
              Harness.run_thread instance ~emit ~next_id ~stats
                ~faults:injector ~pause ~retry ~thread thread_prog;
              stats)
        in
        d)
      programs
  in
  let stats =
    List.fold_left
      (fun acc d -> Harness.add_stats acc (Domain.join d))
      (Harness.empty_stats ()) domains
  in
  let elapsed_s = Clock.now () -. t0 in
  let history, torn_tail =
    if record then begin
      (* A crashed domain can die between appending an invocation and its
         response, or a truncation plan can cut the log mid-operation; the
         reversed log is then an interleaving whose tail is not well-formed.
         Keep the longest well-formed prefix rather than failing every
         consumer downstream. *)
      let events = Faults.truncate faults (List.rev !log) in
      let h, torn = History.of_events_prefix events in
      (Some h, List.length torn)
    end
    else (None, 0)
  in
  { history; stats; elapsed_s; torn_tail }
