(** Checkpointing partial-abort STM, after Manticore's bounded hybrid
    partial-abort design (see SNIPPETS.md): every read carries an abort
    continuation, and a conflict detected {e at} a read rolls back to that
    read instead of restarting the transaction.

    Our harness emits each operation's response to the history the moment
    it returns, so a checkpoint can only ever repair the read currently
    executing — earlier reads are already on the record.  That collapses
    the continuation machinery to its observable core:

    - a conflict at the current read (the global clock moved since the
      snapshot) triggers a {e partial abort}: if every previously answered
      read still holds its value, the transaction silently adopts the new
      snapshot and re-executes just this read — no abort event, no retry;
    - if some answered read is stale, the transaction takes a {e full
      abort} (raises {!Tm_intf.Abort}) since its history already contains
      an unjustifiable value.

    The READ_SET_BOUND of the original is kept: only the first
    [read_set_bound] reads retain repair capability.  Once the read set
    grows past the bound, conflicts stop being repairable and force a full
    abort (the continuation would have been dropped by the bounded
    filter).  The partial/full/filtered counters live in shared cells,
    bumped with [fetch_add] so the deterministic simulator sees them as
    ordinary memory traffic.

    Every answered read is validated against a single consistent snapshot
    before commit, exactly as in {!Norec} — the histories are du-opaque
    (and hence last-use-opaque; the containment property tests use this
    source on the "safe" side). *)

module Make (M : Mem_intf.MEM) : Tm_intf.TM = struct
  type t = {
    glock : int M.cell;
    data : int M.cell array;
    partial_aborts : int M.cell;
    full_aborts : int M.cell;
    filtered : int M.cell;  (* conflicts a dropped checkpoint couldn't fix *)
  }

  type txn = {
    tm : t;
    mutable snapshot : int;
    mutable rset : (int * int) list;  (* variable, value seen *)
    mutable nreads : int;
    wset : (int, int) Hashtbl.t;
  }

  let name = "partial-abort"
  let read_set_bound = 6

  let create ~n_vars =
    {
      glock = M.make 0;
      data = Array.init n_vars (fun _ -> M.make Event.init_value);
      partial_aborts = M.make 0;
      full_aborts = M.make 0;
      filtered = M.make 0;
    }

  let rec wait_even tm =
    let l = M.get tm.glock in
    if l land 1 = 0 then l
    else begin
      M.pause ();
      wait_even tm
    end

  let begin_txn tm =
    { tm; snapshot = wait_even tm; rset = []; nreads = 0; wset = Hashtbl.create 8 }

  (* Attempt the partial abort: succeed with a fresh stable snapshot iff
     every answered read still holds.  A stale answered read, or a read
     set past the checkpoint bound, forces the full abort. *)
  let rec repair txn =
    let tm = txn.tm in
    if txn.nreads > read_set_bound then begin
      ignore (M.fetch_add tm.filtered 1 : int);
      ignore (M.fetch_add tm.full_aborts 1 : int);
      raise Tm_intf.Abort
    end;
    let time = wait_even tm in
    let unchanged =
      List.for_all (fun (x, v) -> M.get tm.data.(x) = v) txn.rset
    in
    if not unchanged then begin
      ignore (M.fetch_add tm.full_aborts 1 : int);
      raise Tm_intf.Abort
    end
    else if M.get tm.glock <> time then begin
      M.pause ();
      repair txn
    end
    else begin
      ignore (M.fetch_add tm.partial_aborts 1 : int);
      time
    end

  let rec read txn x =
    match Hashtbl.find_opt txn.wset x with
    | Some v -> v
    | None ->
        let v = M.get txn.tm.data.(x) in
        if M.get txn.tm.glock = txn.snapshot then begin
          txn.rset <- (x, v) :: txn.rset;
          txn.nreads <- txn.nreads + 1;
          v
        end
        else begin
          txn.snapshot <- repair txn;
          read txn x
        end

  let write txn x v = Hashtbl.replace txn.wset x v
  let release _txn _x = ()

  let commit txn =
    if Hashtbl.length txn.wset = 0 then true
    else begin
      let tm = txn.tm in
      match
        let rec lock () =
          if M.cas tm.glock txn.snapshot (txn.snapshot + 1) then ()
          else begin
            txn.snapshot <- repair txn;
            lock ()
          end
        in
        lock ()
      with
      | () ->
          Hashtbl.iter (fun x v -> M.set tm.data.(x) v) txn.wset;
          M.set tm.glock (txn.snapshot + 2);
          true
      | exception Tm_intf.Abort -> false
    end

  let abort _txn = ()
end
