(** Simplified pessimistic STM — the paper's Section 5 negative example.

    Modelled on the shape of pessimistic software lock elision (Afek,
    Matveev, Shavit — DISC 2012): {e no transaction ever aborts}.  Writers
    serialise on a global writer lock and update in place as they go;
    readers run completely unsynchronised.  A reader can therefore return a
    value written by a writer that has not yet invoked [tryC] — precisely
    the deferred-update violation du-opacity forbids — and can assemble
    inconsistent snapshots across a writer's in-flight updates.

    (The real algorithm adds a quiescence/versioning mechanism for readers;
    dropping it is deliberate, to produce the anomalous histories the
    checkers must catch.  See DESIGN.md, substitutions.) *)

module Make (M : Mem_intf.MEM) : Tm_intf.TM = struct
  type t = { wlock : int M.cell; data : int M.cell array }

  type txn = { tm : t; mutable writer : bool; mutable undo : (int * int) list }

  let name = "pessimistic"

  let create ~n_vars =
    {
      wlock = M.make 0;
      data = Array.init n_vars (fun _ -> M.make Event.init_value);
    }

  let begin_txn tm = { tm; writer = false; undo = [] }

  let read txn x = M.get txn.tm.data.(x) (* unvalidated, possibly dirty *)

  let write txn x v =
    if not txn.writer then begin
      let rec lock () =
        if M.cas txn.tm.wlock 0 1 then ()
        else begin
          M.pause ();
          lock ()
        end
      in
      lock ();
      txn.writer <- true
    end;
    txn.undo <- (x, M.get txn.tm.data.(x)) :: txn.undo;
    M.set txn.tm.data.(x) v

  let release _txn _x = ()

  let commit txn =
    if txn.writer then M.set txn.tm.wlock 0;
    true (* never aborts *)

  let abort txn =
    if txn.writer then begin
      List.iter (fun (x, v) -> M.set txn.tm.data.(x) v) txn.undo;
      M.set txn.tm.wlock 0
    end
end
