(** Name-indexed catalogue of the STM algorithms.

    [safe] algorithms are expected to produce only du-opaque histories;
    [controls] are deliberately broken and expected to be caught by the
    checkers; [lastuse_safe] sit exactly between — every history is
    last-use-opaque but du-opacity may fail (that separation is the point
    of the early-release design).  The three-way split drives the
    [stm-safety] experiment and its criterion-separation table. *)

let algorithms : (string * (module Tm_intf.ALGORITHM)) list =
  [
    ("tl2", (module Tl2.Make));
    ("norec", (module Norec.Make));
    ("mvcc", (module Mvcc.Make));
    ("tml", (module Tml.Make));
    ("2pl", (module Twopl.Make));
    ("global-lock", (module Global_lock.Make));
    ("partial-abort", (module Partial_abort.Make));
    ("early-release", (module Early_release.Make));
    ("pessimistic", (module Pessimistic.Make));
    ("dirty-read", (module Dirty.Make));
    ("eager", (module Eager.Make));
  ]

let safe =
  [ "tl2"; "norec"; "mvcc"; "tml"; "2pl"; "global-lock"; "partial-abort" ]

let lastuse_safe = [ "early-release" ]
let controls = [ "pessimistic"; "dirty-read"; "eager" ]

let find name = List.assoc_opt name algorithms

let find_exn name =
  match find name with
  | Some a -> a
  | None ->
      Fmt.invalid_arg "unknown STM %S (available: %s)" name
        (String.concat ", " (List.map fst algorithms))

let atomic_instance name ~n_vars : (module Tm_intf.INSTANCE) =
  let (module A : Tm_intf.ALGORITHM) = find_exn name in
  let module T = A (Atomic_mem) in
  Tm_intf.instantiate (module T) ~n_vars
