(** TL2 (Dice, Shalev, Shavit — DISC 2006), word-based, from scratch.

    Deferred update: writes go to a private buffer and reach memory only
    inside [commit], after the global version clock is advanced and the
    read set validated — so no transaction ever reads from a transaction
    that has not invoked [tryC].  TL2 is the canonical du-opaque STM; the
    integration tests check every history it produces against
    {!Tm_checker.Du_opacity}.

    Per-variable metadata is a versioned lock word [version lsl 1 | locked];
    the global clock is advanced with fetch-and-add.  Lock acquisition uses
    a bounded spin and aborts on contention (lazy acquisition keeps the
    algorithm deadlock-free without ordering). *)

(* Unsealed (no [: Tm_intf.TM]) so that the {!Dirty} negative control can
   reuse the writer side while replacing the read protocol. *)
module Make (M : Mem_intf.MEM) = struct
  type t = {
    clock : int M.cell;
    locks : int M.cell array;
    data : int M.cell array;
  }

  type txn = {
    tm : t;
    rv : int;  (* read version: clock sample at begin *)
    wset : (int, int) Hashtbl.t;
    mutable rset : int list;
  }

  let name = "tl2"

  let create ~n_vars =
    {
      clock = M.make 0;
      locks = Array.init n_vars (fun _ -> M.make 0);
      data = Array.init n_vars (fun _ -> M.make Event.init_value);
    }

  let begin_txn tm =
    { tm; rv = M.get tm.clock; wset = Hashtbl.create 8; rset = [] }

  let locked l = l land 1 = 1
  let version l = l asr 1

  let read txn x =
    match Hashtbl.find_opt txn.wset x with
    | Some v -> v
    | None ->
        let l1 = M.get txn.tm.locks.(x) in
        let v = M.get txn.tm.data.(x) in
        let l2 = M.get txn.tm.locks.(x) in
        if locked l1 || l1 <> l2 || version l1 > txn.rv then raise Tm_intf.Abort
        else begin
          txn.rset <- x :: txn.rset;
          v
        end

  let write txn x v = Hashtbl.replace txn.wset x v
  let release _txn _x = () (* last-use hints are early-release territory *)
  let max_spin = 64

  let unlock tm vars =
    List.iter
      (fun x ->
        let l = M.get tm.locks.(x) in
        M.set tm.locks.(x) (l land lnot 1))
      vars

  let commit txn =
    let tm = txn.tm in
    if Hashtbl.length txn.wset = 0 then true (* read-only fast path *)
    else begin
      let vars =
        Hashtbl.fold (fun x _ acc -> x :: acc) txn.wset []
        |> List.sort Int.compare
      in
      let rec acquire acquired = function
        | [] -> Some acquired
        | x :: rest ->
            let rec try_lock spins =
              let l = M.get tm.locks.(x) in
              if (not (locked l)) && M.cas tm.locks.(x) l (l lor 1) then true
              else if spins = 0 then false
              else begin
                M.pause ();
                try_lock (spins - 1)
              end
            in
            if try_lock max_spin then acquire (x :: acquired) rest
            else begin
              unlock tm acquired;
              None
            end
      in
      match acquire [] vars with
      | None -> false
      | Some acquired ->
          let wv = M.fetch_add tm.clock 1 + 1 in
          let read_valid x =
            let l = M.get tm.locks.(x) in
            if Hashtbl.mem txn.wset x then version l <= txn.rv
            else (not (locked l)) && version l <= txn.rv
          in
          if wv <> txn.rv + 1 && not (List.for_all read_valid txn.rset) then begin
            unlock tm acquired;
            false
          end
          else begin
            Hashtbl.iter (fun x v -> M.set tm.data.(x) v) txn.wset;
            (* Unlock and publish the new version in one store per word. *)
            List.iter (fun x -> M.set tm.locks.(x) (wv lsl 1)) acquired;
            true
          end
    end

  let abort _txn = () (* fully deferred: nothing to undo or release *)
end
