(** The interface every STM algorithm implements.

    Transactions operate on integer-valued t-variables [0 .. n_vars - 1]
    (matching the history model: variables hold {!Event.init_value}
    initially).  A t-operation that cannot proceed raises {!Abort} — the
    implementation must have released any resources first, so the caller
    only needs to retry with a fresh transaction.  [commit] returning
    [false] is the [tryC -> A_k] case. *)

exception Abort

module type TM = sig
  type t
  (** Shared state: the variables plus the algorithm's metadata (clocks,
      locks, sequence numbers). *)

  type txn

  val name : string

  val create : n_vars:int -> t

  val begin_txn : t -> txn

  val read : txn -> int -> int
  (** @raise Abort when the transaction must abort (state already
      released). *)

  val write : txn -> int -> int -> unit
  (** @raise Abort likewise. *)

  val release : txn -> int -> unit
  (** Last-use hint: the program declares it will never write this
      variable again (its statically-last write has executed).  Most
      algorithms ignore it; an early-release TM may publish the buffered
      value so other transactions can read it before [commit].  Never
      raises — a release that cannot proceed is dropped or dooms the
      transaction internally (its [commit] then returns [false]).  The
      harness calls it after the response of the closing write; it is not
      a t-operation and appears in no history. *)

  val commit : txn -> bool
  (** [tryC]: [true] = committed, [false] = aborted.  Either way the
      transaction is finished and its resources released. *)

  val abort : txn -> unit
  (** [tryA]: always succeeds; releases resources, undoes eager writes
      (and takes back any early-released value). *)
end

(** An STM algorithm: a [TM] for any memory. *)
module type ALGORITHM = functor (_ : Mem_intf.MEM) -> TM

(** A [TM] instantiated over a concrete state, so runners can drive it
    without functor plumbing. *)
module type INSTANCE = sig
  type txn

  val name : string
  val begin_txn : unit -> txn
  val read : txn -> int -> int
  val write : txn -> int -> int -> unit
  val release : txn -> int -> unit
  val commit : txn -> bool
  val abort : txn -> unit
end

let instantiate (module T : TM) ~n_vars : (module INSTANCE) =
  let state = T.create ~n_vars in
  (module struct
    type txn = T.txn

    let name = T.name
    let begin_txn () = T.begin_txn state
    let read = T.read
    let write = T.write
    let release = T.release
    let commit = T.commit
    let abort = T.abort
  end)
