(** TML — Transactional Mutex Locking (Dalessandro, Dice, Scott, Shavit,
    Spear), from scratch.

    One global sequence lock; the first write upgrades the transaction to
    {e the} writer by making the lock odd, after which it writes in place
    (with an undo log so [tryA] can roll back).  Readers validate the lock
    word after every read and abort on any concurrent writer — so although
    writes are eager, a dirty value is never {e returned}: histories remain
    du-opaque, giving the test suite an eager-yet-correct data point next to
    the genuinely unsafe eager controls. *)

module Make (M : Mem_intf.MEM) : Tm_intf.TM = struct
  type t = { glock : int M.cell; data : int M.cell array }

  type txn = {
    tm : t;
    mutable loc : int;
    mutable writer : bool;
    mutable undo : (int * int) list;
  }

  let name = "tml"

  let create ~n_vars =
    {
      glock = M.make 0;
      data = Array.init n_vars (fun _ -> M.make Event.init_value);
    }

  let rec wait_even tm =
    let l = M.get tm.glock in
    if l land 1 = 0 then l
    else begin
      M.pause ();
      wait_even tm
    end

  let begin_txn tm = { tm; loc = wait_even tm; writer = false; undo = [] }

  let read txn x =
    let v = M.get txn.tm.data.(x) in
    if txn.writer || M.get txn.tm.glock = txn.loc then v
    else raise Tm_intf.Abort

  let write txn x v =
    if not txn.writer then begin
      if M.cas txn.tm.glock txn.loc (txn.loc + 1) then begin
        txn.writer <- true;
        txn.loc <- txn.loc + 1
      end
      else raise Tm_intf.Abort
    end;
    txn.undo <- (x, M.get txn.tm.data.(x)) :: txn.undo;
    M.set txn.tm.data.(x) v

  let release _txn _x = ()

  let commit txn =
    if txn.writer then M.set txn.tm.glock (txn.loc + 1);
    true

  let abort txn =
    if txn.writer then begin
      List.iter (fun (x, v) -> M.set txn.tm.data.(x) v) txn.undo;
      (* Bump to even anyway: concurrent readers must revalidate. *)
      M.set txn.tm.glock (txn.loc + 1)
    end
end
