type kind = Read | Write | Cas | Fetch_add

let is_write = function Read -> false | Write | Cas | Fetch_add -> true

let pp_kind ppf k =
  Fmt.string ppf
    (match k with
    | Read -> "read"
    | Write -> "write"
    | Cas -> "cas"
    | Fetch_add -> "fetch-add")

type mark = Began | Committed | Aborted

type entry =
  | Access of { fiber : int; loc : int; kind : kind }
  | Mark of { fiber : int; txn : int; mark : mark }

type t = entry array

(* Location ids are handed out for the whole process (cells are created
   from several domains in the Atomic_mem world); analyzers densify them
   by first appearance, so the absolute values never matter. *)
let loc_counter = Atomic.make 0
let fresh_loc () = Atomic.fetch_and_add loc_counter 1
let loc_mark () = Atomic.get loc_counter
let loc_reset m = Atomic.set loc_counter m

type sink = { lock : Mutex.t; mutable entries : entry list; mutable n : int }

let sink () = { lock = Mutex.create (); entries = []; n = 0 }

let push s e =
  Mutex.lock s.lock;
  s.entries <- e :: s.entries;
  s.n <- s.n + 1;
  Mutex.unlock s.lock

let entries s =
  Mutex.lock s.lock;
  let l = s.entries and n = s.n in
  Mutex.unlock s.lock;
  let a = Array.make n (Mark { fiber = 0; txn = 0; mark = Began }) in
  let i = ref (n - 1) in
  List.iter
    (fun e ->
      a.(!i) <- e;
      decr i)
    l;
  a

let length s =
  Mutex.lock s.lock;
  let n = s.n in
  Mutex.unlock s.lock;
  n

let current : sink option ref = ref None
let install s = current := Some s
let uninstall () = current := None
let installed () = Option.is_some !current

let record ~fiber ~loc kind =
  match !current with
  | None -> ()
  | Some s -> push s (Access { fiber; loc; kind })

let record_mark ~fiber ~txn mark =
  match !current with
  | None -> ()
  | Some s -> push s (Mark { fiber; txn; mark })
