(** Shared-memory access recording for the analysis layer.

    Both memory worlds ({!Atomic_mem} on real domains, [Tm_sim.Sim_mem]
    under the deterministic scheduler) report every [get]/[set]/[cas]/
    [fetch_add] here when a recorder is installed, tagged with the
    executing fiber (simulation) or domain (real memory), a stable
    per-cell location id and the access kind.  The runners interleave
    transaction-attempt marks derived from the emitted history events, so
    an analyzer can attribute each access to the attempt that performed it
    and to that attempt's fate.

    Recording is strictly passive: no extra scheduling points are
    introduced, so seeded simulator schedules are bit-for-bit identical
    with and without a recorder (the golden-trace tests guard this).  When
    no recorder is installed the per-access cost is one load and one
    branch. *)

type kind = Read | Write | Cas | Fetch_add

val is_write : kind -> bool
(** Conservative may-write classification: [Cas] counts as a write even
    when it fails (whether it fails depends on the schedule). *)

val pp_kind : Format.formatter -> kind -> unit

type mark = Began | Committed | Aborted
(** Transaction-attempt boundaries, derived from history events: [Began]
    at the attempt's first invocation, [Committed]/[Aborted] at the
    response that ends it.  Crashed or stalled attempts never end. *)

type entry =
  | Access of { fiber : int; loc : int; kind : kind }
  | Mark of { fiber : int; txn : int; mark : mark }

type t = entry array
(** A recorded trace; the array index is the access's global step. *)

val fresh_loc : unit -> int
(** A process-unique location id for a newly created cell.  Ids are never
    reused (but see {!loc_reset}); analyzers should normalise them by order
    of first appearance (cell creation order is deterministic per
    program). *)

val loc_mark : unit -> int
(** The current allocation mark, for {!loc_reset}. *)

val loc_reset : int -> unit
(** Rewind the id allocator to a {!loc_mark}.  For stateless re-execution
    ([Tm_sim.Explore]): re-running a deterministic program from scratch
    re-creates its cells in the same order, and rewinding first gives every
    incarnation of a cell the {e same} id — which is what lets the explorer
    relate accesses across executions.  Must not be interleaved with
    allocations by live cells' users on other domains. *)

(** {1 Recording} *)

type sink

val sink : unit -> sink
(** A fresh, empty recorder.  Safe to fill from multiple domains (pushes
    are mutex-protected). *)

val entries : sink -> t
(** Snapshot of everything recorded so far, in record order. *)

val length : sink -> int

val install : sink -> unit
(** Route all subsequent accesses/marks into [sink] (replacing any
    previously installed recorder). *)

val uninstall : unit -> unit

val installed : unit -> bool

val record : fiber:int -> loc:int -> kind -> unit
(** Called by the memory implementations on every access; no-op unless a
    recorder is installed. *)

val record_mark : fiber:int -> txn:int -> mark -> unit
(** Called by the runners at transaction-attempt boundaries; no-op unless
    a recorder is installed. *)
