(** Strict two-phase locking with wait-die, eager writes and undo logs.

    The classic database discipline transplanted to TM: every access takes
    the variable's exclusive lock, writes go in place, all locks are held to
    the end.  Wait-die keeps it deadlock-free: on conflict an older
    transaction (smaller timestamp) spins, a younger one dies ([A_k] on the
    operation) and is retried by the harness as a fresh transaction.
    [tryC] never returns [A_k].

    Because locks are held until after commit, no transaction ever reads a
    value written by one that has not finished — strictness buys du-opacity
    even though updates are eager.  Contrast with {!Pessimistic}, which
    drops the reader-side protection and loses the property (the paper's
    Section 5 point about pessimistic STMs). *)

module Make (M : Mem_intf.MEM) : Tm_intf.TM = struct
  type t = {
    ts : int M.cell;
    locks : int M.cell array;  (* 0 = free, ts + 1 = owner's timestamp *)
    data : int M.cell array;
  }

  type txn = {
    tm : t;
    stamp : int;
    mutable held : int list;
    mutable undo : (int * int) list;
  }

  let name = "2pl";;

  let create ~n_vars =
    {
      ts = M.make 0;
      locks = Array.init n_vars (fun _ -> M.make 0);
      data = Array.init n_vars (fun _ -> M.make Event.init_value);
    }

  let begin_txn tm = { tm; stamp = M.fetch_add tm.ts 1; held = []; undo = [] }

  let unlock txn =
    List.iter (fun x -> M.set txn.tm.locks.(x) 0) txn.held;
    txn.held <- []

  let rollback txn =
    List.iter (fun (x, v) -> M.set txn.tm.data.(x) v) txn.undo;
    txn.undo <- [];
    unlock txn

  let rec acquire txn x =
    (* lint: allow quadratic-hot-path — held is bounded by the write set
       of one transaction (a handful); a set would cost more to build *)
    if List.mem x txn.held then ()
    else
      let l = M.get txn.tm.locks.(x) in
      if l = 0 then begin
        if M.cas txn.tm.locks.(x) 0 (txn.stamp + 1) then
          txn.held <- x :: txn.held
        else acquire txn x
      end
      else if txn.stamp < l - 1 then begin
        (* Older than the owner: wait. *)
        M.pause ();
        acquire txn x
      end
      else begin
        (* Younger: die.  Roll back before signalling the abort. *)
        rollback txn;
        raise Tm_intf.Abort
      end

  let read txn x =
    acquire txn x;
    M.get txn.tm.data.(x)

  let write txn x v =
    acquire txn x;
    txn.undo <- (x, M.get txn.tm.data.(x)) :: txn.undo;
    M.set txn.tm.data.(x) v

  let release _txn _x = () (* strictness forbids releasing before the end *)

  let commit txn =
    unlock txn;
    true

  let abort txn = rollback txn
end
