let () =
  Alcotest.run "tm_safety"
    (Test_event.suite
    @ Test_history.suite
    @ Test_dsl_parse.suite
    @ Test_semantics.suite
    @ Test_figures.suite
    @ Test_corpus.suite
    @ Test_search.suite
    @ Test_polygraph.suite
    @ Test_monitor.suite
    @ Test_properties.suite
    @ Test_stm.suite
    @ Test_faults.suite
    @ Test_findings.suite
    @ Test_limit.suite
    @ Test_shrink.suite
    @ Test_satellites.suite
    @ Test_conflict_graph.suite
    @ Test_last_use.suite
    @ Test_analysis.suite
    @ Test_soak_corpus.suite
    @ Test_tools.suite
    @ Test_si.suite
    @ Test_codec.suite
    @ Test_service.suite
    @ Test_recovery.suite
    @ Test_sharded.suite)
